//! Conductance and the sweep cut.
//!
//! §9.2 footnote: the conductance of a cut `S` measures how hard it is to
//! leave `S` — `Φ(S) = cut(S) / min(vol(S), vol(V∖S))` where `vol` sums
//! degrees and `cut` counts boundary edges. The ACL method sorts nodes by
//! `p(u)/d(u)` and scans prefixes, returning the prefix with the smallest
//! conductance.

use crate::flat::FlatView;
use simrankpp_util::FxHashMap;

/// Outcome of a sweep-cut search.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The chosen node set (flat indices).
    pub set: Vec<usize>,
    /// Its conductance.
    pub conductance: f64,
    /// Its volume (sum of degrees).
    pub volume: usize,
}

/// Conductance of `set` (flat indices) within the whole graph. Returns 1.0
/// for empty or total sets (no meaningful cut).
pub fn conductance(view: &FlatView<'_>, set: &[usize]) -> f64 {
    if set.is_empty() {
        return 1.0;
    }
    let member: FxHashMap<usize, ()> = set.iter().map(|&u| (u, ())).collect();
    let mut vol = 0usize;
    let mut cut = 0usize;
    for &u in set {
        vol += view.degree(u);
        view.for_each_neighbor(u, |v| {
            if !member.contains_key(&v) {
                cut += 1;
            }
        });
    }
    let total = view.total_volume();
    let other = total.saturating_sub(vol);
    let denom = vol.min(other);
    if denom == 0 {
        return 1.0;
    }
    cut as f64 / denom as f64
}

/// Sweep cut over a sparse PPR vector: scan prefixes of nodes ordered by
/// `p(u)/d(u)` descending and keep the best-conductance prefix whose size is
/// in `[min_size, max_size]` (`max_size == 0` = unbounded).
///
/// An incremental volume/cut update makes the scan `O(vol(support))`.
pub fn sweep_cut(
    view: &FlatView<'_>,
    ppr: &FxHashMap<usize, f64>,
    min_size: usize,
    max_size: usize,
) -> Option<SweepResult> {
    if ppr.is_empty() {
        return None;
    }
    let mut order: Vec<(usize, f64)> = ppr
        .iter()
        .filter(|&(&u, _)| view.degree(u) > 0)
        .map(|(&u, &p)| (u, p / view.degree(u) as f64))
        .collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    let total = view.total_volume();
    let mut in_set: FxHashMap<usize, ()> = FxHashMap::default();
    let mut vol = 0usize;
    let mut cut = 0i64;
    let mut best: Option<(usize, f64, usize)> = None; // (prefix len, Φ, vol)

    for (idx, &(u, _)) in order.iter().enumerate() {
        let d = view.degree(u);
        vol += d;
        // Adding u: edges to outside increase cut; edges to inside remove
        // previously-counted boundary edges (one per internal edge).
        let mut internal = 0i64;
        view.for_each_neighbor(u, |v| {
            if in_set.contains_key(&v) {
                internal += 1;
            }
        });
        cut += d as i64 - 2 * internal;
        in_set.insert(u, ());

        let size = idx + 1;
        if size < min_size {
            continue;
        }
        if max_size > 0 && size > max_size {
            break;
        }
        let other = total.saturating_sub(vol);
        let denom = vol.min(other);
        if denom == 0 {
            continue;
        }
        let phi = cut as f64 / denom as f64;
        if best.map(|(_, b, _)| phi < b).unwrap_or(true) {
            best = Some((size, phi, vol));
        }
    }

    best.map(|(len, phi, vol)| SweepResult {
        set: order[..len].iter().map(|&(u, _)| u).collect(),
        conductance: phi,
        volume: vol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppr::{approximate_ppr, PprConfig};
    use simrankpp_graph::fixtures::figure3_graph;
    use simrankpp_graph::{AdId, ClickGraphBuilder, EdgeData, QueryId};

    /// Two K_{3,3} blocks joined by a single bridge edge.
    fn two_communities() -> simrankpp_graph::ClickGraph {
        let mut b = ClickGraphBuilder::new();
        for q in 0..3u32 {
            for a in 0..3u32 {
                b.add_edge(QueryId(q), AdId(a), EdgeData::from_clicks(1));
                b.add_edge(QueryId(q + 3), AdId(a + 3), EdgeData::from_clicks(1));
            }
        }
        b.add_edge(QueryId(0), AdId(3), EdgeData::from_clicks(1)); // bridge
        b.build()
    }

    #[test]
    fn conductance_of_perfect_community() {
        let g = two_communities();
        let view = FlatView::new(&g);
        let nq = g.n_queries();
        // Community 1 = queries 0..3 + ads 0..3 (flat: ads offset by nq).
        let set: Vec<usize> = (0..3).chain(nq..nq + 3).collect();
        let phi = conductance(&view, &set);
        // One boundary edge (the bridge), volume 19 vs 19.
        assert!((phi - 1.0 / 19.0).abs() < 1e-12, "phi = {phi}");
    }

    #[test]
    fn conductance_edge_cases() {
        let g = figure3_graph();
        let view = FlatView::new(&g);
        assert_eq!(conductance(&view, &[]), 1.0);
        let all: Vec<usize> = (0..view.n_nodes()).collect();
        assert_eq!(conductance(&view, &all), 1.0);
    }

    #[test]
    fn sweep_finds_the_planted_community() {
        let g = two_communities();
        let view = FlatView::new(&g);
        let (p, _) = approximate_ppr(
            &view,
            1, // seed inside community 1 (query 1, not the bridge node)
            &PprConfig {
                epsilon: 1e-8,
                ..PprConfig::default()
            },
            None,
        );
        let result = sweep_cut(&view, &p, 2, 0).expect("sweep must find a cut");
        // The best cut is exactly community 1 (6 nodes, Φ = 1/19).
        assert_eq!(result.set.len(), 6, "set = {:?}", result.set);
        assert!((result.conductance - 1.0 / 19.0).abs() < 1e-12);
        let nq = g.n_queries();
        let mut set = result.set.clone();
        set.sort_unstable();
        assert_eq!(set, vec![0, 1, 2, nq, nq + 1, nq + 2]);
    }

    #[test]
    fn sweep_conductance_matches_direct_computation() {
        let g = two_communities();
        let view = FlatView::new(&g);
        let (p, _) = approximate_ppr(&view, 1, &PprConfig::default(), None);
        if let Some(r) = sweep_cut(&view, &p, 1, 0) {
            let direct = conductance(&view, &r.set);
            assert!(
                (r.conductance - direct).abs() < 1e-12,
                "incremental {} vs direct {direct}",
                r.conductance
            );
        }
    }

    #[test]
    fn size_bounds_respected() {
        let g = two_communities();
        let view = FlatView::new(&g);
        let (p, _) = approximate_ppr(&view, 1, &PprConfig::default(), None);
        let r = sweep_cut(&view, &p, 3, 4).unwrap();
        assert!(r.set.len() >= 3 && r.set.len() <= 4);
    }

    #[test]
    fn empty_ppr_gives_none() {
        let g = figure3_graph();
        let view = FlatView::new(&g);
        let empty = FxHashMap::default();
        assert!(sweep_cut(&view, &empty, 1, 0).is_none());
    }
}
