//! Local graph partitioning substrate (§9.2's dataset preparation).
//!
//! The paper's evaluation graph is produced by "the subgraph extraction
//! method described in \[1\]" — Andersen, Chung & Lang, *Local graph
//! partitioning using PageRank vectors* (FOCS 2006) — run "iteratively in
//! order to discover big enough, distinct subgraphs" from the giant
//! component of the Yahoo! click graph. The authors used Kevin Lang's code;
//! this crate is a from-scratch reimplementation:
//!
//! * [`flat`] — a unified (query+ad) node view of the bipartite click graph;
//! * [`mod@pagerank`] — global PageRank by power iteration (seed selection);
//! * [`ppr`] — approximate personalized PageRank via the ACL push algorithm;
//! * [`sweep`] — conductance and the sweep-cut search;
//! * [`extract`] — the iterative driver that carves k disjoint subgraphs;
//! * [`shard`] — extraction-based sharding: ACL blocks + per-component
//!   remainders as an overlap-free (approximate) score decomposition.

pub mod extract;
pub mod flat;
pub mod pagerank;
pub mod ppr;
pub mod shard;
pub mod sweep;

pub use extract::{extract_subgraphs, ExtractConfig};
pub use flat::FlatView;
pub use pagerank::{pagerank, PagerankConfig};
pub use ppr::{approximate_ppr, PprConfig};
pub use shard::{extraction_sharding, extraction_sharding_with};
pub use sweep::{conductance, sweep_cut, SweepResult};
