//! A unified node view over the bipartite click graph.
//!
//! Partitioning algorithms treat queries and ads as one undirected graph.
//! [`FlatView`] flattens the two id spaces: queries occupy `0..n_queries`,
//! ads occupy `n_queries..n_queries+n_ads` (the same convention as
//! [`NodeRef::flat_index`]).

use simrankpp_graph::{AdId, ClickGraph, NodeRef, QueryId};

/// Flat-index adapter over a [`ClickGraph`].
#[derive(Debug, Clone, Copy)]
pub struct FlatView<'g> {
    g: &'g ClickGraph,
}

impl<'g> FlatView<'g> {
    /// Wraps a click graph.
    pub fn new(g: &'g ClickGraph) -> Self {
        FlatView { g }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g ClickGraph {
        self.g
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.g.n_nodes()
    }

    /// Degree of flat node `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.g.degree(self.node_ref(u))
    }

    /// Sum of all degrees (= 2·|E|).
    pub fn total_volume(&self) -> usize {
        2 * self.g.n_edges()
    }

    /// The [`NodeRef`] of flat index `u`.
    pub fn node_ref(&self, u: usize) -> NodeRef {
        NodeRef::from_flat_index(u, self.g.n_queries())
    }

    /// The flat index of `node`.
    pub fn flat_index(&self, node: NodeRef) -> usize {
        node.flat_index(self.g.n_queries())
    }

    /// Calls `f` with each neighbor (as a flat index) of flat node `u`.
    pub fn for_each_neighbor(&self, u: usize, mut f: impl FnMut(usize)) {
        let nq = self.g.n_queries();
        if u < nq {
            let (ads, _) = self.g.ads_of(QueryId(u as u32));
            for &a in ads {
                f(nq + a.index());
            }
        } else {
            let (qs, _) = self.g.queries_of(AdId((u - nq) as u32));
            for &q in qs {
                f(q.index());
            }
        }
    }

    /// Collects the neighbors of `u` as flat indices.
    pub fn neighbors(&self, u: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.degree(u));
        self.for_each_neighbor(u, |v| out.push(v));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::fixtures::figure3_graph;

    #[test]
    fn flat_indexing_roundtrip() {
        let g = figure3_graph();
        let v = FlatView::new(&g);
        for u in 0..v.n_nodes() {
            assert_eq!(v.flat_index(v.node_ref(u)), u);
        }
    }

    #[test]
    fn degrees_match_graph() {
        let g = figure3_graph();
        let v = FlatView::new(&g);
        let camera = g.query_by_name("camera").unwrap();
        assert_eq!(v.degree(camera.index()), 2);
        assert_eq!(v.total_volume(), 2 * g.n_edges());
    }

    #[test]
    fn neighbors_cross_sides() {
        let g = figure3_graph();
        let v = FlatView::new(&g);
        let nq = g.n_queries();
        let pc = g.query_by_name("pc").unwrap().index();
        let nbrs = v.neighbors(pc);
        assert_eq!(nbrs.len(), 1);
        assert!(nbrs[0] >= nq, "pc's neighbor must be an ad-side flat index");
        // And the ad's neighbors come back to the query side.
        let back = v.neighbors(nbrs[0]);
        assert!(back.contains(&pc));
    }

    #[test]
    fn neighbor_counts_sum_to_volume() {
        let g = figure3_graph();
        let v = FlatView::new(&g);
        let total: usize = (0..v.n_nodes()).map(|u| v.neighbors(u).len()).sum();
        assert_eq!(total, v.total_volume());
    }
}
