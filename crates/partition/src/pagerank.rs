//! Global PageRank by power iteration.
//!
//! Used by the extraction driver to pick well-connected seeds ("we started
//! from different nodes", §9.2 — we start from the highest-PageRank nodes
//! not yet assigned to a subgraph). Standard damped uniform-teleport
//! PageRank on the undirected flat view; dangling (isolated) mass is
//! redistributed uniformly.

#![allow(clippy::needless_range_loop)] // index loops touch parallel arrays

use crate::flat::FlatView;

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PagerankConfig {
    /// Damping factor (probability of following an edge).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for PagerankConfig {
    fn default() -> Self {
        PagerankConfig {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-10,
        }
    }
}

/// Computes the PageRank vector over the flat node space (sums to 1).
pub fn pagerank(view: &FlatView<'_>, config: &PagerankConfig) -> Vec<f64> {
    let n = view.n_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];

    for _ in 0..config.max_iterations {
        next.fill(0.0);
        let mut dangling = 0.0f64;
        for u in 0..n {
            let d = view.degree(u);
            if d == 0 {
                dangling += rank[u];
                continue;
            }
            let share = rank[u] / d as f64;
            view.for_each_neighbor(u, |v| next[v] += share);
        }
        let teleport = (1.0 - config.damping) * uniform + config.damping * dangling * uniform;
        let mut delta = 0.0f64;
        for u in 0..n {
            let value = teleport + config.damping * next[u];
            delta += (value - rank[u]).abs();
            next[u] = value;
        }
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::fixtures::{complete_bipartite, figure3_graph};
    use simrankpp_graph::{ClickGraphBuilder, EdgeData};

    #[test]
    fn sums_to_one() {
        let g = figure3_graph();
        let view = FlatView::new(&g);
        let pr = pagerank(&view, &PagerankConfig::default());
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        assert!(pr.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn symmetric_graph_uniform_rank() {
        // K_{3,3} is vertex-transitive per side with equal degrees on both
        // sides → all nodes have equal PageRank.
        let g = complete_bipartite(3, 3, EdgeData::from_clicks(1));
        let view = FlatView::new(&g);
        let pr = pagerank(&view, &PagerankConfig::default());
        for &v in &pr {
            assert!((v - pr[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn high_degree_nodes_rank_higher() {
        let g = figure3_graph();
        let view = FlatView::new(&g);
        let pr = pagerank(&view, &PagerankConfig::default());
        let nq = g.n_queries();
        let hp = nq + g.ad_by_name("hp.com").unwrap().index(); // degree 3
        let teleflora = nq + g.ad_by_name("teleflora.com").unwrap().index(); // degree 1
        assert!(pr[hp] > pr[teleflora]);
    }

    #[test]
    fn isolated_nodes_keep_teleport_mass() {
        let mut b = ClickGraphBuilder::new();
        b.reserve_queries(3); // query 2 is isolated
        b.add_edge(
            simrankpp_graph::QueryId(0),
            simrankpp_graph::AdId(0),
            EdgeData::from_clicks(1),
        );
        b.add_edge(
            simrankpp_graph::QueryId(1),
            simrankpp_graph::AdId(0),
            EdgeData::from_clicks(1),
        );
        let g = b.build();
        let view = FlatView::new(&g);
        let pr = pagerank(&view, &PagerankConfig::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[2] > 0.0, "isolated node must retain teleport mass");
    }

    #[test]
    fn empty_graph() {
        let g = ClickGraphBuilder::new().build();
        let view = FlatView::new(&g);
        assert!(pagerank(&view, &PagerankConfig::default()).is_empty());
    }
}
