//! Extraction-based sharding: carving the giant component into score blocks.
//!
//! Component sharding ([`Sharding::from_components`]) is exact but leaves the
//! §9.2 giant component as one monolithic shard. This module carves further:
//! ACL-extracted low-conductance blocks ([`extract_subgraphs`]) become shards
//! of their own, and every node the extraction did not claim falls back into
//! a remainder shard per original connected component. The result is an
//! overlap-free cover of all nodes.
//!
//! **This decomposition is approximate.** Edges that cross an extraction cut
//! are dropped, so scores of pairs straddling a cut are lost and scores near
//! a cut shrink (SimRank scores are monotone in the edge set from `s⁰ = I`).
//! With well-separated blocks (the regime §9.2 assumes) the error is
//! confined to the low-conductance boundary. It is an opt-in trade
//! (`ShardStrategy::Extracted` in the core config); the differential
//! equivalence guarantees apply only to component sharding.

use crate::extract::{extract_subgraphs, ExtractConfig};
use simrankpp_graph::components::connected_components;
use simrankpp_graph::sharding::{Shard, Sharding};
use simrankpp_graph::subgraph::induced_subgraph;
use simrankpp_graph::{AdId, ClickGraph, NodeRef, QueryId};

/// Carves `g` into up to `k` ACL-extracted blocks plus per-component
/// remainder shards, with [`ExtractConfig::default`] push parameters.
pub fn extraction_sharding(g: &ClickGraph, k: usize) -> Sharding {
    let config = ExtractConfig {
        n_subgraphs: k,
        ..ExtractConfig::default()
    };
    extraction_sharding_with(g, &config)
}

/// As [`extraction_sharding`] with explicit extraction parameters.
pub fn extraction_sharding_with(g: &ClickGraph, config: &ExtractConfig) -> Sharding {
    let mut claimed_q = vec![false; g.n_queries()];
    let mut claimed_a = vec![false; g.n_ads()];
    let mut shards = Vec::new();

    for extracted in extract_subgraphs(g, config) {
        for &q in &extracted.mapping.queries {
            claimed_q[q.index()] = true;
        }
        for &a in &extracted.mapping.ads {
            claimed_a[a.index()] = true;
        }
        if extracted.graph.n_queries() >= 2 || extracted.graph.n_ads() >= 2 {
            shards.push(Shard {
                graph: extracted.graph,
                mapping: extracted.mapping,
                component: None,
            });
        }
    }

    // Remainder: group unclaimed nodes by their original component so
    // satellites stay separate shards and the giant component's leftover
    // becomes one block.
    let components = connected_components(g);
    let mut leftover: Vec<Vec<NodeRef>> = vec![Vec::new(); components.count];
    for (i, &l) in components.query_label.iter().enumerate() {
        if !claimed_q[i] {
            leftover[l as usize].push(NodeRef::Query(QueryId(i as u32)));
        }
    }
    for (i, &l) in components.ad_label.iter().enumerate() {
        if !claimed_a[i] {
            leftover[l as usize].push(NodeRef::Ad(AdId(i as u32)));
        }
    }
    for (id, nodes) in leftover.into_iter().enumerate() {
        let queries = nodes
            .iter()
            .filter(|n| matches!(n, NodeRef::Query(_)))
            .count();
        let ads = nodes.len() - queries;
        if queries < 2 && ads < 2 {
            continue; // cannot hold a same-side pair
        }
        let (graph, mapping) = induced_subgraph(g, &nodes);
        shards.push(Shard {
            graph,
            mapping,
            component: Some(id as u32),
        });
    }

    Sharding::from_shards(g, shards, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::{ClickGraphBuilder, EdgeData};

    /// `k` K_{m,m} blocks chained by single bridge edges (one component).
    fn blocks(k: usize, m: usize) -> ClickGraph {
        let mut b = ClickGraphBuilder::new();
        for block in 0..k {
            let qo = (block * m) as u32;
            let ao = (block * m) as u32;
            for q in 0..m as u32 {
                for a in 0..m as u32 {
                    b.add_edge(QueryId(qo + q), AdId(ao + a), EdgeData::from_clicks(1));
                }
            }
            if block + 1 < k {
                b.add_edge(QueryId(qo), AdId(ao + m as u32), EdgeData::from_clicks(1));
            }
        }
        b.build()
    }

    #[test]
    fn extraction_sharding_covers_all_pairable_nodes_disjointly() {
        let g = blocks(4, 4);
        let s = extraction_sharding(&g, 3);
        assert!(!s.exact);
        assert!(s.n_shards() >= 2, "got {} shards", s.n_shards());
        s.validate_disjoint().unwrap();
        // Every node of this graph sits in some shard (no trivial leftovers
        // in a chained-blocks graph).
        let covered_q: usize = s.shards.iter().map(|sh| sh.graph.n_queries()).sum();
        let covered_a: usize = s.shards.iter().map(|sh| sh.graph.n_ads()).sum();
        assert_eq!(covered_q, g.n_queries());
        assert_eq!(covered_a, g.n_ads());
    }

    #[test]
    fn extraction_shard_remaps_are_monotone() {
        // Failing-before regression: ACL blocks used to inherit the sweep's
        // PPR-rank node order, so their id remaps were not monotone and the
        // engine's sorted stitch received out-of-order pair lists.
        let g = blocks(4, 4);
        let s = extraction_sharding(&g, 3);
        for shard in &s.shards {
            assert!(shard.mapping.queries.windows(2).all(|w| w[0] < w[1]));
            assert!(shard.mapping.ads.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn extraction_sharding_orders_largest_first() {
        let g = blocks(3, 4);
        let s = extraction_sharding(&g, 2);
        for w in s.shards.windows(2) {
            assert!(w[0].n_nodes() >= w[1].n_nodes());
        }
    }

    #[test]
    fn empty_graph_yields_no_shards() {
        let g = ClickGraphBuilder::new().build();
        let s = extraction_sharding(&g, 5);
        assert_eq!(s.n_shards(), 0);
    }

    #[test]
    fn zero_extractions_degrade_to_component_remainders() {
        // With k = 0 nothing is claimed; every component becomes a remainder
        // shard — structurally identical to component sharding.
        let g = blocks(2, 3);
        let s = extraction_sharding(&g, 0);
        assert_eq!(s.n_shards(), 1, "one connected component");
        assert_eq!(s.shards[0].graph.n_edges(), g.n_edges());
    }
}
