//! Iterative multi-subgraph extraction (§9.2).
//!
//! "We started from different nodes and run the algorithm iteratively in
//! order to discover big enough, distinct subgraphs." The driver:
//!
//! 1. compute global PageRank once and keep nodes sorted by rank;
//! 2. seed at the highest-ranked node not yet assigned to a subgraph;
//! 3. run the ACL push restricted to unassigned nodes; sweep for the best
//!    cut within the configured size band;
//! 4. claim the cut's nodes, emit the induced subgraph, repeat.
//!
//! Produces up to `n_subgraphs` disjoint induced subgraphs (Table 5's five),
//! largest-seed first.

use crate::flat::FlatView;
use crate::pagerank::{pagerank, PagerankConfig};
use crate::ppr::{approximate_ppr, PprConfig};
use crate::sweep::sweep_cut;
use simrankpp_graph::subgraph::{induced_subgraph, SubgraphMapping};
use simrankpp_graph::{ClickGraph, NodeRef};

/// Extraction parameters.
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// How many disjoint subgraphs to carve.
    pub n_subgraphs: usize,
    /// Minimum nodes per subgraph (smaller sweeps are discarded).
    pub min_size: usize,
    /// Maximum nodes per subgraph (0 = unbounded).
    pub max_size: usize,
    /// Push-algorithm parameters.
    pub ppr: PprConfig,
    /// PageRank parameters for seed selection.
    pub pagerank: PagerankConfig,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            n_subgraphs: 5,
            min_size: 4,
            max_size: 0,
            ppr: PprConfig::default(),
            pagerank: PagerankConfig::default(),
        }
    }
}

/// One extracted subgraph with its provenance.
#[derive(Debug)]
pub struct ExtractedSubgraph {
    /// The induced subgraph (re-densified ids).
    pub graph: ClickGraph,
    /// Id correspondence back to the parent graph.
    pub mapping: SubgraphMapping,
    /// Conductance of the cut that produced it.
    pub conductance: f64,
    /// The seed node (parent flat index) it grew from.
    pub seed: usize,
}

/// Carves up to `config.n_subgraphs` disjoint subgraphs out of `g`.
pub fn extract_subgraphs(g: &ClickGraph, config: &ExtractConfig) -> Vec<ExtractedSubgraph> {
    let view = FlatView::new(g);
    let n = view.n_nodes();
    if n == 0 {
        return Vec::new();
    }
    let pr = pagerank(&view, &config.pagerank);
    let mut by_rank: Vec<usize> = (0..n).collect();
    by_rank.sort_by(|&a, &b| pr[b].partial_cmp(&pr[a]).unwrap().then(a.cmp(&b)));

    let mut allowed = vec![true; n];
    let mut out = Vec::new();
    let mut rank_cursor = 0usize;

    while out.len() < config.n_subgraphs {
        // Next unassigned seed by global PageRank.
        let seed = loop {
            if rank_cursor >= by_rank.len() {
                return out;
            }
            let u = by_rank[rank_cursor];
            rank_cursor += 1;
            if allowed[u] && view.degree(u) > 0 {
                break u;
            }
        };

        let (p, _) = approximate_ppr(&view, seed, &config.ppr, Some(&allowed));
        let Some(sweep) = sweep_cut(&view, &p, config.min_size, config.max_size) else {
            continue;
        };
        if sweep.set.len() < config.min_size {
            continue;
        }
        for &u in &sweep.set {
            allowed[u] = false;
        }
        // Sort out of sweep (PPR-rank) order into ascending parent-id order
        // so the subgraph's id remap is monotone per side — the property the
        // sharded engine's sorted stitch relies on (and components get by
        // construction).
        let mut nodes: Vec<NodeRef> = sweep.set.iter().map(|&u| view.node_ref(u)).collect();
        nodes.sort_unstable();
        let (graph, mapping) = induced_subgraph(g, &nodes);
        out.push(ExtractedSubgraph {
            graph,
            mapping,
            conductance: sweep.conductance,
            seed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::{AdId, ClickGraphBuilder, EdgeData, QueryId};

    /// `k` K_{m,m} blocks chained by single bridge edges.
    fn blocks(k: usize, m: usize) -> ClickGraph {
        let mut b = ClickGraphBuilder::new();
        for block in 0..k {
            let qo = (block * m) as u32;
            let ao = (block * m) as u32;
            for q in 0..m as u32 {
                for a in 0..m as u32 {
                    b.add_edge(QueryId(qo + q), AdId(ao + a), EdgeData::from_clicks(1));
                }
            }
            if block + 1 < k {
                // bridge: first query of this block to first ad of next.
                b.add_edge(QueryId(qo), AdId(ao + m as u32), EdgeData::from_clicks(1));
            }
        }
        b.build()
    }

    #[test]
    fn extracts_disjoint_subgraphs() {
        let g = blocks(4, 4);
        let config = ExtractConfig {
            n_subgraphs: 3,
            min_size: 4,
            max_size: 10,
            ..ExtractConfig::default()
        };
        let subs = extract_subgraphs(&g, &config);
        assert!(!subs.is_empty(), "must extract at least one subgraph");
        // Disjointness across parents.
        let mut seen_queries = std::collections::HashSet::new();
        let mut seen_ads = std::collections::HashSet::new();
        for s in &subs {
            for &q in &s.mapping.queries {
                assert!(seen_queries.insert(q), "query {q} in two subgraphs");
            }
            for &a in &s.mapping.ads {
                assert!(seen_ads.insert(a), "ad {a} in two subgraphs");
            }
            s.graph.validate().unwrap();
        }
    }

    #[test]
    fn block_structure_recovered() {
        // Each extracted subgraph should be (close to) one K_{4,4} block:
        // 8 nodes, low conductance.
        let g = blocks(3, 4);
        let config = ExtractConfig {
            n_subgraphs: 2,
            min_size: 6,
            max_size: 8,
            ..ExtractConfig::default()
        };
        let subs = extract_subgraphs(&g, &config);
        assert_eq!(subs.len(), 2);
        for s in &subs {
            assert!(s.graph.n_nodes() <= 8);
            assert!(
                s.conductance < 0.25,
                "block cut should be cheap, got {}",
                s.conductance
            );
        }
    }

    #[test]
    fn empty_graph_extracts_nothing() {
        let g = ClickGraphBuilder::new().build();
        assert!(extract_subgraphs(&g, &ExtractConfig::default()).is_empty());
    }

    #[test]
    fn respects_subgraph_count() {
        let g = blocks(5, 3);
        let config = ExtractConfig {
            n_subgraphs: 2,
            min_size: 4,
            max_size: 6,
            ..ExtractConfig::default()
        };
        let subs = extract_subgraphs(&g, &config);
        assert!(subs.len() <= 2);
    }

    #[test]
    fn runs_out_of_nodes_gracefully() {
        // Ask for more subgraphs than the graph can supply.
        let g = blocks(2, 3);
        let config = ExtractConfig {
            n_subgraphs: 50,
            min_size: 4,
            max_size: 6,
            ..ExtractConfig::default()
        };
        let subs = extract_subgraphs(&g, &config);
        assert!(subs.len() < 50);
    }
}
