//! Approximate personalized PageRank by the ACL push algorithm.
//!
//! Andersen–Chung–Lang (FOCS'06), Algorithm `ApproximatePR(v, α, ε)`: keep a
//! pair of vectors `(p, r)` with `p = 0`, `r = e_seed`; while some node `u`
//! has residual `r(u) ≥ ε·d(u)`, push:
//!
//! ```text
//! p(u) += α·r(u)
//! r(v) += (1−α)·r(u) / (2·d(u))   for each neighbor v
//! r(u)  = (1−α)·r(u) / 2
//! ```
//!
//! The result approximates the PageRank vector personalized on the seed with
//! additive error at most `ε·d(u)` per node, touching only the seed's
//! neighborhood — which is what makes carving subgraphs out of a multi-
//! million-node click graph cheap.
//!
//! `allowed` optionally restricts the walk to a node subset (the extraction
//! driver masks out already-assigned nodes).

use crate::flat::FlatView;
use simrankpp_util::FxHashMap;
use std::collections::VecDeque;

/// Push-algorithm parameters.
#[derive(Debug, Clone, Copy)]
pub struct PprConfig {
    /// Teleport probability α (ACL use ~0.1–0.25 for community detection).
    pub alpha: f64,
    /// Residual tolerance ε: push until `r(u) < ε·d(u)` everywhere.
    pub epsilon: f64,
    /// Safety cap on pushes (0 = unlimited).
    pub max_pushes: usize,
}

impl Default for PprConfig {
    fn default() -> Self {
        PprConfig {
            alpha: 0.15,
            epsilon: 1e-6,
            max_pushes: 0,
        }
    }
}

/// Sparse approximate PPR vector personalized on `seed` (a flat index).
///
/// Returns `(p, r)`: the approximation and the final residual, both sparse.
/// Nodes outside `allowed` (when given) are never pushed and accumulate no
/// mass.
pub fn approximate_ppr(
    view: &FlatView<'_>,
    seed: usize,
    config: &PprConfig,
    allowed: Option<&[bool]>,
) -> (FxHashMap<usize, f64>, FxHashMap<usize, f64>) {
    assert!(
        (0.0..=1.0).contains(&config.alpha),
        "alpha must be in [0,1]"
    );
    assert!(config.epsilon > 0.0, "epsilon must be positive");
    let is_allowed = |u: usize| allowed.map(|a| a[u]).unwrap_or(true);

    let mut p: FxHashMap<usize, f64> = FxHashMap::default();
    let mut r: FxHashMap<usize, f64> = FxHashMap::default();
    if !is_allowed(seed) || view.degree(seed) == 0 {
        return (p, r);
    }
    r.insert(seed, 1.0);

    // Work queue of nodes that may violate the threshold; `queued` avoids
    // duplicates (standard ACL implementation technique).
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut queued: FxHashMap<usize, bool> = FxHashMap::default();
    queue.push_back(seed);
    queued.insert(seed, true);

    let mut pushes = 0usize;
    while let Some(u) = queue.pop_front() {
        queued.insert(u, false);
        let d = view.degree(u);
        if d == 0 {
            continue;
        }
        let ru = r.get(&u).copied().unwrap_or(0.0);
        if ru < config.epsilon * d as f64 {
            continue;
        }
        // Push u.
        *p.entry(u).or_insert(0.0) += config.alpha * ru;
        let spread = (1.0 - config.alpha) * ru / (2.0 * d as f64);
        r.insert(u, (1.0 - config.alpha) * ru / 2.0);
        view.for_each_neighbor(u, |v| {
            if !is_allowed(v) {
                return;
            }
            let rv = r.entry(v).or_insert(0.0);
            *rv += spread;
            let dv = view.degree(v).max(1);
            if *rv >= config.epsilon * dv as f64 && !queued.get(&v).copied().unwrap_or(false) {
                queue.push_back(v);
                queued.insert(v, true);
            }
        });
        // u may still violate the threshold (lazy half stays).
        let ru_new = r.get(&u).copied().unwrap_or(0.0);
        if ru_new >= config.epsilon * d as f64 && !queued.get(&u).copied().unwrap_or(false) {
            queue.push_back(u);
            queued.insert(u, true);
        }
        pushes += 1;
        if config.max_pushes > 0 && pushes >= config.max_pushes {
            break;
        }
    }
    (p, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::fixtures::{complete_bipartite, figure3_graph};
    use simrankpp_graph::EdgeData;

    #[test]
    fn mass_conservation() {
        // p + r always sums to 1 (every push conserves mass).
        let g = figure3_graph();
        let view = FlatView::new(&g);
        let (p, r) = approximate_ppr(&view, 0, &PprConfig::default(), None);
        let total: f64 = p.values().sum::<f64>() + r.values().sum::<f64>();
        assert!((total - 1.0).abs() < 1e-9, "p+r = {total}");
    }

    #[test]
    fn residual_below_threshold_everywhere() {
        let g = figure3_graph();
        let view = FlatView::new(&g);
        let cfg = PprConfig {
            epsilon: 1e-4,
            ..PprConfig::default()
        };
        let (_, r) = approximate_ppr(&view, 0, &cfg, None);
        for (&u, &ru) in &r {
            assert!(
                ru < cfg.epsilon * view.degree(u).max(1) as f64,
                "node {u}: residual {ru} above threshold"
            );
        }
    }

    #[test]
    fn stays_in_seed_component() {
        // Seeding in the camera cluster must give zero mass to the flower
        // cluster (different connected component).
        let g = figure3_graph();
        let view = FlatView::new(&g);
        let pc = g.query_by_name("pc").unwrap().index();
        let flower = g.query_by_name("flower").unwrap().index();
        let (p, r) = approximate_ppr(&view, pc, &PprConfig::default(), None);
        assert!(!p.contains_key(&flower));
        assert!(!r.contains_key(&flower));
        assert!(p.get(&pc).copied().unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn allowed_mask_blocks_nodes() {
        let g = figure3_graph();
        let view = FlatView::new(&g);
        let pc = g.query_by_name("pc").unwrap().index();
        let nq = g.n_queries();
        let hp = nq + g.ad_by_name("hp.com").unwrap().index();
        // Forbid hp.com — pc's only neighbor — so no mass can leave pc.
        let mut allowed = vec![true; view.n_nodes()];
        allowed[hp] = false;
        let (p, _) = approximate_ppr(&view, pc, &PprConfig::default(), Some(&allowed));
        assert!(!p.contains_key(&hp));
        // Everything that accumulated is on pc itself.
        for &u in p.keys() {
            assert_eq!(u, pc);
        }
    }

    #[test]
    fn forbidden_seed_returns_empty() {
        let g = figure3_graph();
        let view = FlatView::new(&g);
        let mut allowed = vec![true; view.n_nodes()];
        allowed[0] = false;
        let (p, r) = approximate_ppr(&view, 0, &PprConfig::default(), Some(&allowed));
        assert!(p.is_empty() && r.is_empty());
    }

    #[test]
    fn seed_has_highest_ppr() {
        let g = complete_bipartite(4, 4, EdgeData::from_clicks(1));
        let view = FlatView::new(&g);
        let (p, _) = approximate_ppr(&view, 0, &PprConfig::default(), None);
        let seed_mass = p.get(&0).copied().unwrap_or(0.0);
        for (&u, &v) in &p {
            if u != 0 {
                assert!(seed_mass >= v, "seed not maximal: p[{u}]={v} > {seed_mass}");
            }
        }
    }

    #[test]
    fn tighter_epsilon_pushes_more_mass() {
        let g = figure3_graph();
        let view = FlatView::new(&g);
        let loose = approximate_ppr(
            &view,
            0,
            &PprConfig {
                epsilon: 1e-2,
                ..PprConfig::default()
            },
            None,
        )
        .0;
        let tight = approximate_ppr(
            &view,
            0,
            &PprConfig {
                epsilon: 1e-8,
                ..PprConfig::default()
            },
            None,
        )
        .0;
        let mass = |m: &FxHashMap<usize, f64>| m.values().sum::<f64>();
        assert!(mass(&tight) >= mass(&loose));
    }
}
