//! Text processing substrate for the Simrank++ reproduction.
//!
//! §9.3 of the paper: *"We then use stemming to filter out duplicate
//! rewrites."* This crate supplies everything that step needs:
//!
//! * [`normalize`] — query canonicalization (case folding, punctuation and
//!   whitespace cleanup) as any production query pipeline performs before
//!   graph construction;
//! * [`mod@tokenize`] — whitespace word splitting over normalized text;
//! * [`porter`] — a complete Porter (1980) stemmer, implemented from the
//!   original paper's step tables;
//! * [`dedup`] — stem-multiset equivalence of whole queries, used to drop
//!   rewrite candidates that only differ by inflection ("running shoe" vs
//!   "running shoes") or word order.

pub mod dedup;
pub mod normalize;
pub mod porter;
pub mod tokenize;

pub use dedup::{stem_signature, StemDeduper};
pub use normalize::normalize_query;
pub use porter::stem;
pub use tokenize::tokenize;
