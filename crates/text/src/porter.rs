//! The Porter stemming algorithm (M.F. Porter, *An algorithm for suffix
//! stripping*, Program 14(3), 1980), implemented directly from the paper's
//! step tables.
//!
//! The measure `m` of a word is the number of VC (vowel-consonant) sequences
//! in its `[C](VC)^m[V]` form. Steps 1a/1b/1c handle plurals and -ed/-ing;
//! steps 2–4 strip derivational suffixes gated on `m`; step 5 tidies a final
//! -e and double consonant.

/// Stems a single lowercase ASCII word. Words shorter than 3 characters and
/// words containing non-ASCII-alphabetic characters are returned unchanged.
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_owned();
    }
    let mut w: Vec<u8> = word.as_bytes().to_vec();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("stemmer operates on ASCII")
}

/// `true` if `w[i]` acts as a consonant (Porter's definition: `y` is a
/// consonant when at the start or after a vowel-acting character).
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// Porter's measure `m` of `w[..len]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // A consonant after vowels closes one VC block.
        m += 1;
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
    }
}

/// `true` if `w[..len]` contains a vowel.
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// `true` if `w[..len]` ends with a double consonant.
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// `*o`: stem ends consonant-vowel-consonant where the final consonant is
/// not w, x or y (so "hop" matches, "snow"/"box"/"tray" do not).
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &[u8]) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix
}

/// Replaces `suffix` with `replacement` if the stem before the suffix has
/// measure > `min_m`. Returns true if the suffix matched (even if the
/// condition failed, per Porter's longest-match-then-test rule).
fn replace_if_measure(w: &mut Vec<u8>, suffix: &[u8], replacement: &[u8], min_m: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_m {
        w.truncate(stem_len);
        w.extend_from_slice(replacement);
    }
    true
}

/// Step 1a: plural endings. SSES→SS, IES→I, SS→SS, S→(drop).
// The SSES and IES arms are deliberately separate to mirror Porter's rule
// table one-to-one, even though both truncate two bytes.
#[allow(clippy::if_same_then_else)]
fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, b"sses") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, b"ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, b"ss") {
        // unchanged
    } else if ends_with(w, b"s") {
        w.truncate(w.len() - 1);
    }
}

/// Step 1b: -eed/-ed/-ing, with the AT/BL/IZ and CVC cleanup.
fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, b"eed") {
        if measure(w, w.len() - 3) > 0 {
            w.truncate(w.len() - 1); // agreed -> agree
        }
        return;
    }
    let stripped = if ends_with(w, b"ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, b"ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if !stripped {
        return;
    }
    if ends_with(w, b"at") || ends_with(w, b"bl") || ends_with(w, b"iz") {
        w.push(b'e'); // conflat(ed) -> conflate
    } else if ends_double_consonant(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
        w.truncate(w.len() - 1); // hopp(ing) -> hop
    } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
        w.push(b'e'); // fil(ing) -> file
    }
}

/// Step 1c: Y→I when the stem has a vowel (happy → happi).
fn step1c(w: &mut [u8]) {
    if ends_with(w, b"y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

/// Step 2: double-suffix reductions (m > 0).
fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"ational", b"ate"),
        (b"tional", b"tion"),
        (b"enci", b"ence"),
        (b"anci", b"ance"),
        (b"izer", b"ize"),
        (b"abli", b"able"),
        (b"alli", b"al"),
        (b"entli", b"ent"),
        (b"eli", b"e"),
        (b"ousli", b"ous"),
        (b"ization", b"ize"),
        (b"ation", b"ate"),
        (b"ator", b"ate"),
        (b"alism", b"al"),
        (b"iveness", b"ive"),
        (b"fulness", b"ful"),
        (b"ousness", b"ous"),
        (b"aliti", b"al"),
        (b"iviti", b"ive"),
        (b"biliti", b"ble"),
    ];
    for (suffix, replacement) in RULES {
        if replace_if_measure(w, suffix, replacement, 0) {
            return;
        }
    }
}

/// Step 3: -icate/-ative/-alize/… reductions (m > 0).
fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"icate", b"ic"),
        (b"ative", b""),
        (b"alize", b"al"),
        (b"iciti", b"ic"),
        (b"ical", b"ic"),
        (b"ful", b""),
        (b"ness", b""),
    ];
    for (suffix, replacement) in RULES {
        if replace_if_measure(w, suffix, replacement, 0) {
            return;
        }
    }
}

/// Step 4: strip residual suffixes when m > 1 (with the s/t gate for -ion).
fn step4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&[u8]] = &[
        b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment", b"ent",
        b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
    ];
    // Longest match first: Porter's rules are disjoint except that -ement /
    // -ment / -ent nest, so test in decreasing length per suffix family.
    let mut ordered: Vec<&[u8]> = SUFFIXES.to_vec();
    ordered.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for suffix in ordered {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
    // (m>1 and (*S or *T)) ION ->
    if ends_with(w, b"ion") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 1 && stem_len >= 1 && matches!(w[stem_len - 1], b's' | b't') {
            w.truncate(stem_len);
        }
    }
}

/// Step 5a: drop final -e when m > 1, or when m == 1 and the stem is not *o.
fn step5a(w: &mut Vec<u8>) {
    if !ends_with(w, b"e") {
        return;
    }
    let stem_len = w.len() - 1;
    let m = measure(w, stem_len);
    if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
        w.truncate(stem_len);
    }
}

/// Step 5b: -ll → -l when m > 1 (controll → control).
fn step5b(w: &mut Vec<u8>) {
    if w.len() >= 2
        && w[w.len() - 1] == b'l'
        && ends_double_consonant(w, w.len())
        && measure(w, w.len() - 1) > 1
    {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pairs: &[(&str, &str)]) {
        for (input, expected) in pairs {
            assert_eq!(&stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn step1a_plurals() {
        check(&[
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
        ]);
    }

    #[test]
    fn step1b_ed_ing() {
        check(&[
            ("feed", "feed"),
            ("agreed", "agre"), // agreed -> agree -> (5a) agre
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"), // conflate -> (5a) conflat
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
        ]);
    }

    #[test]
    fn step1c_y_to_i() {
        check(&[("happy", "happi"), ("sky", "sky")]);
    }

    #[test]
    fn step2_derivational() {
        check(&[
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
        ]);
    }

    #[test]
    fn step3_reductions() {
        check(&[
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
        ]);
    }

    #[test]
    fn step4_residual() {
        check(&[
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
        ]);
    }

    #[test]
    fn step5_final_e_and_ll() {
        check(&[
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ]);
    }

    #[test]
    fn sponsored_search_vocabulary() {
        // Query-rewriting relevant behaviour: inflections collapse.
        check(&[
            ("cameras", "camera"),
            ("camera", "camera"),
            ("flowers", "flower"),
            ("flower", "flower"),
            ("running", "run"),
            ("shoes", "shoe"),
            ("hotels", "hotel"),
            ("digital", "digit"),
        ]);
        assert_eq!(stem("cameras"), stem("camera"));
        assert_eq!(stem("flights"), stem("flight"));
    }

    #[test]
    fn short_and_non_alpha_words_unchanged() {
        check(&[("be", "be"), ("a", "a"), ("tv", "tv")]);
        assert_eq!(stem("mp3"), "mp3");
        assert_eq!(stem("i-tunes"), "i-tunes");
        assert_eq!(stem("CAMERA"), "CAMERA"); // caller must lowercase first
    }

    #[test]
    fn idempotent_on_common_words() {
        for word in [
            "camera", "flower", "run", "hotel", "digit", "adjust", "control", "commun", "relat",
            "depend",
        ] {
            let once = stem(word);
            let twice = stem(&once);
            assert_eq!(once, twice, "stem must be idempotent on {word:?}");
        }
    }

    #[test]
    fn measure_examples_from_paper() {
        // Porter's paper: tr=0, ee=0, tree=0, y=0, by=0;
        // trouble=1, oats=1, trees=1, ivy=1;
        // troubles=2, private=2, oaten=2, orrery=2.
        let m = |s: &str| measure(s.as_bytes(), s.len());
        assert_eq!(m("tr"), 0);
        assert_eq!(m("ee"), 0);
        assert_eq!(m("tree"), 0);
        assert_eq!(m("y"), 0);
        assert_eq!(m("by"), 0);
        assert_eq!(m("trouble"), 1);
        assert_eq!(m("oats"), 1);
        assert_eq!(m("trees"), 1);
        assert_eq!(m("ivy"), 1);
        assert_eq!(m("troubles"), 2);
        assert_eq!(m("private"), 2);
        assert_eq!(m("oaten"), 2);
        assert_eq!(m("orrery"), 2);
    }
}
