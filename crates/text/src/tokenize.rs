//! Whitespace tokenization of normalized queries.

/// Splits a normalized query into word tokens.
///
/// Intended to run after [`crate::normalize_query`]; it simply splits on
/// whitespace and drops empties, so un-normalized input still produces
/// reasonable tokens.
pub fn tokenize(query: &str) -> Vec<&str> {
    query.split_whitespace().collect()
}

/// Tokenizes and stems every token (lowercasing is assumed done upstream).
pub fn stemmed_tokens(query: &str) -> Vec<String> {
    tokenize(query)
        .into_iter()
        .map(crate::porter::stem)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_words() {
        assert_eq!(tokenize("digital camera"), vec!["digital", "camera"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn single_token() {
        assert_eq!(tokenize("pc"), vec!["pc"]);
    }

    #[test]
    fn stemmed_tokens_stem_each_word() {
        assert_eq!(stemmed_tokens("running shoes"), vec!["run", "shoe"]);
        assert_eq!(stemmed_tokens("digital cameras"), vec!["digit", "camera"]);
    }
}
