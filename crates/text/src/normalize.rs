//! Query normalization.
//!
//! Canonicalizes raw query strings before graph construction and before
//! stem-dedup: Unicode-aware lowercasing, punctuation stripped to spaces
//! (keeping intra-word hyphens and digits), and whitespace collapsed.

/// Normalizes a raw query string.
///
/// * lowercases;
/// * maps punctuation (except `-` between alphanumerics) to spaces;
/// * collapses runs of whitespace to single spaces and trims.
pub fn normalize_query(raw: &str) -> String {
    let lower = raw.to_lowercase();
    let chars: Vec<char> = lower.chars().collect();
    let mut out = String::with_capacity(lower.len());
    for (i, &c) in chars.iter().enumerate() {
        if c.is_alphanumeric() {
            out.push(c);
        } else if c == '-'
            && i > 0
            && i + 1 < chars.len()
            && chars[i - 1].is_alphanumeric()
            && chars[i + 1].is_alphanumeric()
        {
            out.push('-');
        } else {
            out.push(' ');
        }
    }
    // Collapse whitespace.
    let mut collapsed = String::with_capacity(out.len());
    let mut last_space = true;
    for c in out.chars() {
        if c == ' ' {
            if !last_space {
                collapsed.push(' ');
            }
            last_space = true;
        } else {
            collapsed.push(c);
            last_space = false;
        }
    }
    while collapsed.ends_with(' ') {
        collapsed.pop();
    }
    collapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases() {
        assert_eq!(normalize_query("Digital CAMERA"), "digital camera");
    }

    #[test]
    fn strips_punctuation() {
        assert_eq!(normalize_query("camera, digital!"), "camera digital");
        assert_eq!(normalize_query("\"best\" camera?"), "best camera");
    }

    #[test]
    fn keeps_intra_word_hyphens() {
        assert_eq!(normalize_query("i-tunes"), "i-tunes");
        assert_eq!(normalize_query("- leading"), "leading");
        assert_eq!(normalize_query("trailing -"), "trailing");
        assert_eq!(normalize_query("a - b"), "a b");
    }

    #[test]
    fn collapses_whitespace() {
        assert_eq!(normalize_query("  digital \t camera \n"), "digital camera");
        assert_eq!(normalize_query(""), "");
        assert_eq!(normalize_query("   "), "");
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(normalize_query("mp3 player"), "mp3 player");
        assert_eq!(normalize_query("nikon d700!"), "nikon d700");
    }

    #[test]
    fn idempotent() {
        for raw in ["Digital CAMERA", "i-tunes", " a  b ", "mp3, player"] {
            let once = normalize_query(raw);
            assert_eq!(normalize_query(&once), once);
        }
    }
}
