//! Stem-based duplicate filtering of rewrite candidates (§9.3).
//!
//! Two queries are considered duplicates when their stemmed token multisets
//! are equal — "digital cameras" duplicates "digital camera", and
//! "camera digital" duplicates both (word order does not change ad intent
//! for bid matching). The [`StemDeduper`] keeps the first occurrence.

use crate::normalize::normalize_query;
use crate::tokenize::stemmed_tokens;
use simrankpp_util::FxHashSet;

/// Canonical signature of a query: sorted, stemmed tokens joined by spaces.
///
/// Equal signatures ⇔ duplicate queries under the §9.3 stemming filter.
pub fn stem_signature(query: &str) -> String {
    let normalized = normalize_query(query);
    let mut stems = stemmed_tokens(&normalized);
    stems.sort_unstable();
    stems.join(" ")
}

/// Streaming duplicate filter over rewrite candidates.
#[derive(Debug, Default)]
pub struct StemDeduper {
    seen: FxHashSet<String>,
}

impl StemDeduper {
    /// Creates an empty deduper.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a deduper with `query`'s own signature pre-seeded, so the
    /// original query never survives as its own rewrite.
    pub fn seeded_with(query: &str) -> Self {
        let mut d = Self::new();
        d.seen.insert(stem_signature(query));
        d
    }

    /// Returns `true` (and records the signature) if `candidate` is new;
    /// `false` if it duplicates anything seen before.
    pub fn admit(&mut self, candidate: &str) -> bool {
        self.seen.insert(stem_signature(candidate))
    }

    /// Number of distinct signatures seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// `true` if nothing has been admitted or seeded.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_collapses_inflection() {
        assert_eq!(
            stem_signature("digital camera"),
            stem_signature("digital cameras")
        );
        assert_eq!(
            stem_signature("running shoe"),
            stem_signature("running shoes")
        );
    }

    #[test]
    fn signature_is_order_insensitive() {
        assert_eq!(
            stem_signature("camera digital"),
            stem_signature("digital camera")
        );
    }

    #[test]
    fn distinct_queries_have_distinct_signatures() {
        assert_ne!(stem_signature("camera"), stem_signature("digital camera"));
        assert_ne!(stem_signature("pc"), stem_signature("tv"));
    }

    #[test]
    fn deduper_admits_first_only() {
        let mut d = StemDeduper::new();
        assert!(d.admit("digital camera"));
        assert!(!d.admit("digital cameras"));
        assert!(!d.admit("cameras digital"));
        assert!(d.admit("camera"));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn seeded_blocks_the_original_query() {
        let mut d = StemDeduper::seeded_with("flowers");
        assert!(!d.admit("flower"));
        assert!(d.admit("orchids"));
    }

    #[test]
    fn normalization_applies_before_stemming() {
        assert_eq!(
            stem_signature("Digital, CAMERAS!"),
            stem_signature("digital camera")
        );
    }
}
