//! Criterion-free wall-clock bench harness for CI.
//!
//! The criterion benches under `benches/` are thorough but slow; CI needs a
//! smoke-level signal that still catches real regressions. `bench_ci`
//! re-measures the headline series of `BENCH_engine.json` and
//! `BENCH_serve.json` with plain `Instant` timings (median of a few reps),
//! emits both files in the committed schema, and — with `--check` —
//! compares the fresh engine numbers against the committed baseline:
//!
//! * any gated engine series more than `--tolerance` percent (default 25 —
//!   deliberately tolerant, CI runners are noisy) slower than the baseline
//!   fails the run;
//! * the incremental series must show a single-dirty-component update at
//!   least 5× faster than a full recompute on the multi-component
//!   10k-query federated graph — the number the incremental engine exists
//!   to deliver;
//! * two machine-relative kernel ratios must hold on the runner itself:
//!   the pull kernel ≥ 1.3× the flat accumulator (both transitions), and
//!   the flat accumulator ≥ 1.2× the hash-map reference;
//! * the single-source engine must answer one linearized top-k query at
//!   least 50× faster than a full all-pairs run over the same graph — the
//!   ratio the on-demand mode exists to deliver (measured in-process, so
//!   machine-relative like the kernel gates);
//! * the `serve_tcp` closed-loop series (real loopback sockets against an
//!   in-process threaded `NetServer`) must show 8 concurrent clients
//!   delivering at least 1.2× the QPS of a single client on runners with
//!   ≥ 4 cores — machine-relative, so a serializing server fails for a real
//!   reason; on smaller runners the gate degrades to a ≥ 0.5× collapse
//!   guard, since one core gives 8 threads nothing to overlap with.
//!
//! ```text
//! bench_ci [--quick] [--out-dir DIR] [--check] [--baseline-dir DIR]
//!          [--tolerance PCT] [--tier default|1m|stream] [--target-queries N]
//! ```
//!
//! `--quick` lowers repetitions (graph shapes stay identical, so keys stay
//! comparable across modes). To refresh the committed baseline after an
//! intentional perf change: `bench_ci --out-dir .` at the repo root and
//! commit the two JSON files.
//!
//! `--tier 1m` replaces the default series with the beyond-RAM scale proof
//! (`BENCH_scale.json`): a ~1M-query federated store is streamed to disk,
//! index-built segment-at-a-time under a peak-RSS ceiling, and served via
//! `MappedIndex` whose open time must stay flat from 10k to 1M queries.
//! Its gates are machine-relative ceilings — no committed baseline needed.
//! `--target-queries` shrinks the tier for smoke runs (labels keep their
//! nominal 10k/100k/1m names).
//!
//! `--tier stream` measures the streaming-ingestion path
//! (`BENCH_stream.json`): a 2k-query synth graph is replayed through an
//! `EpochIngestor` one component-slice per epoch at steady state (each
//! epoch renews exactly the slice the window retires), so every epoch
//! boundary drives a dirty-component refresh plus hot-swap into a live
//! `ServeState`. Reported: click-to-serve freshness p50/p95 (first event
//! of the batch → new generation swapped in), per-epoch refresh
//! wall-clock p50/p95, and the reused-vs-recomputed row split. Gated: the
//! median epoch refresh must beat a from-scratch rebuild by a
//! machine-relative floor, the windowed spam-campaign contamination must
//! be exactly zero while the unwindowed observer's is positive, and the
//! freshness/refresh series diff against the committed baseline like the
//! engine keys.

use simrankpp_core::engine::{self, reference, UniformTransition, WeightedTransition};
use simrankpp_core::montecarlo::{mc_topk_into, McConfig};
use simrankpp_core::weighted::SpreadMode;
use simrankpp_core::{
    KernelKind, Method, MethodKind, Rewriter, RewriterConfig, RowWorkspace, ShardStrategy,
    SimrankConfig, SingleSourceEngine,
};
use simrankpp_eval::{run_windowed_spam_experiment, SpamTimeline};
use simrankpp_graph::components::connected_components;
use simrankpp_graph::{
    AdId, ClickGraph, ClickGraphBuilder, EdgeData, GraphDelta, QueryId, SegmentedStore, WeightKind,
};
use simrankpp_serve::{
    serve_session, EpochIngestor, IndexMeta, IngestConfig, IngestMetrics, LiveContext, LogTailer,
    MappedIndex, NetConfig, NetServer, RewriteIndex, ServeState,
};
use simrankpp_synth::federation::write_store;
use simrankpp_synth::generator::{generate, GeneratorConfig};
use std::collections::BTreeMap;
use std::fs::File;
use std::hint::black_box;
use std::time::Instant;

struct Options {
    quick: bool,
    out_dir: String,
    check: bool,
    baseline_dir: String,
    tolerance_pct: f64,
    tier: String,
    target_queries: u64,
}

/// Engine series whose absolute time is gated against the committed
/// baseline. The pull kernel is the production path every workload funnels
/// through; the flat series stay gated as the oracle's own regression
/// canary, and the sharded series covers stitch throughput.
const GATED_ENGINE_KEYS: [&str; 7] = [
    "engine_10k/pull_uniform",
    "engine_10k/pull_weighted",
    "engine_10k/flat_uniform",
    "engine_10k/flat_weighted",
    "engine_10k_sharded/components/federated8",
    "single_source/linearized_topk_x100_ms",
    "single_source/montecarlo_topk_x100_ms",
];

/// Floor on the incremental-vs-full speedup (see module docs).
const MIN_INCREMENTAL_SPEEDUP: f64 = 5.0;

/// Floor on the per-query single-source win: one linearized top-k query must
/// be at least this many times faster than a full all-pairs engine run on
/// the same 10k graph, measured in the same process. This is the headline
/// number of the on-demand mode — a cold serve-path query costs one row,
/// not the whole matrix.
const MIN_SINGLE_SOURCE_SPEEDUP: f64 = 50.0;

/// Floor on flat-vs-hashmap accumulation speedup. Unlike the absolute-ms
/// gate (whose baseline may have been measured on different hardware), this
/// ratio is computed on the runner itself, so it catches accumulation-path
/// regressions machine-independently. Historically ~1.7–1.8×.
const MIN_FLAT_VS_HASHMAP: f64 = 1.2;

/// Floor on pull-vs-flat kernel speedup, machine-relative like the
/// flat-vs-hashmap gate. ISSUE 5 lands the pull kernel at ~2× on the
/// headline series; 1.3× leaves room for runner noise while still failing
/// if the pull path ever regresses toward the flat path.
const MIN_PULL_VS_FLAT: f64 = 1.3;

/// Closed-loop requests each TCP load-generator client sends per run.
const TCP_REQS_PER_CLIENT: usize = 400;

/// Floor on the TCP throughput win of 8 closed-loop clients over 1,
/// machine-relative (both sides measured against the same in-process server
/// on this runner). Thread-per-connection serving exists to overlap
/// per-connection syscall latency; if 8 clients can't beat one client's QPS
/// by at least this factor, connections are serializing somewhere. Applied
/// only where the runner has cores to overlap (≥ 4).
const MIN_TCP_CONCURRENCY_SPEEDUP: f64 = 1.2;

/// On runners with < 4 cores there is no parallelism for 8 clients to win
/// with — thread-per-connection can only tie 1 client there, minus
/// scheduling overhead. The gate degrades to a collapse guard: anything
/// below this means connections are blocking each other outright (a held
/// lock across request handling), not just sharing a core.
const MIN_TCP_NO_COLLAPSE: f64 = 0.5;

/// Ceiling on the `--tier 1m` segmented build's peak RSS (VmHWM). The whole
/// point of the segmented pipeline is that build memory is bounded by the
/// largest segment plus the output index, never by the store — a 1M-query
/// build that climbs past this is holding more than one segment's scores.
const MAX_1M_PEAK_RSS_MB: f64 = 2048.0;

/// Ceiling on opening the 1M-query snapshot via [`MappedIndex`]: open cost
/// is O(#sections) header/table work plus one `mmap` — milliseconds flat,
/// regardless of index size.
const MAX_MAPPED_OPEN_MS_1M: f64 = 50.0;

/// Ceiling on `open(1M) / open(10k)`: startup must stay flat as the index
/// grows 100×. A ratio drifting up means something O(n) crept into open.
const MAX_OPEN_FLATNESS: f64 = 8.0;

/// Component slices the `--tier stream` replay rotates through — also the
/// window length, so at steady state each epoch renews exactly the slice
/// the window retires (1/8 of the graph dirty per epoch, 7/8 copied).
const STREAM_SLICES: u32 = 8;

/// Floor on the stream tier's incremental win, machine-relative: the
/// median epoch refresh (1 dirty slice of 8) must beat a from-scratch
/// rebuild of the whole surviving window by at least this factor — the
/// number the per-epoch dirty-component path exists to deliver.
const MIN_STREAM_INCREMENTAL_SPEEDUP: f64 = 5.0;

/// Floor on the crash-recovery win, machine-relative: restarting from a
/// durable checkpoint (replay = surviving window + tail) must beat
/// re-ingesting the whole click log from byte zero by at least this
/// factor. The log in the series is long on purpose — this is the number
/// that keeps restart time bounded by the window, not by process uptime.
const MIN_RECOVERY_SPEEDUP: f64 = 2.0;

/// Stream series gated against the committed `BENCH_stream.json`.
const GATED_STREAM_KEYS: [&str; 3] = [
    "stream_2k/freshness_p50_ms",
    "stream_2k/freshness_p95_ms",
    "stream_2k/epoch_refresh_p50_ms",
];

fn main() {
    let mut opts = Options {
        quick: false,
        out_dir: ".".to_owned(),
        check: false,
        baseline_dir: ".".to_owned(),
        tolerance_pct: 25.0,
        tier: "default".to_owned(),
        target_queries: 1_000_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> String {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("{} needs a value", args[i]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--quick" => {
                opts.quick = true;
                i += 1;
            }
            "--check" => {
                opts.check = true;
                i += 1;
            }
            "--out-dir" => {
                opts.out_dir = value(i);
                i += 2;
            }
            "--baseline-dir" => {
                opts.baseline_dir = value(i);
                i += 2;
            }
            "--tolerance" => {
                opts.tolerance_pct = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance needs a number");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--tier" => {
                opts.tier = value(i);
                if !matches!(opts.tier.as_str(), "default" | "1m" | "stream") {
                    eprintln!("--tier must be 'default', '1m' or 'stream'");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--target-queries" => {
                opts.target_queries = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("--target-queries needs a number");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: bench_ci [--quick] [--out-dir DIR] [--check] \
                     [--baseline-dir DIR] [--tolerance PCT] [--tier default|1m|stream] \
                     [--target-queries N]"
                );
                std::process::exit(2);
            }
        }
    }

    let reps = if opts.quick { 3 } else { 5 };
    eprintln!(
        "bench_ci: {} mode, {reps} reps per series",
        if opts.quick { "quick" } else { "full" }
    );

    if opts.tier == "1m" {
        let (scale_results, scale_derived) = scale_series(&opts, reps);
        let scale_json = render_scale_json(&opts, &scale_results, &scale_derived);
        std::fs::create_dir_all(&opts.out_dir).expect("cannot create --out-dir");
        let scale_path = format!("{}/BENCH_scale.json", opts.out_dir);
        simrankpp_util::atomic_write_bytes(
            std::path::Path::new(&scale_path),
            scale_json.as_bytes(),
        )
        .expect("cannot write BENCH_scale.json");
        eprintln!("wrote {scale_path}");
        if opts.check {
            let failures = check_scale(&scale_results, &scale_derived);
            if !failures.is_empty() {
                eprintln!("bench-check (1m tier) FAILED:");
                for f in &failures {
                    eprintln!("  - {f}");
                }
                std::process::exit(1);
            }
            eprintln!("bench-check (1m tier) passed");
        }
        return;
    }

    if opts.tier == "stream" {
        let (stream_results, stream_derived) = stream_series(&opts, reps);
        let stream_json = render_stream_json(&opts, &stream_results, &stream_derived);
        std::fs::create_dir_all(&opts.out_dir).expect("cannot create --out-dir");
        let stream_path = format!("{}/BENCH_stream.json", opts.out_dir);
        simrankpp_util::atomic_write_bytes(
            std::path::Path::new(&stream_path),
            stream_json.as_bytes(),
        )
        .expect("cannot write BENCH_stream.json");
        eprintln!("wrote {stream_path}");
        if opts.check {
            let failures = check_stream(&opts, &stream_results, &stream_derived);
            if !failures.is_empty() {
                eprintln!("bench-check (stream tier) FAILED:");
                for f in &failures {
                    eprintln!("  - {f}");
                }
                std::process::exit(1);
            }
            eprintln!("bench-check (stream tier) passed");
        }
        return;
    }

    let (engine_results, engine_speedups) = engine_series(&opts, reps);
    let (serve_results, serve_derived) = serve_series(reps);

    let engine_json = render_engine_json(&opts, &engine_results, &engine_speedups);
    let serve_json = render_serve_json(&opts, &serve_results, &serve_derived);
    std::fs::create_dir_all(&opts.out_dir).expect("cannot create --out-dir");
    let engine_path = format!("{}/BENCH_engine.json", opts.out_dir);
    let serve_path = format!("{}/BENCH_serve.json", opts.out_dir);
    simrankpp_util::atomic_write_bytes(std::path::Path::new(&engine_path), engine_json.as_bytes())
        .expect("cannot write BENCH_engine.json");
    simrankpp_util::atomic_write_bytes(std::path::Path::new(&serve_path), serve_json.as_bytes())
        .expect("cannot write BENCH_serve.json");
    eprintln!("wrote {engine_path} and {serve_path}");

    if opts.check {
        let failures = check(&opts, &engine_results, &engine_speedups, &serve_derived);
        if !failures.is_empty() {
            eprintln!("bench-check FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        eprintln!("bench-check passed");
    }
}

/// Median wall-clock milliseconds of `reps` runs (after one warmup).
fn median_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f()); // warmup
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

fn ten_k_graph() -> ClickGraph {
    let mut gen = GeneratorConfig::small();
    gen.n_queries = 10_000;
    gen.n_ads = 7_000;
    generate(&gen).graph
}

/// 10k queries as a disjoint union of `k` independently generated worlds —
/// the multi-market regime where component structure (and incrementality)
/// is real. Mirrors `benches/bench_engine.rs`.
fn federated_graph(k: usize) -> ClickGraph {
    let per_q = 10_000 / k;
    let per_a = 7_000 / k;
    let mut b = ClickGraphBuilder::new();
    b.reserve_queries((per_q * k) as u32);
    b.reserve_ads((per_a * k) as u32);
    for world in 0..k {
        let mut gen = GeneratorConfig::small();
        gen.n_queries = per_q;
        gen.n_ads = per_a;
        gen.seed = 0xFEDE_0000 + world as u64;
        let d = generate(&gen);
        let (qo, ao) = ((world * per_q) as u32, (world * per_a) as u32);
        for (q, a, e) in d.graph.edges() {
            b.add_edge(QueryId(qo + q.0), AdId(ao + a.0), *e);
        }
    }
    b.build()
}

/// A delta confined to world 0 of a `k`-world federated graph: the
/// single-market update stream every other market should not pay for.
fn world0_delta(k: usize) -> GraphDelta {
    let (per_q, per_a) = ((10_000 / k) as u32, (7_000 / k) as u32);
    let mut d = GraphDelta::new();
    for i in 0..8u32 {
        d.upsert(
            QueryId((i * 157) % per_q),
            AdId((i * 211) % per_a),
            EdgeData::from_clicks(3),
        );
    }
    d
}

fn engine_series(opts: &Options, reps: usize) -> (BTreeMap<String, f64>, BTreeMap<String, f64>) {
    let mut r = BTreeMap::new();
    let cfg = SimrankConfig::default()
        .with_iterations(5)
        .with_prune_threshold(1e-4);
    let weighted = WeightedTransition {
        kind: WeightKind::ExpectedClickRate,
        spread: SpreadMode::Exponential,
    };

    eprintln!("engine: kernel series (10k standard graph)");
    let standard = ten_k_graph();
    let cfg_pull = cfg.with_kernel(KernelKind::Pull);
    let cfg_flat = cfg.with_kernel(KernelKind::Flat);
    r.insert(
        "engine_10k/pull_uniform".to_owned(),
        median_ms(reps, || {
            engine::run(&standard, &cfg_pull, &UniformTransition)
        }),
    );
    r.insert(
        "engine_10k/pull_weighted".to_owned(),
        median_ms(reps, || engine::run(&standard, &cfg_pull, &weighted)),
    );
    r.insert(
        "engine_10k/flat_uniform".to_owned(),
        median_ms(reps, || {
            engine::run(&standard, &cfg_flat, &UniformTransition)
        }),
    );
    r.insert(
        "engine_10k/flat_weighted".to_owned(),
        median_ms(reps, || engine::run(&standard, &cfg_flat, &weighted)),
    );
    // The hash-map reference runs in quick mode too: pull-vs-flat and
    // flat-vs-hashmap are the machine-*relative* gates, immune to the
    // committed baseline having been measured on different hardware.
    r.insert(
        "engine_10k/hashmap_uniform".to_owned(),
        median_ms(reps, || {
            reference::run_hashmap(&standard, &cfg, &UniformTransition)
        }),
    );
    if !opts.quick {
        r.insert(
            "engine_10k/hashmap_weighted".to_owned(),
            median_ms(reps, || reference::run_hashmap(&standard, &cfg, &weighted)),
        );
    }
    eprintln!("engine: single-source series (10k standard graph, 100 queries/rep)");
    // Precompute = transition factors + estimated diagonal correction: the
    // one-off cost a live server pays before answering its first query.
    // Seconds-scale, so one warmup + one timed run; informational only
    // (deliberately NOT in GATED_ENGINE_KEYS — at this length the number is
    // dominated by runner load, not code, and would gate on noise).
    let mut ss_engine = None;
    r.insert(
        "single_source/precompute_ms".to_owned(),
        median_ms(1, || {
            ss_engine = Some(SingleSourceEngine::new(
                &standard,
                &cfg_pull,
                &UniformTransition,
            ))
        }),
    );
    let ss_engine = ss_engine.expect("timed run constructs the engine");
    let nq = standard.n_queries() as u32;
    let mut ws = RowWorkspace::new(standard.n_queries(), standard.n_ads());
    let mut top = Vec::new();
    r.insert(
        "single_source/linearized_topk_x100_ms".to_owned(),
        median_ms(reps, || {
            let mut total = 0usize;
            for i in 0..100u32 {
                ss_engine.top_k_into(&standard, QueryId((i * 7919) % nq), 10, &mut ws, &mut top);
                total += top.len();
            }
            total
        }),
    );
    let mc = McConfig {
        walks: 512,
        ..McConfig::default()
    };
    r.insert(
        "single_source/montecarlo_topk_x100_ms".to_owned(),
        median_ms(reps, || {
            let mut total = 0usize;
            for i in 0..100u32 {
                mc_topk_into(
                    &standard,
                    QueryId((i * 7919) % nq),
                    10,
                    &cfg_pull,
                    &mc,
                    &mut top,
                );
                total += top.len();
            }
            total
        }),
    );
    drop(ss_engine);
    drop(standard);

    eprintln!("engine: sharded + incremental series (10k federated8 graph)");
    let federated = federated_graph(8);
    let cfg_sharded = cfg.with_sharding(ShardStrategy::Components);
    r.insert(
        "engine_10k_sharded/monolithic/federated8".to_owned(),
        median_ms(reps, || engine::run(&federated, &cfg, &UniformTransition)),
    );
    r.insert(
        "engine_10k_sharded/components/federated8".to_owned(),
        median_ms(reps, || {
            engine::run_with_strategy(&federated, &cfg_sharded, &UniformTransition)
        }),
    );

    drop(federated);

    // Incremental: previous generation = full run over the pre-delta graph;
    // the delta touches world 0 of a 16-world federation only (a finer
    // decomposition than the sharded series' 8 worlds, so the dirty slice —
    // and therefore the incremental win — is what production's
    // one-market-updates-at-a-time stream looks like).
    let federated16 = federated_graph(16);
    let prev = engine::run_with_strategy(&federated16, &cfg_sharded, &UniformTransition);
    let delta = world0_delta(16);
    let g1 = delta.apply(&federated16);
    let dirty = delta.dirty_components(&g1);
    eprintln!(
        "engine: incremental series ({} dirty / {} clean components)",
        dirty.n_dirty(),
        dirty.n_clean()
    );
    r.insert(
        "engine_10k_incremental/full_recompute/federated16".to_owned(),
        median_ms(reps, || {
            engine::run_with_strategy(&g1, &cfg_sharded, &UniformTransition)
        }),
    );
    r.insert(
        "engine_10k_incremental/single_component_update/federated16".to_owned(),
        median_ms(reps, || {
            engine::run_incremental(
                &g1,
                &cfg,
                &UniformTransition,
                &prev.queries,
                &prev.ads,
                &dirty,
            )
        }),
    );

    let mut speedups = BTreeMap::new();
    let ratio = |num: &str, den: &str, r: &BTreeMap<String, f64>| r[num] / r[den];
    speedups.insert(
        "pull_vs_flat_uniform".to_owned(),
        ratio("engine_10k/flat_uniform", "engine_10k/pull_uniform", &r),
    );
    speedups.insert(
        "pull_vs_flat_weighted".to_owned(),
        ratio("engine_10k/flat_weighted", "engine_10k/pull_weighted", &r),
    );
    speedups.insert(
        "flat_vs_hashmap_uniform".to_owned(),
        ratio("engine_10k/hashmap_uniform", "engine_10k/flat_uniform", &r),
    );
    if !opts.quick {
        speedups.insert(
            "flat_vs_hashmap_weighted".to_owned(),
            ratio(
                "engine_10k/hashmap_weighted",
                "engine_10k/flat_weighted",
                &r,
            ),
        );
    }
    speedups.insert(
        "sharded_vs_monolithic_federated8".to_owned(),
        ratio(
            "engine_10k_sharded/monolithic/federated8",
            "engine_10k_sharded/components/federated8",
            &r,
        ),
    );
    speedups.insert(
        "incremental_single_component_vs_full".to_owned(),
        ratio(
            "engine_10k_incremental/full_recompute/federated16",
            "engine_10k_incremental/single_component_update/federated16",
            &r,
        ),
    );
    // Per-query single-source latency vs one full all-pairs run: both sides
    // measured in this process, so the ratio is machine-relative.
    speedups.insert(
        "single_source_linearized_query_vs_full_run".to_owned(),
        r["engine_10k/pull_uniform"] / (r["single_source/linearized_topk_x100_ms"] / 100.0),
    );
    speedups.insert(
        "single_source_montecarlo_query_vs_full_run".to_owned(),
        r["engine_10k/pull_uniform"] / (r["single_source/montecarlo_topk_x100_ms"] / 100.0),
    );
    (r, speedups)
}

/// One closed-loop TCP load run: `clients` connections each round-tripping
/// `reqs` `rewrite` requests against the server at `addr`. Returns
/// `(p50_ms, p99_ms, qps)` over the merged per-request latencies.
fn tcp_load(
    addr: std::net::SocketAddr,
    clients: usize,
    reqs: usize,
    names: &[String],
) -> (f64, f64, f64) {
    use std::io::{BufRead, BufReader, Write};
    let t0 = Instant::now();
    let mut lat: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let stream = std::net::TcpStream::connect(addr).expect("connect load client");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let mut writer = stream;
                    let mut lat = Vec::with_capacity(reqs);
                    let mut req = String::new();
                    let mut line = String::new();
                    for i in 0..reqs {
                        let name = &names[(c * reqs + i) % names.len()];
                        req.clear();
                        req.push_str("rewrite ");
                        req.push_str(name);
                        req.push('\n');
                        let t = Instant::now();
                        writer.write_all(req.as_bytes()).expect("send request");
                        line.clear();
                        reader.read_line(&mut line).expect("read response");
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        assert!(line.starts_with("ok\t"), "load answer: {line:?}");
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load client"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |q: f64| lat[((lat.len() - 1) as f64 * q) as usize];
    (pct(0.50), pct(0.99), (clients * reqs) as f64 / wall)
}

fn serve_series(reps: usize) -> (BTreeMap<String, f64>, BTreeMap<String, f64>) {
    let mut r = BTreeMap::new();
    let mut derived = BTreeMap::new();
    let cfg = SimrankConfig::default()
        .with_iterations(5)
        .with_prune_threshold(1e-4);

    eprintln!("serve: lookup + offline series (10k standard graph)");
    let g = ten_k_graph();
    let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
    let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
    r.insert(
        "serve_10k_offline/index_build_t1_ms".to_owned(),
        median_ms(reps, || RewriteIndex::build(&rewriter, None, 1)),
    );
    let index = RewriteIndex::build(&rewriter, None, 1);
    let n = index.n_queries() as u32;
    r.insert(
        "serve_10k/lookup_by_id_x1000_ms".to_owned(),
        median_ms(reps, || {
            let mut total = 0usize;
            for i in 0..1000u32 {
                total += index.rewrites_of(QueryId((i * 7919) % n)).len();
            }
            total
        }),
    );
    let names: Vec<&str> = (0..1000u32)
        .filter_map(|i| index.query_name(QueryId((i * 7919) % n)))
        .collect();
    r.insert(
        "serve_10k/lookup_by_name_x1000_ms".to_owned(),
        median_ms(reps, || {
            let mut total = 0usize;
            for name in &names {
                total += index.lookup(name).map_or(0, |s| s.len());
            }
            total
        }),
    );
    r.insert(
        "serve_10k_offline/snapshot_roundtrip_ms".to_owned(),
        median_ms(reps, || {
            let mut buf = Vec::new();
            index.write_snapshot(&mut buf).expect("snapshot write");
            RewriteIndex::read_snapshot(buf.as_slice()).expect("snapshot read")
        }),
    );
    drop(names);

    eprintln!("serve: TCP closed-loop series (10k standard graph, in-process server)");
    // The load generator speaks the real wire protocol against a real
    // in-process NetServer on loopback: closed-loop (each client waits for
    // its answer before sending the next request), 1 client for the
    // single-connection floor and 8 for the concurrency headline.
    let load_names: Vec<String> = (0..1000u32)
        .filter_map(|i| index.query_name(QueryId((i * 7919) % n)))
        .map(str::to_owned)
        .collect();
    let server = NetServer::bind(
        std::sync::Arc::new(ServeState::fixed(index)),
        NetConfig::default(),
    )
    .expect("bind bench server");
    let addr = server.local_addr().expect("bench server addr");
    let signal = server.shutdown_signal();
    let server_join = std::thread::spawn(move || server.serve());
    tcp_load(addr, 1, 50, &load_names); // connection + cache warmup
    for clients in [1usize, 8] {
        // Median-QPS run of `reps` keeps the committed numbers stable; the
        // percentiles come from that same run so they describe one load.
        let mut runs: Vec<(f64, f64, f64)> = (0..reps)
            .map(|_| tcp_load(addr, clients, TCP_REQS_PER_CLIENT, &load_names))
            .collect();
        runs.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite qps"));
        let (p50, p99, qps) = runs[runs.len() / 2];
        r.insert(format!("serve_tcp/clients{clients}_p50_ms"), p50);
        r.insert(format!("serve_tcp/clients{clients}_p99_ms"), p99);
        derived.insert(format!("tcp_qps_clients{clients}"), qps);
        eprintln!(
            "serve: tcp clients={clients}: p50 {:.0} us, p99 {:.0} us, {:.0} qps",
            p50 * 1e3,
            p99 * 1e3,
            qps
        );
    }
    derived.insert(
        "tcp_qps_scaling_8_vs_1".to_owned(),
        derived["tcp_qps_clients8"] / derived["tcp_qps_clients1"],
    );
    signal.trigger();
    server_join
        .join()
        .expect("bench server thread")
        .expect("bench server serve");
    drop(rewriter);

    eprintln!("serve: single-source cold/warm series (10k standard graph, 100 queries/rep)");
    // Cold reps each hit 100 queries nobody asked before (7919 is coprime
    // with the query count, so the stream never repeats an id); the warm rep
    // replays one fixed batch that has already been served. The gap between
    // the two series is what the row cache buys on a repeat query.
    let nq = g.n_queries() as u32;
    let name_of = |i: u32| {
        g.query_name(QueryId(i % nq))
            .expect("synthetic graphs carry query names")
            .to_owned()
    };
    let mut cold_inputs = (0..=reps)
        .map(|rep| {
            let mut s = String::new();
            for j in 0..100 {
                let i = (rep * 100 + j) as u32;
                s.push_str("rewrite ");
                s.push_str(&name_of((i * 7919) % nq));
                s.push('\n');
            }
            s
        })
        .collect::<Vec<_>>()
        .into_iter();
    let warm_input: String = (0..100u32).fold(String::new(), |mut s, i| {
        s.push_str("rewrite ");
        s.push_str(&name_of(i));
        s.push('\n');
        s
    });
    let meta = IndexMeta {
        method: MethodKind::WeightedSimrank,
        max_rewrites: 5,
        bid_filtered: false,
        approx_sharding: false,
        kernel: cfg.kernel,
        segments: 0,
    };
    let live = LiveContext::new(
        g,
        MethodKind::WeightedSimrank,
        cfg,
        RewriterConfig::default(),
    )
    .expect("live context over a recursive method");
    let state = ServeState::fixed(RewriteIndex::empty(meta)).with_live(live, 1024);
    let run_batch = |input: &str| {
        let mut out = Vec::new();
        serve_session(&state, input.as_bytes(), &mut out).expect("serve session");
        out.len()
    };
    r.insert(
        "serve_10k_single_source/cold_query_x100_ms".to_owned(),
        median_ms(reps, || {
            run_batch(&cold_inputs.next().expect("one cold batch per rep"))
        }),
    );
    run_batch(&warm_input); // prime the cache once
    r.insert(
        "serve_10k_single_source/warm_query_x100_ms".to_owned(),
        median_ms(reps, || run_batch(&warm_input)),
    );
    drop(state);

    eprintln!("serve: incremental rebuild series (10k federated8 graph)");
    let federated = federated_graph(8);
    let cfg_sharded = cfg.with_sharding(ShardStrategy::Components);
    let build_full = |g: &ClickGraph| {
        let method = Method::compute(MethodKind::WeightedSimrank, g, &cfg_sharded);
        let rewriter = Rewriter::new(g, method, RewriterConfig::default());
        RewriteIndex::build(&rewriter, None, 1)
    };
    let old_index = build_full(&federated);
    let delta = world0_delta(8);
    let g1 = delta.apply(&federated);
    let dirty = delta.dirty_components(&g1);
    r.insert(
        "serve_10k_incremental/full_rebuild_ms".to_owned(),
        median_ms(reps, || build_full(&g1)),
    );
    r.insert(
        "serve_10k_incremental/incremental_update_ms".to_owned(),
        median_ms(reps, || {
            old_index
                .rebuild_incremental(&g1, &dirty, &cfg_sharded, &RewriterConfig::default(), None)
                .expect("incremental rebuild")
        }),
    );
    (r, derived)
}

/// Peak resident set size of this process in MB (Linux `VmHWM`), `None`
/// where `/proc` is unavailable.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// The `--tier 1m` series: federated store write, segmented index build
/// with a peak-RSS ceiling, and mmap open-time flatness at 1×/10×/100× of
/// `--target-queries / 100`. With the default target the labels are literal:
/// 10k, 100k and 1M query nodes. Returns `(results_ms, derived)`.
fn scale_series(opts: &Options, reps: usize) -> (BTreeMap<String, f64>, BTreeMap<String, f64>) {
    let mut r = BTreeMap::new();
    let mut derived = BTreeMap::new();
    let cfg = SimrankConfig::default()
        .with_iterations(5)
        .with_prune_threshold(1e-4)
        .with_sharding(ShardStrategy::Components);
    let world = GeneratorConfig::small();
    let tmp = std::env::temp_dir();
    let scales: [(u64, &str); 3] = [
        ((opts.target_queries / 100).max(1), "10k"),
        ((opts.target_queries / 10).max(1), "100k"),
        (opts.target_queries.max(1), "1m"),
    ];

    let mut cleanup: Vec<std::path::PathBuf> = Vec::new();
    for (target, label) in scales {
        let store_path = tmp.join(format!("simrankpp_bench_scale_{label}.seg"));
        let snap_path = tmp.join(format!("simrankpp_bench_scale_{label}.idx"));
        cleanup.push(store_path.clone());
        cleanup.push(snap_path.clone());

        eprintln!("scale: {label}: writing federated store ({target} query target)");
        let t0 = Instant::now();
        let stats = write_store(&world, target, &store_path).expect("write federated store");
        let write_ms = t0.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "scale: {label}: {} queries / {} segments / {:.1} MB in {:.0} ms",
            stats.total_queries,
            stats.n_worlds,
            stats.file_bytes as f64 / 1e6,
            write_ms
        );

        let mut store = SegmentedStore::open(&store_path).expect("open federated store");
        let t0 = Instant::now();
        let index = RewriteIndex::build_segmented(
            &mut store,
            MethodKind::WeightedSimrank,
            &cfg,
            RewriterConfig::default(),
            None,
        )
        .expect("segmented build");
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "scale: {label}: segmented build of {} rows in {:.0} ms",
            index.n_queries(),
            build_ms
        );

        let t0 = Instant::now();
        index.save(&snap_path).expect("write snapshot");
        let snap_write_ms = t0.elapsed().as_secs_f64() * 1e3;

        if label == "1m" {
            r.insert("scale_1m/store_write_ms".to_owned(), write_ms);
            r.insert("engine_1m/segmented_build_ms".to_owned(), build_ms);
            r.insert("serve_1m/snapshot_write_ms".to_owned(), snap_write_ms);
            derived.insert("store_queries".to_owned(), stats.total_queries as f64);
            derived.insert("store_segments".to_owned(), stats.n_worlds as f64);
            derived.insert("store_edges".to_owned(), stats.total_edges as f64);
            derived.insert("store_mb".to_owned(), stats.file_bytes as f64 / 1e6);
            derived.insert("index_entries".to_owned(), index.n_entries() as f64);
            derived.insert(
                "snapshot_mb".to_owned(),
                std::fs::metadata(&snap_path)
                    .expect("snapshot metadata")
                    .len() as f64
                    / 1e6,
            );
            if let Some(mb) = peak_rss_mb() {
                derived.insert("peak_rss_mb".to_owned(), mb);
            }
        }
        drop(index);
        drop(store);

        r.insert(
            format!("serve_1m/mapped_open_{label}_ms"),
            median_ms(reps, || MappedIndex::open(&snap_path).expect("mapped open")),
        );
        if label == "1m" {
            let t0 = Instant::now();
            let heap = RewriteIndex::read_snapshot(File::open(&snap_path).expect("open snapshot"))
                .expect("heap decode");
            r.insert(
                "serve_1m/heap_decode_ms".to_owned(),
                t0.elapsed().as_secs_f64() * 1e3,
            );
            drop(heap);
        }
    }

    derived.insert(
        "open_flatness_1m_vs_10k".to_owned(),
        r["serve_1m/mapped_open_1m_ms"] / r["serve_1m/mapped_open_10k_ms"],
    );
    derived.insert(
        "mapped_open_vs_heap_decode_1m".to_owned(),
        r["serve_1m/heap_decode_ms"] / r["serve_1m/mapped_open_1m_ms"],
    );
    for p in cleanup {
        std::fs::remove_file(p).ok();
    }
    (r, derived)
}

/// Machine-relative gates for the 1m tier — no committed-baseline
/// comparison: RSS and open-time ceilings plus the flatness ratio hold on
/// any runner or fail for a real reason.
fn check_scale(results: &BTreeMap<String, f64>, derived: &BTreeMap<String, f64>) -> Vec<String> {
    let mut failures = Vec::new();
    match derived.get("peak_rss_mb") {
        Some(&rss) if rss > MAX_1M_PEAK_RSS_MB => failures.push(format!(
            "segmented 1M build peaked at {rss:.0} MB RSS (ceiling: {MAX_1M_PEAK_RSS_MB} MB — \
             build memory must stay bounded by the largest segment)"
        )),
        Some(&rss) => eprintln!("gate ok: peak RSS {rss:.0} MB (ceiling {MAX_1M_PEAK_RSS_MB} MB)"),
        None => eprintln!("note: /proc/self/status unavailable; skipping RSS gate"),
    }
    let open_1m = results["serve_1m/mapped_open_1m_ms"];
    if open_1m > MAX_MAPPED_OPEN_MS_1M {
        failures.push(format!(
            "mmap open of the 1M snapshot took {open_1m:.2} ms \
             (ceiling: {MAX_MAPPED_OPEN_MS_1M} ms)"
        ));
    } else {
        eprintln!("gate ok: 1M mapped open {open_1m:.2} ms (ceiling {MAX_MAPPED_OPEN_MS_1M} ms)");
    }
    let flatness = derived["open_flatness_1m_vs_10k"];
    if flatness > MAX_OPEN_FLATNESS {
        failures.push(format!(
            "open time grew {flatness:.1}x from 10k to 1M queries \
             (ceiling: {MAX_OPEN_FLATNESS}x — open must be O(#sections), not O(n))"
        ));
    } else {
        eprintln!("gate ok: open flatness {flatness:.2}x (ceiling {MAX_OPEN_FLATNESS}x)");
    }
    failures
}

/// Nearest-rank percentile of an ascending-sorted series.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// The `--tier stream` series: steady-state epoch replay through an
/// `EpochIngestor` publishing into a live `ServeState`, plus the §11
/// spam-campaign contamination contrast. Returns `(results_ms, derived)`.
fn stream_series(opts: &Options, reps: usize) -> (BTreeMap<String, f64>, BTreeMap<String, f64>) {
    let mut r = BTreeMap::new();
    let mut derived = BTreeMap::new();
    let cfg = SimrankConfig::default()
        .with_iterations(5)
        .with_prune_threshold(1e-4)
        .with_sharding(ShardStrategy::Components);
    let world = generate(&GeneratorConfig::small()).graph;
    let labels = connected_components(&world);

    // Slice the graph by component (label mod STREAM_SLICES): components
    // are closed under refresh, so an epoch touching one slice leaves the
    // other slices' rows copy-clean — the locality real click traffic has.
    let mut slices: Vec<Vec<(&str, &str, EdgeData)>> = vec![Vec::new(); STREAM_SLICES as usize];
    for (q, a, e) in world.edges() {
        let s = (labels.query_label[q.index()] % STREAM_SLICES) as usize;
        slices[s].push((
            world.query_name(q).expect("named graph"),
            world.ad_name(a).expect("named graph"),
            *e,
        ));
    }

    let mut ingestor = EpochIngestor::new(IngestConfig {
        window: STREAM_SLICES as usize,
        decay: 1.0,
        method: MethodKind::WeightedSimrank,
        config: cfg,
        rewriter: RewriterConfig::default(),
        threads: 0,
    });
    // Warm-up: stream one slice per epoch until every slice is in-window,
    // then the first (full) build. From here on each epoch renews exactly
    // the slice the window retires — a stationary stream.
    for e in 0..STREAM_SLICES as u64 {
        ingestor.advance_to(e);
        for &(q, a, d) in &slices[(e % STREAM_SLICES as u64) as usize] {
            ingestor.observe(q, a, d);
        }
    }
    let t0 = Instant::now();
    let (index, _, _) = ingestor.refresh().expect("first full build");
    r.insert(
        "stream_2k/first_full_build_ms".to_owned(),
        t0.elapsed().as_secs_f64() * 1e3,
    );
    eprintln!(
        "stream: first full build of {} queries / {} rewrites in {:.0} ms",
        index.n_queries(),
        index.n_entries(),
        r["stream_2k/first_full_build_ms"]
    );

    let metrics = std::sync::Arc::new(IngestMetrics::default());
    let state = ServeState::ingesting(index, std::sync::Arc::clone(&metrics));
    let epochs = if opts.quick { 8 } else { 16 };
    let mut freshness_ms: Vec<f64> = Vec::with_capacity(epochs);
    let mut refresh_ms: Vec<f64> = Vec::with_capacity(epochs);
    let (mut refreshed_rows, mut copied_rows) = (0usize, 0usize);
    let mut events = 0usize;
    for e in STREAM_SLICES as u64..STREAM_SLICES as u64 + epochs as u64 {
        ingestor.advance_to(e);
        events += slices[(e % STREAM_SLICES as u64) as usize].len();
        for &(q, a, d) in &slices[(e % STREAM_SLICES as u64) as usize] {
            ingestor.observe(q, a, d);
        }
        let stats = ingestor.refresh_and_publish(&state).expect("epoch refresh");
        let ord = std::sync::atomic::Ordering::Relaxed;
        freshness_ms.push(metrics.last_freshness_us.load(ord) as f64 / 1e3);
        refresh_ms.push(metrics.last_refresh_us.load(ord) as f64 / 1e3);
        refreshed_rows += stats.refreshed_queries;
        copied_rows += stats.copied_queries;
        black_box(state.handle().load());
    }
    freshness_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    refresh_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    r.insert(
        "stream_2k/freshness_p50_ms".to_owned(),
        percentile(&freshness_ms, 0.5),
    );
    r.insert(
        "stream_2k/freshness_p95_ms".to_owned(),
        percentile(&freshness_ms, 0.95),
    );
    r.insert(
        "stream_2k/epoch_refresh_p50_ms".to_owned(),
        percentile(&refresh_ms, 0.5),
    );
    r.insert(
        "stream_2k/epoch_refresh_p95_ms".to_owned(),
        percentile(&refresh_ms, 0.95),
    );

    // The from-scratch contrast: what every epoch boundary would cost
    // without the dirty-component path (full method + pipeline + index
    // over the same graph shape the window holds at steady state).
    let scratch_ms = median_ms(reps.min(3), || {
        let method = Method::compute(MethodKind::WeightedSimrank, &world, &cfg);
        let rewriter = Rewriter::new(&world, method, RewriterConfig::default());
        RewriteIndex::build(&rewriter, None, 0)
    });
    r.insert("stream_2k/scratch_rebuild_ms".to_owned(), scratch_ms);
    derived.insert(
        "epoch_speedup_incremental_vs_scratch".to_owned(),
        scratch_ms / percentile(&refresh_ms, 0.5),
    );
    derived.insert(
        "rows_copied_fraction".to_owned(),
        copied_rows as f64 / (copied_rows + refreshed_rows).max(1) as f64,
    );
    derived.insert("epochs_measured".to_owned(), epochs as f64);
    derived.insert("events_ingested".to_owned(), events as f64);
    eprintln!(
        "stream: {} epochs, freshness p50 {:.1} ms / p95 {:.1} ms, refresh p50 {:.1} ms, \
         {:.0}% of rows copied, scratch contrast {:.0} ms",
        epochs,
        r["stream_2k/freshness_p50_ms"],
        r["stream_2k/freshness_p95_ms"],
        r["stream_2k/epoch_refresh_p50_ms"],
        derived["rows_copied_fraction"] * 100.0,
        scratch_ms
    );

    // Crash recovery: restart-to-serving from a durable checkpoint vs
    // scratch re-ingestion of the full click log. The log is long (many
    // retired epochs) but the window short, so the contrast isolates what
    // the checkpoint buys: replaying only the surviving span + tail
    // instead of every byte ever appended.
    {
        use simrankpp_graph::delta::{write_click_log, ClickLogRecord};
        use simrankpp_serve::checkpoint::{
            capture, read_checkpoint, resume_ingestor, write_checkpoint,
        };

        let tiny = generate(&GeneratorConfig::tiny()).graph;
        let tiny_labels = connected_components(&tiny);
        const RECOVERY_SLICES: u32 = 4;
        let mut tiny_slices: Vec<Vec<(&str, &str, EdgeData)>> =
            vec![Vec::new(); RECOVERY_SLICES as usize];
        for (q, a, e) in tiny.edges() {
            let s = (tiny_labels.query_label[q.index()] % RECOVERY_SLICES) as usize;
            tiny_slices[s].push((
                tiny.query_name(q).expect("named graph"),
                tiny.ad_name(a).expect("named graph"),
                *e,
            ));
        }
        let log_epochs: u64 = if opts.quick { 200 } else { 600 };
        let mut recs = Vec::new();
        for e in 0..log_epochs {
            for &(q, a, d) in &tiny_slices[(e % RECOVERY_SLICES as u64) as usize] {
                recs.push(ClickLogRecord::Event {
                    epoch: e,
                    query: q.to_owned(),
                    ad: a.to_owned(),
                    data: d,
                });
            }
            recs.push(ClickLogRecord::EpochMark { epoch: e + 1 });
        }
        let dir =
            std::env::temp_dir().join(format!("simrankpp_bench_recovery_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("recovery scratch dir");
        let log_path = dir.join("click.log");
        let ck_path = dir.join("ck.bin");
        simrankpp_util::atomic_write(&log_path, |w| write_click_log(&recs, w))
            .expect("write recovery click log");

        let recovery_cfg = IngestConfig {
            window: RECOVERY_SLICES as usize,
            decay: 1.0,
            method: MethodKind::WeightedSimrank,
            config: cfg,
            rewriter: RewriterConfig::default(),
            threads: 0,
        };
        // The pre-crash process: ingest everything, refresh, commit the
        // checkpoint at the final epoch boundary — then "crash".
        let mut pre = EpochIngestor::new(recovery_cfg.clone());
        let mut pre_tailer = LogTailer::open(&log_path).expect("open recovery log");
        for sr in pre_tailer.drain_spanned().expect("drain recovery log") {
            pre.apply_record_at(&sr.rec, (sr.start, sr.end));
        }
        pre.refresh().expect("pre-crash refresh");
        write_checkpoint(&ck_path, &capture(&pre)).expect("commit recovery checkpoint");

        let resume_ms = median_ms(reps.min(3), || {
            let ck = read_checkpoint(&ck_path).expect("read checkpoint");
            let resumed =
                resume_ingestor(&log_path, &recovery_cfg, &ck).expect("resume from checkpoint");
            let mut ing = resumed.ingestor;
            ing.refresh().expect("recovery refresh")
        });
        let scratch_ms = median_ms(reps.min(3), || {
            let mut ing = EpochIngestor::new(recovery_cfg.clone());
            let mut tailer = LogTailer::open(&log_path).expect("open recovery log");
            for sr in tailer.drain_spanned().expect("drain recovery log") {
                ing.apply_record_at(&sr.rec, (sr.start, sr.end));
            }
            ing.refresh().expect("scratch refresh")
        });
        let _ = std::fs::remove_dir_all(&dir);
        r.insert("stream_recovery/resume_to_serving_ms".to_owned(), resume_ms);
        r.insert("stream_recovery/scratch_reingest_ms".to_owned(), scratch_ms);
        derived.insert(
            "recovery_speedup_resume_vs_scratch".to_owned(),
            scratch_ms / resume_ms,
        );
        derived.insert("recovery_log_epochs".to_owned(), log_epochs as f64);
        eprintln!(
            "stream: recovery resume-to-serving {resume_ms:.1} ms vs scratch re-ingest \
             {scratch_ms:.1} ms over a {log_epochs}-epoch log ({:.1}x)",
            scratch_ms / resume_ms
        );
    }

    // The adversarial scenario: a click-spam campaign replayed with and
    // without window expiry (tiny graph — the contamination values, not
    // their wall-clock, are the series).
    let clean = generate(&GeneratorConfig::tiny()).graph;
    let outcome = run_windowed_spam_experiment(
        &clean,
        &SpamTimeline::default(),
        MethodKind::WeightedSimrank,
        &SimrankConfig::default(),
        RewriterConfig::default(),
    );
    derived.insert(
        "spam_contamination_unwindowed".to_owned(),
        outcome.unwindowed.contamination(),
    );
    derived.insert(
        "spam_contamination_windowed".to_owned(),
        outcome.windowed.contamination(),
    );
    eprintln!(
        "stream: spam contamination {:.3} unwindowed vs {:.3} windowed",
        outcome.unwindowed.contamination(),
        outcome.windowed.contamination()
    );
    (r, derived)
}

/// Stream-tier gates: the machine-relative incremental floor, the spam
/// contrast, and baseline diffs for the freshness/refresh series.
fn check_stream(
    opts: &Options,
    results: &BTreeMap<String, f64>,
    derived: &BTreeMap<String, f64>,
) -> Vec<String> {
    let mut failures = Vec::new();
    let speedup = derived["epoch_speedup_incremental_vs_scratch"];
    if speedup < MIN_STREAM_INCREMENTAL_SPEEDUP {
        failures.push(format!(
            "median epoch refresh is only {speedup:.2}x faster than a from-scratch rebuild \
             (floor: {MIN_STREAM_INCREMENTAL_SPEEDUP}x, machine-relative)"
        ));
    } else {
        eprintln!(
            "gate ok: epoch refresh {speedup:.1}x vs scratch \
             (floor {MIN_STREAM_INCREMENTAL_SPEEDUP}x)"
        );
    }
    let recovery = derived["recovery_speedup_resume_vs_scratch"];
    if recovery < MIN_RECOVERY_SPEEDUP {
        failures.push(format!(
            "checkpoint resume is only {recovery:.2}x faster than scratch re-ingestion of the \
             full log (floor: {MIN_RECOVERY_SPEEDUP}x, machine-relative)"
        ));
    } else {
        eprintln!(
            "gate ok: checkpoint resume {recovery:.1}x vs scratch re-ingestion \
             (floor {MIN_RECOVERY_SPEEDUP}x)"
        );
    }
    let unwindowed = derived["spam_contamination_unwindowed"];
    let windowed = derived["spam_contamination_windowed"];
    if windowed != 0.0 {
        failures.push(format!(
            "windowed spam contamination is {windowed:.4}, expected exactly 0 — \
             expiry must remove the campaign's edges outright"
        ));
    }
    if unwindowed <= 0.0 {
        failures.push(
            "the spam campaign registered no contamination without windowing — \
             the adversarial scenario is vacuous"
                .to_owned(),
        );
    }
    if windowed == 0.0 && unwindowed > 0.0 {
        eprintln!("gate ok: spam contamination {unwindowed:.3} unwindowed -> 0 windowed");
    }

    let baseline_path = format!("{}/BENCH_stream.json", opts.baseline_dir);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("cannot read baseline {baseline_path}: {e}"));
            return failures;
        }
    };
    let baseline: serde_json::Value = match serde_json::from_str(&baseline) {
        Ok(v) => v,
        Err(e) => {
            failures.push(format!("cannot parse baseline {baseline_path}: {e:?}"));
            return failures;
        }
    };
    let factor = 1.0 + opts.tolerance_pct / 100.0;
    for key in GATED_STREAM_KEYS {
        let fresh = results[key];
        let Some(base) = baseline
            .get("results_ms")
            .and_then(|m| m.get(key))
            .and_then(|v| v.as_f64())
        else {
            eprintln!("note: baseline has no {key:?}; skipping (refresh the baseline)");
            continue;
        };
        if fresh > base * factor {
            failures.push(format!(
                "{key}: {fresh:.1} ms vs baseline {base:.1} ms — regressed beyond \
                 {:.0}% tolerance",
                opts.tolerance_pct
            ));
        } else {
            eprintln!(
                "gate ok: {key}: {fresh:.1} ms (baseline {base:.1} ms, limit {:.1} ms)",
                base * factor
            );
        }
    }
    failures
}

fn check(
    opts: &Options,
    engine_results: &BTreeMap<String, f64>,
    engine_speedups: &BTreeMap<String, f64>,
    serve_derived: &BTreeMap<String, f64>,
) -> Vec<String> {
    let mut failures = Vec::new();

    let tcp = serve_derived["tcp_qps_scaling_8_vs_1"];
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (tcp_floor, tcp_rule) = if cores >= 4 {
        (MIN_TCP_CONCURRENCY_SPEEDUP, "scaling")
    } else {
        (MIN_TCP_NO_COLLAPSE, "no-collapse; runner has < 4 cores")
    };
    if tcp < tcp_floor {
        failures.push(format!(
            "8 TCP clients deliver only {tcp:.2}x the QPS of 1 client \
             (floor: {tcp_floor}x [{tcp_rule}], machine-relative) — \
             connections are serializing"
        ));
    } else {
        eprintln!("gate ok: tcp 8-client {tcp:.2}x vs 1 (floor {tcp_floor}x [{tcp_rule}])");
    }

    let inc = engine_speedups["incremental_single_component_vs_full"];
    if inc < MIN_INCREMENTAL_SPEEDUP {
        failures.push(format!(
            "incremental single-component update is only {inc:.2}x faster than full \
             recompute (floor: {MIN_INCREMENTAL_SPEEDUP}x)"
        ));
    }
    let flat = engine_speedups["flat_vs_hashmap_uniform"];
    if flat < MIN_FLAT_VS_HASHMAP {
        failures.push(format!(
            "flat accumulation is only {flat:.2}x faster than the hash-map reference \
             (floor: {MIN_FLAT_VS_HASHMAP}x, machine-relative)"
        ));
    }
    for side in ["uniform", "weighted"] {
        let pull = engine_speedups[&format!("pull_vs_flat_{side}")];
        if pull < MIN_PULL_VS_FLAT {
            failures.push(format!(
                "pull kernel ({side}) is only {pull:.2}x faster than the flat \
                 accumulator (floor: {MIN_PULL_VS_FLAT}x, machine-relative)"
            ));
        }
    }
    let ss = engine_speedups["single_source_linearized_query_vs_full_run"];
    if ss < MIN_SINGLE_SOURCE_SPEEDUP {
        failures.push(format!(
            "one linearized single-source query is only {ss:.1}x faster than a full \
             all-pairs run (floor: {MIN_SINGLE_SOURCE_SPEEDUP}x, machine-relative)"
        ));
    }

    let baseline_path = format!("{}/BENCH_engine.json", opts.baseline_dir);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("cannot read baseline {baseline_path}: {e}"));
            return failures;
        }
    };
    let baseline: serde_json::Value = match serde_json::from_str(&baseline) {
        Ok(v) => v,
        Err(e) => {
            failures.push(format!("cannot parse baseline {baseline_path}: {e:?}"));
            return failures;
        }
    };
    let factor = 1.0 + opts.tolerance_pct / 100.0;
    for key in GATED_ENGINE_KEYS {
        let fresh = engine_results[key];
        let Some(base) = baseline
            .get("results_ms")
            .and_then(|m| m.get(key))
            .and_then(|v| v.as_f64())
        else {
            eprintln!("note: baseline has no {key:?}; skipping (refresh the baseline)");
            continue;
        };
        if fresh > base * factor {
            failures.push(format!(
                "{key}: {fresh:.1} ms vs baseline {base:.1} ms — regressed beyond \
                 {:.0}% tolerance",
                opts.tolerance_pct
            ));
        } else {
            eprintln!(
                "gate ok: {key}: {fresh:.1} ms (baseline {base:.1} ms, limit {:.1} ms)",
                base * factor
            );
        }
    }
    failures
}

/// `(year, month, day)` of a unix timestamp (Howard Hinnant's civil_from_days).
fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn json_map(map: &BTreeMap<String, f64>, indent: &str) -> String {
    map.iter()
        .map(|(k, v)| format!("{indent}\"{k}\": {v:.4}"))
        .collect::<Vec<_>>()
        .join(",\n")
}

fn environment_json(opts: &Options) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!(
        "  \"environment\": {{\n    \"date\": \"{}\",\n    \"cpu_cores\": {cores},\n    \
         \"profile\": \"release\",\n    \"harness\": \"bench_ci ({} mode, median wall-clock)\"\n  }}",
        utc_date(),
        if opts.quick { "quick" } else { "full" }
    )
}

fn render_engine_json(
    opts: &Options,
    results: &BTreeMap<String, f64>,
    speedups: &BTreeMap<String, f64>,
) -> String {
    let gate_keys = GATED_ENGINE_KEYS
        .iter()
        .map(|k| format!("\"{k}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"bench\": \"bench_ci (engine)\",\n  \"description\": \"Wall-clock medians for \
         the engine's headline series on 10k-query synth graphs: pull vs flat vs hash-map \
         kernels (standard graph), component-sharded vs monolithic propagation (federated8 = \
         disjoint union of 8 worlds) and incremental single-dirty-component update vs full \
         recompute (federated16). 5 iterations, prune_threshold 1e-4; sharded/incremental \
         series run the default pull kernel; incremental deltas touch world 0 only. The \
         single_source series times the on-demand engine on the standard graph: one-off \
         precompute (factors + estimated diagonal correction), then 100 linearized and 100 \
         Monte-Carlo (512 walks) top-10 queries per rep.\",\n\
         {},\n  \"results_ms\": {{\n{}\n  }},\n  \"speedup\": {{\n{}\n  }},\n  \"gate\": {{\n    \
         \"keys\": [{gate_keys}],\n    \"tolerance_pct\": {},\n    \
         \"min_incremental_speedup\": {MIN_INCREMENTAL_SPEEDUP},\n    \
         \"min_flat_vs_hashmap_uniform\": {MIN_FLAT_VS_HASHMAP},\n    \
         \"min_pull_vs_flat\": {MIN_PULL_VS_FLAT},\n    \
         \"min_single_source_speedup\": {MIN_SINGLE_SOURCE_SPEEDUP}\n  }}\n}}\n",
        environment_json(opts),
        json_map(results, "    "),
        json_map(speedups, "    "),
        opts.tolerance_pct,
    )
}

fn render_serve_json(
    opts: &Options,
    results: &BTreeMap<String, f64>,
    serve_derived: &BTreeMap<String, f64>,
) -> String {
    let mut derived = serve_derived.clone();
    derived.insert(
        "speedup_incremental_vs_full_rebuild".to_owned(),
        results["serve_10k_incremental/full_rebuild_ms"]
            / results["serve_10k_incremental/incremental_update_ms"],
    );
    derived.insert(
        "speedup_warm_vs_cold_query".to_owned(),
        results["serve_10k_single_source/cold_query_x100_ms"]
            / results["serve_10k_single_source/warm_query_x100_ms"],
    );
    format!(
        "{{\n  \"bench\": \"bench_ci (serve)\",\n  \"description\": \"Wall-clock medians for \
         the serving layer on 10k-query synth graphs: precomputed-index lookups, offline \
         t1 index build and snapshot round-trip (standard graph), incremental index \
         rebuild vs full rebuild after a world-0 delta (federated8), live single-source \
         serving over an empty index: 100 cold (never-asked, computed on demand) vs 100 warm \
         (row-cache hit) queries per rep, and the serve_tcp series: closed-loop load against \
         an in-process threaded NetServer on loopback ({} requests per client per run, \
         median-QPS run of the reps), p50/p99 per-request latency in results_ms and QPS in \
         derived for 1 and 8 concurrent clients. tcp_qps_scaling_8_vs_1 is gated \
         machine-relative (floor {}x). Weighted SimRank, 5 iterations, prune_threshold \
         1e-4.\",\n{},\n  \"results_ms\": {{\n{}\n  }},\n  \"derived\": {{\n{}\n  }}\n}}\n",
        TCP_REQS_PER_CLIENT,
        MIN_TCP_CONCURRENCY_SPEEDUP,
        environment_json(opts),
        json_map(results, "    "),
        json_map(&derived, "    "),
    )
}

fn render_stream_json(
    opts: &Options,
    results: &BTreeMap<String, f64>,
    derived: &BTreeMap<String, f64>,
) -> String {
    let gate_keys = GATED_STREAM_KEYS
        .iter()
        .map(|k| format!("\"{k}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"bench\": \"bench_ci (stream tier)\",\n  \"description\": \"Streaming-ingestion \
         freshness on a 2k-query synth graph: an EpochIngestor replays the graph one \
         component-slice per epoch ({STREAM_SLICES} slices = the window length, so each epoch \
         renews exactly the slice the window retires), refreshing dirty components and \
         hot-swapping the generation into a live ServeState at every boundary. freshness = \
         first event of the batch read -> new generation swapped in; epoch_refresh = freeze + \
         dirty-component rebuild + swap; scratch_rebuild is the same-shape full build every \
         boundary would cost without the incremental path. Derived: the machine-relative \
         incremental-vs-scratch speedup (gated), the copied-row fraction, and the spam-campaign \
         contamination contrast (campaign in the first epochs of the timeline; the window must \
         expire it to exactly zero while the unwindowed observer stays contaminated). The \
         stream_recovery series is the crash-safety contrast: resume_to_serving replays a \
         durable checkpoint (surviving window span + log tail, fingerprint-verified) into a \
         serving-ready index, vs scratch_reingest re-reading a deliberately long log from byte \
         zero; the machine-relative speedup is gated so restart time stays bounded by the \
         window, not process uptime. Weighted \
         SimRank, 5 iterations, prune_threshold 1e-4, component sharding.\",\n{},\n  \
         \"results_ms\": {{\n{}\n  }},\n  \"derived\": {{\n{}\n  }},\n  \"gate\": {{\n    \
         \"keys\": [{gate_keys}],\n    \"tolerance_pct\": {},\n    \
         \"min_stream_incremental_speedup\": {MIN_STREAM_INCREMENTAL_SPEEDUP},\n    \
         \"min_recovery_speedup\": {MIN_RECOVERY_SPEEDUP},\n    \
         \"spam_contamination_windowed_must_be_zero\": true\n  }}\n}}\n",
        environment_json(opts),
        json_map(results, "    "),
        json_map(derived, "    "),
        opts.tolerance_pct,
    )
}

fn render_scale_json(
    opts: &Options,
    results: &BTreeMap<String, f64>,
    derived: &BTreeMap<String, f64>,
) -> String {
    format!(
        "{{\n  \"bench\": \"bench_ci (scale, 1m tier)\",\n  \"description\": \"Beyond-RAM scale \
         proof on a federated synthetic store (independent ~2k-query worlds, one segment each, \
         names stripped): streaming store write, segmented weighted-SimRank index build whose \
         peak RSS is gated against a ceiling (build memory is bounded by the largest segment \
         plus the output index, never the store), whole-section snapshot write, and mmap-backed \
         MappedIndex open times at 1x/10x/100x of target/100 queries (10k/100k/1M at the \
         default target). Open must stay flat: it is O(#sections) table validation plus one \
         mmap, so the 100x index opens in the same milliseconds as the 1x one; heap_decode is \
         the old full-deserialize cost for contrast. Gates are machine-relative ceilings, not \
         baseline diffs.\",\n{},\n  \"results_ms\": {{\n{}\n  }},\n  \"derived\": {{\n{}\n  }},\n  \
         \"gate\": {{\n    \"max_peak_rss_mb\": {MAX_1M_PEAK_RSS_MB},\n    \
         \"max_mapped_open_ms_1m\": {MAX_MAPPED_OPEN_MS_1M},\n    \
         \"max_open_flatness\": {MAX_OPEN_FLATNESS}\n  }}\n}}\n",
        environment_json(opts),
        json_map(results, "    "),
        json_map(derived, "    "),
    )
}
