//! Regenerates Figure 10: 11-point precision/recall and P@X with only
//! grade 1 as the positive class.

use simrankpp_eval::report::render_fig9_or_10;
use simrankpp_eval::run_experiment;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("fig10_precision_t1", "Figure 10 (§10.2)");
    let report = run_experiment(&simrankpp_bench::experiment_config(&scale));
    println!("{}", render_fig9_or_10(&report, true));
    println!(
        "Paper: same method ordering as Figure 9 at much lower absolute precision\n\
         (grade-1-only is a hard target: ~0.1–0.6 band)."
    );
}
