//! Ablation: which §2 edge weight should weighted SimRank consume?
//!
//! §9.2: "In all our experiments that required the use of an edge weight we
//! used the expected click rate." This ablation shows why: desirability-
//! prediction accuracy and the number of surviving (non-underflowed) score
//! pairs for clicks vs impressions vs expected click rate. Raw counts have
//! huge per-node variance, so `spread = e^(−variance)` underflows and kills
//! similarity propagation.

use simrankpp_core::evidence::EvidenceKind;
use simrankpp_core::weighted::weighted_simrank;
use simrankpp_core::MethodKind;
use simrankpp_eval::run_desirability_experiment;
use simrankpp_graph::WeightKind;
use simrankpp_synth::generator::generate;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("ablation_weights", "§9.2's expected-click-rate choice");
    let config = simrankpp_bench::experiment_config(&scale);
    let dataset = generate(&config.generator);

    println!(
        "{:<22} {:>14} {:>16} {:>18}",
        "edge weight", "score pairs", "mean pair score", "desirability acc."
    );
    for kind in WeightKind::ALL {
        let cfg = config.simrank.with_weight_kind(kind);
        let r = weighted_simrank(&dataset.graph, &cfg, EvidenceKind::Geometric);
        let n_pairs = r.queries.n_pairs();
        let mean = if n_pairs == 0 {
            0.0
        } else {
            r.queries.iter().map(|(_, _, v)| v).sum::<f64>() / n_pairs as f64
        };
        let outcome = run_desirability_experiment(
            &dataset.graph,
            &[MethodKind::WeightedSimrank],
            config.desirability_trials,
            &cfg,
            config.seed ^ 0xD5,
        );
        println!(
            "{:<22} {:>14} {:>16.4} {:>13}/{:<4}",
            kind.name(),
            n_pairs,
            mean,
            outcome[0].correct,
            outcome[0].trials
        );
    }
    println!(
        "\nExpected: expected-click-rate retains the most pairs and predicts\n\
         desirability best; raw clicks/impressions lose pairs to spread underflow."
    );
}
