//! Regenerates Figure 12: the edge-removal desirability-prediction
//! experiment.

use simrankpp_eval::report::render_fig12;
use simrankpp_eval::run_experiment;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("fig12_desirability", "Figure 12 (§10.4)");
    let report = run_experiment(&simrankpp_bench::experiment_config(&scale));
    println!("{}", render_fig12(&report));
    println!(
        "Paper: Simrank 54% (27/50), evidence-based 54% (identical — no weights used),\n\
         weighted 92% (46/50). Shape to check: weighted well above the structural\n\
         methods; Simrank and evidence-based identical (evidence is zero for every\n\
         trial pair once direct edges are removed, so the raw scores decide both)."
    );
}
