//! Ablation: does the §8.2 `spread = e^(−variance)` factor help?
//!
//! Runs the Figure 12 desirability experiment with the spread factor on
//! (the paper's definition) and off (pure normalized-weight walk), at the
//! chosen scale. Finding on synthetic data: the two are statistically
//! indistinguishable — the desirability signal comes from the normalized
//! weights, not the spread penalty (see EXPERIMENTS.md).

use simrankpp_core::evidence::EvidenceKind;
use simrankpp_core::weighted::{weighted_simrank_with_spread, SpreadMode};
use simrankpp_eval::desirability::prepare_trials;
use simrankpp_graph::subgraph::remove_edges;
use simrankpp_synth::generator::generate;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("ablation_spread", "the §8.2 spread design choice");
    let config = simrankpp_bench::experiment_config(&scale);
    let dataset = generate(&config.generator);
    let n_trials: usize = std::env::var("TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.desirability_trials);
    let trials = prepare_trials(
        &dataset.graph,
        n_trials,
        &config.simrank,
        config.seed ^ 0xD5,
    );
    println!("{} trials prepared\n", trials.len());

    println!("{:<22} {:>12} {:>8}", "spread mode", "correct", "ties");
    for mode in [SpreadMode::Exponential, SpreadMode::Off] {
        let mut correct = 0;
        let mut ties = 0;
        for t in &trials {
            let pruned = remove_edges(&dataset.graph, &t.removed);
            let r = weighted_simrank_with_spread(
                &pruned,
                &config.simrank,
                EvidenceKind::Geometric,
                mode,
            );
            let r2 = r.raw_queries.get(t.q1.0, t.q2.0);
            let r3 = r.raw_queries.get(t.q1.0, t.q3.0);
            let pred = if r2 > r3 {
                Some(t.q2)
            } else if r3 > r2 {
                Some(t.q3)
            } else {
                ties += 1;
                None
            };
            if pred == Some(t.preferred) {
                correct += 1;
            }
        }
        println!(
            "{:<22} {:>7}/{:<4} {:>8}",
            format!("{mode:?}"),
            correct,
            trials.len(),
            ties
        );
    }
}
