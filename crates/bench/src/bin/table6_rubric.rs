//! Regenerates Table 6: the editorial scoring rubric, demonstrated by the
//! simulated judge on a generated world.

use simrankpp_graph::QueryId;
use simrankpp_synth::generator::generate;
use simrankpp_synth::{EditorialJudge, Grade};

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("table6_rubric", "Table 6 (§9.3)");
    println!("Score  Definition          Rubric on planted ground truth");
    println!("1      Precise rewrite     same intent, or shared core stem within a topic");
    println!("2      Approximate rewrite same (fine-grained) topic");
    println!("3      Possible rewrite    complementary (ring-adjacent) topic");
    println!("4      Clear mismatch      anything else\n");

    let dataset = generate(&simrankpp_bench::generator_config(&scale));
    let judge = EditorialJudge::new(&dataset.world);

    // Show one example pair per grade.
    let n = dataset.world.n_queries();
    let mut shown: Vec<Grade> = Vec::new();
    'outer: for a in 0..n.min(400) {
        for b in (a + 1)..n.min(400) {
            let g = judge.judge(QueryId(a as u32), QueryId(b as u32));
            if !shown.contains(&g) {
                println!(
                    "grade {}  \"{}\"  ->  \"{}\"",
                    g.score(),
                    dataset.world.query_name[a],
                    dataset.world.query_name[b]
                );
                shown.push(g);
                if shown.len() == 4 {
                    break 'outer;
                }
            }
        }
    }
}
