//! Runs the complete reproduction: Tables 1–5 and Figures 8–12 in one pass
//! (the experiment is computed once and every read-out printed), and writes
//! the machine-readable report to `repro_report.json`.

use simrankpp_core::complete_bipartite::{km2_evidence_pair_iterates, km2_pair_iterates};
use simrankpp_core::evidence::EvidenceKind;
use simrankpp_core::naive::naive_scores;
use simrankpp_core::simrank::simrank;
use simrankpp_core::SimrankConfig;
use simrankpp_eval::report::render_full;
use simrankpp_eval::run_experiment;
use simrankpp_graph::fixtures::{figure3_graph, FIGURE3_QUERIES};
use simrankpp_graph::WeightKind;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("repro_all", "Tables 1-5, Figures 8-12");

    // --- Paper-exact small tables (scale independent) ----------------------
    let g3 = figure3_graph();
    println!("--- Table 1: naive common-ad counts (Figure 3 graph) ---");
    let naive = naive_scores(&g3);
    matrix(|a, b| format!("{:.0}", naive.get(a, b)));

    println!("\n--- Table 2: converged SimRank, C1=C2=0.8 ---");
    // The engine's tolerance early-exit decides when "converged" is reached
    // instead of a hardcoded iteration budget.
    let t2cfg = SimrankConfig::paper()
        .with_iterations(100)
        .with_tolerance(1e-10)
        .with_weight_kind(WeightKind::Clicks);
    let sr = simrank(&g3, &t2cfg);
    matrix(|a, b| format!("{:.3}", sr.queries.get(a, b)));
    println!(
        "engine: {} iterations to max |Δ| ≤ 1e-10 (converged = {}, {} query pairs stored)",
        sr.iterations_run,
        sr.converged,
        sr.queries.n_pairs()
    );

    println!("\n--- Table 3: SimRank iterations on K2,2 vs K1,2 ---");
    let k22 = km2_pair_iterates(2, 0.8, 0.8, 7);
    let k12 = km2_pair_iterates(1, 0.8, 0.8, 7);
    println!(
        "{:<6} {:>26} {:>18}",
        "iter", "sim(camera,digital camera)", "sim(pc,camera)"
    );
    for k in 0..7 {
        println!("{:<6} {:>26.7} {:>18.7}", k + 1, k22[k], k12[k]);
    }

    println!("\n--- Table 4: evidence-based iterations ---");
    let e22 = km2_evidence_pair_iterates(2, 0.8, 0.8, 7, EvidenceKind::Geometric);
    let e12 = km2_evidence_pair_iterates(1, 0.8, 0.8, 7, EvidenceKind::Geometric);
    println!(
        "{:<6} {:>26} {:>18}",
        "iter", "sim(camera,digital camera)", "sim(pc,camera)"
    );
    for k in 0..7 {
        println!("{:<6} {:>26.7} {:>18.7}", k + 1, e22[k], e12[k]);
    }

    // --- The full §9/§10 evaluation -----------------------------------------
    println!("\n--- Table 5 + Figures 8-12: full evaluation at scale '{scale}' ---\n");
    let config = simrankpp_bench::experiment_config(&scale);
    let report = run_experiment(&config);
    println!("{}", render_full(&report));

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    simrankpp_util::atomic_write_bytes(std::path::Path::new("repro_report.json"), json.as_bytes())
        .expect("write repro_report.json");
    println!("\nMachine-readable report written to repro_report.json");
}

fn matrix(cell: impl Fn(u32, u32) -> String) {
    print!("{:<16}", "");
    for q in FIGURE3_QUERIES {
        print!("{q:>16}");
    }
    println!();
    for (i, a) in FIGURE3_QUERIES.iter().enumerate() {
        print!("{a:<16}");
        for (j, _) in FIGURE3_QUERIES.iter().enumerate() {
            if i == j {
                print!("{:>16}", "-");
            } else {
                print!("{:>16}", cell(i as u32, j as u32));
            }
        }
        println!();
    }
}
