//! Regenerates Figure 9: 11-point precision/recall and P@X with grades
//! {1,2} as the positive class.

use simrankpp_eval::report::render_fig9_or_10;
use simrankpp_eval::run_experiment;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("fig9_precision", "Figure 9 (§10.2)");
    let report = run_experiment(&simrankpp_bench::experiment_config(&scale));
    println!("{}", render_fig9_or_10(&report, false));
    println!(
        "Paper P@5: Pearson < Simrank (75%) < evidence-based (80%) < weighted (86%);\n\
         P@1: 70% / 80% / 81% / 96%. Shape to check: the same ordering."
    );
}
