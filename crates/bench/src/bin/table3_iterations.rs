//! Regenerates Table 3: per-iteration SimRank on the Figure 4 graphs
//! (K2,2 camera/digital-camera vs K1,2 pc/camera, C1 = C2 = 0.8).
//!
//! Printed from both the sparse engine on the actual graphs and the
//! closed-form recurrence — they must agree digit for digit.

use simrankpp_core::complete_bipartite::km2_pair_iterates;
use simrankpp_core::simrank::simrank;
use simrankpp_core::SimrankConfig;
use simrankpp_graph::fixtures::{figure4_k12, figure4_k22};

fn main() {
    simrankpp_bench::banner("table3_iterations", "Table 3 (§6)");
    let k22 = figure4_k22();
    let k12 = figure4_k12();
    let closed_k22 = km2_pair_iterates(2, 0.8, 0.8, 7);
    let closed_k12 = km2_pair_iterates(1, 0.8, 0.8, 7);

    // One 7-iteration engine run supplies the whole max-delta trajectory.
    let full = simrank(&k22, &SimrankConfig::paper().with_iterations(7));

    println!(
        "{:<10} {:>28} {:>22} {:>16}",
        "Iteration", "sim(camera, digital camera)", "sim(pc, camera)", "K2,2 max |Δ|"
    );
    for k in 1..=7 {
        let cfg = SimrankConfig::paper().with_iterations(k);
        let e22 = simrank(&k22, &cfg).queries.get(0, 1);
        let e12 = simrank(&k12, &cfg).queries.get(0, 1);
        assert!(
            (e22 - closed_k22[k - 1]).abs() < 1e-12,
            "engine/closed-form mismatch"
        );
        assert!((e12 - closed_k12[k - 1]).abs() < 1e-12);
        // On K2,2 the pair score is the only moving entry per side, so the
        // engine's recorded delta must equal the closed-form step size.
        let step = if k == 1 {
            closed_k22[0]
        } else {
            closed_k22[k - 1] - closed_k22[k - 2]
        };
        let recorded = full.max_deltas[k - 1];
        assert!(
            (recorded - step).abs() < 1e-12,
            "iteration {k}: engine delta {recorded} != closed-form step {step}"
        );
        println!("{k:<10} {e22:>28.7} {e12:>22.7} {recorded:>16.7}");
    }
    println!("\nPaper row 7: 0.6655744 vs 0.8 — the §6 complaint: K2,2 never catches up.");
    println!(
        "Engine diagnostics: {} iterations, final max |Δ| = {:.3e} (geometric decay at rate C²/4).",
        full.iterations_run,
        full.max_deltas.last().unwrap()
    );
}
