//! Regenerates Figure 11: the rewriting-depth distribution.

use simrankpp_eval::report::render_fig11;
use simrankpp_eval::run_experiment;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("fig11_depth", "Figure 11 (§10.3)");
    let report = run_experiment(&simrankpp_bench::experiment_config(&scale));
    println!("{}", render_fig11(&report));
    println!(
        "Paper: the enhanced schemes provide the full 5 rewrites for >85% of queries\n\
         (Simrank 79%, evidence-based 89%); Pearson's depth is far lower."
    );
}
