//! Regenerates Table 4: per-iteration evidence-based SimRank on the
//! Figure 4 graphs (C1 = C2 = 0.8, geometric evidence).

use simrankpp_core::evidence::{evidence_simrank, EvidenceKind};
use simrankpp_core::SimrankConfig;
use simrankpp_graph::fixtures::{figure4_k12, figure4_k22};

fn main() {
    simrankpp_bench::banner("table4_evidence", "Table 4 (§7)");
    let k22 = figure4_k22();
    let k12 = figure4_k12();
    println!(
        "{:<10} {:>28} {:>22}",
        "Iteration", "sim(camera, digital camera)", "sim(pc, camera)"
    );
    for k in 1..=7 {
        let cfg = SimrankConfig::paper().with_iterations(k);
        let e22 = evidence_simrank(&k22, &cfg, EvidenceKind::Geometric)
            .queries
            .get(0, 1);
        let e12 = evidence_simrank(&k12, &cfg, EvidenceKind::Geometric)
            .queries
            .get(0, 1);
        println!("{k:<10} {e22:>28.7} {e12:>22.7}");
    }
    println!(
        "\nPaper: the K2,2 pair overtakes from iteration 2 (0.42 > 0.4) — the fix \
         evidence was designed for."
    );
}
