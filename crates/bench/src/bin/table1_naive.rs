//! Regenerates Table 1: naive common-ad similarity on the Figure 3 graph.

use simrankpp_core::naive::naive_scores;
use simrankpp_graph::fixtures::{figure3_graph, FIGURE3_QUERIES};

fn main() {
    simrankpp_bench::banner("table1_naive", "Table 1 (§3)");
    let g = figure3_graph();
    let m = naive_scores(&g);
    print!("{:<16}", "");
    for q in FIGURE3_QUERIES {
        print!("{q:>16}");
    }
    println!();
    for (i, a) in FIGURE3_QUERIES.iter().enumerate() {
        print!("{a:<16}");
        for (j, _) in FIGURE3_QUERIES.iter().enumerate() {
            if i == j {
                print!("{:>16}", "-");
            } else {
                print!("{:>16.0}", m.get(i as u32, j as u32));
            }
        }
        println!();
    }
    println!("\nPaper values: pc-camera 1, camera-digital 2, camera-tv 1, all flower pairs 0.");
}
