//! Ablation: Monte-Carlo single-pair estimation vs the exact engine.
//!
//! Sweeps the walk count and reports mean absolute error and time per pair
//! over a sample of connected query pairs — the cost model for using the
//! §5 random-surfer estimator online instead of the batch engine.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simrankpp_core::montecarlo::{mc_simrank_pair, McConfig};
use simrankpp_core::simrank::simrank;
use simrankpp_graph::QueryId;
use simrankpp_synth::generator::generate;
use std::time::Instant;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner(
        "ablation_montecarlo",
        "§5's random-surfer model as an estimator",
    );
    let config = simrankpp_bench::experiment_config(&scale);
    let dataset = generate(&config.generator);

    let exact = simrank(&dataset.graph, &config.simrank);
    // Sample up to 30 stored (connected) pairs.
    let mut rng = SmallRng::seed_from_u64(99);
    let pairs: Vec<(u32, u32, f64)> = {
        let all: Vec<(u32, u32, f64)> = exact.queries.iter().collect();
        let mut chosen = Vec::new();
        for _ in 0..30.min(all.len()) {
            chosen.push(all[rng.gen_range(0..all.len())]);
        }
        chosen
    };
    if pairs.is_empty() {
        println!("no connected pairs at this scale");
        return;
    }

    println!(
        "{:<10} {:>16} {:>18}",
        "walks", "mean |error|", "time/pair (ms)"
    );
    for walks in [100usize, 1_000, 10_000, 50_000] {
        let mc = McConfig {
            walks,
            max_steps: 2 * config.simrank.iterations,
            seed: 7,
        };
        let t0 = Instant::now();
        let mut err = 0.0;
        for &(a, b, s) in &pairs {
            let est = mc_simrank_pair(&dataset.graph, QueryId(a), QueryId(b), &config.simrank, &mc);
            err += (est - s).abs();
        }
        let dt = t0.elapsed().as_secs_f64() * 1e3 / pairs.len() as f64;
        println!(
            "{:<10} {:>16.4} {:>18.2}",
            walks,
            err / pairs.len() as f64,
            dt
        );
    }
    println!("\nExpected: error shrinks ~1/√walks; cost grows linearly.");
}
