//! Regenerates Table 2: converged SimRank on the Figure 3 graph
//! (C1 = C2 = 0.8).

use simrankpp_core::simrank::simrank;
use simrankpp_core::SimrankConfig;
use simrankpp_graph::fixtures::{figure3_graph, FIGURE3_QUERIES};
use simrankpp_graph::WeightKind;

fn main() {
    simrankpp_bench::banner("table2_simrank", "Table 2 (§4)");
    let g = figure3_graph();
    let cfg = SimrankConfig::paper()
        .with_iterations(100)
        .with_weight_kind(WeightKind::Clicks);
    let r = simrank(&g, &cfg);
    print!("{:<16}", "");
    for q in FIGURE3_QUERIES {
        print!("{q:>16}");
    }
    println!();
    for (i, a) in FIGURE3_QUERIES.iter().enumerate() {
        print!("{a:<16}");
        for (j, _) in FIGURE3_QUERIES.iter().enumerate() {
            if i == j {
                print!("{:>16}", "-");
            } else {
                print!("{:>16.3}", r.queries.get(i as u32, j as u32));
            }
        }
        println!();
    }
    println!("\nPaper values: 0.619 for connected non-tv-pc pairs, 0.437 for pc-tv, 0 for flower.");
}
