//! Ablation: sparse-engine pruning threshold.
//!
//! The unified engine drops pair scores below a threshold after each
//! iteration — the knob that makes large graphs feasible. This sweep
//! measures the accuracy/work trade-off against the exact (threshold 0)
//! scores, and prints the engine's per-iteration diagnostics (stored pairs
//! and max score delta) for both the plain and the weighted variant.

use simrankpp_core::evidence::EvidenceKind;
use simrankpp_core::simrank::simrank;
use simrankpp_core::weighted::weighted_simrank;
use simrankpp_synth::generator::generate;
use std::time::Instant;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner(
        "ablation_pruning",
        "the sparse-engine design choice (DESIGN.md §4)",
    );
    let config = simrankpp_bench::experiment_config(&scale);
    let dataset = generate(&config.generator);
    println!(
        "graph: {} queries, {} ads, {} edges\n",
        dataset.graph.n_queries(),
        dataset.graph.n_ads(),
        dataset.graph.n_edges()
    );

    let exact_cfg = config.simrank.with_prune_threshold(0.0);
    let t0 = Instant::now();
    let exact = simrank(&dataset.graph, &exact_cfg);
    let exact_time = t0.elapsed();

    println!("--- per-iteration engine diagnostics (exact, plain SimRank) ---");
    println!(
        "{:<6} {:>14} {:>12} {:>14}",
        "iter", "query pairs", "ad pairs", "max |Δscore|"
    );
    for (k, (&(qp, ap), &delta)) in exact.pair_counts.iter().zip(&exact.max_deltas).enumerate() {
        println!("{:<6} {qp:>14} {ap:>12} {delta:>14.3e}", k + 1);
    }

    // The same diagnostics come from the shared engine for the weighted walk.
    let weighted = weighted_simrank(&dataset.graph, &exact_cfg, EvidenceKind::Geometric);
    println!("\n--- per-iteration engine diagnostics (exact, weighted SimRank) ---");
    println!(
        "{:<6} {:>14} {:>12} {:>14}",
        "iter", "query pairs", "ad pairs", "max |Δscore|"
    );
    for (k, (&(qp, ap), &delta)) in weighted
        .pair_counts
        .iter()
        .zip(&weighted.max_deltas)
        .enumerate()
    {
        println!("{:<6} {qp:>14} {ap:>12} {delta:>14.3e}", k + 1);
    }

    println!("\n--- pruning sweep (plain SimRank) ---");
    println!(
        "{:<12} {:>12} {:>14} {:>16} {:>12}",
        "threshold", "pairs", "time (ms)", "max |Δscore|", "vs exact"
    );
    println!(
        "{:<12} {:>12} {:>14.0} {:>16} {:>12}",
        "0 (exact)",
        exact.queries.n_pairs(),
        exact_time.as_secs_f64() * 1e3,
        "-",
        "1.00x"
    );
    for threshold in [1e-6, 1e-4, 1e-3, 1e-2] {
        let cfg = config.simrank.with_prune_threshold(threshold);
        let t0 = Instant::now();
        let pruned = simrank(&dataset.graph, &cfg);
        let dt = t0.elapsed();
        let delta = exact.queries.max_abs_diff(&pruned.queries);
        println!(
            "{:<12.0e} {:>12} {:>14.0} {:>16.2e} {:>11.2}x",
            threshold,
            pruned.queries.n_pairs(),
            dt.as_secs_f64() * 1e3,
            delta,
            exact_time.as_secs_f64() / dt.as_secs_f64().max(1e-9)
        );
    }

    // Convergence-based early exit: run far past the fixed iteration budget
    // and let the tolerance stop the loop.
    let tol_cfg = config.simrank.with_iterations(100).with_tolerance(1e-6);
    let t0 = Instant::now();
    let tol = simrank(&dataset.graph, &tol_cfg);
    println!(
        "\ntolerance 1e-6: stopped after {} iterations (converged = {}, last Δ = {:.2e}, {:.0} ms)",
        tol.iterations_run,
        tol.converged,
        tol.max_deltas.last().copied().unwrap_or(0.0),
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!("\nExpected: orders-of-magnitude fewer pairs at threshold 1e-4 with max score\nerror around the threshold itself, and early exit well before 100 iterations.");
}
