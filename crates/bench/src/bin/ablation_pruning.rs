//! Ablation: sparse-engine pruning threshold.
//!
//! The sparse SimRank engine drops pair scores below a threshold after each
//! iteration — the knob that makes large graphs feasible. This sweep
//! measures the accuracy/work trade-off against the exact (threshold 0)
//! scores.

use simrankpp_core::simrank::simrank;
use simrankpp_synth::generator::generate;
use std::time::Instant;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("ablation_pruning", "the sparse-engine design choice (DESIGN.md §4)");
    let config = simrankpp_bench::experiment_config(&scale);
    let dataset = generate(&config.generator);
    println!(
        "graph: {} queries, {} ads, {} edges\n",
        dataset.graph.n_queries(),
        dataset.graph.n_ads(),
        dataset.graph.n_edges()
    );

    let exact_cfg = config.simrank.with_prune_threshold(0.0);
    let t0 = Instant::now();
    let exact = simrank(&dataset.graph, &exact_cfg);
    let exact_time = t0.elapsed();

    println!(
        "{:<12} {:>12} {:>14} {:>16} {:>12}",
        "threshold", "pairs", "time (ms)", "max |Δscore|", "vs exact"
    );
    println!(
        "{:<12} {:>12} {:>14.0} {:>16} {:>12}",
        "0 (exact)",
        exact.queries.n_pairs(),
        exact_time.as_secs_f64() * 1e3,
        "-",
        "1.00x"
    );
    for threshold in [1e-6, 1e-4, 1e-3, 1e-2] {
        let cfg = config.simrank.with_prune_threshold(threshold);
        let t0 = Instant::now();
        let pruned = simrank(&dataset.graph, &cfg);
        let dt = t0.elapsed();
        let delta = exact.queries.max_abs_diff(&pruned.queries);
        println!(
            "{:<12.0e} {:>12} {:>14.0} {:>16.2e} {:>11.2}x",
            threshold,
            pruned.queries.n_pairs(),
            dt.as_secs_f64() * 1e3,
            delta,
            exact_time.as_secs_f64() / dt.as_secs_f64().max(1e-9)
        );
    }
    println!("\nExpected: orders-of-magnitude fewer pairs at threshold 1e-4 with max score\nerror around the threshold itself.");
}
