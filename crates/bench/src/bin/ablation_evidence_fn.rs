//! Ablation: geometric (Eq. 7.3) vs exponential (Eq. 7.4) evidence.
//!
//! §7: "In our experiments we used the first definition although
//! preliminary results with both formulas did not show substantial
//! differences." This ablation checks that claim on the synthetic workload:
//! coverage and P@X for evidence-based SimRank under both formulas.

use simrankpp_core::evidence::EvidenceKind;
use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig};
use simrankpp_graph::QueryId;
use simrankpp_synth::generator::generate;
use simrankpp_synth::EditorialJudge;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("ablation_evidence_fn", "§7's Eq. 7.3-vs-7.4 remark");
    let config = simrankpp_bench::experiment_config(&scale);
    let dataset = generate(&config.generator);
    let judge = EditorialJudge::new(&dataset.world);

    println!(
        "{:<14} {:>10} {:>8} {:>8} {:>8}",
        "evidence", "coverage", "P@1", "P@3", "P@5"
    );
    for kind in [EvidenceKind::Geometric, EvidenceKind::Exponential] {
        let method = Method::compute_with_evidence(
            MethodKind::EvidenceSimrank,
            &dataset.graph,
            &config.simrank,
            kind,
        );
        let rewriter = Rewriter::new(&dataset.graph, method, RewriterConfig::default());

        // Top 200 queries by popularity.
        let mut by_pop: Vec<usize> = (0..dataset.world.n_queries()).collect();
        by_pop.sort_by(|&a, &b| {
            dataset.world.query_popularity[b]
                .partial_cmp(&dataset.world.query_popularity[a])
                .unwrap()
        });
        let sample: Vec<QueryId> = by_pop
            .iter()
            .take(200)
            .map(|&q| QueryId(q as u32))
            .collect();

        let mut covered = 0usize;
        let mut hits = [0usize; 5];
        let mut shown = [0usize; 5];
        for &q in &sample {
            let rewrites = rewriter.rewrites(q, Some(&dataset.world.bids));
            if !rewrites.is_empty() {
                covered += 1;
            }
            for (rank, r) in rewrites.iter().enumerate() {
                let relevant = judge.judge(q, r.query).relevant_at_2();
                for x in rank..5 {
                    shown[x] += 1;
                    if relevant {
                        hits[x] += 1;
                    }
                }
            }
        }
        let p = |x: usize| {
            if shown[x] == 0 {
                0.0
            } else {
                hits[x] as f64 / shown[x] as f64
            }
        };
        println!(
            "{:<14} {:>9.1}% {:>8.3} {:>8.3} {:>8.3}",
            kind.name(),
            covered as f64 / sample.len() as f64 * 100.0,
            p(0),
            p(2),
            p(4)
        );
    }
    println!("\nExpected: the two rows nearly identical (the paper's remark).");
}
