//! Regenerates Figure 8: query coverage of Pearson and the SimRank
//! variants over the traffic-sampled evaluation queries.

use simrankpp_eval::report::render_fig8;
use simrankpp_eval::run_experiment;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("fig8_coverage", "Figure 8 (§10.1)");
    let report = run_experiment(&simrankpp_bench::experiment_config(&scale));
    println!("{}", render_fig8(&report));
    println!("Paper: Pearson 41%, Simrank 98%, evidence-based 99%, weighted 99%.");
    println!("Shape to check: Pearson far below the SimRank family; evidence ≥ Simrank.");
}
