//! Regenerates Table 5: the five-subgraphs dataset statistics
//! (generate → ACL extraction → per-subgraph counts).

use simrankpp_eval::report::render_table5;
use simrankpp_eval::run_experiment;

fn main() {
    let scale = simrankpp_bench::scale();
    simrankpp_bench::banner("table5_dataset", "Table 5 (§9.2)");
    let config = simrankpp_bench::experiment_config(&scale);
    let report = run_experiment(&config);
    println!("{}", render_table5(&report));
    println!(
        "Paper (full Yahoo! scale): subgraphs of 585k/531k/322k/314k/91k queries, \
         1.84M queries total.\nShape to check: a handful of disjoint subgraphs with \
         decreasing sizes whose rows sum to the Total row."
    );
}
