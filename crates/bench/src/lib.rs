//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary honors the `SIMRANKPP_SCALE` environment variable:
//!
//! * `tiny` — seconds; smoke-testing the harness;
//! * `small` (default) — tens of seconds; the example scale (~2k queries);
//! * `paper` — minutes; the bench scale (~50k queries, the Table 5 shape
//!   scaled to a laptop).
//!
//! Scale changes only the dataset size — seeds, method parameters and the
//! evaluation pipeline stay fixed, so results are deterministic per scale.

use simrankpp_core::{RewriterConfig, SimrankConfig};
use simrankpp_eval::ExperimentConfig;
use simrankpp_partition::ExtractConfig;
use simrankpp_synth::GeneratorConfig;

/// The scale selected via `SIMRANKPP_SCALE` (default `small`).
pub fn scale() -> String {
    std::env::var("SIMRANKPP_SCALE").unwrap_or_else(|_| "small".to_owned())
}

/// The generator configuration for a scale name.
pub fn generator_config(scale: &str) -> GeneratorConfig {
    match scale {
        "tiny" => GeneratorConfig::tiny(),
        "paper" => GeneratorConfig::paper_scale(),
        _ => GeneratorConfig::small(),
    }
}

/// The full experiment configuration for a scale name.
pub fn experiment_config(scale: &str) -> ExperimentConfig {
    let generator = generator_config(scale);
    let (n_subgraphs, min_size, max_size, sample, trials, prune) = match scale {
        "tiny" => (2, 6, 60, 30, 8, 0.0),
        "paper" => (5, 200, 30_000, 1200, 50, 1e-4),
        _ => (5, 20, 1200, 1200, 50, 0.0),
    };
    ExperimentConfig {
        generator,
        extract: ExtractConfig {
            n_subgraphs,
            min_size,
            max_size,
            ..ExtractConfig::default()
        },
        simrank: SimrankConfig::default()
            .with_iterations(7)
            .with_prune_threshold(prune)
            .with_threads(if scale == "paper" { 0 } else { 1 }),
        rewriter: RewriterConfig::default(),
        eval_sample_size: sample,
        desirability_trials: trials,
        seed: 0x5EED,
    }
}

/// Prints the standard banner for a regeneration binary.
pub fn banner(target: &str, paper_ref: &str) {
    println!("=== {target} — reproduces {paper_ref} ===");
    println!(
        "scale: {} (set SIMRANKPP_SCALE=tiny|small|paper)\n",
        scale()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve() {
        assert_eq!(generator_config("tiny").n_queries, 60);
        assert_eq!(generator_config("paper").n_queries, 50_000);
        assert_eq!(generator_config("anything").n_queries, 2_000);
    }

    #[test]
    fn experiment_configs_are_consistent() {
        for s in ["tiny", "small", "paper"] {
            let c = experiment_config(s);
            assert!(c.extract.n_subgraphs >= 2);
            assert!(c.simrank.validate().is_ok());
        }
    }
}
