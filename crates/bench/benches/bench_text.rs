//! Criterion benches for the text substrate (stemmer throughput matters:
//! dedup runs over every candidate of every query).

use criterion::{criterion_group, criterion_main, Criterion};
use simrankpp_text::{normalize_query, stem, stem_signature, StemDeduper};

const WORDS: &[&str] = &[
    "cameras",
    "running",
    "relational",
    "conditionally",
    "hopefulness",
    "digitizer",
    "flowers",
    "adjustment",
    "triplicate",
    "operational",
];

fn text(c: &mut Criterion) {
    c.bench_function("porter_stem_10_words", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in WORDS {
                total += stem(w).len();
            }
            total
        })
    });

    c.bench_function("normalize_query", |b| {
        b.iter(|| normalize_query("  Digital CAMERAS, best-price & reviews!  "))
    });

    c.bench_function("stem_signature", |b| {
        b.iter(|| stem_signature("cheap digital cameras online"))
    });

    c.bench_function("dedup_100_candidates", |b| {
        let candidates: Vec<String> = (0..100)
            .map(|i| format!("candidate query number {} variant{}", i % 40, i % 3))
            .collect();
        b.iter(|| {
            let mut d = StemDeduper::new();
            candidates.iter().filter(|c| d.admit(c)).count()
        })
    });
}

criterion_group!(benches, text);
criterion_main!(benches);
