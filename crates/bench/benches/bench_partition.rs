//! Criterion benches for the partitioning substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use simrankpp_partition::{
    approximate_ppr, extract_subgraphs, pagerank, ExtractConfig, FlatView, PagerankConfig,
    PprConfig,
};
use simrankpp_synth::generator::{generate, GeneratorConfig};

fn partition(c: &mut Criterion) {
    let dataset = generate(&GeneratorConfig::small());
    let view = FlatView::new(&dataset.graph);

    let mut group = c.benchmark_group("partition_small");
    group.sample_size(20);
    group.bench_function("pagerank", |b| {
        b.iter(|| pagerank(&view, &PagerankConfig::default()))
    });
    group.bench_function("ppr_push", |b| {
        b.iter(|| approximate_ppr(&view, 0, &PprConfig::default(), None))
    });
    group.bench_function("extract_5_subgraphs", |b| {
        b.iter(|| {
            extract_subgraphs(
                &dataset.graph,
                &ExtractConfig {
                    n_subgraphs: 5,
                    min_size: 20,
                    max_size: 1200,
                    ..ExtractConfig::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, partition);
criterion_main!(benches);
