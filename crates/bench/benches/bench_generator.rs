//! Criterion benches for the synthetic workload generator.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use simrankpp_synth::generator::{generate, GeneratorConfig};
use simrankpp_synth::ZipfSampler;

fn generator(c: &mut Criterion) {
    c.bench_function("generate_tiny", |b| {
        b.iter(|| generate(&GeneratorConfig::tiny()))
    });

    let mut group = c.benchmark_group("generate_small");
    group.sample_size(10);
    group.bench_function("2k_queries", |b| {
        b.iter(|| generate(&GeneratorConfig::small()))
    });
    group.finish();

    c.bench_function("zipf_sample_1k", |b| {
        let z = ZipfSampler::new(10_000, 1.05);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1000 {
                acc += z.sample(&mut rng);
            }
            acc
        })
    });
}

criterion_group!(benches, generator);
criterion_main!(benches);
