//! Serving-layer throughput: precomputed [`RewriteIndex`] lookups vs running
//! the live §9.3 pipeline per request, plus snapshot round-trip cost, on the
//! same 10k-query synthetic graph as `bench_engine`. Lookup benches run 1 000
//! requests per iteration so per-request cost is measurable despite being
//! nanoseconds. Results are recorded in `BENCH_serve.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
use simrankpp_graph::QueryId;
use simrankpp_serve::RewriteIndex;
use simrankpp_synth::generator::{generate, GeneratorConfig, SynthDataset};

const LOOKUPS_PER_ITER: usize = 1_000;

fn ten_k_graph() -> SynthDataset {
    let mut gen = GeneratorConfig::small();
    gen.n_queries = 10_000;
    gen.n_ads = 7_000;
    generate(&gen)
}

fn serve(c: &mut Criterion) {
    let dataset = ten_k_graph();
    let cfg = SimrankConfig::default()
        .with_iterations(5)
        .with_prune_threshold(1e-4);
    let method = Method::compute(MethodKind::WeightedSimrank, &dataset.graph, &cfg);
    let rewriter = Rewriter::new(&dataset.graph, method, RewriterConfig::default());
    let index = RewriteIndex::build(&rewriter, None, 0);
    index.validate().unwrap();
    let n = index.n_queries() as u32;
    let names: Vec<String> = (0..LOOKUPS_PER_ITER as u32)
        .filter_map(|q| index.query_name(QueryId(q % n)).map(str::to_owned))
        .collect();

    let mut group = c.benchmark_group("serve_10k");
    group.sample_size(50);
    group.bench_function(format!("lookup_by_id_x{LOOKUPS_PER_ITER}"), |b| {
        let mut q = 0u32;
        b.iter(|| {
            let mut depth = 0usize;
            for _ in 0..LOOKUPS_PER_ITER {
                depth += index.rewrites_of(QueryId(q)).len();
                q = (q + 1) % n;
            }
            black_box(depth)
        })
    });
    group.bench_function(format!("lookup_by_name_x{LOOKUPS_PER_ITER}"), |b| {
        b.iter(|| {
            let mut depth = 0usize;
            for name in &names {
                depth += index.lookup(name).map_or(0, |s| s.len());
            }
            black_box(depth)
        })
    });
    group.bench_function("live_rewriter_x100", |b| {
        let mut q = 0u32;
        b.iter(|| {
            let mut depth = 0usize;
            for _ in 0..100 {
                depth += rewriter.rewrites(QueryId(q), None).len();
                q = (q + 1) % n;
            }
            black_box(depth)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("serve_10k_offline");
    group.sample_size(10);
    group.bench_function("index_build_t1", |b| {
        b.iter(|| RewriteIndex::build(&rewriter, None, 1))
    });
    group.bench_function("snapshot_roundtrip", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            index.write_snapshot(&mut buf).unwrap();
            black_box(RewriteIndex::read_snapshot(buf.as_slice()).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, serve);
criterion_main!(benches);
