//! Criterion benches for the SimRank engine family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simrankpp_core::evidence::{evidence_simrank, EvidenceKind};
use simrankpp_core::pearson::pearson_scores;
use simrankpp_core::simrank::{simrank, simrank_dense};
use simrankpp_core::weighted::weighted_simrank;
use simrankpp_core::SimrankConfig;
use simrankpp_graph::WeightKind;
use simrankpp_synth::generator::{generate, GeneratorConfig};

fn engines(c: &mut Criterion) {
    let dataset = generate(&GeneratorConfig::tiny());
    let cfg = SimrankConfig::default().with_iterations(5);

    let mut group = c.benchmark_group("engines_tiny");
    group.bench_function("simrank_sparse", |b| {
        b.iter(|| simrank(&dataset.graph, &cfg))
    });
    group.bench_function("simrank_dense", |b| {
        b.iter(|| simrank_dense(&dataset.graph, &cfg))
    });
    group.bench_function("evidence", |b| {
        b.iter(|| evidence_simrank(&dataset.graph, &cfg, EvidenceKind::Geometric))
    });
    group.bench_function("weighted", |b| {
        b.iter(|| weighted_simrank(&dataset.graph, &cfg, EvidenceKind::Geometric))
    });
    group.bench_function("pearson", |b| {
        b.iter(|| pearson_scores(&dataset.graph, WeightKind::ExpectedClickRate))
    });
    group.finish();
}

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simrank_scaling");
    group.sample_size(10);
    for n in [500usize, 1_000, 2_000] {
        let mut gen = GeneratorConfig::small();
        gen.n_queries = n;
        gen.n_ads = (n * 7) / 10;
        let dataset = generate(&gen);
        let cfg = SimrankConfig::default()
            .with_iterations(5)
            .with_prune_threshold(1e-4);
        group.bench_with_input(BenchmarkId::new("sparse_pruned", n), &dataset, |b, d| {
            b.iter(|| simrank(&d.graph, &cfg))
        });
    }
    group.finish();
}

fn pruning(c: &mut Criterion) {
    let dataset = generate(&GeneratorConfig::small());
    let mut group = c.benchmark_group("pruning_threshold");
    group.sample_size(10);
    for threshold in [0.0, 1e-6, 1e-4, 1e-2] {
        let cfg = SimrankConfig::default()
            .with_iterations(5)
            .with_prune_threshold(threshold);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threshold:e}")),
            &cfg,
            |b, cfg| b.iter(|| simrank(&dataset.graph, cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, engines, scaling, pruning);
criterion_main!(benches);
