//! Pull SpGEMM kernel vs flat sorted-pair accumulation vs the historical
//! hash-map path, and component-sharded vs monolithic propagation.
//!
//! All kernels share the same transition factors and chunked parallelism —
//! the only difference is how per-iteration pair contributions are
//! accumulated — so the first groups isolate the
//! accumulation strategy on a 10k-query synthetic graph. The sharded group
//! compares `engine::run` against `engine::run_with_strategy(Components)`
//! (decomposition cost included) on two 10k-query shapes: the standard
//! synth graph (§9.2's one-giant-component regime) and a federated
//! disjoint union of 8 independent worlds (the multi-market regime where
//! component structure is real). Results are recorded in
//! `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simrankpp_core::engine::{self, reference, UniformTransition, WeightedTransition};
use simrankpp_core::weighted::SpreadMode;
use simrankpp_core::{KernelKind, ShardStrategy, SimrankConfig};
use simrankpp_graph::{AdId, ClickGraph, ClickGraphBuilder, QueryId, WeightKind};
use simrankpp_synth::generator::{generate, GeneratorConfig, SynthDataset};

fn ten_k_graph() -> SynthDataset {
    let mut gen = GeneratorConfig::small();
    gen.n_queries = 10_000;
    gen.n_ads = 7_000;
    generate(&gen)
}

/// A 10k-query graph as the disjoint union of `k` independent worlds
/// (distinct seeds, offset id ranges) — the shape a multi-market /
/// multi-language deployment produces, where every market is its own
/// component.
fn federated_graph(k: usize) -> ClickGraph {
    let per_q = 10_000 / k;
    let per_a = 7_000 / k;
    let mut b = ClickGraphBuilder::new();
    b.reserve_queries((per_q * k) as u32);
    b.reserve_ads((per_a * k) as u32);
    for world in 0..k {
        let mut gen = GeneratorConfig::small();
        gen.n_queries = per_q;
        gen.n_ads = per_a;
        gen.seed = 0xFEDE_0000 + world as u64;
        let d = generate(&gen);
        let (qo, ao) = ((world * per_q) as u32, (world * per_a) as u32);
        for (q, a, e) in d.graph.edges() {
            b.add_edge(QueryId(qo + q.0), AdId(ao + a.0), *e);
        }
    }
    b.build()
}

fn accumulation(c: &mut Criterion) {
    let dataset = ten_k_graph();
    let cfg = SimrankConfig::default()
        .with_iterations(5)
        .with_prune_threshold(1e-4);

    let cfg_pull = cfg.with_kernel(KernelKind::Pull);
    let cfg_flat = cfg.with_kernel(KernelKind::Flat);

    let mut group = c.benchmark_group("engine_10k");
    group.sample_size(10);
    group.bench_function("pull_uniform", |b| {
        b.iter(|| engine::run(&dataset.graph, &cfg_pull, &UniformTransition))
    });
    group.bench_function("flat_uniform", |b| {
        b.iter(|| engine::run(&dataset.graph, &cfg_flat, &UniformTransition))
    });
    group.bench_function("hashmap_uniform", |b| {
        b.iter(|| reference::run_hashmap(&dataset.graph, &cfg, &UniformTransition))
    });
    let weighted = WeightedTransition {
        kind: WeightKind::ExpectedClickRate,
        spread: SpreadMode::Exponential,
    };
    group.bench_function("pull_weighted", |b| {
        b.iter(|| engine::run(&dataset.graph, &cfg_pull, &weighted))
    });
    group.bench_function("flat_weighted", |b| {
        b.iter(|| engine::run(&dataset.graph, &cfg_flat, &weighted))
    });
    group.bench_function("hashmap_weighted", |b| {
        b.iter(|| reference::run_hashmap(&dataset.graph, &cfg, &weighted))
    });
    group.finish();
}

fn sharded(c: &mut Criterion) {
    let standard = ten_k_graph().graph;
    let federated = federated_graph(8);
    let cfg = SimrankConfig::default()
        .with_iterations(5)
        .with_prune_threshold(1e-4);
    let cfg_sharded = cfg.with_sharding(ShardStrategy::Components);

    let mut group = c.benchmark_group("engine_10k_sharded");
    group.sample_size(10);
    for (name, g) in [("standard", &standard), ("federated8", &federated)] {
        group.bench_with_input(BenchmarkId::new("monolithic", name), g, |b, g| {
            b.iter(|| engine::run(g, &cfg, &UniformTransition))
        });
        group.bench_with_input(BenchmarkId::new("components", name), g, |b, g| {
            b.iter(|| engine::run_with_strategy(g, &cfg_sharded, &UniformTransition))
        });
    }
    // Steady-state regime: past the first few iterations the pair set is
    // stable and per-iteration cost dominates, where the per-component
    // working sets (prev/next merges, max-delta scans) are smaller and
    // cache-friendlier than the monolithic whole — the superlinear-cost
    // effect component decomposition exploits.
    let deep = cfg.with_iterations(20);
    let deep_sharded = deep.with_sharding(ShardStrategy::Components);
    group.bench_with_input(
        BenchmarkId::new("monolithic", "federated8_deep20"),
        &federated,
        |b, g| b.iter(|| engine::run(g, &deep, &UniformTransition)),
    );
    group.bench_with_input(
        BenchmarkId::new("components", "federated8_deep20"),
        &federated,
        |b, g| b.iter(|| engine::run_with_strategy(g, &deep_sharded, &UniformTransition)),
    );
    group.finish();
}

fn threads(c: &mut Criterion) {
    let dataset = ten_k_graph();
    let mut group = c.benchmark_group("engine_10k_threads");
    group.sample_size(10);
    for t in [1usize, 4] {
        let cfg = SimrankConfig::default()
            .with_iterations(5)
            .with_prune_threshold(1e-4)
            .with_threads(t);
        group.bench_with_input(BenchmarkId::new("pull_uniform", t), &cfg, |b, cfg| {
            b.iter(|| engine::run(&dataset.graph, cfg, &UniformTransition))
        });
        let flat = cfg.with_kernel(KernelKind::Flat);
        group.bench_with_input(BenchmarkId::new("flat_uniform", t), &flat, |b, cfg| {
            b.iter(|| engine::run(&dataset.graph, cfg, &UniformTransition))
        });
    }
    group.finish();
}

criterion_group!(benches, accumulation, sharded, threads);
criterion_main!(benches);
