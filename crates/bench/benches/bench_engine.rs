//! Flat sorted-pair accumulation vs the historical hash-map path.
//!
//! Both paths share the same transition factors and chunked parallelism —
//! the only difference is how per-iteration pair contributions are
//! accumulated — so this bench isolates the accumulation strategy on a
//! 10k-query synthetic graph. Results are recorded in `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simrankpp_core::engine::{self, reference, UniformTransition, WeightedTransition};
use simrankpp_core::weighted::SpreadMode;
use simrankpp_core::SimrankConfig;
use simrankpp_graph::WeightKind;
use simrankpp_synth::generator::{generate, GeneratorConfig, SynthDataset};

fn ten_k_graph() -> SynthDataset {
    let mut gen = GeneratorConfig::small();
    gen.n_queries = 10_000;
    gen.n_ads = 7_000;
    generate(&gen)
}

fn accumulation(c: &mut Criterion) {
    let dataset = ten_k_graph();
    let cfg = SimrankConfig::default()
        .with_iterations(5)
        .with_prune_threshold(1e-4);

    let mut group = c.benchmark_group("engine_10k");
    group.sample_size(10);
    group.bench_function("flat_uniform", |b| {
        b.iter(|| engine::run(&dataset.graph, &cfg, &UniformTransition))
    });
    group.bench_function("hashmap_uniform", |b| {
        b.iter(|| reference::run_hashmap(&dataset.graph, &cfg, &UniformTransition))
    });
    let weighted = WeightedTransition {
        kind: WeightKind::ExpectedClickRate,
        spread: SpreadMode::Exponential,
    };
    group.bench_function("flat_weighted", |b| {
        b.iter(|| engine::run(&dataset.graph, &cfg, &weighted))
    });
    group.bench_function("hashmap_weighted", |b| {
        b.iter(|| reference::run_hashmap(&dataset.graph, &cfg, &weighted))
    });
    group.finish();
}

fn threads(c: &mut Criterion) {
    let dataset = ten_k_graph();
    let mut group = c.benchmark_group("engine_10k_threads");
    group.sample_size(10);
    for t in [1usize, 4] {
        let cfg = SimrankConfig::default()
            .with_iterations(5)
            .with_prune_threshold(1e-4)
            .with_threads(t);
        group.bench_with_input(BenchmarkId::new("flat_uniform", t), &cfg, |b, cfg| {
            b.iter(|| engine::run(&dataset.graph, cfg, &UniformTransition))
        });
    }
    group.finish();
}

criterion_group!(benches, accumulation, threads);
criterion_main!(benches);
