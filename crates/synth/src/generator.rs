//! Assembles the synthetic click graph (DESIGN.md §5 substitution for the
//! two-week Yahoo! click graph).
//!
//! Pipeline per generated world:
//!
//! 1. topics on a relatedness ring, each with a term lexicon and a set of
//!    *intents* (1–2 core terms);
//! 2. queries: Zipf topic choice → Zipf intent choice → morphological
//!    variant rendering; traffic popularity Zipf over query rank;
//! 3. ads: Zipf topic choice, advertiser-style `term-N.com` names, a
//!    quality score;
//! 4. back-end matching: each query gets a heavy-tailed number of candidate
//!    ads, mostly same-topic, some related-topic, occasionally random —
//!    ranked by a bid proxy into display positions;
//! 5. click simulation per (query, ad, position) with the position-bias
//!    model; edges keep §2's three weights; an edge exists only if it
//!    received ≥ 1 click (the paper's definition);
//! 6. bid assignment: popular queries are more likely to carry bids.
//!
//! Same-intent queries receive correlated (intent, ad) relevance jitter, so
//! "precise rewrite" pairs genuinely co-click the same ads — the structure
//! SimRank is supposed to discover.

use crate::bids::assign_bids;
use crate::clickmodel::ClickModel;
use crate::powerlaw::{bounded_pareto, ZipfSampler};
use crate::topics::{topic_terms, Intent, World};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simrankpp_graph::{ClickGraph, ClickGraphBuilder, QueryId};
use simrankpp_util::FxHashSet;

/// Generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Target number of distinct queries (may come out slightly lower after
    /// name dedup).
    pub n_queries: usize,
    /// Number of ads.
    pub n_ads: usize,
    /// Number of topics.
    pub n_topics: usize,
    /// Intents per topic.
    pub intents_per_topic: usize,
    /// Zipf exponent of query traffic popularity.
    pub popularity_alpha: f64,
    /// Pareto exponent of the candidate-ads-per-query distribution.
    pub candidates_alpha: f64,
    /// Cap on candidate ads per query.
    pub max_ads_per_query: u64,
    /// Impressions the most popular query generates over the window.
    pub base_impressions: u64,
    /// Base probability that a query carries a bid.
    pub bid_rate: f64,
    /// Position-bias click model.
    pub click_model: ClickModel,
    /// Master RNG seed (everything is deterministic given this).
    pub seed: u64,
}

impl GeneratorConfig {
    /// ~60 queries; unit-test scale.
    pub fn tiny() -> Self {
        GeneratorConfig {
            n_queries: 60,
            n_ads: 40,
            n_topics: 4,
            intents_per_topic: 4,
            popularity_alpha: 1.0,
            candidates_alpha: 2.2,
            max_ads_per_query: 8,
            base_impressions: 2_000,
            bid_rate: 0.7,
            click_model: ClickModel::default(),
            seed: 0xC11C_C11C,
        }
    }

    /// ~2 000 queries; example/integration scale.
    pub fn small() -> Self {
        GeneratorConfig {
            n_queries: 2_000,
            n_ads: 1_400,
            n_topics: 20,
            intents_per_topic: 12,
            popularity_alpha: 1.05,
            candidates_alpha: 2.2,
            max_ads_per_query: 15,
            base_impressions: 20_000,
            bid_rate: 0.6,
            click_model: ClickModel::default(),
            seed: 0xC11C_C11C,
        }
    }

    /// ~50 000 queries; bench scale (the paper's Table 5 shape, scaled to a
    /// laptop: same power-law family, ~1/10 node count of one subgraph).
    pub fn paper_scale() -> Self {
        GeneratorConfig {
            n_queries: 50_000,
            n_ads: 35_000,
            n_topics: 120,
            intents_per_topic: 40,
            popularity_alpha: 1.05,
            candidates_alpha: 2.3,
            max_ads_per_query: 20,
            base_impressions: 50_000,
            bid_rate: 0.55,
            click_model: ClickModel::default(),
            seed: 0xC11C_C11C,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The generated dataset: the click graph plus its ground truth.
#[derive(Debug)]
pub struct SynthDataset {
    /// The §2 click graph (named nodes, full edge weights).
    pub graph: ClickGraph,
    /// Planted ground truth (topics, intents, popularity, bids).
    pub world: World,
    /// The configuration that produced it.
    pub config: GeneratorConfig,
}

/// Generates a synthetic dataset.
pub fn generate(config: &GeneratorConfig) -> SynthDataset {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    assert!(config.n_topics >= 1 && config.n_topics <= u16::MAX as usize);

    // --- Topics and intents -------------------------------------------------
    let lexicons: Vec<Vec<String>> = (0..config.n_topics as u16)
        .map(|t| topic_terms(t, 8 + config.intents_per_topic))
        .collect();
    let mut intents: Vec<Intent> = Vec::new();
    let mut intents_of_topic: Vec<Vec<u32>> = vec![Vec::new(); config.n_topics];
    for t in 0..config.n_topics {
        for i in 0..config.intents_per_topic {
            let lex = &lexicons[t];
            let n_terms = 1 + (i % 2); // alternate 1- and 2-term intents
            let mut terms = Vec::with_capacity(n_terms);
            for k in 0..n_terms {
                terms.push(lex[(i * 3 + k * 5) % lex.len()].clone());
            }
            terms.dedup();
            intents_of_topic[t].push(intents.len() as u32);
            intents.push(Intent {
                topic: t as u16,
                terms,
            });
        }
    }

    // --- Queries -------------------------------------------------------------
    let topic_sampler = ZipfSampler::new(config.n_topics, 1.0);
    let intent_sampler = ZipfSampler::new(config.intents_per_topic, 1.0);
    let mut builder = ClickGraphBuilder::new();
    let mut query_topic: Vec<u16> = Vec::new();
    let mut query_intent: Vec<u32> = Vec::new();
    let mut query_name: Vec<String> = Vec::new();
    let mut variant_counter: Vec<usize> = vec![0; intents.len()];

    while query_name.len() < config.n_queries {
        let t = topic_sampler.sample(&mut rng);
        let intent_id = intents_of_topic[t][intent_sampler.sample(&mut rng)];
        let variant = variant_counter[intent_id as usize];
        variant_counter[intent_id as usize] += 1;
        let name = intents[intent_id as usize].render_variant(variant, &mut rng);
        if builder.intern_query(&name).index() < query_name.len() {
            continue; // name collision: already a query, skip
        }
        query_name.push(name);
        query_topic.push(t as u16);
        query_intent.push(intent_id);
        if variant_counter[intent_id as usize] > 64 {
            // An intent exhausted its natural variants; further renders
            // would mostly collide. Spread to other intents.
            variant_counter[intent_id as usize] = 2;
        }
    }

    // Popularity: Zipf over a random permutation of queries, so popular
    // queries land in arbitrary topics.
    let n_q = query_name.len();
    let mut perm: Vec<usize> = (0..n_q).collect();
    for i in (1..n_q).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut query_popularity = vec![0.0f64; n_q];
    for (rank, &q) in perm.iter().enumerate() {
        query_popularity[q] = (rank as f64 + 1.0).powf(-config.popularity_alpha);
    }

    // --- Ads -----------------------------------------------------------------
    let mut ad_topic: Vec<u16> = Vec::with_capacity(config.n_ads);
    let mut ad_quality: Vec<f64> = Vec::with_capacity(config.n_ads);
    let mut ads_of_topic: Vec<Vec<u32>> = vec![Vec::new(); config.n_topics];
    for i in 0..config.n_ads {
        let t = topic_sampler.sample(&mut rng);
        let lex = &lexicons[t];
        let name = format!("{}-{}.com", lex[i % lex.len()], i);
        let ad = builder.intern_ad(&name);
        debug_assert_eq!(ad.index(), i);
        ads_of_topic[t].push(i as u32);
        ad_topic.push(t as u16);
        ad_quality.push(0.7 + 0.3 * rng.gen::<f64>());
    }

    // --- Matching + click simulation -----------------------------------------
    for q in 0..n_q {
        let t = query_topic[q] as usize;
        let n_cand = bounded_pareto(
            &mut rng,
            config.candidates_alpha,
            1,
            config.max_ads_per_query,
        ) as usize;
        let mut candidates: FxHashSet<u32> = FxHashSet::default();
        let mut guard = 0;
        while candidates.len() < n_cand && guard < n_cand * 8 {
            guard += 1;
            let roll: f64 = rng.gen();
            let pool = if roll < 0.80 {
                &ads_of_topic[t]
            } else if roll < 0.95 && config.n_topics > 1 {
                let related = if rng.gen_bool(0.5) {
                    (t + 1) % config.n_topics
                } else {
                    (t + config.n_topics - 1) % config.n_topics
                };
                &ads_of_topic[related]
            } else {
                // any topic
                &ads_of_topic[rng.gen_range(0..config.n_topics)]
            };
            if pool.is_empty() {
                continue;
            }
            candidates.insert(pool[rng.gen_range(0..pool.len())]);
        }

        // Rank candidates by a bid proxy (quality × noise) into positions.
        let mut ranked: Vec<u32> = candidates.into_iter().collect();
        ranked.sort_unstable();
        let mut keyed: Vec<(f64, u32)> = ranked
            .into_iter()
            .map(|a| (ad_quality[a as usize] * (0.8 + 0.4 * rng.gen::<f64>()), a))
            .collect();
        keyed.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap().then(x.1.cmp(&y.1)));

        let impressions = ((config.base_impressions as f64) * query_popularity[q]).round() as u64;
        if impressions == 0 {
            continue;
        }
        for (position, &(_, ad)) in keyed.iter().enumerate() {
            // Intent-correlated relevance jitter: stable per (intent, ad) so
            // same-intent query variants co-click the same ads. The range is
            // kept tight (0.7–1.0, like the quality range) so per-query
            // MEAN click rates stay roughly homogeneous — the property real
            // position-normalized ECRs have, and the one §9.3's desirability
            // experiment depends on (see EXPERIMENTS.md).
            let jitter = stable_jitter(query_intent[q], ad);
            let relevance = (World::topic_affinity_static(
                config.n_topics,
                query_topic[q],
                ad_topic[ad as usize],
            ) * ad_quality[ad as usize]
                * (0.7 + 0.3 * jitter))
                .clamp(0.0, 1.0);
            let edge = config
                .click_model
                .simulate_edge(impressions, relevance, position, &mut rng);
            if edge.clicks >= 1 {
                builder.add_edge(QueryId(q as u32), simrankpp_graph::AdId(ad), edge);
            }
        }
    }

    // --- Bids ------------------------------------------------------------
    let bids = assign_bids(&query_popularity, config.bid_rate, &mut rng);

    let world = World {
        n_topics: config.n_topics,
        query_topic,
        query_intent,
        query_popularity,
        query_name,
        ad_topic,
        ad_quality,
        bids,
    };

    let graph = builder.build();
    debug_assert!(graph.validate().is_ok());
    SynthDataset {
        graph,
        world,
        config: config.clone(),
    }
}

/// Deterministic jitter in [0, 1) from an (intent, ad) pair.
fn stable_jitter(intent: u32, ad: u32) -> f64 {
    let mut h = ((intent as u64) << 32 | ad as u64).wrapping_mul(0x9E3779B97F4A7C15);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 32;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl World {
    /// Static version of [`World::topic_affinity`] usable before the world
    /// struct exists.
    pub fn topic_affinity_static(n_topics: usize, query_topic: u16, ad_topic: u16) -> f64 {
        if query_topic == ad_topic {
            return 1.0;
        }
        let t = n_topics as u16;
        if t >= 2 && ((query_topic + 1) % t == ad_topic || (ad_topic + 1) % t == query_topic) {
            0.35
        } else {
            0.02
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::GraphStats;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&GeneratorConfig::tiny());
        let b = generate(&GeneratorConfig::tiny());
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
        assert_eq!(a.world.query_name, b.world.query_name);
        for ((q1, a1, e1), (q2, a2, e2)) in a.graph.edges().zip(b.graph.edges()) {
            assert_eq!((q1, a1, e1), (q2, a2, e2));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig::tiny());
        let b = generate(&GeneratorConfig::tiny().with_seed(999));
        assert_ne!(
            a.world.query_name, b.world.query_name,
            "different seeds should give different worlds"
        );
    }

    #[test]
    fn world_arrays_align_with_graph() {
        let d = generate(&GeneratorConfig::tiny());
        assert_eq!(d.world.n_queries(), d.graph.n_queries());
        assert_eq!(d.world.n_ads(), d.graph.n_ads());
        // Names align with graph ids.
        for q in d.graph.queries() {
            assert_eq!(
                d.graph.query_name(q).unwrap(),
                d.world.query_name[q.index()]
            );
        }
    }

    #[test]
    fn graph_is_valid_and_nonempty() {
        let d = generate(&GeneratorConfig::tiny());
        d.graph.validate().unwrap();
        assert!(d.graph.n_edges() > 20, "only {} edges", d.graph.n_edges());
    }

    #[test]
    fn every_edge_has_a_click() {
        // §2: an edge exists iff the ad was clicked at least once.
        let d = generate(&GeneratorConfig::tiny());
        for (_, _, e) in d.graph.edges() {
            assert!(e.clicks >= 1);
            assert!(e.clicks <= e.impressions);
            assert!((0.0..=1.0).contains(&e.expected_click_rate));
        }
    }

    #[test]
    fn popular_queries_attract_more_clicks() {
        let d = generate(&GeneratorConfig::small());
        // Popularity drives impressions, so the top popularity decile must
        // accumulate far more clicks than the bottom. (Edge *count* is
        // dominated by the popularity-independent candidate draw, so mean
        // degree is not a robust discriminator — total clicks are.)
        let n = d.world.n_queries();
        let mut by_pop: Vec<usize> = (0..n).collect();
        by_pop.sort_by(|&a, &b| {
            d.world.query_popularity[b]
                .partial_cmp(&d.world.query_popularity[a])
                .unwrap()
        });
        let decile = n / 10;
        let mean_clicks = |idx: &[usize]| {
            idx.iter()
                .map(|&q| {
                    d.graph
                        .ads_of(QueryId(q as u32))
                        .1
                        .iter()
                        .map(|e| e.clicks)
                        .sum::<u64>()
                })
                .sum::<u64>() as f64
                / idx.len() as f64
        };
        let top = mean_clicks(&by_pop[..decile]);
        let bottom = mean_clicks(&by_pop[n - decile..]);
        assert!(
            top > 5.0 * bottom,
            "popular queries should attract far more clicks: {top} vs {bottom}"
        );
    }

    #[test]
    fn same_intent_variants_exist() {
        let d = generate(&GeneratorConfig::tiny());
        let mut intent_counts = std::collections::HashMap::new();
        for &i in &d.world.query_intent {
            *intent_counts.entry(i).or_insert(0usize) += 1;
        }
        assert!(
            intent_counts.values().any(|&c| c >= 2),
            "some intents must have multiple query variants"
        );
    }

    #[test]
    fn ads_per_query_is_heavy_tailed() {
        let d = generate(&GeneratorConfig::small());
        let stats = GraphStats::compute(&d.graph);
        let h = &stats.ads_per_query;
        // More degree-1 queries than degree-3 queries, and some long tail.
        assert!(h.counts.get(1).copied().unwrap_or(0) > h.counts.get(3).copied().unwrap_or(0));
        assert!(h.max_degree() >= 5);
    }

    #[test]
    fn bids_cover_a_reasonable_fraction() {
        let d = generate(&GeneratorConfig::tiny());
        let frac = d.world.bids.len() as f64 / d.world.n_queries() as f64;
        assert!(
            (0.2..=0.95).contains(&frac),
            "bid fraction {frac} out of range"
        );
    }
}
