//! Bid-database simulation (§9.3's bid-term filter list).
//!
//! "We remove queries that are not in a list of all queries that saw bids in
//! the two-week period." Advertisers bid preferentially on high-traffic
//! queries, so bid probability increases with popularity.

#![allow(clippy::needless_range_loop)] // index loops touch parallel arrays

use rand::rngs::SmallRng;
use rand::Rng;
use simrankpp_graph::QueryId;
use simrankpp_util::FxHashSet;

/// Assigns bids: query `q` carries a bid with probability
/// `bid_rate · (0.4 + 0.6 · quantile(popularity))`, so the most popular
/// queries bid at `bid_rate` and the least popular at `0.4·bid_rate`.
pub fn assign_bids(popularity: &[f64], bid_rate: f64, rng: &mut SmallRng) -> FxHashSet<QueryId> {
    let n = popularity.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| popularity[a].partial_cmp(&popularity[b]).unwrap());
    // rank_quantile[q] in [0,1]; 1 = most popular.
    let mut quantile = vec![0.0f64; n];
    for (i, &q) in order.iter().enumerate() {
        quantile[q] = if n > 1 {
            i as f64 / (n - 1) as f64
        } else {
            1.0
        };
    }
    let mut bids = FxHashSet::default();
    for q in 0..n {
        let p = (bid_rate * (0.4 + 0.6 * quantile[q])).clamp(0.0, 1.0);
        if rng.gen_bool(p) {
            bids.insert(QueryId(q as u32));
        }
    }
    bids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn popular_queries_bid_more() {
        let n = 4000;
        let popularity: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).powf(-1.0)).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let bids = assign_bids(&popularity, 0.6, &mut rng);
        let top: usize = (0..n / 10)
            .filter(|&q| bids.contains(&QueryId(q as u32)))
            .count();
        let bottom: usize = (n - n / 10..n)
            .filter(|&q| bids.contains(&QueryId(q as u32)))
            .count();
        assert!(
            top > bottom,
            "top decile bids {top} should exceed bottom decile {bottom}"
        );
    }

    #[test]
    fn rates_bounded() {
        let popularity = vec![1.0, 0.5, 0.1];
        let mut rng = SmallRng::seed_from_u64(2);
        let bids = assign_bids(&popularity, 1.0, &mut rng);
        assert!(bids.len() <= 3);
    }

    #[test]
    fn zero_rate_no_bids() {
        let popularity = vec![1.0; 100];
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(assign_bids(&popularity, 0.0, &mut rng).is_empty());
    }

    #[test]
    fn empty_input() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(assign_bids(&[], 0.5, &mut rng).is_empty());
    }
}
