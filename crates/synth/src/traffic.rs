//! Live-traffic query sampling (§9.2's evaluation-set procedure).
//!
//! "The query set for evaluation is sampled, with uniform probability, from
//! live traffic during the same two-weeks period" — sampling from *traffic*
//! makes a query's selection probability proportional to its frequency, so
//! "queries issued rarely had a smaller probability of appearing in the
//! evaluation set". We reproduce that with popularity-weighted sampling
//! without replacement (Efraimidis–Spirakis A-Res keys).

use rand::rngs::SmallRng;
use rand::Rng;
use simrankpp_graph::QueryId;

/// Samples `n` distinct queries with probability proportional to
/// `popularity`, without replacement. Queries with non-positive popularity
/// are never selected.
pub fn sample_eval_queries(popularity: &[f64], n: usize, rng: &mut SmallRng) -> Vec<QueryId> {
    // A-Res: key = u^(1/w); take the n largest keys.
    let mut keyed: Vec<(f64, u32)> = popularity
        .iter()
        .enumerate()
        .filter(|&(_, &w)| w > 0.0)
        .map(|(q, &w)| {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            (u.powf(1.0 / w), q as u32)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    keyed.truncate(n);
    keyed.into_iter().map(|(_, q)| QueryId(q)).collect()
}

/// Keeps only the sampled queries that exist (with ≥ 1 edge) in the
/// evaluation graph — the paper's 1200 → 120 reduction step. The `resolve`
/// closure maps a parent query to its subgraph id, if present.
pub fn restrict_to_graph(
    sample: &[QueryId],
    mut resolve: impl FnMut(QueryId) -> Option<QueryId>,
) -> Vec<(QueryId, QueryId)> {
    sample
        .iter()
        .filter_map(|&q| resolve(q).map(|sub| (q, sub)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_are_distinct_and_sized() {
        let pop: Vec<f64> = (0..500).map(|i| (i as f64 + 1.0).powf(-1.0)).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let s = sample_eval_queries(&pop, 100, &mut rng);
        assert_eq!(s.len(), 100);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn popular_queries_sampled_more_often() {
        let pop: Vec<f64> = (0..200).map(|i| (i as f64 + 1.0).powf(-1.2)).collect();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut top_hits = 0usize;
        let mut bottom_hits = 0usize;
        for _ in 0..300 {
            let s = sample_eval_queries(&pop, 20, &mut rng);
            top_hits += s.iter().filter(|q| q.index() < 20).count();
            bottom_hits += s.iter().filter(|q| q.index() >= 180).count();
        }
        assert!(
            top_hits > bottom_hits * 2,
            "top {top_hits} vs bottom {bottom_hits}"
        );
    }

    #[test]
    fn requesting_more_than_available_returns_all() {
        let pop = vec![1.0, 2.0, 3.0];
        let mut rng = SmallRng::seed_from_u64(3);
        let s = sample_eval_queries(&pop, 10, &mut rng);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn zero_popularity_never_sampled() {
        let pop = vec![0.0, 1.0, 0.0, 1.0];
        let mut rng = SmallRng::seed_from_u64(4);
        let s = sample_eval_queries(&pop, 4, &mut rng);
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|q| q.index() == 1 || q.index() == 3));
    }

    #[test]
    fn restrict_keeps_resolvable_queries() {
        let sample = vec![QueryId(0), QueryId(1), QueryId(2)];
        let resolved = restrict_to_graph(&sample, |q| {
            if q.index() % 2 == 0 {
                Some(QueryId(q.0 / 2))
            } else {
                None
            }
        });
        assert_eq!(
            resolved,
            vec![(QueryId(0), QueryId(0)), (QueryId(2), QueryId(1))]
        );
    }
}
