//! Click-spam injection (§11: "Spam clicks can mislead our techniques and
//! thus spam-resistant variations of our techniques would be useful").
//!
//! A click-fraud campaign makes one (spam) ad appear clicked from many
//! unrelated queries, which fabricates similarity paths between queries
//! that share nothing but the spammer. The `spam_robustness` bench measures
//! how much each SimRank variant's rewrite precision degrades as campaigns
//! are injected — the experiment the paper leaves as future work.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simrankpp_graph::{AdId, ClickGraph, ClickGraphBuilder, EdgeData, QueryId};

/// One spam campaign's parameters.
#[derive(Debug, Clone, Copy)]
pub struct SpamConfig {
    /// Number of fraudulent ads to create.
    pub n_spam_ads: usize,
    /// Queries that each spam ad is made to appear clicked from.
    pub queries_per_ad: usize,
    /// Fabricated clicks per (query, spam-ad) edge.
    pub clicks_per_edge: u64,
    /// RNG seed for target selection.
    pub seed: u64,
}

impl Default for SpamConfig {
    fn default() -> Self {
        SpamConfig {
            n_spam_ads: 2,
            queries_per_ad: 30,
            clicks_per_edge: 50,
            seed: 0x5BA4,
        }
    }
}

/// Returns a copy of `g` with spam campaigns injected, plus the ids of the
/// spam ads. Requires a named graph (spam ads get `spam-N.example` names).
pub fn inject_click_spam(g: &ClickGraph, config: &SpamConfig) -> (ClickGraph, Vec<AdId>) {
    assert!(
        g.query_interner().is_some() && g.ad_interner().is_some(),
        "spam injection requires a named graph"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut b = ClickGraphBuilder::new();
    // Rebuild the original graph (names preserved, ids preserved because we
    // intern in id order).
    for q in g.queries() {
        b.intern_query(g.query_name(q).unwrap());
    }
    for a in g.ads() {
        b.intern_ad(g.ad_name(a).unwrap());
    }
    for (q, a, e) in g.edges() {
        b.add_edge(q, a, *e);
    }

    let n_q = g.n_queries();
    let mut spam_ads = Vec::with_capacity(config.n_spam_ads);
    for s in 0..config.n_spam_ads {
        let ad = b.intern_ad(&format!("spam-{s}.example"));
        spam_ads.push(ad);
        let mut hit = std::collections::HashSet::new();
        let mut guard = 0;
        while hit.len() < config.queries_per_ad.min(n_q) && guard < n_q * 4 {
            guard += 1;
            let q = rng.gen_range(0..n_q) as u32;
            if hit.insert(q) {
                // Fraudulent clicks: high CTR, uniform across queries.
                b.add_edge(
                    QueryId(q),
                    ad,
                    EdgeData::new(config.clicks_per_edge * 2, config.clicks_per_edge, 0.5),
                );
            }
        }
    }
    let spammed = b.build();
    debug_assert!(spammed.validate().is_ok());
    (spammed, spam_ads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    #[test]
    fn spam_preserves_original_edges() {
        let d = generate(&GeneratorConfig::tiny());
        let (spammed, spam_ads) = inject_click_spam(&d.graph, &SpamConfig::default());
        assert_eq!(spammed.n_queries(), d.graph.n_queries());
        assert_eq!(spammed.n_ads(), d.graph.n_ads() + spam_ads.len());
        for (q, a, e) in d.graph.edges() {
            let q2 = spammed
                .query_by_name(d.graph.query_name(q).unwrap())
                .unwrap();
            let a2 = spammed.ad_by_name(d.graph.ad_name(a).unwrap()).unwrap();
            assert_eq!(spammed.edge(q2, a2), Some(e));
        }
    }

    #[test]
    fn spam_ads_have_wide_reach() {
        let d = generate(&GeneratorConfig::tiny());
        let config = SpamConfig {
            queries_per_ad: 20,
            ..SpamConfig::default()
        };
        let (spammed, spam_ads) = inject_click_spam(&d.graph, &config);
        for ad in spam_ads {
            assert_eq!(spammed.ad_degree(ad), 20);
        }
    }

    #[test]
    fn spam_fabricates_similarity_paths() {
        // Queries connected only through the spam ad become 1-hop related.
        let d = generate(&GeneratorConfig::tiny());
        let (spammed, spam_ads) = inject_click_spam(
            &d.graph,
            &SpamConfig {
                n_spam_ads: 1,
                queries_per_ad: 10,
                ..SpamConfig::default()
            },
        );
        let (victims, _) = spammed.queries_of(spam_ads[0]);
        assert!(victims.len() >= 2);
        // At least one victim pair had no common ad before spam.
        let mut fabricated = false;
        'outer: for (i, &v1) in victims.iter().enumerate() {
            for &v2 in &victims[i + 1..] {
                let o1 = d
                    .graph
                    .query_by_name(spammed.query_name(v1).unwrap())
                    .unwrap();
                let o2 = d
                    .graph
                    .query_by_name(spammed.query_name(v2).unwrap())
                    .unwrap();
                if d.graph.common_ads(o1, o2) == 0 {
                    fabricated = true;
                    break 'outer;
                }
            }
        }
        assert!(
            fabricated,
            "spam should connect previously-unrelated queries"
        );
    }

    #[test]
    fn deterministic() {
        let d = generate(&GeneratorConfig::tiny());
        let (a, _) = inject_click_spam(&d.graph, &SpamConfig::default());
        let (b, _) = inject_click_spam(&d.graph, &SpamConfig::default());
        assert_eq!(a.n_edges(), b.n_edges());
    }
}
