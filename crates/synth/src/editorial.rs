//! Simulated editorial evaluation (§9.3, Table 6).
//!
//! The paper's rewrites were graded 1–4 by Yahoo!'s professional editorial
//! team. The substitution (DESIGN.md §5): a deterministic rubric over the
//! planted ground truth, mirroring Table 6:
//!
//! | Grade | Table 6 meaning | Rubric here |
//! |-------|-----------------|-------------|
//! | 1 Precise | same user intent ("corvette car" → "chevrolet corvette") | same planted intent, or a shared core stem within the topic (a narrowed/broadened form of the same need) |
//! | 2 Approximate | narrowed/broadened/slightly shifted ("apple music player" → "ipod shuffle") | same topic (the generator's topics are fine-grained product categories) |
//! | 3 Possible | same broad category or complementary product ("glasses" → "contact lenses") | ring-adjacent (complementary) topic |
//! | 4 Mismatch | no clear relationship | everything else |
//!
//! "The judgment scores are solely based on the evaluator's knowledge, and
//! not on the contents of the click graph" — likewise the judge reads only
//! the world's ground truth, never the graph.

use crate::topics::{World, MODIFIERS};
use serde::{Deserialize, Serialize};
use simrankpp_graph::QueryId;
use simrankpp_text::{normalize_query, stem, tokenize};
use simrankpp_util::FxHashSet;

/// Table 6 grades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Grade {
    /// 1 — precise rewrite.
    Precise = 1,
    /// 2 — approximate rewrite.
    Approximate = 2,
    /// 3 — possible (marginal) rewrite.
    Possible = 3,
    /// 4 — clear mismatch.
    Mismatch = 4,
}

impl Grade {
    /// Numeric score as the paper reports it (1–4).
    pub fn score(self) -> u8 {
        self as u8
    }

    /// §9.4's first binary task: grades {1,2} are relevant.
    pub fn relevant_at_2(self) -> bool {
        matches!(self, Grade::Precise | Grade::Approximate)
    }

    /// §9.4's second binary task: only grade 1 is relevant.
    pub fn relevant_at_1(self) -> bool {
        matches!(self, Grade::Precise)
    }
}

/// The deterministic judge.
#[derive(Debug, Clone, Copy)]
pub struct EditorialJudge<'w> {
    world: &'w World,
}

impl<'w> EditorialJudge<'w> {
    /// Creates a judge over the world's ground truth.
    pub fn new(world: &'w World) -> Self {
        EditorialJudge { world }
    }

    /// Grades the rewrite `q → r` per the Table 6 rubric.
    pub fn judge(&self, q: QueryId, r: QueryId) -> Grade {
        if q == r {
            return Grade::Precise;
        }
        let w = self.world;
        if w.query_intent[q.index()] == w.query_intent[r.index()] {
            return Grade::Precise;
        }
        let tq = w.query_topic[q.index()];
        let tr = w.query_topic[r.index()];
        if tq == tr {
            // A shared core stem within a topic is a narrowed/broadened form
            // of the same need ("camera" ↔ "digital camera"): precise.
            if self.share_core_stem(q, r) {
                return Grade::Precise;
            }
            return Grade::Approximate;
        }
        if w.topics_related(tq, tr) {
            return Grade::Possible;
        }
        Grade::Mismatch
    }

    /// `true` when the queries share a stemmed core (non-modifier) term.
    fn share_core_stem(&self, q: QueryId, r: QueryId) -> bool {
        let sq = self.core_stems(q);
        let sr = self.core_stems(r);
        !sq.is_disjoint(&sr)
    }

    fn core_stems(&self, q: QueryId) -> FxHashSet<String> {
        let modifiers: FxHashSet<String> = MODIFIERS.iter().map(|m| stem(m)).collect();
        tokenize(&normalize_query(&self.world.query_name[q.index()]))
            .into_iter()
            .map(stem)
            .filter(|s| !modifiers.contains(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_util::FxHashSet as Set;

    fn world() -> World {
        World {
            n_topics: 5,
            //            q0 q1 q2 q3 q4 q5
            query_topic: vec![0, 0, 0, 0, 1, 3],
            query_intent: vec![0, 0, 1, 2, 3, 4],
            query_popularity: vec![1.0; 6],
            query_name: vec![
                "kamelu basi".into(),  // q0: intent 0
                "basis kamelu".into(), // q1: intent 0 (variant)
                "kamelu".into(),       // q2: intent 1, shares stem kamelu
                "droka".into(),        // q3: intent 2, same topic, no shared stem
                "nivo".into(),         // q4: topic 1 (related to 0)
                "zuma".into(),         // q5: topic 3 (unrelated to 0)
            ],
            ad_topic: vec![],
            ad_quality: vec![],
            bids: Set::default(),
        }
    }

    #[test]
    fn same_intent_is_precise() {
        let w = world();
        let j = EditorialJudge::new(&w);
        assert_eq!(j.judge(QueryId(0), QueryId(1)), Grade::Precise);
    }

    #[test]
    fn shared_stem_same_topic_is_precise() {
        // "kamelu basi" vs "kamelu": a narrowed form of the same need.
        let w = world();
        let j = EditorialJudge::new(&w);
        assert_eq!(j.judge(QueryId(0), QueryId(2)), Grade::Precise);
    }

    #[test]
    fn same_topic_no_overlap_is_approximate() {
        let w = world();
        let j = EditorialJudge::new(&w);
        assert_eq!(j.judge(QueryId(0), QueryId(3)), Grade::Approximate);
    }

    #[test]
    fn related_topic_is_possible() {
        let w = world();
        let j = EditorialJudge::new(&w);
        assert_eq!(j.judge(QueryId(0), QueryId(4)), Grade::Possible);
    }

    #[test]
    fn unrelated_topic_is_mismatch() {
        let w = world();
        let j = EditorialJudge::new(&w);
        assert_eq!(j.judge(QueryId(0), QueryId(5)), Grade::Mismatch);
    }

    #[test]
    fn judge_is_symmetric_here() {
        let w = world();
        let j = EditorialJudge::new(&w);
        for a in 0..6u32 {
            for b in 0..6u32 {
                assert_eq!(
                    j.judge(QueryId(a), QueryId(b)),
                    j.judge(QueryId(b), QueryId(a))
                );
            }
        }
    }

    #[test]
    fn grade_helpers() {
        assert_eq!(Grade::Precise.score(), 1);
        assert_eq!(Grade::Mismatch.score(), 4);
        assert!(Grade::Approximate.relevant_at_2());
        assert!(!Grade::Possible.relevant_at_2());
        assert!(Grade::Precise.relevant_at_1());
        assert!(!Grade::Approximate.relevant_at_1());
    }

    #[test]
    fn modifiers_do_not_create_overlap() {
        let mut w = world();
        w.query_name[3] = "cheap droka online".into();
        w.query_name[2] = "cheap kamelu".into();
        let j = EditorialJudge::new(&w);
        // Shared "cheap" must not count as a core stem — still only the
        // same-topic grade, not precise.
        assert_eq!(j.judge(QueryId(2), QueryId(3)), Grade::Approximate);
    }
}
