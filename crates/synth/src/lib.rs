//! Synthetic click-graph workload generator.
//!
//! The paper evaluates on a two-week US Yahoo! click graph plus human
//! editorial judgments — neither of which is available. This crate builds
//! the closest synthetic equivalent (DESIGN.md §5 documents the
//! substitution argument):
//!
//! * [`powerlaw`] — Zipf/power-law samplers (the paper observes power laws
//!   in ads-per-query, queries-per-ad and clicks-per-edge);
//! * [`topics`] — a latent topic world: topics on a relatedness ring,
//!   intents within topics, morphological query variants;
//! * [`clickmodel`] — position-biased click simulation producing
//!   impressions / clicks / expected click rate per edge (§2's weights);
//! * [`generator`] — assembles the world + click simulation into a
//!   [`ClickGraph`](simrankpp_graph::ClickGraph) and ground-truth [`World`];
//! * [`federation`] — streams many independent worlds into one segmented
//!   on-disk store, one segment per world, for beyond-RAM-scale benches;
//! * [`editorial`] — a deterministic stand-in for Yahoo!'s editorial team:
//!   grades (query, rewrite) pairs 1–4 per Table 6's rubric from the
//!   planted ground truth;
//! * [`bids`] — the bid database used by §9.3's bid-term filtering;
//! * [`traffic`] — popularity-proportional query sampling (the "1200
//!   queries from live traffic" procedure);
//! * [`spam`] — click-spam injection for the §11 robustness extension.

pub mod bids;
pub mod clickmodel;
pub mod editorial;
pub mod federation;
pub mod generator;
pub mod powerlaw;
pub mod spam;
pub mod topics;
pub mod traffic;

pub use clickmodel::ClickModel;
pub use editorial::{EditorialJudge, Grade};
pub use federation::{write_federation, write_store, FederationStats, FEDERATION_SEED_BASE};
pub use generator::{GeneratorConfig, SynthDataset};
pub use powerlaw::ZipfSampler;
pub use topics::World;
