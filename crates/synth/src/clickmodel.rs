//! Position-biased click simulation (§2's three edge weights).
//!
//! The paper's expected click rate is "an adjusted clicks over impressions
//! rate" that corrects for display position. We use the standard
//! examination model: the probability a user examines the ad at position
//! `p` (0-based) decays geometrically, and a click happens when the ad is
//! examined *and* relevant:
//!
//! ```text
//! P(click | shown at p) = examination(p) · relevance
//! examination(p)        = γ^p
//! ```
//!
//! The back-end's ECR estimator then divides the observed click-through by
//! the examination probability of the position the ad was shown at, which
//! recovers `relevance` in expectation — exactly the quantity §8's weighted
//! SimRank wants as its edge weight.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simrankpp_graph::EdgeData;

/// Position-bias click model parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClickModel {
    /// Per-position examination decay γ ∈ (0, 1].
    pub position_decay: f64,
}

impl Default for ClickModel {
    fn default() -> Self {
        ClickModel {
            position_decay: 0.65,
        }
    }
}

impl ClickModel {
    /// Examination probability of 0-based position `p`.
    pub fn examination(&self, position: usize) -> f64 {
        self.position_decay.powi(position as i32)
    }

    /// Simulates `impressions` displays of an ad with `relevance` at
    /// `position`, returning the §2 edge weights. The ECR is the
    /// position-adjusted click-through (clamped to [0, 1]).
    pub fn simulate_edge(
        &self,
        impressions: u64,
        relevance: f64,
        position: usize,
        rng: &mut SmallRng,
    ) -> EdgeData {
        let p_click = (self.examination(position) * relevance).clamp(0.0, 1.0);
        let clicks = binomial(impressions, p_click, rng);
        let exam = self.examination(position).max(1e-9);
        let raw_ctr = if impressions > 0 {
            clicks as f64 / impressions as f64
        } else {
            0.0
        };
        let ecr = (raw_ctr / exam).clamp(0.0, 1.0);
        EdgeData {
            impressions,
            clicks,
            expected_click_rate: ecr,
        }
    }
}

/// Samples Binomial(n, p): exact Bernoulli loop for small `n`, normal
/// approximation (clamped) for large `n` — adequate for workload synthesis.
pub fn binomial(n: u64, p: f64, rng: &mut SmallRng) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        let mut c = 0u64;
        for _ in 0..n {
            if rng.gen_bool(p) {
                c += 1;
            }
        }
        return c;
    }
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    // Box-Muller.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + sd * z).round().clamp(0.0, n as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn examination_decays() {
        let m = ClickModel::default();
        assert_eq!(m.examination(0), 1.0);
        assert!(m.examination(1) < 1.0);
        assert!(m.examination(3) < m.examination(1));
    }

    #[test]
    fn simulated_edge_respects_invariants() {
        let m = ClickModel::default();
        let mut rng = SmallRng::seed_from_u64(5);
        for pos in 0..5 {
            let e = m.simulate_edge(500, 0.4, pos, &mut rng);
            assert!(e.clicks <= e.impressions);
            assert!((0.0..=1.0).contains(&e.expected_click_rate));
        }
    }

    #[test]
    fn ecr_recovers_relevance_in_expectation() {
        // Averaged over many simulations, ECR ≈ relevance regardless of
        // position — that is the whole point of the adjustment.
        let m = ClickModel::default();
        let mut rng = SmallRng::seed_from_u64(11);
        for position in [0usize, 2, 4] {
            let relevance = 0.3;
            let mut total = 0.0;
            let runs = 400;
            for _ in 0..runs {
                total += m
                    .simulate_edge(2000, relevance, position, &mut rng)
                    .expected_click_rate;
            }
            let mean = total / runs as f64;
            assert!(
                (mean - relevance).abs() < 0.02,
                "position {position}: mean ECR {mean} vs relevance {relevance}"
            );
        }
    }

    #[test]
    fn lower_positions_get_fewer_clicks() {
        let m = ClickModel::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let top: u64 = (0..200)
            .map(|_| m.simulate_edge(100, 0.5, 0, &mut rng).clicks)
            .sum();
        let low: u64 = (0..200)
            .map(|_| m.simulate_edge(100, 0.5, 4, &mut rng).clicks)
            .sum();
        assert!(top > low * 2, "top {top} vs low {low}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(binomial(0, 0.5, &mut rng), 0);
        assert_eq!(binomial(10, 0.0, &mut rng), 0);
        assert_eq!(binomial(10, 1.0, &mut rng), 10);
        let x = binomial(1000, 0.25, &mut rng);
        assert!(x <= 1000);
    }

    #[test]
    fn binomial_mean_is_np() {
        let mut rng = SmallRng::seed_from_u64(8);
        for (n, p) in [(40u64, 0.3), (5000u64, 0.1)] {
            let runs = 2000;
            let total: u64 = (0..runs).map(|_| binomial(n, p, &mut rng)).sum();
            let mean = total as f64 / runs as f64;
            let expect = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            assert!(
                (mean - expect).abs() < 4.0 * sd / (runs as f64).sqrt() + 0.5,
                "n={n}, p={p}: mean {mean} vs {expect}"
            );
        }
    }
}
