//! Power-law / Zipf samplers.
//!
//! §9.2: "We also observed a number of power-law distributions, including
//! ads-per-query, queries-per-ad and number of clicks per query-ad pair."
//! The generator needs cheap deterministic heavy-tailed samplers.

use rand::Rng;

/// A Zipf(α) sampler over ranks `1..=n` using precomputed cumulative
/// weights (O(log n) per sample by binary search).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `alpha > 0`
    /// (`P(rank k) ∝ k^(−alpha)`).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-alpha);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` when there are no ranks (never: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a rank in `0..n` (0-based; rank 0 is the most probable).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().unwrap();
        let u = rng.gen::<f64>() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// The probability of rank `k` (0-based).
    pub fn probability(&self, k: usize) -> f64 {
        let total = *self.cumulative.last().unwrap();
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        (self.cumulative[k] - prev) / total
    }
}

/// Samples a heavy-tailed positive integer via the discrete inverse-CDF of
/// a bounded Pareto: `P(X ≥ x) ∝ x^(1−alpha)` on `[min, max]`.
pub fn bounded_pareto<R: Rng>(rng: &mut R, alpha: f64, min: u64, max: u64) -> u64 {
    assert!(min >= 1 && max >= min && alpha > 1.0);
    let u: f64 = rng.gen();
    let (lo, hi) = (min as f64, max as f64 + 1.0);
    let a = 1.0 - alpha;
    // Inverse CDF of the continuous bounded Pareto, then floor.
    let x = ((hi.powf(a) - lo.powf(a)) * u + lo.powf(a)).powf(1.0 / a);
    (x.floor() as u64).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(100, 1.1);
        let total: f64 = (0..100).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_zero_is_most_probable() {
        let z = ZipfSampler::new(50, 1.5);
        for k in 1..50 {
            assert!(z.probability(0) >= z.probability(k));
        }
    }

    #[test]
    fn empirical_distribution_tracks_zipf() {
        let z = ZipfSampler::new(10, 1.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        #[allow(clippy::needless_range_loop)]
        for k in 0..10 {
            let expect = z.probability(k);
            let got = counts[k] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "rank {k}: empirical {got} vs {expect}"
            );
        }
    }

    #[test]
    fn samples_in_range() {
        let z = ZipfSampler::new(7, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x = bounded_pareto(&mut rng, 2.2, 1, 500);
            assert!((1..=500).contains(&x));
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // Most mass near the minimum, but the tail is populated.
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<u64> = (0..20_000)
            .map(|_| bounded_pareto(&mut rng, 2.0, 1, 1000))
            .collect();
        let ones = samples.iter().filter(|&&x| x == 1).count();
        let big = samples.iter().filter(|&&x| x > 100).count();
        assert!(ones > samples.len() / 3, "mode should be at the minimum");
        assert!(big > 0, "tail should be reachable");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zipf_rejects_bad_alpha() {
        ZipfSampler::new(10, 0.0);
    }
}
