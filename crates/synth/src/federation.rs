//! Federated scale-out: many independent synthetic worlds streamed into a
//! single segmented on-disk store.
//!
//! The paper's two-week Yahoo! click graph holds millions of queries; no
//! single synthetic world here gets close without blowing up build memory.
//! Federation sidesteps that: generate many *independent* worlds (disjoint
//! topic universes, distinct seeds) and append each as one self-contained
//! segment of a [`SegmentedStore`](simrankpp_graph::SegmentedStore). Only
//! one world is ever materialized at a time, so writing a million-query
//! store needs the memory of a two-thousand-query one.
//!
//! Worlds are disjoint by construction, so every segment is a union of
//! whole connected components — exactly the invariant the segmented
//! pipeline (`RewriteIndex::build_segmented`) relies on. Global ids are
//! assigned contiguously per world in append order, which keeps the
//! local→global maps monotone and therefore preserves equal-score
//! tie-breaks bit-for-bit against a monolithic build of the same graph.
//!
//! Names are stripped: at this scale the name blob would dominate the
//! store, and the scale benches address rows by id. A store for serving
//! by name should come from `serve segment` on a named TSV instead.

use std::io::{self, BufWriter, Write};
use std::path::Path;

use simrankpp_graph::{ClickGraph, ClickGraphBuilder, Segment, SegmentWriter};

use crate::generator::{generate, GeneratorConfig};

/// Base seed for federated worlds: world `w` generates with
/// `FEDERATION_SEED_BASE + w`, matching the bench harness convention.
pub const FEDERATION_SEED_BASE: u64 = 0xFEDE_0000;

/// What [`write_store`] produced, summed over all appended worlds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FederationStats {
    /// Worlds generated (== segments in the store).
    pub n_worlds: usize,
    /// Total query nodes across all worlds.
    pub total_queries: u64,
    /// Total ad nodes across all worlds.
    pub total_ads: u64,
    /// Total edges across all worlds.
    pub total_edges: u64,
    /// Final store size in bytes.
    pub file_bytes: u64,
}

/// Rebuilds `g` without its interners, preserving node counts (isolated
/// nodes included) and every edge. CSR order is id-sorted either way, so
/// the nameless graph is structurally identical.
fn strip_names(g: &ClickGraph) -> ClickGraph {
    let mut b = ClickGraphBuilder::with_capacity(g.n_edges());
    b.reserve_queries(g.n_queries() as u32);
    b.reserve_ads(g.n_ads() as u32);
    for (q, a, e) in g.edges() {
        b.add_edge(q, a, *e);
    }
    b.build()
}

/// Streams freshly generated worlds into `sink` until at least
/// `target_queries` query nodes have been written, one segment per world.
/// World `w` uses `world.with_seed(FEDERATION_SEED_BASE + w)`, so the
/// output is a pure function of `(world, target_queries)`.
pub fn write_federation<W: Write>(
    world: &GeneratorConfig,
    target_queries: u64,
    sink: W,
) -> io::Result<(W, FederationStats)> {
    let mut writer = SegmentWriter::new(sink)?;
    let mut q_base: u64 = 0;
    let mut a_base: u64 = 0;
    let mut total_edges: u64 = 0;
    let mut n_worlds = 0usize;

    while q_base < target_queries {
        let cfg = world
            .clone()
            .with_seed(FEDERATION_SEED_BASE + n_worlds as u64);
        let dataset = generate(&cfg);
        let graph = strip_names(&dataset.graph);
        let (nq, na, ne) = (graph.n_queries(), graph.n_ads(), graph.n_edges());
        if q_base + nq as u64 > u32::MAX as u64 || a_base + na as u64 > u32::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "federated store exceeds u32 id space",
            ));
        }
        let queries: Vec<u32> = (0..nq as u32).map(|i| q_base as u32 + i).collect();
        let ads: Vec<u32> = (0..na as u32).map(|i| a_base as u32 + i).collect();
        writer.append(&Segment {
            graph,
            queries,
            ads,
        })?;
        q_base += nq as u64;
        a_base += na as u64;
        total_edges += ne as u64;
        n_worlds += 1;
    }

    let (sink, file_bytes) = writer.finish()?;
    Ok((
        sink,
        FederationStats {
            n_worlds,
            total_queries: q_base,
            total_ads: a_base,
            total_edges,
            file_bytes,
        },
    ))
}

/// [`write_federation`] to a file path, buffered.
pub fn write_store(
    world: &GeneratorConfig,
    target_queries: u64,
    path: &Path,
) -> io::Result<FederationStats> {
    // A multi-gigabyte store is exactly the artifact a torn write hurts
    // most: stream into the temp sibling, then fsync + rename + dir-fsync.
    let (atomic, file) = simrankpp_util::AtomicFile::create(path)?;
    let (writer, stats) = write_federation(world, target_queries, BufWriter::new(file))?;
    let file = writer.into_inner().map_err(|e| e.into_error())?;
    atomic.commit(file)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::SegmentedStore;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn federated_store_roundtrips_with_contiguous_ids() {
        let path = tmp("simrankpp_federation_roundtrip.seg");
        let world = GeneratorConfig::tiny();
        let stats = write_store(&world, 150, &path).unwrap();
        assert!(
            stats.n_worlds >= 2,
            "tiny worlds should need several appends"
        );
        assert!(stats.total_queries >= 150);

        let mut store = SegmentedStore::open(&path).unwrap();
        assert_eq!(store.n_segments(), stats.n_worlds);
        assert_eq!(store.total_queries(), stats.total_queries);
        assert_eq!(store.total_ads(), stats.total_ads);
        assert_eq!(store.total_edges(), stats.total_edges);
        assert!(!store.has_names());
        assert_eq!(store.file_len(), stats.file_bytes);

        // Global ids are contiguous in append order on both sides.
        let (mut next_q, mut next_a) = (0u32, 0u32);
        for i in 0..store.n_segments() {
            let seg = store.load_segment(i).unwrap();
            seg.graph.validate().unwrap();
            assert!(!seg.has_names());
            for (local, &global) in seg.queries.iter().enumerate() {
                assert_eq!(global, next_q + local as u32);
            }
            for (local, &global) in seg.ads.iter().enumerate() {
                assert_eq!(global, next_a + local as u32);
            }
            next_q += seg.graph.n_queries() as u32;
            next_a += seg.graph.n_ads() as u32;
        }
        assert_eq!(next_q as u64, stats.total_queries);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn federation_is_deterministic() {
        let world = GeneratorConfig::tiny();
        let (a, sa) = write_federation(&world, 100, Vec::new()).unwrap();
        let (b, sb) = write_federation(&world, 100, Vec::new()).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a, b, "same config must produce identical bytes");
    }

    #[test]
    fn stripped_worlds_keep_structure() {
        let d = generate(&GeneratorConfig::tiny());
        let bare = strip_names(&d.graph);
        assert_eq!(bare.n_queries(), d.graph.n_queries());
        assert_eq!(bare.n_ads(), d.graph.n_ads());
        assert_eq!(bare.n_edges(), d.graph.n_edges());
        assert!(bare.query_interner().is_none());
        for (q, a, e) in d.graph.edges() {
            assert_eq!(bare.edge(q, a), Some(e));
        }
    }
}
