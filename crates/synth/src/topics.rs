//! The latent topic world behind the synthetic click graph.
//!
//! Ground truth the generator plants and the editorial judge reads:
//!
//! * **Topics** sit on a relatedness ring: topic `t` is *related* to
//!   `t ± 1 (mod T)` — the "complementary product" relationships Table 6's
//!   grade 3 describes (camera ↔ battery).
//! * **Intents** live inside a topic: an intent is a specific user need
//!   ("buy a digital camera") realized by several morphological query
//!   variants — plural inflection, word-order permutation, generic modifier
//!   words. Same intent ⇒ Table 6 grade 1 (precise rewrite).
//! * Each **query** carries its topic, intent, term list and a traffic
//!   popularity; each **ad** carries its topic and a quality score.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simrankpp_graph::QueryId;
use simrankpp_util::FxHashSet;

/// Generic modifier words queries mix in ("cheap camera", "camera online").
pub const MODIFIERS: &[&str] = &[
    "cheap", "best", "buy", "online", "new", "free", "discount", "sale", "review", "deals",
];

/// Ground truth of the generated world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// Number of topics on the relatedness ring.
    pub n_topics: usize,
    /// Primary topic per query.
    pub query_topic: Vec<u16>,
    /// Intent id per query (globally unique across topics).
    pub query_intent: Vec<u32>,
    /// Traffic weight per query (relative frequency in live traffic).
    pub query_popularity: Vec<f64>,
    /// Display name per query (same order as graph ids).
    pub query_name: Vec<String>,
    /// Primary topic per ad.
    pub ad_topic: Vec<u16>,
    /// Intrinsic quality (click propensity) per ad, in (0, 1].
    pub ad_quality: Vec<f64>,
    /// Queries that saw at least one bid in the window (§9.3 filter list).
    pub bids: FxHashSet<QueryId>,
}

impl World {
    /// `true` when topics `a` and `b` are ring-adjacent (complementary).
    pub fn topics_related(&self, a: u16, b: u16) -> bool {
        if a == b {
            return false;
        }
        let t = self.n_topics as u16;
        if t < 2 {
            return false;
        }
        (a + 1) % t == b || (b + 1) % t == a
    }

    /// Topic affinity used by the click model: 1 for same topic, a fraction
    /// for related, near-zero otherwise.
    pub fn topic_affinity(&self, query_topic: u16, ad_topic: u16) -> f64 {
        if query_topic == ad_topic {
            1.0
        } else if self.topics_related(query_topic, ad_topic) {
            0.35
        } else {
            0.02
        }
    }

    /// Number of queries in the world.
    pub fn n_queries(&self) -> usize {
        self.query_topic.len()
    }

    /// Number of ads in the world.
    pub fn n_ads(&self) -> usize {
        self.ad_topic.len()
    }
}

/// Deterministic pseudo-English term lexicon.
///
/// Terms are built from consonant-vowel syllables so they stem cleanly (the
/// plural variants exercise the Porter stemmer exactly like real queries).
/// Topic `t`'s terms all start with a distinct syllable, which keeps
/// lexicons disjoint across topics.
pub fn topic_terms(topic: u16, n_terms: usize) -> Vec<String> {
    const ONSETS: &[&str] = &[
        "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z",
        "br", "cl", "dr", "fl", "gr", "pl", "st", "tr",
    ];
    const VOWELS: &[&str] = &["a", "e", "i", "o", "u"];
    const CODAS: &[&str] = &["n", "r", "l", "m", "t", "x", "nd", "rk", "st"];
    let mut out = Vec::with_capacity(n_terms);
    for i in 0..n_terms {
        // Mix topic and index through an LCG so adjacent topics differ.
        let mut h = (topic as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = |n: usize| {
            h = h
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((h >> 33) as usize) % n
        };
        let mut term = String::new();
        term.push_str(ONSETS[(topic as usize) % ONSETS.len()]);
        term.push_str(VOWELS[next(VOWELS.len())]);
        term.push_str(ONSETS[next(ONSETS.len())]);
        term.push_str(VOWELS[next(VOWELS.len())]);
        if next(2) == 0 {
            term.push_str(CODAS[next(CODAS.len())]);
        }
        out.push(term);
    }
    out.sort();
    out.dedup();
    // Collisions are possible; extend deterministically until n_terms.
    let mut suffix = 0usize;
    while out.len() < n_terms {
        let base = out[suffix % out.len()].clone();
        out.push(format!("{base}{}", ["na", "ri", "ko", "lu"][suffix % 4]));
        suffix += 1;
        out.sort();
        out.dedup();
    }
    out.truncate(n_terms);
    out
}

/// One intent: a topic plus 1–2 core terms.
#[derive(Debug, Clone)]
pub struct Intent {
    /// The topic the intent belongs to.
    pub topic: u16,
    /// Core terms (from the topic lexicon).
    pub terms: Vec<String>,
}

impl Intent {
    /// Renders a morphological variant of this intent:
    /// * `variant 0` — the base form ("kameru lasi");
    /// * odd variants — pluralize the last term;
    /// * variants ≥ 2 — maybe permute word order and/or add a modifier.
    pub fn render_variant(&self, variant: usize, rng: &mut SmallRng) -> String {
        let mut words: Vec<String> = self.terms.clone();
        if variant % 2 == 1 {
            if let Some(last) = words.last_mut() {
                last.push('s');
            }
        }
        if variant >= 2 && words.len() > 1 && rng.gen_bool(0.5) {
            words.reverse();
        }
        if variant >= 2 && rng.gen_bool(0.6) {
            let m = MODIFIERS[rng.gen_range(0..MODIFIERS.len())];
            if rng.gen_bool(0.5) {
                words.insert(0, m.to_owned());
            } else {
                words.push(m.to_owned());
            }
        }
        words.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_world() -> World {
        World {
            n_topics: 4,
            query_topic: vec![0, 0, 1, 2],
            query_intent: vec![0, 0, 1, 2],
            query_popularity: vec![1.0, 0.5, 0.25, 0.1],
            query_name: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            ad_topic: vec![0, 1],
            ad_quality: vec![0.9, 0.5],
            bids: FxHashSet::default(),
        }
    }

    #[test]
    fn ring_relatedness() {
        let w = tiny_world();
        assert!(w.topics_related(0, 1));
        assert!(w.topics_related(0, 3)); // wraps
        assert!(!w.topics_related(0, 2));
        assert!(!w.topics_related(1, 1));
    }

    #[test]
    fn affinity_ordering() {
        let w = tiny_world();
        assert!(w.topic_affinity(0, 0) > w.topic_affinity(0, 1));
        assert!(w.topic_affinity(0, 1) > w.topic_affinity(0, 2));
    }

    #[test]
    fn single_topic_world_has_no_relations() {
        let mut w = tiny_world();
        w.n_topics = 1;
        assert!(!w.topics_related(0, 0));
    }

    #[test]
    fn topic_terms_disjoint_across_topics() {
        let a: FxHashSet<String> = topic_terms(0, 30).into_iter().collect();
        let b: FxHashSet<String> = topic_terms(1, 30).into_iter().collect();
        assert!(a.is_disjoint(&b), "lexicons must not collide");
    }

    #[test]
    fn topic_terms_deterministic_and_sized() {
        let a = topic_terms(5, 40);
        let b = topic_terms(5, 40);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        let set: FxHashSet<&String> = a.iter().collect();
        assert_eq!(set.len(), 40, "terms must be unique");
    }

    #[test]
    fn variants_share_stem_signature_for_plurals() {
        use simrankpp_text::stem_signature;
        let intent = Intent {
            topic: 0,
            terms: vec!["kamelu".into(), "basi".into()],
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let base = intent.render_variant(0, &mut rng);
        let plural = intent.render_variant(1, &mut rng);
        assert_eq!(stem_signature(&base), stem_signature(&plural));
    }

    #[test]
    fn modifier_variants_differ_from_base() {
        let intent = Intent {
            topic: 0,
            terms: vec!["kamelu".into()],
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let mut distinct = FxHashSet::default();
        for v in 0..10 {
            distinct.insert(intent.render_variant(v, &mut rng));
        }
        assert!(
            distinct.len() >= 3,
            "variants should be diverse: {distinct:?}"
        );
    }
}
