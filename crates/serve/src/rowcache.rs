//! A bounded, generation-aware LRU cache of rendered rewrite rows.
//!
//! The live single-source path (see [`crate::server`]) computes a query's
//! rewrites on demand — milliseconds, not microseconds. The cache keeps the
//! **rendered response suffix** (everything after the `ok\t<query>` prefix)
//! behind an `Arc<String>`, so a warm repeat of a cold query is a hash probe
//! plus a pointer clone, and a cache hit is byte-identical to the miss that
//! populated it by construction.
//!
//! Generations make hot-swaps safe: `invalidate` (called by the server's
//! `update` path after an index swap) bumps the generation counter and drops
//! every cached row. A computation that began under an older generation may
//! still call [`RowCache::insert`] afterwards — the stale generation tag
//! makes that insert a no-op instead of poisoning the new graph's cache.
//!
//! All internal links are index-based (`usize::MAX` as the null sentinel)
//! over one slot arena with a free list, so `get`/`insert`/evict are O(1)
//! and eviction recycles slots without reallocating.
//!
//! ## Poisoning
//!
//! The internal mutex recovers from poisoning ([`PoisonError::into_inner`])
//! instead of propagating a previous holder's panic to every later caller:
//! in the multi-threaded server one panicking handler must not take the
//! cache — and with it every other connection's next `get` — down. Safety
//! argument: none of the LRU operations can panic *between* mutations that
//! must stay paired (link updates complete before map updates are even
//! attempted, and slot-index arithmetic cannot unwind), and the cache is
//! evictable data anyway — the worst conceivable inconsistency is a row
//! served from or dropped out of the wrong recency position, never a wrong
//! row for a key.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use simrankpp_graph::QueryId;
use simrankpp_util::FxHashMap;

/// Null link sentinel for the intrusive LRU list.
const NIL: usize = usize::MAX;

/// A point-in-time snapshot of cache occupancy and traffic counters,
/// reported by the `info` protocol verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Maximum number of cached rows.
    pub capacity: usize,
    /// Rows currently cached (current generation only).
    pub entries: usize,
    /// Lookups answered from the cache since startup.
    pub hits: u64,
    /// Lookups that fell through to live computation since startup.
    pub misses: u64,
    /// Invalidation epoch; bumped by every [`RowCache::invalidate`].
    pub generation: u64,
}

struct Slot {
    qid: u32,
    val: Arc<String>,
    prev: usize,
    next: usize,
}

struct Lru {
    capacity: usize,
    generation: u64,
    /// qid → slot index, current generation only (invalidate clears it).
    map: FxHashMap<u32, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot — the eviction candidate.
    tail: usize,
}

impl Lru {
    /// Detaches `i` from the recency list (it must be linked).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Links `i` at the head (most recently used).
    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }
}

/// A thread-safe bounded LRU of rendered rewrite rows keyed by query id.
///
/// See the module docs for the design; the public surface is
/// [`get`](RowCache::get) / [`insert`](RowCache::insert) /
/// [`invalidate`](RowCache::invalidate) / [`stats`](RowCache::stats).
pub struct RowCache {
    inner: Mutex<Lru>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RowCache {
    /// Creates a cache holding at most `capacity` rows (minimum 1).
    pub fn new(capacity: usize) -> RowCache {
        RowCache {
            inner: Mutex::new(Lru {
                capacity: capacity.max(1),
                generation: 0,
                map: FxHashMap::default(),
                slots: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Locks the LRU, recovering from poisoning (see the module docs: the
    /// cache holds evictable data only, and no operation leaves half-paired
    /// mutations behind a panic point).
    fn lock(&self) -> MutexGuard<'_, Lru> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current invalidation epoch. Capture this **before** computing a
    /// row and pass it to [`insert`](RowCache::insert) so a swap that lands
    /// mid-computation turns the insert into a no-op.
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Looks up the cached row of `q`, marking it most recently used.
    /// Counts a hit or a miss either way.
    pub fn get(&self, q: QueryId) -> Option<Arc<String>> {
        let mut lru = self.lock();
        match lru.map.get(&q.0).copied() {
            Some(i) => {
                lru.unlink(i);
                lru.push_front(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&lru.slots[i].val))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Caches `val` as the row of `q`, evicting the least recently used row
    /// when full. A `generation` older than the current epoch (the cache was
    /// invalidated after the caller started computing) drops the insert.
    pub fn insert(&self, generation: u64, q: QueryId, val: Arc<String>) {
        let mut lru = self.lock();
        if generation != lru.generation {
            return;
        }
        if let Some(&i) = lru.map.get(&q.0) {
            lru.slots[i].val = val;
            lru.unlink(i);
            lru.push_front(i);
            return;
        }
        let i = if lru.map.len() >= lru.capacity {
            // Recycle the LRU slot in place.
            let i = lru.tail;
            lru.unlink(i);
            let evicted = lru.slots[i].qid;
            lru.map.remove(&evicted);
            lru.slots[i].qid = q.0;
            lru.slots[i].val = val;
            i
        } else if let Some(i) = lru.free.pop() {
            lru.slots[i].qid = q.0;
            lru.slots[i].val = val;
            i
        } else {
            lru.slots.push(Slot {
                qid: q.0,
                val,
                prev: NIL,
                next: NIL,
            });
            lru.slots.len() - 1
        };
        lru.push_front(i);
        lru.map.insert(q.0, i);
    }

    /// Bumps the generation and drops every cached row. Called after an
    /// `update` hot-swap: the new graph's scores share nothing with the old
    /// rows, and a stale hit would silently serve the previous generation.
    pub fn invalidate(&self) {
        let mut lru = self.lock();
        lru.generation += 1;
        lru.map.clear();
        lru.free.clear();
        let n_slots = lru.slots.len();
        lru.free.extend(0..n_slots);
        lru.head = NIL;
        lru.tail = NIL;
        // Drop the cached strings now rather than on slot reuse.
        for i in 0..lru.slots.len() {
            lru.slots[i].val = Arc::new(String::new());
        }
    }

    /// Occupancy and traffic counters for the `info` verb.
    pub fn stats(&self) -> CacheStats {
        let lru = self.lock();
        CacheStats {
            capacity: lru.capacity,
            entries: lru.map.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            generation: lru.generation,
        }
    }
}

impl std::fmt::Debug for RowCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("RowCache")
            .field("capacity", &s.capacity)
            .field("entries", &s.entries)
            .field("generation", &s.generation)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let c = RowCache::new(4);
        assert!(c.get(QueryId(1)).is_none());
        c.insert(c.generation(), QueryId(1), row("a"));
        assert_eq!(c.get(QueryId(1)).as_deref().map(String::as_str), Some("a"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.capacity), (1, 1, 1, 4));
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = RowCache::new(2);
        c.insert(0, QueryId(1), row("a"));
        c.insert(0, QueryId(2), row("b"));
        // Touch 1 so 2 becomes the eviction candidate.
        assert!(c.get(QueryId(1)).is_some());
        c.insert(0, QueryId(3), row("c"));
        assert!(c.get(QueryId(2)).is_none(), "LRU entry must be evicted");
        assert!(c.get(QueryId(1)).is_some());
        assert!(c.get(QueryId(3)).is_some());
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let c = RowCache::new(2);
        c.insert(0, QueryId(1), row("a"));
        c.insert(0, QueryId(2), row("b"));
        c.insert(0, QueryId(1), row("a2"));
        c.insert(0, QueryId(3), row("c"));
        assert!(c.get(QueryId(2)).is_none(), "2 was LRU after 1's reinsert");
        assert_eq!(c.get(QueryId(1)).as_deref().map(String::as_str), Some("a2"));
    }

    #[test]
    fn invalidate_hides_old_generation() {
        let c = RowCache::new(4);
        c.insert(0, QueryId(1), row("a"));
        c.invalidate();
        assert_eq!(c.generation(), 1);
        assert!(c.get(QueryId(1)).is_none(), "old-generation row must miss");
        assert_eq!(c.stats().entries, 0);
        // A slot from the old generation is recycled cleanly.
        c.insert(1, QueryId(1), row("a'"));
        assert_eq!(c.get(QueryId(1)).as_deref().map(String::as_str), Some("a'"));
    }

    #[test]
    fn stale_generation_insert_is_dropped() {
        let c = RowCache::new(4);
        let gen_before = c.generation();
        c.invalidate();
        c.insert(gen_before, QueryId(7), row("stale"));
        assert!(c.get(QueryId(7)).is_none(), "stale insert must be a no-op");
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn capacity_floor_is_one() {
        let c = RowCache::new(0);
        c.insert(0, QueryId(1), row("a"));
        c.insert(0, QueryId(2), row("b"));
        assert!(c.get(QueryId(1)).is_none());
        assert!(c.get(QueryId(2)).is_some());
        assert_eq!(c.stats().capacity, 1);
    }

    #[test]
    fn heavy_churn_keeps_list_consistent() {
        let c = RowCache::new(8);
        for round in 0u32..50 {
            for q in 0u32..20 {
                c.insert(0, QueryId((q * 7 + round) % 32), row("x"));
                c.get(QueryId((q * 13 + round) % 32));
            }
        }
        let s = c.stats();
        assert!(s.entries <= 8);
        // Every mapped slot is reachable by walking the list from the head.
        let lru = c.inner.lock().unwrap();
        let mut seen = 0usize;
        let mut i = lru.head;
        let mut prev = NIL;
        while i != NIL {
            assert_eq!(lru.slots[i].prev, prev);
            assert_eq!(lru.map.get(&lru.slots[i].qid), Some(&i));
            prev = i;
            i = lru.slots[i].next;
            seen += 1;
        }
        assert_eq!(lru.tail, prev);
        assert_eq!(seen, lru.map.len());
    }

    #[test]
    fn poisoned_cache_keeps_serving() {
        // A handler thread panics while holding the cache lock — before the
        // into_inner recovery every later lookup() on every other connection
        // panicked on the poisoned mutex instead of serving.
        let c = Arc::new(RowCache::new(4));
        c.insert(0, QueryId(1), row("a"));
        let c2 = Arc::clone(&c);
        let _ = std::thread::spawn(move || {
            let _guard = c2.inner.lock().unwrap();
            panic!("handler dies mid-hold");
        })
        .join();
        assert!(c.inner.is_poisoned(), "the panic must actually poison");
        assert_eq!(
            c.get(QueryId(1)).as_deref().map(String::as_str),
            Some("a"),
            "get() must survive a poisoned cache"
        );
        c.insert(c.generation(), QueryId(2), row("b"));
        assert!(c.get(QueryId(2)).is_some(), "insert() must survive too");
        c.invalidate();
        assert_eq!(c.stats().entries, 0);
    }
}
