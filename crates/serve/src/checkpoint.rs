//! Durable ingest checkpoints: crash-only restart for `serve ingest`.
//!
//! PR 9 made the click graph a stream, but the ingest loop kept its log
//! position only in memory — a crash meant re-reading the log from zero.
//! This module makes the stream restartable from a small durable artifact:
//!
//! * [`Checkpoint`] captures, at an epoch boundary, everything a restart
//!   needs that the click log alone cannot cheaply provide: where in the
//!   log the oldest *surviving* window bucket starts (`replay_offset`),
//!   how far the crashed process had applied (`commit_offset`), the
//!   boundary epoch, the generation counter, the frozen window's
//!   [`fingerprint`](simrankpp_graph::ClickGraph::fingerprint) — and the
//!   full **name universe** (both interners). The names matter: node ids
//!   are stable for a query's entire lifetime, and retired queries stay
//!   in the index as isolated nodes answering `ok\t<q>\t0`. A replay of
//!   only the surviving window would forget them and answer
//!   `err\tunknown query` — observably different from the uninterrupted
//!   run. Carrying the interners makes recovery bit-identical, not just
//!   approximately fresh.
//! * [`write_checkpoint`] commits via the full atomic discipline
//!   ([`simrankpp_util::durable::atomic_write`]): sibling temp, fsync,
//!   rename, directory fsync. A crash mid-commit leaves the previous
//!   checkpoint; recovery just replays a longer tail.
//! * [`read_checkpoint`] refuses hostile files — truncated, bad checksum,
//!   future version — with a structured error carrying the established
//!   rebuild-hint phrasing, never a panic and never a silent zero-offset
//!   restart.
//! * [`resume_ingestor`] rebuilds an [`EpochIngestor`] from checkpoint +
//!   log tail and verifies the replayed window's fingerprint against the
//!   checkpointed one, rejecting divergence (a truncated or rewritten
//!   log) before anything is served.
//!
//! The payload is a checksummed [`simrankpp_util::Arena`] container, the
//! same self-describing section format as snapshot v4 and the segmented
//! store, so torn writes and bit flips are caught by the table and
//! section FNVs.

use crate::ingest::{EpochIngestor, IngestConfig, LogTailer, SpannedRecord};
use simrankpp_graph::Interner;
use simrankpp_util::{Arena, ArenaWriter};
use std::io::{self, Read};
use std::path::Path;

/// Checkpoint container magic.
pub const MAGIC: [u8; 8] = *b"SRPPCKPT";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;

// Section tags.
const CK_META: u64 = 0x01; // u64[META_WORDS]
const CK_QNAME_OFFS: u64 = 0x02; // u64[nq + 1] offsets into the query blob
const CK_QNAME_BLOB: u64 = 0x03; // concatenated UTF-8 query names
const CK_ANAME_OFFS: u64 = 0x04;
const CK_ANAME_BLOB: u64 = 0x05;

const META_WORDS: usize = 8;

/// Everything a `serve ingest --resume` needs to rebuild the exact serving
/// state from the click log.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Byte offset of the first record of the oldest surviving bucket —
    /// where tail replay starts.
    pub replay_offset: u64,
    /// The epoch of that oldest surviving bucket (the resumed window is
    /// born at this epoch).
    pub replay_epoch: u64,
    /// End offset of the last record applied before this checkpoint was
    /// committed; replaying `[replay_offset, commit_offset)` reproduces
    /// the checkpointed window exactly, and the fingerprint is verified
    /// there.
    pub commit_offset: u64,
    /// The window's epoch at commit time.
    pub epoch: u64,
    /// Index generations published so far (monotonic across crashes).
    pub generation: u64,
    /// [`ClickGraph::fingerprint`](simrankpp_graph::ClickGraph::fingerprint)
    /// of the window frozen at the last refresh before commit.
    pub fingerprint: u64,
    /// The window length the stream was running with (a resume with a
    /// different `--window` would silently rebuild a different graph, so
    /// it is refused up front).
    pub window: u64,
    /// Bit pattern of the ECR decay factor, for the same reason.
    pub decay_bits: u64,
    /// Every query name ever interned, in id order.
    pub query_names: Interner,
    /// Every ad name ever interned, in id order.
    pub ad_names: Interner,
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn rebuild_hint(msg: &str) -> io::Error {
    corrupt(&format!(
        "{msg}; delete the checkpoint (or start without --resume) to rebuild from the click log"
    ))
}

fn pack_names(names: &Interner) -> (Vec<u64>, Vec<u8>) {
    let mut offs = Vec::with_capacity(names.len() + 1);
    let mut blob = Vec::new();
    offs.push(0u64);
    for (_, name) in names.iter() {
        blob.extend_from_slice(name.as_bytes());
        offs.push(blob.len() as u64);
    }
    (offs, blob)
}

fn unpack_names(offs: &[u64], blob: &[u8], what: &str) -> io::Result<Interner> {
    if offs.is_empty() {
        return Err(corrupt(&format!("{what}: empty offset table")));
    }
    let mut names = Interner::new();
    for pair in offs.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b < a || b > blob.len() as u64 {
            return Err(corrupt(&format!(
                "{what}: non-monotone or out-of-range offsets"
            )));
        }
        let s = std::str::from_utf8(&blob[a as usize..b as usize])
            .map_err(|_| corrupt(&format!("{what}: invalid UTF-8 name")))?;
        names.intern(s);
    }
    if names.len() + 1 != offs.len() {
        return Err(corrupt(&format!("{what}: duplicate names")));
    }
    Ok(names)
}

/// Captures a checkpoint of `ing` (which must have refreshed at least
/// once, so its fingerprint is meaningful).
pub fn capture(ing: &EpochIngestor) -> Checkpoint {
    let (replay_epoch, replay_offset) = ing.replay_start();
    Checkpoint {
        replay_offset,
        replay_epoch,
        commit_offset: ing.applied_offset(),
        epoch: ing.epoch(),
        generation: ing.generation(),
        fingerprint: ing.last_fingerprint(),
        window: ing.window().window() as u64,
        decay_bits: ing.window().decay().to_bits(),
        query_names: ing.window().query_names().clone(),
        ad_names: ing.window().ad_names().clone(),
    }
}

/// Commits `ck` to `path` atomically and durably.
pub fn write_checkpoint(path: &Path, ck: &Checkpoint) -> io::Result<()> {
    simrankpp_util::fail_point!("checkpoint-commit");
    let meta: [u64; META_WORDS] = [
        ck.replay_offset,
        ck.replay_epoch,
        ck.commit_offset,
        ck.epoch,
        ck.generation,
        ck.fingerprint,
        ck.window,
        ck.decay_bits,
    ];
    let (q_offs, q_blob) = pack_names(&ck.query_names);
    let (a_offs, a_blob) = pack_names(&ck.ad_names);
    let mut aw = ArenaWriter::new(MAGIC, VERSION);
    aw.slice(CK_META, &meta)
        .slice(CK_QNAME_OFFS, &q_offs)
        .section(CK_QNAME_BLOB, &q_blob)
        .slice(CK_ANAME_OFFS, &a_offs)
        .section(CK_ANAME_BLOB, &a_blob);
    simrankpp_util::durable::atomic_write(path, |w| {
        aw.write_to(w)?;
        Ok(())
    })
}

/// Reads and fully validates a checkpoint. Every hostile shape — truncated
/// file, flipped bit, future version, garbage sections — is a structured
/// `InvalidData` error; none of them panic and none silently restart from
/// offset zero.
pub fn read_checkpoint(path: &Path) -> io::Result<Checkpoint> {
    let mut raw = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut raw)?;
    decode_checkpoint(&raw)
}

fn decode_checkpoint(raw: &[u8]) -> io::Result<Checkpoint> {
    if raw.len() < 12 {
        return Err(rebuild_hint("not an ingest checkpoint (truncated header)"));
    }
    if raw[..8] != MAGIC {
        return Err(rebuild_hint("not an ingest checkpoint (bad magic)"));
    }
    let version = u32::from_ne_bytes(raw[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(rebuild_hint(&format!(
            "unsupported checkpoint version {version} (expected {VERSION})"
        )));
    }
    let buf = simrankpp_util::AlignedBytes::copy_from(raw);
    let arena = Arena::parse(buf.as_slice(), MAGIC).map_err(|e| rebuild_hint(&e))?;
    arena.verify_deep().map_err(|e| rebuild_hint(&e))?;
    let meta: &[u64] = arena.slice(CK_META).map_err(|e| rebuild_hint(&e))?;
    if meta.len() != META_WORDS {
        return Err(rebuild_hint(&format!(
            "checkpoint meta holds {} words (expected {META_WORDS})",
            meta.len()
        )));
    }
    let q_offs: &[u64] = arena.slice(CK_QNAME_OFFS).map_err(|e| rebuild_hint(&e))?;
    let q_blob = arena.require(CK_QNAME_BLOB).map_err(|e| rebuild_hint(&e))?;
    let a_offs: &[u64] = arena.slice(CK_ANAME_OFFS).map_err(|e| rebuild_hint(&e))?;
    let a_blob = arena.require(CK_ANAME_BLOB).map_err(|e| rebuild_hint(&e))?;
    let ck = Checkpoint {
        replay_offset: meta[0],
        replay_epoch: meta[1],
        commit_offset: meta[2],
        epoch: meta[3],
        generation: meta[4],
        fingerprint: meta[5],
        window: meta[6],
        decay_bits: meta[7],
        query_names: unpack_names(q_offs, q_blob, "query names")?,
        ad_names: unpack_names(a_offs, a_blob, "ad names")?,
    };
    if ck.replay_offset > ck.commit_offset {
        return Err(rebuild_hint("checkpoint offsets are inconsistent"));
    }
    if ck.window == 0 {
        return Err(rebuild_hint("checkpoint window length is zero"));
    }
    Ok(ck)
}

/// The result of replaying checkpoint + log tail.
#[derive(Debug)]
pub struct Resumed {
    /// The rebuilt pipeline, positioned at the end of the drained log; the
    /// caller runs one recovery refresh, then keeps tailing live.
    pub ingestor: EpochIngestor,
    /// The tailer, positioned after the drained backlog.
    pub tailer: LogTailer,
    /// Records replayed from the log tail (verification + catch-up).
    pub replayed: usize,
    /// How many of those were click events (the `ingest_events` counter
    /// counts events, not marks, so a resumed process reports the same
    /// number an uninterrupted one would).
    pub events: usize,
    /// The epoch reached after draining the backlog.
    pub epoch: u64,
}

/// Rebuilds an ingest pipeline from `ck` plus the click log at `log_path`.
///
/// Replays `[replay_offset, commit_offset)`, freezes, and **verifies the
/// window fingerprint** against the checkpoint — a mismatch (truncated or
/// rewritten log, wrong log file) is refused before anything is served.
/// Then applies whatever backlog exists past `commit_offset` (records the
/// crashed process read but had not checkpointed — re-applying them is
/// exactly what the uninterrupted run did, so the result is identical).
pub fn resume_ingestor(
    log_path: &Path,
    cfg: &IngestConfig,
    ck: &Checkpoint,
) -> io::Result<Resumed> {
    if ck.window != cfg.window as u64 {
        return Err(corrupt(&format!(
            "checkpoint was written with --window {} but ingest is configured with --window {}",
            ck.window, cfg.window
        )));
    }
    if ck.decay_bits != cfg.decay.to_bits() {
        return Err(corrupt(&format!(
            "checkpoint was written with --decay {} but ingest is configured with --decay {}",
            f64::from_bits(ck.decay_bits),
            cfg.decay
        )));
    }
    let mut tailer = LogTailer::open_at(log_path, ck.replay_offset)?;
    let mut ingestor = EpochIngestor::resume(
        cfg.clone(),
        ck.replay_epoch,
        ck.replay_offset,
        ck.query_names.clone(),
        ck.ad_names.clone(),
        ck.generation,
    );
    let backlog = tailer.drain_spanned()?;
    let mut verified = false;
    let mut replayed = 0usize;
    let mut events = 0usize;
    let verify = |ing: &mut EpochIngestor| -> io::Result<()> {
        let got = ing.window().freeze().fingerprint();
        if got != ck.fingerprint {
            return Err(corrupt(&format!(
                "checkpoint fingerprint {:#018x} disagrees with the replayed window {:#018x} \
                 (the click log was truncated or rewritten since the checkpoint); \
                 delete the checkpoint (or start without --resume) to rebuild from the click log",
                ck.fingerprint, got
            )));
        }
        Ok(())
    };
    for SpannedRecord { start, end, rec } in &backlog {
        if !verified && *end > ck.commit_offset {
            // First record past the commit point: the window now holds
            // exactly what the crashed process had applied when it
            // committed — the moment of truth for the fingerprint.
            verify(&mut ingestor)?;
            verified = true;
        }
        if matches!(rec, simrankpp_graph::delta::ClickLogRecord::Event { .. }) {
            events += 1;
        }
        ingestor.apply_record_at(rec, (*start, *end));
        replayed += 1;
    }
    if !verified {
        if ingestor.applied_offset() < ck.commit_offset {
            return Err(corrupt(&format!(
                "click log ends at byte {} but the checkpoint was committed at byte {} \
                 (the log was truncated); delete the checkpoint (or start without --resume) \
                 to rebuild from the click log",
                ingestor.applied_offset(),
                ck.commit_offset
            )));
        }
        verify(&mut ingestor)?;
    }
    let epoch = ingestor.epoch();
    Ok(Resumed {
        ingestor,
        tailer,
        replayed,
        events,
        epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_core::{MethodKind, RewriterConfig, SimrankConfig};
    use simrankpp_graph::delta::{write_click_log, ClickLogRecord};
    use simrankpp_graph::EdgeData;
    use std::io::Write;
    use std::path::PathBuf;

    fn cfg(window: usize) -> IngestConfig {
        IngestConfig {
            window,
            decay: 1.0,
            method: MethodKind::WeightedSimrank,
            config: SimrankConfig::default()
                .with_weight_kind(simrankpp_graph::WeightKind::ExpectedClickRate),
            rewriter: RewriterConfig::default(),
            threads: 1,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srpp-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ev(epoch: u64, q: &str, a: &str, clicks: u64) -> ClickLogRecord {
        ClickLogRecord::Event {
            epoch,
            query: q.into(),
            ad: a.into(),
            data: EdgeData::new(10, clicks, clicks as f64 / 10.0),
        }
    }

    fn mark(epoch: u64) -> ClickLogRecord {
        ClickLogRecord::EpochMark { epoch }
    }

    /// A log long enough that bucket 0 retires: queries seen only early
    /// must survive recovery as isolated known nodes.
    fn demo_log() -> Vec<ClickLogRecord> {
        vec![
            ev(0, "retired-query", "old-ad", 4),
            ev(0, "camera", "ad-cam", 5),
            mark(1),
            ev(1, "camera", "ad-cam", 6),
            ev(1, "tv", "ad-tv", 3),
            mark(2),
            ev(2, "tv", "ad-tv", 7),
            mark(3),
            ev(3, "flights", "ad-fly", 2),
            mark(4),
        ]
    }

    fn write_log(dir: &Path, recs: &[ClickLogRecord]) -> PathBuf {
        let path = dir.join("click.log");
        // allow(file-create): test producer simulating the external log appender
        let mut f = std::fs::File::create(&path).unwrap();
        write_click_log(recs, &mut f).unwrap();
        f.flush().unwrap();
        path
    }

    /// Runs an uninterrupted checkpointed ingest over `recs` and returns
    /// (final ingestor, checkpoint captured at the last boundary).
    fn run_to_end(log: &Path, cfg: &IngestConfig) -> (EpochIngestor, Checkpoint) {
        let mut tailer = LogTailer::open(log).unwrap();
        let mut ing = EpochIngestor::new(cfg.clone());
        for SpannedRecord { start, end, rec } in tailer.drain_spanned().unwrap() {
            ing.apply_record_at(&rec, (start, end));
        }
        ing.refresh().unwrap();
        let ck = capture(&ing);
        (ing, ck)
    }

    #[test]
    fn checkpoint_roundtrips_through_disk() {
        let dir = tmp_dir("roundtrip");
        let log = write_log(&dir, &demo_log());
        let (_, ck) = run_to_end(&log, &cfg(2));
        let path = dir.join("ingest.ckpt");
        write_checkpoint(&path, &ck).unwrap();
        let back = read_checkpoint(&path).unwrap();
        assert_eq!(back, ck);
        // The window has advanced past retirement, so the replay offset is
        // a real mid-log position, not zero.
        assert!(
            ck.replay_offset > 0,
            "window 2 at epoch 4 must not replay from 0"
        );
        assert_eq!(ck.epoch, 4);
        assert_eq!(ck.generation, 1);
        // The name universe includes the retired query.
        assert!(ck.query_names.get("retired-query").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rebuilds_the_window_bit_identically() {
        let dir = tmp_dir("resume");
        let recs = demo_log();
        let log = write_log(&dir, &recs);
        let c = cfg(2);
        let (mut oracle, ck) = run_to_end(&log, &c);

        // Crash here; more records arrive while we were down.
        let mut f = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
        let tail = vec![ev(4, "hotels", "ad-hot", 8), mark(5)];
        write_click_log(&tail, &mut f).unwrap();
        f.flush().unwrap();

        let resumed = resume_ingestor(&log, &c, &ck).unwrap();
        let mut rec_ing = resumed.ingestor;
        assert_eq!(resumed.epoch, 5);
        let (rec_index, _, full) = rec_ing.refresh().unwrap();
        assert!(full, "recovery refresh is a full build");

        // Oracle continues uninterrupted over the same tail.
        let mut t = LogTailer::open_at(&log, oracle.applied_offset()).unwrap();
        for SpannedRecord { start, end, rec } in t.drain_spanned().unwrap() {
            oracle.apply_record_at(&rec, (start, end));
        }
        let (oracle_index, _, _) = oracle.refresh().unwrap();

        assert_eq!(
            rec_ing.window().freeze().fingerprint(),
            oracle.window().freeze().fingerprint(),
            "recovered window must equal the uninterrupted one"
        );
        // Served answers identical, including the retired query staying a
        // known (isolated) node.
        for (_, q) in oracle.window().query_names().iter() {
            let a = oracle_index.lookup(q).expect("oracle knows q");
            let b = rec_index
                .lookup(q)
                .expect("recovered index must know q too");
            assert_eq!(a.ids(), b.ids(), "{q}: ids");
            assert_eq!(
                a.scores().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                b.scores().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "{q}: score bits"
            );
        }
        assert!(rec_index.lookup("retired-query").unwrap().ids().is_empty());
        assert_eq!(rec_ing.generation(), oracle.generation());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_checkpoint_is_refused_with_rebuild_hint() {
        let dir = tmp_dir("truncated");
        let log = write_log(&dir, &demo_log());
        let (_, ck) = run_to_end(&log, &cfg(2));
        let path = dir.join("ingest.ckpt");
        write_checkpoint(&path, &ck).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 4, 11, bytes.len() / 2, bytes.len() - 9] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = read_checkpoint(&path).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
            assert!(
                err.to_string().contains("rebuild from the click log"),
                "cut at {cut}: {err}"
            );
        }
        // Shaving only trailing alignment padding may leave the payload
        // fully intact — acceptable if and only if it decodes identically.
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        match read_checkpoint(&path) {
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidData),
            Ok(back) => assert_eq!(back, ck),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_anywhere_is_refused_with_rebuild_hint() {
        let dir = tmp_dir("bitflip");
        let log = write_log(&dir, &demo_log());
        let (_, ck) = run_to_end(&log, &cfg(2));
        let path = dir.join("ingest.ckpt");
        write_checkpoint(&path, &ck).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Flip one bit in every byte position; every flip must be caught
        // (magic, version, table checksum, or section checksum).
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            match read_checkpoint(&path) {
                Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidData, "pos {pos}"),
                Ok(back) => assert_eq!(back, ck, "pos {pos}: undetected mutation"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn future_version_is_refused_with_rebuild_hint() {
        let dir = tmp_dir("future");
        let log = write_log(&dir, &demo_log());
        let (_, ck) = run_to_end(&log, &cfg(2));
        let path = dir.join("ingest.ckpt");
        write_checkpoint(&path, &ck).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_ne_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string()
                .contains("unsupported checkpoint version 99"),
            "{err}"
        );
        assert!(
            err.to_string().contains("rebuild from the click log"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_fingerprint_is_refused() {
        let dir = tmp_dir("stale");
        let recs = demo_log();
        let log = write_log(&dir, &recs);
        let c = cfg(2);
        let (_, ck) = run_to_end(&log, &c);
        // The log is rewritten behind the checkpoint's back: a record
        // *inside the surviving window* changes its click count (same byte
        // length, so offsets still line up — only the fingerprint can
        // catch it).
        let mut mutated = recs.clone();
        mutated[8] = ev(3, "flights", "ad-fly", 9);
        write_log(&dir, &mutated);
        let err = resume_ingestor(&log, &c, &ck).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("fingerprint"), "{err}");
        assert!(
            err.to_string().contains("rebuild from the click log"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_log_is_refused() {
        let dir = tmp_dir("shortlog");
        let log = write_log(&dir, &demo_log());
        let c = cfg(2);
        let (_, ck) = run_to_end(&log, &c);
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..ck.replay_offset as usize + 1]).unwrap();
        let err = resume_ingestor(&log, &c, &ck).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_window_or_decay_is_refused() {
        let dir = tmp_dir("mismatch");
        let log = write_log(&dir, &demo_log());
        let c = cfg(2);
        let (_, ck) = run_to_end(&log, &c);
        let err = resume_ingestor(&log, &cfg(3), &ck).unwrap_err();
        assert!(err.to_string().contains("--window"), "{err}");
        let mut c2 = c.clone();
        c2.decay = 0.5;
        let err = resume_ingestor(&log, &c2, &ck).unwrap_err();
        assert!(err.to_string().contains("--decay"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
