//! The stdin/stdout line protocol spoken by the `serve` binary.
//!
//! Requests, one per line:
//!
//! * `rewrite <query>` — serve the precomputed rewrites of one query;
//! * `batch <path>` — serve every query listed in `<path>` (one per line,
//!   blank lines and `#` comments skipped), then a `done` summary;
//! * `quit` — clean shutdown (EOF works too).
//!
//! Responses are single tab-separated lines. TSV-loaded graphs cannot carry
//! tabs in names (`write_tsv` rejects them), but programmatically built
//! graphs and arbitrary client input can — every echoed field is therefore
//! sanitized (tabs/newlines become spaces) so one response is always exactly
//! one line with intact framing:
//!
//! * `ok\t<query>\t<k>[\t<name>\t<score>]...` — `k` rewrites in ranking
//!   order; an unnamed rewrite target prints as `#<id>`;
//! * `err\t<reason>\t<detail>` — unknown query / command / unreadable file;
//! * `done\t<count>` — closes a `batch` response block (always emitted, even
//!   when the batch file fails mid-read);
//! * `bye` — acknowledges `quit`.

use crate::index::RewriteIndex;
use std::borrow::Cow;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};

/// Replaces frame-breaking characters in an echoed field; borrows (no
/// allocation) in the normal tab-free case.
fn clean(field: &str) -> Cow<'_, str> {
    if field.contains(['\t', '\n', '\r']) {
        Cow::Owned(field.replace(['\t', '\n', '\r'], " "))
    } else {
        Cow::Borrowed(field)
    }
}

/// Drives the line protocol over any reader/writer pair until EOF or `quit`.
/// Output is flushed after every request so interactive pipes see responses
/// immediately.
pub fn serve_lines<R: BufRead, W: Write>(index: &RewriteIndex, input: R, out: W) -> io::Result<()> {
    let mut out = BufWriter::new(out);
    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, arg) = match line.split_once(' ') {
            Some((c, a)) => (c, a.trim()),
            None => (line, ""),
        };
        match cmd {
            "rewrite" => respond(index, arg, &mut out)?,
            "batch" => match File::open(arg) {
                Err(e) => writeln!(out, "err\tcannot read batch file\t{}: {e}", clean(arg))?,
                Ok(f) => {
                    let mut served = 0usize;
                    for q in BufReader::new(f).lines() {
                        // A mid-file read error must not kill the serve loop
                        // or leave the response block without its `done`
                        // terminator — report it and close the batch.
                        let q = match q {
                            Ok(q) => q,
                            Err(e) => {
                                writeln!(out, "err\tbatch read failed\t{}: {e}", clean(arg))?;
                                break;
                            }
                        };
                        let q = q.trim();
                        if q.is_empty() || q.starts_with('#') {
                            continue;
                        }
                        respond(index, q, &mut out)?;
                        served += 1;
                    }
                    writeln!(out, "done\t{served}")?;
                }
            },
            "quit" => {
                writeln!(out, "bye")?;
                out.flush()?;
                break;
            }
            _ => writeln!(out, "err\tunknown command\t{}", clean(cmd))?,
        }
        out.flush()?;
    }
    out.flush()
}

fn respond<W: Write>(index: &RewriteIndex, query: &str, out: &mut W) -> io::Result<()> {
    let Some(set) = index.lookup(query) else {
        return writeln!(out, "err\tunknown query\t{}", clean(query));
    };
    write!(out, "ok\t{}\t{}", clean(query), set.len())?;
    for (id, score, name) in set.iter() {
        match name {
            Some(n) => write!(out, "\t{}\t{score:.6}", clean(n))?,
            None => write!(out, "\t#{}\t{score:.6}", id.0)?,
        }
    }
    writeln!(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
    use simrankpp_graph::fixtures::figure3_graph;
    use simrankpp_graph::WeightKind;

    fn fig3_index() -> RewriteIndex {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        RewriteIndex::build(&rewriter, None, 1)
    }

    fn run(input: &str) -> String {
        let index = fig3_index();
        let mut out = Vec::new();
        serve_lines(&index, input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn rewrite_command_serves_ranked_names() {
        let out = run("rewrite camera\n");
        let line = out.lines().next().unwrap();
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields[0], "ok");
        assert_eq!(fields[1], "camera");
        let k: usize = fields[2].parse().unwrap();
        assert!(k >= 1);
        assert_eq!(fields[3], "digital camera");
        assert_eq!(fields.len(), 3 + 2 * k);
    }

    #[test]
    fn unknown_query_and_command_report_errors() {
        let out = run("rewrite zzz\nfrobnicate\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err\tunknown query\tzzz"));
        assert!(lines[1].starts_with("err\tunknown command\tfrobnicate"));
    }

    #[test]
    fn empty_depth_is_ok_zero() {
        // flower is indexed but has no rewrites: ok with k = 0, not an error.
        let out = run("rewrite flower\n");
        assert_eq!(out.lines().next().unwrap(), "ok\tflower\t0");
    }

    #[test]
    fn multiword_queries_reach_the_index() {
        let out = run("rewrite digital camera\n");
        assert!(out.starts_with("ok\tdigital camera\t"));
    }

    #[test]
    fn quit_acknowledged_and_stops() {
        let out = run("quit\nrewrite camera\n");
        assert_eq!(out, "bye\n");
    }

    #[test]
    fn batch_mode_serves_file() {
        let path = std::env::temp_dir().join("simrankpp_serve_batch_test.txt");
        std::fs::write(&path, "camera\n# comment\n\npc\nzzz\n").unwrap();
        let out = run(&format!("batch {}\n", path.display()));
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("ok\tcamera\t"));
        assert!(lines[1].starts_with("ok\tpc\t"));
        assert!(lines[2].starts_with("err\tunknown query\tzzz"));
        assert_eq!(lines[3], "done\t3");
    }

    #[test]
    fn missing_batch_file_is_an_error_line() {
        let out = run("batch /no/such/file\n");
        assert!(out.starts_with("err\tcannot read batch file\t"));
    }

    #[test]
    fn tab_in_request_cannot_break_framing() {
        // A query containing a tab is echoed sanitized: the err response
        // stays exactly 3 tab-separated fields on one line.
        let out = run("rewrite a\tb\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0].split('\t').collect::<Vec<_>>(),
            vec!["err", "unknown query", "a b"]
        );
    }

    #[test]
    fn tab_in_indexed_name_is_sanitized_on_output() {
        // Programmatically built graphs (not passing through write_tsv) can
        // carry tabs in names; the protocol must still frame correctly.
        use simrankpp_graph::{ClickGraphBuilder, EdgeData};
        let mut b = ClickGraphBuilder::new();
        b.add_named("x\ty", "ad", EdgeData::from_clicks(3));
        b.add_named("z", "ad", EdgeData::from_clicks(2));
        let g = b.build();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::Simrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        let index = RewriteIndex::build(&rewriter, None, 1);
        let mut out = Vec::new();
        serve_lines(&index, "rewrite z\n".as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let fields: Vec<&str> = out.trim_end().split('\t').collect();
        assert_eq!(fields[..3], ["ok", "z", "1"]);
        assert_eq!(fields[3], "x y");
        assert_eq!(fields.len(), 5);
    }
}
