//! The stdin/stdout line protocol spoken by the `serve` binary.
//!
//! Requests, one per line:
//!
//! * `rewrite <query>` — serve the precomputed rewrites of one query;
//! * `batch <path>` — serve every query listed in `<path>` (one per line,
//!   blank lines and `#` comments skipped), then a `done` summary;
//! * `update <delta.tsv>` — apply a click-graph delta
//!   (`simrankpp_graph::delta::read_delta_tsv` format), rebuild only the
//!   dirty queries' rows, and atomically hot-swap the new index generation
//!   in — requests keep being answered throughout, each against one
//!   consistent generation. Needs a server started with a live graph
//!   ([`ServeState::updatable`], the binary's `run --graph` mode);
//! * `info` — one line of index metadata plus, when live single-source
//!   serving is on, the row-cache statistics (capacity, entries, hit/miss
//!   counters, invalidation generation);
//! * `quit` — clean shutdown (EOF works too).
//!
//! ## Cold queries and live single-source serving
//!
//! A server built with a [`LiveContext`] (the binary's `--mode
//! single-source`, or any `run --graph` start with a recursive method) no
//! longer refuses queries the precomputed index misses: it resolves the
//! query against the live click graph and, when present, computes its row
//! on demand with `simrankpp_core::SingleSourceEngine`, replays the §9.3
//! pipeline (rank → stem-dedup → top-5; the live path carries no bid-term
//! list, so the bid filter does not apply), and answers `ok` exactly like
//! an indexed hit. Rendered answers land in a bounded LRU
//! ([`crate::rowcache::RowCache`]) keyed by query id, so a repeat of a cold
//! query is a hash probe — and a cache hit is byte-identical to the miss
//! that populated it, because the cache stores the rendered line suffix
//! itself. Every `update` invalidates the cache (generation bump) and
//! rebuilds the live engine on the post-delta graph.
//!
//! The miss taxonomy is structured accordingly:
//!
//! * indexed → `ok` (precomputed);
//! * not indexed, in the graph, live engine on → `ok` (computed, cached);
//! * not indexed, in the graph, no live engine → `miss\t<query>` — the
//!   query is *known* but this server cannot produce a row for it;
//! * not in the graph at all (or snapshot mode, where no graph is
//!   available) → `err\tunknown query\t<query>`.
//!
//! Responses are single tab-separated lines. TSV-loaded graphs cannot carry
//! tabs in names (`write_tsv` rejects them), but programmatically built
//! graphs and arbitrary client input can — every echoed field is therefore
//! sanitized (tabs/newlines become spaces) so one response is always exactly
//! one line with intact framing:
//!
//! * `ok\t<query>\t<k>[\t<name>\t<score>]...` — `k` rewrites in ranking
//!   order; an unnamed rewrite target prints as `#<id>`;
//! * `err\t<reason>\t<detail>` — unknown query / command / unreadable file;
//! * `done\t<count>` — closes a `batch` response block (always emitted, even
//!   when the batch file fails mid-read);
//! * `updated\t<queries>\t<refreshed>\t<copied>\t<dirty>\t<clean>` —
//!   acknowledges a hot-swapped `update` (totals, refreshed vs copied rows,
//!   dirty vs clean components);
//! * `bye` — acknowledges `quit`.
//!
//! Framing guarantee: responses are line-buffered and explicitly flushed
//! after every request *and* on every exit path — EOF, `quit`, and mid-read
//! I/O errors (a truncated stdin) — so the peer never observes a
//! half-written response line.
//!
//! ## Transports and the permission boundary
//!
//! The same session loop drives the local stdin/stdout pipe and every TCP
//! connection of [`crate::net`] — one code path, so a network answer is
//! byte-identical to the pipe's by construction. What differs per
//! [`Transport`] is the *verb surface*:
//!
//! * [`Transport::Stdin`] — the operator's own shell: every verb except
//!   `shutdown` (there is no listener to stop);
//! * [`Transport::NetData`] — untrusted remote clients: `rewrite` and
//!   `quit` only. `batch <path>` names a **server-side** file — over TCP
//!   that verb would echo any readable file (`/etc/passwd`, snapshots,
//!   delta logs) back through `err`/`miss` lines, so it answers
//!   `err\tbatch not permitted`. `update`/`info`/`shutdown` are admin
//!   plane;
//! * [`Transport::NetAdmin`] — the separately-bound (typically
//!   loopback-only) admin listener: the full surface plus `shutdown`,
//!   which drains and stops the whole server.
//!
//! Sessions carry optional [`ServerMetrics`] (requests/errors/timeouts are
//! counted here, connection lifecycle in `net`) and an optional
//! [`ShutdownSignal`]; a draining server answers the next request of every
//! open session with `bye\tdraining` and closes it.

use crate::index::RewriteIndex;
use crate::mapped::{MappedIndex, ServingIndex};
use crate::net::{ServerMetrics, ShutdownSignal};
use crate::rowcache::RowCache;
use crate::swap::AtomicHandle;
use simrankpp_core::weighted::SpreadMode;
use simrankpp_core::{
    evidence_geometric, MethodKind, RewriterConfig, RowWorkspace, SimrankConfig,
    SingleSourceEngine, UniformTransition, WeightedTransition,
};
use simrankpp_graph::delta::{apply_named, read_delta_tsv};
use simrankpp_graph::{ClickGraph, QueryId};
use simrankpp_text::StemDeduper;
use std::borrow::Cow;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};

/// Replaces frame-breaking characters in an echoed field; borrows (no
/// allocation) in the normal tab-free case.
fn clean(field: &str) -> Cow<'_, str> {
    if field.contains(['\t', '\n', '\r']) {
        Cow::Owned(field.replace(['\t', '\n', '\r'], " "))
    } else {
        Cow::Borrowed(field)
    }
}

/// Which transport a session speaks — the protocol's permission boundary
/// (see the module docs for the verb surface of each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// The local stdin/stdout pipe: the operator's own shell.
    #[default]
    Stdin,
    /// A network data-plane connection: untrusted remote clients.
    NetData,
    /// The network admin plane: operator verbs, including `shutdown`.
    NetAdmin,
}

impl Transport {
    /// Whether `verb` may run on this transport. Unknown verbs pass — they
    /// fall through to the regular unknown-command error.
    fn permits(self, verb: &str) -> bool {
        match verb {
            "batch" | "update" | "info" | "shutdown" => !matches!(self, Transport::NetData),
            _ => true,
        }
    }
}

/// Per-session policy and instrumentation: which transport the peer speaks,
/// where to count traffic, and which shutdown signal to watch (and, for the
/// admin plane, to trigger).
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// The permission boundary this session runs under.
    pub transport: Transport,
    /// Request/error/timeout counters, shared with every other session of
    /// the same server and reported by the `info` verb.
    pub metrics: Option<Arc<ServerMetrics>>,
    /// When present: the session answers `bye\tdraining` and closes as soon
    /// as it observes the signal, and (admin plane only) the `shutdown`
    /// verb triggers it.
    pub shutdown: Option<Arc<ShutdownSignal>>,
    /// Enables the `debug-panic` verb, which panics the handler thread
    /// mid-request — the test hook behind the panic-survival suite. Never
    /// set outside tests.
    pub debug_verbs: bool,
}

impl SessionOptions {
    /// The historical stdin/stdout pipe: full verb surface, no counters.
    pub fn stdin() -> SessionOptions {
        SessionOptions::default()
    }

    /// A network session on `transport` sharing a server's counters and
    /// shutdown signal.
    pub fn network(
        transport: Transport,
        metrics: Arc<ServerMetrics>,
        shutdown: Arc<ShutdownSignal>,
    ) -> SessionOptions {
        SessionOptions {
            transport,
            metrics: Some(metrics),
            shutdown: Some(shutdown),
            debug_verbs: false,
        }
    }
}

/// The graph-and-config context needed to serve `update` requests: the live
/// click graph the index was built from, plus the build parameters an
/// incremental rebuild must replay with.
#[derive(Debug)]
pub struct UpdateContext {
    /// The current click-graph generation (replaced on each update).
    pub graph: ClickGraph,
    /// The similarity configuration the index was built with.
    pub config: SimrankConfig,
    /// The §9.3 pipeline parameters the index was built with.
    pub rewriter: RewriterConfig,
}

/// Everything the live single-source fallback needs to answer a cold query:
/// the click graph, the per-query engine over it, and the pipeline knobs
/// that make its answers rank like the offline build's.
pub struct LiveContext {
    graph: ClickGraph,
    method: MethodKind,
    config: SimrankConfig,
    rewriter: RewriterConfig,
    engine: SingleSourceEngine<'static>,
    ws: RowWorkspace,
}

impl LiveContext {
    /// Builds the live engine for `graph`. Only the recursive SimRank
    /// methods run on the propagation engine; `Naive`/`Pearson` have no
    /// single-source formulation here and are refused.
    pub fn new(
        graph: ClickGraph,
        method: MethodKind,
        config: SimrankConfig,
        rewriter: RewriterConfig,
    ) -> Result<LiveContext, String> {
        let engine = match method {
            MethodKind::Simrank | MethodKind::EvidenceSimrank => {
                SingleSourceEngine::new(&graph, &config, &UniformTransition)
            }
            MethodKind::WeightedSimrank => SingleSourceEngine::new(
                &graph,
                &config,
                &WeightedTransition {
                    kind: config.weight_kind,
                    spread: SpreadMode::Exponential,
                },
            ),
            other => {
                return Err(format!(
                    "live single-source serving needs a recursive SimRank method, not {}",
                    other.name()
                ))
            }
        };
        let ws = RowWorkspace::new(graph.n_queries(), graph.n_ads());
        Ok(LiveContext {
            graph,
            method,
            config,
            rewriter,
            engine,
            ws,
        })
    }

    /// Computes the rendered response suffix (`\t<k>[\t<name>\t<score>]...`)
    /// of one cold query: single-source raw row → evidence factor → the
    /// §9.3 ranking and stem-dedup of `Method::ranked_candidates` +
    /// `Rewriter::rewrite_ids_into` — minus the bid filter, which needs a
    /// bid-term list the live path does not carry.
    fn compute_suffix(&mut self, q: QueryId) -> String {
        let mut row = Vec::new();
        self.engine.row_into(&self.graph, q, &mut self.ws, &mut row);

        // (id, final, raw): final applies the geometric evidence factor for
        // the evidence-carrying methods; plain SimRank ranks by raw alone.
        // Evidence-zeroed candidates stay in with final = 0 so the raw
        // score tie-breaks, mirroring `ranked_candidates`.
        let mut candidates: Vec<(u32, f64, f64)> = Vec::new();
        for &(other, raw) in &row {
            if other == q || raw <= 0.0 {
                continue;
            }
            let final_score = match self.method {
                MethodKind::Simrank => raw,
                _ => evidence_geometric(self.graph.common_ads(q, other)) * raw,
            };
            candidates.push((other.0, final_score, raw));
        }
        candidates.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.0.cmp(&b.0))
        });
        candidates.truncate(self.rewriter.max_candidates);

        let mut deduper = if self.rewriter.stem_dedup {
            Some(match self.graph.query_name(q) {
                Some(name) => StemDeduper::seeded_with(name),
                None => StemDeduper::new(),
            })
        } else {
            None
        };
        let mut picked: Vec<(u32, f64)> = Vec::new();
        for (candidate, final_score, _raw) in candidates {
            if let Some(d) = deduper.as_mut() {
                if let Some(name) = self.graph.query_name(QueryId(candidate)) {
                    if !d.admit(name) {
                        continue;
                    }
                }
            }
            picked.push((candidate, final_score));
            if picked.len() >= self.rewriter.max_rewrites {
                break;
            }
        }

        let mut suffix = format!("\t{}", picked.len());
        for (id, score) in picked {
            match self.graph.query_name(QueryId(id)) {
                Some(n) => suffix.push_str(&format!("\t{}\t{score:.6}", clean(n))),
                None => suffix.push_str(&format!("\t#{id}\t{score:.6}")),
            }
        }
        suffix
    }
}

impl std::fmt::Debug for LiveContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveContext")
            .field("method", &self.method)
            .field("queries", &self.graph.n_queries())
            .field("levels", &self.engine.levels())
            .finish_non_exhaustive()
    }
}

/// The live fallback of one server: the swappable context plus the row
/// cache that survives across requests (but not across graph generations).
#[derive(Debug)]
struct LiveState {
    ctx: Mutex<LiveContext>,
    cache: RowCache,
}

impl LiveState {
    /// Answers `query` from the cache or by live computation; `None` means
    /// the query is not in the graph at all.
    ///
    /// Poisoning is recovered ([`PoisonError::into_inner`]): the context's
    /// only mutable state across requests is the engine workspace, which
    /// `row_into` resets at entry — a handler that panicked mid-computation
    /// leaves nothing a later request can observe, and propagating its
    /// poison would turn every other connection's next cold query into a
    /// panic.
    fn serve(&self, query: &str) -> Option<Arc<String>> {
        let mut ctx = self.ctx.lock().unwrap_or_else(PoisonError::into_inner);
        let q = ctx.graph.query_by_name(query)?;
        // Capture the generation before computing: an invalidation landing
        // mid-computation turns the insert below into a no-op.
        let generation = self.cache.generation();
        if let Some(hit) = self.cache.get(q) {
            return Some(hit);
        }
        let suffix = Arc::new(ctx.compute_suffix(q));
        self.cache.insert(generation, q, Arc::clone(&suffix));
        Some(suffix)
    }

    /// Replaces the context with one built over `graph` and drops every
    /// cached row (they priced the previous generation's scores). Recovers
    /// a poisoned lock: the replacement is a whole-value assignment of a
    /// fully-constructed context, consistent no matter what state the
    /// previous holder left behind.
    fn rebuild(&self, graph: ClickGraph) -> Result<(), String> {
        let mut ctx = self.ctx.lock().unwrap_or_else(PoisonError::into_inner);
        let (method, config, rewriter) = (ctx.method, ctx.config, ctx.rewriter);
        *ctx = LiveContext::new(graph, method, config, rewriter)?;
        self.cache.invalidate();
        Ok(())
    }
}

/// A running server's shared state: the hot-swappable index handle plus the
/// optional update context and the optional live single-source fallback.
/// The handle holds a [`ServingIndex`], so a zero-copy mapped snapshot and
/// a heap index are served (and hot-swapped) through the same machinery.
#[derive(Debug)]
pub struct ServeState {
    index: AtomicHandle<ServingIndex>,
    update: Option<Mutex<UpdateContext>>,
    live: Option<LiveState>,
    /// Streaming-ingest counters when this server is fed by a click-log
    /// tailer (`serve ingest`). Also the mode flag: when set, the manual
    /// `update` verb is refused — the ingest loop owns index generations.
    ingest: Option<Arc<crate::ingest::IngestMetrics>>,
    /// Serializes [`ServeState::apply_update`]'s whole read–apply–rebuild
    /// critical section. Without it two concurrent updates can both clone
    /// the same base graph before either commits, and the later commit
    /// silently drops the earlier delta (a lost update). Readers never take
    /// this lock — they stay on the [`AtomicHandle`] fast path.
    updater: Mutex<()>,
}

impl ServeState {
    /// A server over a frozen heap index (snapshot mode): `update` is
    /// refused.
    pub fn fixed(index: RewriteIndex) -> ServeState {
        ServeState {
            index: AtomicHandle::new(ServingIndex::Heap(index)),
            update: None,
            live: None,
            ingest: None,
            updater: Mutex::new(()),
        }
    }

    /// A server whose index generations are published by a streaming
    /// ingest loop ([`crate::ingest::EpochIngestor`]): the manual `update`
    /// verb is refused, and `info` reports the shared ingest counters.
    pub fn ingesting(
        index: RewriteIndex,
        metrics: Arc<crate::ingest::IngestMetrics>,
    ) -> ServeState {
        ServeState {
            index: AtomicHandle::new(ServingIndex::Heap(index)),
            update: None,
            live: None,
            ingest: Some(metrics),
            updater: Mutex::new(()),
        }
    }

    /// A server over a zero-copy mapped snapshot — rows are served straight
    /// out of the file's bytes.
    pub fn mapped(index: MappedIndex) -> ServeState {
        ServeState {
            index: AtomicHandle::new(ServingIndex::Mapped(index)),
            update: None,
            live: None,
            ingest: None,
            updater: Mutex::new(()),
        }
    }

    /// A server that can apply deltas and hot-swap index generations.
    pub fn updatable(index: RewriteIndex, ctx: UpdateContext) -> ServeState {
        ServeState {
            index: AtomicHandle::new(ServingIndex::Heap(index)),
            update: Some(Mutex::new(ctx)),
            live: None,
            ingest: None,
            updater: Mutex::new(()),
        }
    }

    /// Turns on the live single-source fallback: queries the index misses
    /// are computed on demand through `live` and cached in an LRU of
    /// `cache_capacity` rendered rows.
    pub fn with_live(mut self, live: LiveContext, cache_capacity: usize) -> ServeState {
        self.live = Some(LiveState {
            ctx: Mutex::new(live),
            cache: RowCache::new(cache_capacity),
        });
        self
    }

    /// The live row cache's statistics, when the fallback is on.
    pub fn cache_stats(&self) -> Option<crate::rowcache::CacheStats> {
        self.live.as_ref().map(|l| l.cache.stats())
    }

    /// The swappable index handle (for out-of-band readers and tests).
    pub fn handle(&self) -> &AtomicHandle<ServingIndex> {
        &self.index
    }

    /// The shared ingest counters, when this server is in ingest mode.
    pub fn ingest_metrics(&self) -> Option<&Arc<crate::ingest::IngestMetrics>> {
        self.ingest.as_ref()
    }

    /// Hot-swaps a new index generation in. Readers mid-request keep the
    /// generation they loaded; every later load sees the new one. This is
    /// the ingest loop's publication primitive — unlike
    /// [`ServeState::apply_update`] it carries no graph bookkeeping, since
    /// the [`crate::ingest::EpochIngestor`] owns the windowed graph.
    pub fn publish(&self, index: RewriteIndex) {
        self.index.swap(ServingIndex::Heap(index));
    }

    /// Applies a named-op delta read from `path`: rebuilds the dirty rows,
    /// hot-swaps the new generation in, and advances the stored graph.
    /// When the live fallback is on, its engine is rebuilt over the new
    /// graph and the row cache invalidated — stale rows must never answer
    /// the new generation. On error the previous generation keeps serving
    /// untouched.
    ///
    /// A server with *only* a live context (`--mode single-source`: the
    /// index is empty) still supports `update`: the delta applies to the
    /// live graph alone, with every query counted as refreshed.
    pub fn apply_update(&self, path: &str) -> Result<crate::index::RebuildStats, String> {
        // One updater at a time, for the whole read–apply–rebuild–commit
        // sequence: concurrent updates would otherwise clone the same base
        // graph and the second commit would silently drop the first delta.
        // (The live-only path below is where the race used to live — its
        // graph read and rebuild were two separately-locked regions.)
        // Poisoning recovered: the guarded token carries no data.
        if self.ingest.is_some() {
            return Err(
                "this server ingests a click log; the index refreshes at epoch boundaries".into(),
            );
        }
        let _updates_serialized = self.updater.lock().unwrap_or_else(PoisonError::into_inner);
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let ops = read_delta_tsv(BufReader::new(file))
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
        if let Some(ctx) = self.update.as_ref() {
            // Poisoning recovered: the context's only mutation is the
            // trailing whole-value `ctx.graph` assignment — a holder that
            // panicked anywhere leaves the previous generation intact.
            let mut ctx = ctx.lock().unwrap_or_else(PoisonError::into_inner);
            let (new_graph, delta) = apply_named(&ctx.graph, &ops)?;
            let dirty = delta.dirty_components(&new_graph);
            let old = self.index.load();
            // A mapped generation is decoded to the heap first (deep-verified
            // in the process); the rebuilt generation always serves from the
            // heap — the snapshot file on disk is a build artifact, not the
            // live truth, once updates start landing.
            let owned;
            let old_index: &RewriteIndex = match &*old {
                ServingIndex::Heap(i) => i,
                ServingIndex::Mapped(m) => {
                    owned = m
                        .to_owned_index()
                        .map_err(|e| format!("cannot decode mapped index: {e}"))?;
                    &owned
                }
            };
            let (next, stats) = old_index.rebuild_incremental(
                &new_graph,
                &dirty,
                &ctx.config,
                &ctx.rewriter,
                None,
            )?;
            // Rebuild the live side first: if it fails, the old index
            // generation and old live context both keep serving.
            if let Some(live) = self.live.as_ref() {
                live.rebuild(new_graph.clone())?;
            }
            self.index.swap(ServingIndex::Heap(next));
            ctx.graph = new_graph;
            Ok(stats)
        } else if let Some(live) = self.live.as_ref() {
            let (new_graph, delta) = {
                let ctx = live.ctx.lock().unwrap_or_else(PoisonError::into_inner);
                apply_named(&ctx.graph, &ops)?
            };
            let dirty = delta.dirty_components(&new_graph);
            let stats = crate::index::RebuildStats {
                refreshed_queries: new_graph.n_queries(),
                copied_queries: 0,
                refreshed_entries: 0,
                copied_entries: 0,
                n_dirty_components: dirty.n_dirty(),
                n_clean_components: dirty.n_clean(),
            };
            live.rebuild(new_graph)?;
            Ok(stats)
        } else {
            Err("server was started without a live graph (snapshot mode)".into())
        }
    }
}

/// Drives the line protocol over any reader/writer pair until EOF or `quit`,
/// with the full stdin verb surface and no instrumentation — the historical
/// single-client entry point, now a thin wrapper over
/// [`serve_session_with`].
pub fn serve_session<R: BufRead, W: Write>(state: &ServeState, input: R, out: W) -> io::Result<()> {
    serve_session_with(state, input, out, &SessionOptions::stdin())
}

/// Writes one `err` response line, counting it when metrics are wired.
fn err_line<W: Write>(
    out: &mut W,
    metrics: Option<&ServerMetrics>,
    reason: &str,
    detail: std::fmt::Arguments<'_>,
) -> io::Result<()> {
    if let Some(m) = metrics {
        m.errors.fetch_add(1, Ordering::Relaxed);
    }
    writeln!(out, "err\t{reason}\t{detail}")
}

/// Drives the line protocol over any reader/writer pair until EOF, `quit`,
/// a read timeout, or server drain — under the permission boundary and
/// instrumentation of `opts`. Output is flushed after every request — and
/// on every exit path, including mid-read I/O errors — so interactive pipes
/// and sockets see responses immediately and a truncated input never leaves
/// a half-written response line.
///
/// A read timeout (`ErrorKind::TimedOut`/`WouldBlock`, produced by a socket
/// with `set_read_timeout`) is a *clean* exit: the peer stalled, gets a
/// best-effort `err\tread timeout` line, and the session returns `Ok` — the
/// connection thread is freed instead of pinned forever.
/// Renders the `health` response: liveness state plus, in ingest mode, the
/// window epoch, refresh count, and the age of the last durable checkpoint
/// — the fields an external supervisor needs to tell a wedged process from
/// a slow epoch. Permitted on every transport (a supervisor probes the
/// data port), and answered even while draining.
///
/// `health\tstate=ready|ingesting|draining[\tingest_epoch=N]`
/// `[\tingest_refreshes=N][\tlast_checkpoint_age_ms=N|none]`
fn health_line(state: &ServeState, draining: bool) -> String {
    let mut line = String::from("health\tstate=");
    line.push_str(if draining {
        "draining"
    } else if state.ingest_metrics().is_some() {
        "ingesting"
    } else {
        "ready"
    });
    if let Some(ing) = state.ingest_metrics() {
        use std::fmt::Write as _;
        let _ = write!(
            line,
            "\tingest_epoch={}\tingest_refreshes={}",
            ing.epoch.load(Ordering::Relaxed),
            ing.refreshes.load(Ordering::Relaxed)
        );
        let committed = ing.last_checkpoint_unix_ms.load(Ordering::Relaxed);
        if committed == 0 {
            line.push_str("\tlast_checkpoint_age_ms=none");
        } else {
            let now_ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(committed);
            let _ = write!(
                line,
                "\tlast_checkpoint_age_ms={}",
                now_ms.saturating_sub(committed)
            );
        }
    }
    line
}

pub fn serve_session_with<R: BufRead, W: Write>(
    state: &ServeState,
    input: R,
    out: W,
    opts: &SessionOptions,
) -> io::Result<()> {
    let mut out = BufWriter::new(out);
    let metrics = opts.metrics.as_deref();
    for line in input.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                // Stalled peer: free the thread. Best-effort farewell — the
                // peer may be gone entirely, which must not turn a clean
                // timeout close into a session error.
                if let Some(m) = metrics {
                    m.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                let _ = writeln!(out, "err\tread timeout\tclosing stalled connection");
                let _ = out.flush();
                return Ok(());
            }
            Err(e) => {
                // A truncated or failing input must still flush every
                // complete response written so far before surfacing.
                out.flush()?;
                return Err(e);
            }
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // A draining server finishes nothing new: the current request is
        // answered with the farewell and the session closes, letting the
        // accept loop's join complete. The one exception is `health` — a
        // supervisor probing a draining server must get the structured
        // state, not a bare farewell it can't tell from a shutdown verb's.
        if opts.shutdown.as_ref().is_some_and(|s| s.is_draining()) {
            if line == "health" || line.starts_with("health ") {
                writeln!(out, "{}", health_line(state, true))?;
            } else {
                writeln!(out, "bye\tdraining")?;
            }
            out.flush()?;
            break;
        }
        let (cmd, arg) = match line.split_once(' ') {
            Some((c, a)) => (c, a.trim()),
            None => (line, ""),
        };
        if let Some(m) = metrics {
            m.served.fetch_add(1, Ordering::Relaxed);
        }
        if !opts.transport.permits(cmd) {
            // The data plane's whole surface is rewrite/quit. `batch` in
            // particular names a *server-side* file: permitted over TCP it
            // would echo any readable file back through err/miss lines — a
            // remote file-disclosure primitive, not a protocol verb.
            let scope = if cmd == "shutdown" {
                "admin transport only"
            } else {
                "admin or stdin transport only"
            };
            err_line(
                &mut out,
                metrics,
                &format!("{cmd} not permitted"),
                format_args!("{scope}"),
            )?;
            out.flush()?;
            continue;
        }
        match cmd {
            "rewrite" => respond(state, &state.index.load(), arg, &mut out, opts)?,
            "batch" => match File::open(arg) {
                Err(e) => err_line(
                    &mut out,
                    metrics,
                    "cannot read batch file",
                    format_args!("{}: {e}", clean(arg)),
                )?,
                Ok(f) => {
                    // One generation serves the whole batch: a mid-batch
                    // hot swap cannot mix generations within the block.
                    let index = state.index.load();
                    let mut served = 0usize;
                    for q in BufReader::new(f).lines() {
                        // A mid-file read error must not kill the serve loop
                        // or leave the response block without its `done`
                        // terminator — report it and close the batch.
                        let q = match q {
                            Ok(q) => q,
                            Err(e) => {
                                err_line(
                                    &mut out,
                                    metrics,
                                    "batch read failed",
                                    format_args!("{}: {e}", clean(arg)),
                                )?;
                                break;
                            }
                        };
                        let q = q.trim();
                        if q.is_empty() || q.starts_with('#') {
                            continue;
                        }
                        respond(state, &index, q, &mut out, opts)?;
                        served += 1;
                    }
                    writeln!(out, "done\t{served}")?;
                }
            },
            "update" => match state.apply_update(arg) {
                Ok(s) => writeln!(
                    out,
                    "updated\t{}\t{}\t{}\t{}\t{}",
                    s.refreshed_queries + s.copied_queries,
                    s.refreshed_queries,
                    s.copied_queries,
                    s.n_dirty_components,
                    s.n_clean_components
                )?,
                Err(e) => err_line(
                    &mut out,
                    metrics,
                    "update failed",
                    format_args!("{}", clean(&e)),
                )?,
            },
            "info" => {
                let index = state.index.load();
                write!(
                    out,
                    "info\tmethod={}\tqueries={}\tentries={}\tkernel={:?}\tbacking={}",
                    index.meta().method.name(),
                    index.n_queries(),
                    index.n_entries(),
                    index.meta().kernel,
                    index.backing()
                )?;
                if let Some(len) = index.file_len() {
                    write!(out, "\tfile_bytes={len}")?;
                }
                if index.meta().segments > 0 {
                    write!(out, "\tsegments={}", index.meta().segments)?;
                }
                if let Some(m) = metrics {
                    write!(out, "\t{m}")?;
                }
                if let Some(ing) = state.ingest_metrics() {
                    write!(out, "\t{ing}")?;
                }
                match state.cache_stats() {
                    Some(s) => writeln!(
                        out,
                        "\trowcache=on\tcache_capacity={}\tcache_entries={}\tcache_hits={}\
                         \tcache_misses={}\tcache_generation={}",
                        s.capacity, s.entries, s.hits, s.misses, s.generation
                    )?,
                    None => writeln!(out, "\trowcache=off")?,
                }
            }
            "shutdown" => match opts.shutdown.as_ref() {
                Some(signal) => {
                    // Acknowledge first (trigger wakes the accept loops,
                    // which may tear things down immediately after).
                    writeln!(out, "bye\tdraining")?;
                    out.flush()?;
                    signal.trigger();
                    break;
                }
                None => err_line(
                    &mut out,
                    metrics,
                    "shutdown not available",
                    format_args!("no network listener on this session"),
                )?,
            },
            "health" => {
                writeln!(out, "{}", health_line(state, false))?;
            }
            "quit" => {
                writeln!(out, "bye")?;
                out.flush()?;
                break;
            }
            "debug-panic" if opts.debug_verbs => {
                // Test hook: a handler thread dying mid-request, with the
                // response flushed first so the peer can observe the abrupt
                // close that follows.
                writeln!(out, "ok\tdebug-panic\tpanicking this handler")?;
                out.flush()?;
                panic!("debug-panic verb");
            }
            _ => err_line(
                &mut out,
                metrics,
                "unknown command",
                format_args!("{}", clean(cmd)),
            )?,
        }
        out.flush()?;
    }
    out.flush()
}

/// [`serve_session`] over a frozen index — the historical entry point;
/// `update` requests are refused. Clones the index once to seed the swap
/// handle; callers holding an owned index (like the `serve` binary) should
/// construct [`ServeState::fixed`] themselves and call [`serve_session`] to
/// avoid the copy.
pub fn serve_lines<R: BufRead, W: Write>(index: &RewriteIndex, input: R, out: W) -> io::Result<()> {
    serve_session(&ServeState::fixed(index.clone()), input, out)
}

fn respond<W: Write>(
    state: &ServeState,
    index: &ServingIndex,
    query: &str,
    out: &mut W,
    opts: &SessionOptions,
) -> io::Result<()> {
    let count_err = |out: &mut W, query: &str| {
        if let Some(m) = opts.metrics.as_deref() {
            m.errors.fetch_add(1, Ordering::Relaxed);
        }
        writeln!(out, "err\tunknown query\t{}", clean(query))
    };
    if let Some(q) = index.lookup(query) {
        let (targets, scores) = index.row(q);
        write!(out, "ok\t{}\t{}", clean(query), targets.len())?;
        for (&id, &score) in targets.iter().zip(scores) {
            match index.query_name(QueryId(id)) {
                Some(n) => write!(out, "\t{}\t{score:.6}", clean(n))?,
                None => write!(out, "\t#{id}\t{score:.6}")?,
            }
        }
        return writeln!(out);
    }
    // Not indexed. The live fallback computes the row on demand; without
    // it, a graph-backed server can still distinguish a *known* query it
    // has no row for (`miss`) from one absent from the graph (`err`).
    if let Some(live) = state.live.as_ref() {
        return match live.serve(query) {
            Some(suffix) => writeln!(out, "ok\t{}{}", clean(query), suffix),
            None => count_err(out, query),
        };
    }
    if let Some(ctx) = state.update.as_ref() {
        // Read-only probe of the update graph: consistent regardless of
        // where a poisoning panic happened, so recover and keep serving.
        let known = ctx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .graph
            .query_by_name(query)
            .is_some();
        if known {
            return writeln!(out, "miss\t{}", clean(query));
        }
    }
    count_err(out, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
    use simrankpp_graph::fixtures::figure3_graph;
    use simrankpp_graph::WeightKind;

    fn fig3_index() -> RewriteIndex {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        RewriteIndex::build(&rewriter, None, 1)
    }

    fn run(input: &str) -> String {
        let index = fig3_index();
        let mut out = Vec::new();
        serve_lines(&index, input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn rewrite_command_serves_ranked_names() {
        let out = run("rewrite camera\n");
        let line = out.lines().next().unwrap();
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields[0], "ok");
        assert_eq!(fields[1], "camera");
        let k: usize = fields[2].parse().unwrap();
        assert!(k >= 1);
        assert_eq!(fields[3], "digital camera");
        assert_eq!(fields.len(), 3 + 2 * k);
    }

    #[test]
    fn unknown_query_and_command_report_errors() {
        let out = run("rewrite zzz\nfrobnicate\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err\tunknown query\tzzz"));
        assert!(lines[1].starts_with("err\tunknown command\tfrobnicate"));
    }

    #[test]
    fn empty_depth_is_ok_zero() {
        // flower is indexed but has no rewrites: ok with k = 0, not an error.
        let out = run("rewrite flower\n");
        assert_eq!(out.lines().next().unwrap(), "ok\tflower\t0");
    }

    #[test]
    fn multiword_queries_reach_the_index() {
        let out = run("rewrite digital camera\n");
        assert!(out.starts_with("ok\tdigital camera\t"));
    }

    #[test]
    fn quit_acknowledged_and_stops() {
        let out = run("quit\nrewrite camera\n");
        assert_eq!(out, "bye\n");
    }

    #[test]
    fn batch_mode_serves_file() {
        let path = std::env::temp_dir().join("simrankpp_serve_batch_test.txt");
        std::fs::write(&path, "camera\n# comment\n\npc\nzzz\n").unwrap();
        let out = run(&format!("batch {}\n", path.display()));
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("ok\tcamera\t"));
        assert!(lines[1].starts_with("ok\tpc\t"));
        assert!(lines[2].starts_with("err\tunknown query\tzzz"));
        assert_eq!(lines[3], "done\t3");
    }

    #[test]
    fn missing_batch_file_is_an_error_line() {
        let out = run("batch /no/such/file\n");
        assert!(out.starts_with("err\tcannot read batch file\t"));
    }

    #[test]
    fn tab_in_request_cannot_break_framing() {
        // A query containing a tab is echoed sanitized: the err response
        // stays exactly 3 tab-separated fields on one line.
        let out = run("rewrite a\tb\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0].split('\t').collect::<Vec<_>>(),
            vec!["err", "unknown query", "a b"]
        );
    }

    fn fig3_state() -> ServeState {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        let index = RewriteIndex::build(&rewriter, None, 1);
        ServeState::updatable(
            index,
            UpdateContext {
                graph: g,
                config: cfg,
                rewriter: RewriterConfig::default(),
            },
        )
    }

    #[test]
    fn update_verb_hot_swaps_and_changes_only_dirty_answers() {
        let state = fig3_state();
        let delta_path = std::env::temp_dir().join("simrankpp_serve_update_test.tsv");
        // Boost pc→hp: the big component is dirty, flower's is not.
        std::fs::write(&delta_path, "+\tpc\thp.com\t100\t80\t0.8\n").unwrap();

        let mut before = Vec::new();
        serve_session(
            &state,
            "rewrite camera\nrewrite flower\n".as_bytes(),
            &mut before,
        )
        .unwrap();
        let mut out = Vec::new();
        serve_session(
            &state,
            format!(
                "update {}\nrewrite camera\nrewrite flower\n",
                delta_path.display()
            )
            .as_bytes(),
            &mut out,
        )
        .unwrap();
        std::fs::remove_file(&delta_path).ok();

        let before = String::from_utf8(before).unwrap();
        let out = String::from_utf8(out).unwrap();
        let before: Vec<&str> = before.lines().collect();
        let after: Vec<&str> = out.lines().collect();
        // updated\t<queries>\t<refreshed>\t<copied>\t<dirty>\t<clean>
        assert_eq!(
            after[0].split('\t').collect::<Vec<_>>(),
            vec!["updated", "5", "4", "1", "1", "1"]
        );
        assert_ne!(after[1], before[0], "dirty query's answer must change");
        assert_eq!(after[2], before[1], "clean query's answer must not");
    }

    #[test]
    fn update_verb_refused_without_live_graph_and_on_bad_delta() {
        // Snapshot mode: no update context.
        let out = run("update /no/such/delta.tsv\n");
        assert!(out.starts_with("err\tupdate failed\t"), "{out}");

        // Live graph, but unreadable delta: the old generation keeps serving.
        let state = fig3_state();
        let mut out = Vec::new();
        serve_session(
            &state,
            "update /no/such/delta.tsv\nrewrite camera\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err\tupdate failed\t"));
        assert!(lines[1].starts_with("ok\tcamera\t"));
    }

    /// A reader that yields `prefix` and then fails — a truncated stdin.
    struct TruncatedInput<'a> {
        prefix: &'a [u8],
        pos: usize,
    }

    impl io::Read for TruncatedInput<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos < self.prefix.len() {
                let n = buf.len().min(self.prefix.len() - self.pos);
                buf[..n].copy_from_slice(&self.prefix[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "stdin truncated",
                ))
            }
        }
    }

    impl BufRead for TruncatedInput<'_> {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            if self.pos < self.prefix.len() {
                Ok(&self.prefix[self.pos..])
            } else {
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "stdin truncated",
                ))
            }
        }
        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    /// A writer that only exposes bytes an explicit `flush` pushed through,
    /// so the test observes exactly what a pipe's reader would see.
    #[derive(Default)]
    struct FlushTrackingWriter {
        flushed: std::rc::Rc<std::cell::RefCell<Vec<u8>>>,
        pending: Vec<u8>,
    }

    impl Write for FlushTrackingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.pending.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            self.flushed.borrow_mut().extend_from_slice(&self.pending);
            self.pending.clear();
            Ok(())
        }
    }

    #[test]
    fn truncated_stdin_flushes_complete_lines_and_surfaces_the_error() {
        // Two complete requests, then the input dies mid-stream. Every
        // response served so far must reach the peer as complete lines —
        // never a half-written `ok` — before the error surfaces.
        let index = fig3_index();
        let flushed = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let writer = FlushTrackingWriter {
            flushed: flushed.clone(),
            pending: Vec::new(),
        };
        let input = TruncatedInput {
            prefix: b"rewrite camera\nrewrite pc\n",
            pos: 0,
        };
        let err = serve_lines(&index, input, writer).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let seen = String::from_utf8(flushed.borrow().clone()).unwrap();
        assert!(
            seen.ends_with('\n'),
            "flushed output ends mid-line: {seen:?}"
        );
        let lines: Vec<&str> = seen.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("ok\tcamera\t"));
        assert!(lines[1].starts_with("ok\tpc\t"));
    }

    fn empty_meta() -> crate::index::IndexMeta {
        crate::index::IndexMeta {
            method: MethodKind::WeightedSimrank,
            max_rewrites: 5,
            bid_filtered: false,
            approx_sharding: false,
            kernel: simrankpp_core::KernelKind::default(),
            segments: 0,
        }
    }

    /// Live-only state over figure 3: empty index, every query served cold.
    fn live_state() -> ServeState {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let live = LiveContext::new(
            g,
            MethodKind::WeightedSimrank,
            cfg,
            RewriterConfig::default(),
        )
        .unwrap();
        ServeState::fixed(RewriteIndex::empty(empty_meta())).with_live(live, 64)
    }

    fn run_on(state: &ServeState, input: &str) -> String {
        let mut out = Vec::new();
        serve_session(state, input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn live_fallback_serves_cold_query_and_repeat_hits_cache() {
        let state = live_state();
        let out = run_on(
            &state,
            "rewrite camera\nrewrite camera\nrewrite zzz\ninfo\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        let fields: Vec<&str> = lines[0].split('\t').collect();
        assert_eq!(fields[0], "ok");
        assert_eq!(fields[1], "camera");
        assert_eq!(fields[3], "digital camera", "{out}");
        // The warm answer is byte-identical to the cold one: the cache
        // stores the rendered suffix itself.
        assert_eq!(lines[1], lines[0]);
        // A query absent from the graph is still an error, not a miss.
        assert!(lines[2].starts_with("err\tunknown query\tzzz"));
        assert!(lines[3].contains("rowcache=on"), "{out}");
        assert!(lines[3].contains("cache_hits=1"), "{out}");
        // zzz fails graph resolution before the cache probe: one miss only.
        assert!(lines[3].contains("cache_misses=1"), "{out}");
        assert!(lines[3].contains("cache_entries=1"), "{out}");
    }

    #[test]
    fn live_answers_rank_like_the_precomputed_index() {
        // For every figure-3 query the live pipeline must produce the same
        // rewrite names in the same order as the offline index build (the
        // scores may differ in trailing digits: the live engine evaluates
        // the converged series, the index a fixed iteration budget).
        let index = fig3_index();
        let state = live_state();
        let g = figure3_graph();
        for q in g.queries() {
            let name = g.query_name(q).unwrap();
            let live_line = run_on(&state, &format!("rewrite {name}\n"));
            let mut indexed_line = Vec::new();
            serve_lines(
                &index,
                format!("rewrite {name}\n").as_bytes(),
                &mut indexed_line,
            )
            .unwrap();
            let indexed_line = String::from_utf8(indexed_line).unwrap();
            let names = |line: &str| -> Vec<String> {
                line.trim_end()
                    .split('\t')
                    .skip(3)
                    .step_by(2)
                    .map(str::to_owned)
                    .collect()
            };
            assert_eq!(
                names(&live_line),
                names(&indexed_line),
                "live vs indexed rewrites diverge for {name}"
            );
        }
    }

    #[test]
    fn miss_distinguishes_known_queries_without_rows() {
        // Graph-backed server, no live engine, index that covers nothing:
        // a known query is a structured `miss`, an unknown one an `err`.
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let state = ServeState::updatable(
            RewriteIndex::empty(empty_meta()),
            UpdateContext {
                graph: g,
                config: cfg,
                rewriter: RewriterConfig::default(),
            },
        );
        let out = run_on(&state, "rewrite camera\nrewrite zzz\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "miss\tcamera");
        assert!(lines[1].starts_with("err\tunknown query\tzzz"));
    }

    #[test]
    fn info_reports_rowcache_off_in_snapshot_mode() {
        let out = run("info\n");
        let line = out.lines().next().unwrap();
        assert!(
            line.starts_with("info\tmethod=weighted Simrank\t"),
            "{line}"
        );
        assert!(line.contains("\tqueries=5\t"), "{line}");
        assert!(line.ends_with("rowcache=off"), "{line}");
    }

    #[test]
    fn update_rebuilds_live_engine_and_invalidates_cache() {
        let state = live_state();
        let delta_path = std::env::temp_dir().join("simrankpp_live_update_test.tsv");
        std::fs::write(&delta_path, "+\tpc\thp.com\t100\t80\t0.8\n").unwrap();
        let out = run_on(
            &state,
            &format!(
                "rewrite pc\nupdate {}\nrewrite pc\ninfo\n",
                delta_path.display()
            ),
        );
        std::fs::remove_file(&delta_path).ok();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("ok\tpc\t"), "{out}");
        // Live-only update: every query counts as refreshed, none copied;
        // figure 3 has one dirty (pc's) and one clean (flower's) component.
        assert_eq!(
            lines[1].split('\t').collect::<Vec<_>>(),
            vec!["updated", "5", "5", "0", "1", "1"]
        );
        assert!(lines[2].starts_with("ok\tpc\t"), "{out}");
        assert_ne!(lines[2], lines[0], "boosted edge must change pc's answer");
        assert!(lines[3].contains("cache_generation=1"), "{out}");
        assert!(lines[3].contains("cache_entries=1"), "{out}");
    }

    #[test]
    fn tab_in_indexed_name_is_sanitized_on_output() {
        // Programmatically built graphs (not passing through write_tsv) can
        // carry tabs in names; the protocol must still frame correctly.
        use simrankpp_graph::{ClickGraphBuilder, EdgeData};
        let mut b = ClickGraphBuilder::new();
        b.add_named("x\ty", "ad", EdgeData::from_clicks(3));
        b.add_named("z", "ad", EdgeData::from_clicks(2));
        let g = b.build();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::Simrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        let index = RewriteIndex::build(&rewriter, None, 1);
        let mut out = Vec::new();
        serve_lines(&index, "rewrite z\n".as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let fields: Vec<&str> = out.trim_end().split('\t').collect();
        assert_eq!(fields[..3], ["ok", "z", "1"]);
        assert_eq!(fields[3], "x y");
        assert_eq!(fields.len(), 5);
    }

    fn run_with(state: &ServeState, input: &str, opts: &SessionOptions) -> String {
        let mut out = Vec::new();
        serve_session_with(state, input.as_bytes(), &mut out, opts).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn concurrent_updates_do_not_lose_deltas() {
        // Two writers race apply_update on the live path. Before the
        // updater lock, both cloned ctx.graph before either rebuild
        // committed, so one delta was silently dropped and its query
        // answered `err\tunknown query` forever after.
        let state = std::sync::Arc::new(live_state());
        let dir = std::env::temp_dir();
        let path_a = dir.join("simrankpp_two_writer_a.tsv");
        let path_b = dir.join("simrankpp_two_writer_b.tsv");
        std::fs::write(&path_a, "+\tnewqa\thp.com\t10\t8\t0.8\n").unwrap();
        std::fs::write(&path_b, "+\tnewqb\thp.com\t10\t8\t0.8\n").unwrap();

        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|s| {
            for path in [&path_a, &path_b] {
                let state = std::sync::Arc::clone(&state);
                let barrier = std::sync::Arc::clone(&barrier);
                let arg = path.display().to_string();
                s.spawn(move || {
                    barrier.wait();
                    state.apply_update(&arg).unwrap();
                });
            }
        });
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();

        let out = run_on(&state, "rewrite newqa\nrewrite newqb\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("ok\tnewqa\t"), "delta A lost: {out}");
        assert!(lines[1].starts_with("ok\tnewqb\t"), "delta B lost: {out}");
    }

    #[test]
    fn network_data_plane_rejects_restricted_verbs() {
        // Over the data plane, `batch` is a remote file-disclosure
        // primitive (it opens a *server-side* file named by the client) and
        // update/info/shutdown are management surface — all must be
        // refused, and the refusal must not close the session.
        let state = fig3_state();
        let opts = SessionOptions {
            transport: Transport::NetData,
            ..SessionOptions::default()
        };
        let out = run_with(
            &state,
            "batch /etc/passwd\nupdate x.tsv\ninfo\nshutdown\nrewrite camera\n",
            &opts,
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err\tbatch not permitted\t"), "{out}");
        assert!(lines[1].starts_with("err\tupdate not permitted\t"), "{out}");
        assert!(lines[2].starts_with("err\tinfo not permitted\t"), "{out}");
        assert!(
            lines[3].starts_with("err\tshutdown not permitted\t"),
            "{out}"
        );
        assert!(lines[4].starts_with("ok\tcamera\t"), "{out}");
    }

    #[test]
    fn admin_transport_keeps_the_full_verb_surface() {
        let state = fig3_state();
        let opts = SessionOptions {
            transport: Transport::NetAdmin,
            ..SessionOptions::default()
        };
        let path = std::env::temp_dir().join("simrankpp_admin_batch_test.txt");
        std::fs::write(&path, "camera\n").unwrap();
        let out = run_with(&state, &format!("batch {}\ninfo\n", path.display()), &opts);
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("ok\tcamera\t"), "{out}");
        assert_eq!(lines[1], "done\t1");
        assert!(lines[2].starts_with("info\t"), "{out}");
    }

    #[test]
    fn stdin_shutdown_without_listener_reports_unavailable() {
        // Stdin permits the verb (it's the operator), but with no network
        // listener there is nothing to drain.
        let out = run("shutdown\nrewrite camera\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(
            lines[0].starts_with("err\tshutdown not available\t"),
            "{out}"
        );
        assert!(lines[1].starts_with("ok\tcamera\t"), "{out}");
    }

    #[test]
    fn debug_panic_verb_is_gated() {
        let state = fig3_state();
        // Off by default: an unknown command, not a panic.
        let out = run_on(&state, "debug-panic\n");
        assert!(out.starts_with("err\tunknown command\t"), "{out}");
        // Enabled: panics after flushing its acknowledgement.
        let opts = SessionOptions {
            debug_verbs: true,
            ..SessionOptions::default()
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with(&state, "debug-panic\n", &opts)
        }));
        assert!(err.is_err(), "debug-panic must panic when enabled");
    }

    #[test]
    fn draining_session_answers_bye_and_closes() {
        let state = fig3_state();
        let shutdown = Arc::new(crate::net::ShutdownSignal::new());
        shutdown.trigger();
        let opts = SessionOptions {
            shutdown: Some(shutdown),
            ..SessionOptions::default()
        };
        let out = run_with(&state, "rewrite camera\nrewrite pc\n", &opts);
        assert_eq!(out, "bye\tdraining\n");
    }

    /// A reader that times out (as a socket with `set_read_timeout` does)
    /// after yielding its prefix.
    struct StallingInput<'a> {
        prefix: &'a [u8],
        pos: usize,
    }

    impl io::Read for StallingInput<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos < self.prefix.len() {
                let n = buf.len().min(self.prefix.len() - self.pos);
                buf[..n].copy_from_slice(&self.prefix[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "read timed out"))
            }
        }
    }

    impl BufRead for StallingInput<'_> {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            if self.pos < self.prefix.len() {
                Ok(&self.prefix[self.pos..])
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "read timed out"))
            }
        }
        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    #[test]
    fn read_timeout_is_a_clean_close_not_an_error() {
        let state = fig3_state();
        let metrics = Arc::new(crate::net::ServerMetrics::default());
        let opts = SessionOptions {
            metrics: Some(Arc::clone(&metrics)),
            ..SessionOptions::default()
        };
        let mut out = Vec::new();
        let input = StallingInput {
            prefix: b"rewrite camera\n",
            pos: 0,
        };
        serve_session_with(&state, input, &mut out, &opts).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("ok\tcamera\t"), "{out}");
        assert_eq!(lines[1], "err\tread timeout\tclosing stalled connection");
        assert_eq!(metrics.timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.served.load(Ordering::Relaxed), 1);
    }
}
