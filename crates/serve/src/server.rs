//! The stdin/stdout line protocol spoken by the `serve` binary.
//!
//! Requests, one per line:
//!
//! * `rewrite <query>` — serve the precomputed rewrites of one query;
//! * `batch <path>` — serve every query listed in `<path>` (one per line,
//!   blank lines and `#` comments skipped), then a `done` summary;
//! * `update <delta.tsv>` — apply a click-graph delta
//!   (`simrankpp_graph::delta::read_delta_tsv` format), rebuild only the
//!   dirty queries' rows, and atomically hot-swap the new index generation
//!   in — requests keep being answered throughout, each against one
//!   consistent generation. Needs a server started with a live graph
//!   ([`ServeState::updatable`], the binary's `run --graph` mode);
//! * `quit` — clean shutdown (EOF works too).
//!
//! Responses are single tab-separated lines. TSV-loaded graphs cannot carry
//! tabs in names (`write_tsv` rejects them), but programmatically built
//! graphs and arbitrary client input can — every echoed field is therefore
//! sanitized (tabs/newlines become spaces) so one response is always exactly
//! one line with intact framing:
//!
//! * `ok\t<query>\t<k>[\t<name>\t<score>]...` — `k` rewrites in ranking
//!   order; an unnamed rewrite target prints as `#<id>`;
//! * `err\t<reason>\t<detail>` — unknown query / command / unreadable file;
//! * `done\t<count>` — closes a `batch` response block (always emitted, even
//!   when the batch file fails mid-read);
//! * `updated\t<queries>\t<refreshed>\t<copied>\t<dirty>\t<clean>` —
//!   acknowledges a hot-swapped `update` (totals, refreshed vs copied rows,
//!   dirty vs clean components);
//! * `bye` — acknowledges `quit`.
//!
//! Framing guarantee: responses are line-buffered and explicitly flushed
//! after every request *and* on every exit path — EOF, `quit`, and mid-read
//! I/O errors (a truncated stdin) — so the peer never observes a
//! half-written response line.

use crate::index::RewriteIndex;
use crate::swap::AtomicHandle;
use simrankpp_core::{RewriterConfig, SimrankConfig};
use simrankpp_graph::delta::{apply_named, read_delta_tsv};
use simrankpp_graph::ClickGraph;
use std::borrow::Cow;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::sync::Mutex;

/// Replaces frame-breaking characters in an echoed field; borrows (no
/// allocation) in the normal tab-free case.
fn clean(field: &str) -> Cow<'_, str> {
    if field.contains(['\t', '\n', '\r']) {
        Cow::Owned(field.replace(['\t', '\n', '\r'], " "))
    } else {
        Cow::Borrowed(field)
    }
}

/// The graph-and-config context needed to serve `update` requests: the live
/// click graph the index was built from, plus the build parameters an
/// incremental rebuild must replay with.
#[derive(Debug)]
pub struct UpdateContext {
    /// The current click-graph generation (replaced on each update).
    pub graph: ClickGraph,
    /// The similarity configuration the index was built with.
    pub config: SimrankConfig,
    /// The §9.3 pipeline parameters the index was built with.
    pub rewriter: RewriterConfig,
}

/// A running server's shared state: the hot-swappable index handle plus the
/// optional update context.
#[derive(Debug)]
pub struct ServeState {
    index: AtomicHandle<RewriteIndex>,
    update: Option<Mutex<UpdateContext>>,
}

impl ServeState {
    /// A server over a frozen index (snapshot mode): `update` is refused.
    pub fn fixed(index: RewriteIndex) -> ServeState {
        ServeState {
            index: AtomicHandle::new(index),
            update: None,
        }
    }

    /// A server that can apply deltas and hot-swap index generations.
    pub fn updatable(index: RewriteIndex, ctx: UpdateContext) -> ServeState {
        ServeState {
            index: AtomicHandle::new(index),
            update: Some(Mutex::new(ctx)),
        }
    }

    /// The swappable index handle (for out-of-band readers and tests).
    pub fn handle(&self) -> &AtomicHandle<RewriteIndex> {
        &self.index
    }

    /// Applies a named-op delta read from `path`: rebuilds the dirty rows,
    /// hot-swaps the new generation in, and advances the stored graph.
    /// On error the previous generation keeps serving untouched.
    pub fn apply_update(&self, path: &str) -> Result<crate::index::RebuildStats, String> {
        let ctx = self
            .update
            .as_ref()
            .ok_or("server was started without a live graph (snapshot mode)")?;
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let ops = read_delta_tsv(BufReader::new(file))
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
        let mut ctx = ctx.lock().expect("update context poisoned");
        let (new_graph, delta) = apply_named(&ctx.graph, &ops)?;
        let dirty = delta.dirty_components(&new_graph);
        let old = self.index.load();
        let (next, stats) =
            old.rebuild_incremental(&new_graph, &dirty, &ctx.config, &ctx.rewriter, None)?;
        self.index.swap(next);
        ctx.graph = new_graph;
        Ok(stats)
    }
}

/// Drives the line protocol over any reader/writer pair until EOF or `quit`.
/// Output is flushed after every request — and on every exit path, including
/// mid-read I/O errors — so interactive pipes see responses immediately and
/// a truncated stdin never leaves a half-written response line.
pub fn serve_session<R: BufRead, W: Write>(state: &ServeState, input: R, out: W) -> io::Result<()> {
    let mut out = BufWriter::new(out);
    for line in input.lines() {
        // A truncated or failing stdin must still flush every complete
        // response written so far before surfacing the error.
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                out.flush()?;
                return Err(e);
            }
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, arg) = match line.split_once(' ') {
            Some((c, a)) => (c, a.trim()),
            None => (line, ""),
        };
        match cmd {
            "rewrite" => respond(&state.index.load(), arg, &mut out)?,
            "batch" => match File::open(arg) {
                Err(e) => writeln!(out, "err\tcannot read batch file\t{}: {e}", clean(arg))?,
                Ok(f) => {
                    // One generation serves the whole batch: a mid-batch
                    // hot swap cannot mix generations within the block.
                    let index = state.index.load();
                    let mut served = 0usize;
                    for q in BufReader::new(f).lines() {
                        // A mid-file read error must not kill the serve loop
                        // or leave the response block without its `done`
                        // terminator — report it and close the batch.
                        let q = match q {
                            Ok(q) => q,
                            Err(e) => {
                                writeln!(out, "err\tbatch read failed\t{}: {e}", clean(arg))?;
                                break;
                            }
                        };
                        let q = q.trim();
                        if q.is_empty() || q.starts_with('#') {
                            continue;
                        }
                        respond(&index, q, &mut out)?;
                        served += 1;
                    }
                    writeln!(out, "done\t{served}")?;
                }
            },
            "update" => match state.apply_update(arg) {
                Ok(s) => writeln!(
                    out,
                    "updated\t{}\t{}\t{}\t{}\t{}",
                    s.refreshed_queries + s.copied_queries,
                    s.refreshed_queries,
                    s.copied_queries,
                    s.n_dirty_components,
                    s.n_clean_components
                )?,
                Err(e) => writeln!(out, "err\tupdate failed\t{}", clean(&e))?,
            },
            "quit" => {
                writeln!(out, "bye")?;
                out.flush()?;
                break;
            }
            _ => writeln!(out, "err\tunknown command\t{}", clean(cmd))?,
        }
        out.flush()?;
    }
    out.flush()
}

/// [`serve_session`] over a frozen index — the historical entry point;
/// `update` requests are refused. Clones the index once to seed the swap
/// handle; callers holding an owned index (like the `serve` binary) should
/// construct [`ServeState::fixed`] themselves and call [`serve_session`] to
/// avoid the copy.
pub fn serve_lines<R: BufRead, W: Write>(index: &RewriteIndex, input: R, out: W) -> io::Result<()> {
    serve_session(&ServeState::fixed(index.clone()), input, out)
}

fn respond<W: Write>(index: &RewriteIndex, query: &str, out: &mut W) -> io::Result<()> {
    let Some(set) = index.lookup(query) else {
        return writeln!(out, "err\tunknown query\t{}", clean(query));
    };
    write!(out, "ok\t{}\t{}", clean(query), set.len())?;
    for (id, score, name) in set.iter() {
        match name {
            Some(n) => write!(out, "\t{}\t{score:.6}", clean(n))?,
            None => write!(out, "\t#{}\t{score:.6}", id.0)?,
        }
    }
    writeln!(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
    use simrankpp_graph::fixtures::figure3_graph;
    use simrankpp_graph::WeightKind;

    fn fig3_index() -> RewriteIndex {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        RewriteIndex::build(&rewriter, None, 1)
    }

    fn run(input: &str) -> String {
        let index = fig3_index();
        let mut out = Vec::new();
        serve_lines(&index, input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn rewrite_command_serves_ranked_names() {
        let out = run("rewrite camera\n");
        let line = out.lines().next().unwrap();
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields[0], "ok");
        assert_eq!(fields[1], "camera");
        let k: usize = fields[2].parse().unwrap();
        assert!(k >= 1);
        assert_eq!(fields[3], "digital camera");
        assert_eq!(fields.len(), 3 + 2 * k);
    }

    #[test]
    fn unknown_query_and_command_report_errors() {
        let out = run("rewrite zzz\nfrobnicate\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err\tunknown query\tzzz"));
        assert!(lines[1].starts_with("err\tunknown command\tfrobnicate"));
    }

    #[test]
    fn empty_depth_is_ok_zero() {
        // flower is indexed but has no rewrites: ok with k = 0, not an error.
        let out = run("rewrite flower\n");
        assert_eq!(out.lines().next().unwrap(), "ok\tflower\t0");
    }

    #[test]
    fn multiword_queries_reach_the_index() {
        let out = run("rewrite digital camera\n");
        assert!(out.starts_with("ok\tdigital camera\t"));
    }

    #[test]
    fn quit_acknowledged_and_stops() {
        let out = run("quit\nrewrite camera\n");
        assert_eq!(out, "bye\n");
    }

    #[test]
    fn batch_mode_serves_file() {
        let path = std::env::temp_dir().join("simrankpp_serve_batch_test.txt");
        std::fs::write(&path, "camera\n# comment\n\npc\nzzz\n").unwrap();
        let out = run(&format!("batch {}\n", path.display()));
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("ok\tcamera\t"));
        assert!(lines[1].starts_with("ok\tpc\t"));
        assert!(lines[2].starts_with("err\tunknown query\tzzz"));
        assert_eq!(lines[3], "done\t3");
    }

    #[test]
    fn missing_batch_file_is_an_error_line() {
        let out = run("batch /no/such/file\n");
        assert!(out.starts_with("err\tcannot read batch file\t"));
    }

    #[test]
    fn tab_in_request_cannot_break_framing() {
        // A query containing a tab is echoed sanitized: the err response
        // stays exactly 3 tab-separated fields on one line.
        let out = run("rewrite a\tb\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0].split('\t').collect::<Vec<_>>(),
            vec!["err", "unknown query", "a b"]
        );
    }

    fn fig3_state() -> ServeState {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        let index = RewriteIndex::build(&rewriter, None, 1);
        ServeState::updatable(
            index,
            UpdateContext {
                graph: g,
                config: cfg,
                rewriter: RewriterConfig::default(),
            },
        )
    }

    #[test]
    fn update_verb_hot_swaps_and_changes_only_dirty_answers() {
        let state = fig3_state();
        let delta_path = std::env::temp_dir().join("simrankpp_serve_update_test.tsv");
        // Boost pc→hp: the big component is dirty, flower's is not.
        std::fs::write(&delta_path, "+\tpc\thp.com\t100\t80\t0.8\n").unwrap();

        let mut before = Vec::new();
        serve_session(
            &state,
            "rewrite camera\nrewrite flower\n".as_bytes(),
            &mut before,
        )
        .unwrap();
        let mut out = Vec::new();
        serve_session(
            &state,
            format!(
                "update {}\nrewrite camera\nrewrite flower\n",
                delta_path.display()
            )
            .as_bytes(),
            &mut out,
        )
        .unwrap();
        std::fs::remove_file(&delta_path).ok();

        let before = String::from_utf8(before).unwrap();
        let out = String::from_utf8(out).unwrap();
        let before: Vec<&str> = before.lines().collect();
        let after: Vec<&str> = out.lines().collect();
        // updated\t<queries>\t<refreshed>\t<copied>\t<dirty>\t<clean>
        assert_eq!(
            after[0].split('\t').collect::<Vec<_>>(),
            vec!["updated", "5", "4", "1", "1", "1"]
        );
        assert_ne!(after[1], before[0], "dirty query's answer must change");
        assert_eq!(after[2], before[1], "clean query's answer must not");
    }

    #[test]
    fn update_verb_refused_without_live_graph_and_on_bad_delta() {
        // Snapshot mode: no update context.
        let out = run("update /no/such/delta.tsv\n");
        assert!(out.starts_with("err\tupdate failed\t"), "{out}");

        // Live graph, but unreadable delta: the old generation keeps serving.
        let state = fig3_state();
        let mut out = Vec::new();
        serve_session(
            &state,
            "update /no/such/delta.tsv\nrewrite camera\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err\tupdate failed\t"));
        assert!(lines[1].starts_with("ok\tcamera\t"));
    }

    /// A reader that yields `prefix` and then fails — a truncated stdin.
    struct TruncatedInput<'a> {
        prefix: &'a [u8],
        pos: usize,
    }

    impl io::Read for TruncatedInput<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos < self.prefix.len() {
                let n = buf.len().min(self.prefix.len() - self.pos);
                buf[..n].copy_from_slice(&self.prefix[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "stdin truncated",
                ))
            }
        }
    }

    impl BufRead for TruncatedInput<'_> {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            if self.pos < self.prefix.len() {
                Ok(&self.prefix[self.pos..])
            } else {
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "stdin truncated",
                ))
            }
        }
        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    /// A writer that only exposes bytes an explicit `flush` pushed through,
    /// so the test observes exactly what a pipe's reader would see.
    #[derive(Default)]
    struct FlushTrackingWriter {
        flushed: std::rc::Rc<std::cell::RefCell<Vec<u8>>>,
        pending: Vec<u8>,
    }

    impl Write for FlushTrackingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.pending.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            self.flushed.borrow_mut().extend_from_slice(&self.pending);
            self.pending.clear();
            Ok(())
        }
    }

    #[test]
    fn truncated_stdin_flushes_complete_lines_and_surfaces_the_error() {
        // Two complete requests, then the input dies mid-stream. Every
        // response served so far must reach the peer as complete lines —
        // never a half-written `ok` — before the error surfaces.
        let index = fig3_index();
        let flushed = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let writer = FlushTrackingWriter {
            flushed: flushed.clone(),
            pending: Vec::new(),
        };
        let input = TruncatedInput {
            prefix: b"rewrite camera\nrewrite pc\n",
            pos: 0,
        };
        let err = serve_lines(&index, input, writer).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let seen = String::from_utf8(flushed.borrow().clone()).unwrap();
        assert!(
            seen.ends_with('\n'),
            "flushed output ends mid-line: {seen:?}"
        );
        let lines: Vec<&str> = seen.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("ok\tcamera\t"));
        assert!(lines[1].starts_with("ok\tpc\t"));
    }

    #[test]
    fn tab_in_indexed_name_is_sanitized_on_output() {
        // Programmatically built graphs (not passing through write_tsv) can
        // carry tabs in names; the protocol must still frame correctly.
        use simrankpp_graph::{ClickGraphBuilder, EdgeData};
        let mut b = ClickGraphBuilder::new();
        b.add_named("x\ty", "ad", EdgeData::from_clicks(3));
        b.add_named("z", "ad", EdgeData::from_clicks(2));
        let g = b.build();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::Simrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        let index = RewriteIndex::build(&rewriter, None, 1);
        let mut out = Vec::new();
        serve_lines(&index, "rewrite z\n".as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let fields: Vec<&str> = out.trim_end().split('\t').collect();
        assert_eq!(fields[..3], ["ok", "z", "1"]);
        assert_eq!(fields[3], "x y");
        assert_eq!(fields.len(), 5);
    }
}
