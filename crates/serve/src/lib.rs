//! The rewrite-serving layer: Figure 2's online half.
//!
//! The paper's pipeline (§9.3) scores, dedups and filters candidates *per
//! incoming query* — far too expensive to run at sponsored-search traffic
//! rates. Following the offline/online split of "Efficient SimRank
//! Computation via Linearization", this crate precomputes the **entire**
//! pipeline for every query of the click graph and freezes the result:
//!
//! * [`RewriteIndex`] — an immutable flat-arena index mapping every query to
//!   its final top-5 rewrites, built in parallel with the engine's chunked
//!   scoped-thread workers. Single and batched lookups return borrowed
//!   slices: zero allocation on the hot path.
//!   [`RewriteIndex::rebuild_incremental`] refreshes only the dirty
//!   queries' rows after a click-graph delta, copying clean rows verbatim.
//! * [`snapshot`] — versioned, checksummed binary persistence plus
//!   serde-JSON, so an index is built once and loaded by server processes.
//!   Format v4 is an 8-aligned section arena written section-at-a-time.
//! * [`mmap`]/[`mapped`] — zero-copy loading: [`MappedIndex`] serves rows
//!   straight out of the snapshot file's bytes (`mmap` with a heap-read
//!   fallback), so startup is O(#sections) regardless of index size;
//!   [`ServingIndex`] unifies heap and mapped indexes behind one surface.
//! * [`swap`] — a hand-rolled `ArcSwap`-style [`AtomicHandle`] so a new
//!   index generation hot-swaps in while requests keep being answered.
//! * [`server`] — the line protocol (`rewrite <query>`, `batch <file>`,
//!   `update <delta.tsv>`, `info`) spoken by the `serve` binary over stdin
//!   or TCP. A server built with a [`LiveContext`] additionally answers
//!   queries the index does not cover by computing their row on demand with
//!   the single-source engine (`simrankpp_core::SingleSourceEngine`).
//! * [`net`] — the threaded TCP front-end ([`NetServer`]): bounded
//!   thread-per-connection pool, split data/admin planes, read timeouts,
//!   graceful drain, and shared [`ServerMetrics`] counters — all driving
//!   the same session loop as the pipe.
//! * [`rowcache`] — the bounded, generation-aware LRU of live-computed
//!   rows backing that fallback; invalidated on every `update` hot-swap.
//! * [`ingest`] — streaming ingestion: a click-log tailer feeding a
//!   sliding epoch window ([`EpochIngestor`]), with automatic
//!   dirty-component refresh and hot-swap at every epoch boundary and
//!   click-to-serve freshness counters ([`IngestMetrics`]).

pub mod checkpoint;
pub mod index;
pub mod ingest;
pub mod mapped;
pub mod mmap;
pub mod net;
pub mod rowcache;
pub mod server;
pub mod snapshot;
pub mod swap;

pub use checkpoint::{read_checkpoint, resume_ingestor, write_checkpoint, Checkpoint};
pub use index::{IndexMeta, RebuildStats, RewriteIndex, RewriteSet};
pub use ingest::{EpochIngestor, IngestConfig, IngestMetrics, LogTailer, SpannedRecord};
pub use mapped::{MappedIndex, ServingIndex};
pub use mmap::Backing;
pub use net::{NetConfig, NetServer, ServerMetrics, ShutdownSignal};
pub use rowcache::{CacheStats, RowCache};
pub use server::{
    serve_lines, serve_session, serve_session_with, LiveContext, ServeState, SessionOptions,
    Transport, UpdateContext,
};
pub use swap::AtomicHandle;
