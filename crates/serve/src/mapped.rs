//! Zero-copy serving over a mapped snapshot v4.
//!
//! [`MappedIndex::open`] does O(#sections) work: map (or read) the file,
//! check the version, shallow-parse the arena, and record each section's
//! byte range. No array is copied, hashed, or even touched — startup cost
//! is independent of index size, which is what lets a 1M-query index serve
//! its first request milliseconds after exec. The price is deferred
//! validation: per-row accessors are bounds-checked and answer "absent"
//! rather than panicking when a hostile file lies about its shape, and
//! [`MappedIndex::verify_deep`] re-hashes every section on demand.
//!
//! Name lookups binary-search the pre-sorted `NAME_HASH`/`NAME_IDS`
//! sections written at build time (colliding hashes are resolved by
//! comparing the actual name bytes), so the mapped path never materialises
//! a hash map.
//!
//! [`ServingIndex`] is what a server actually holds: either a classic
//! heap-owned [`RewriteIndex`] or a [`MappedIndex`], behind one lookup
//! surface.

use crate::index::{IndexMeta, RewriteIndex};
use crate::mmap::Backing;
use crate::snapshot::{
    self, check_version, decode_meta, MAGIC, SEC_META, SEC_NAME_BLOB, SEC_NAME_HASH, SEC_NAME_IDS,
    SEC_NAME_OFFS, SEC_OFFSETS, SEC_SCORES, SEC_TARGETS,
};
use simrankpp_graph::QueryId;
use simrankpp_util::{cast_slice, fnv1a, Arena, Pod};
use std::io;
use std::ops::Range;
use std::path::Path;

/// Byte ranges of the name sections within the backing buffer.
#[derive(Debug)]
struct NameRanges {
    offs: Range<usize>,
    blob: Range<usize>,
    hash: Range<usize>,
    ids: Range<usize>,
}

/// A read-only rewrite index served directly out of a snapshot v4 file's
/// bytes — mapped when the platform allows, heap-read otherwise.
#[derive(Debug)]
pub struct MappedIndex {
    backing: Backing,
    meta: IndexMeta,
    n_queries: u32,
    n_entries: u64,
    offsets: Range<usize>,
    targets: Range<usize>,
    scores: Range<usize>,
    names: Option<NameRanges>,
}

impl MappedIndex {
    /// Opens `path` preferring `mmap` (heap fallback). O(#sections).
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<MappedIndex> {
        Self::from_backing(Backing::open(path.as_ref())?)
    }

    /// Opens `path` into the heap unconditionally (differential tests).
    pub fn open_heap<P: AsRef<Path>>(path: P) -> io::Result<MappedIndex> {
        Self::from_backing(Backing::open_heap(path.as_ref())?)
    }

    /// Parses the arena shallowly and records section ranges. The only
    /// per-section work is an alignment/length check (`cast_slice` on a
    /// borrowed range); payloads are not hashed — see
    /// [`MappedIndex::verify_deep`].
    fn from_backing(backing: Backing) -> io::Result<MappedIndex> {
        let (meta, n_queries, n_entries, offsets, targets, scores, names) = {
            let bytes = backing.bytes();
            check_version(bytes)?;
            let arena = Arena::parse(bytes, MAGIC).map_err(|e| snapshot::corrupt(&e))?;

            let meta_words: &[u64] = arena.slice(SEC_META).map_err(|e| snapshot::corrupt(&e))?;
            let (meta, has_names, n_queries, n_entries) = decode_meta(meta_words)?;

            let offsets = typed_range::<u32>(&arena, bytes, SEC_OFFSETS)?;
            let targets = typed_range::<u32>(&arena, bytes, SEC_TARGETS)?;
            let scores = typed_range::<f64>(&arena, bytes, SEC_SCORES)?;
            // O(1) shape checks only: section lengths against header
            // counts, plus the two offset endpoints. Interior monotonicity
            // is *not* scanned here (that would make startup O(n)); row
            // accessors bounds-check instead.
            if (offsets.len() / 4) as u64 != n_queries + 1 {
                return Err(snapshot::corrupt(
                    "offsets section disagrees with header query count",
                ));
            }
            if (targets.len() / 4) as u64 != n_entries || (scores.len() / 8) as u64 != n_entries {
                return Err(snapshot::corrupt(
                    "entry sections disagree with header entry count",
                ));
            }
            {
                let offs: &[u32] =
                    cast_slice(&bytes[offsets.clone()]).map_err(|e| snapshot::corrupt(&e))?;
                if offs.first() != Some(&0) {
                    return Err(snapshot::corrupt("offsets must start at 0"));
                }
                if offs.last().map(|&o| o as u64) != Some(n_entries) {
                    return Err(snapshot::corrupt("offsets do not end at the entry count"));
                }
            }
            let names = if has_names {
                let offs = typed_range::<u64>(&arena, bytes, SEC_NAME_OFFS)?;
                let blob = byte_range(&arena, bytes, SEC_NAME_BLOB)?;
                let hash = typed_range::<u64>(&arena, bytes, SEC_NAME_HASH)?;
                let ids = typed_range::<u32>(&arena, bytes, SEC_NAME_IDS)?;
                if offs.is_empty() {
                    return Err(snapshot::corrupt("empty name offsets section"));
                }
                let n_names = offs.len() / 8 - 1;
                if hash.len() / 8 != n_names || ids.len() / 4 != n_names {
                    return Err(snapshot::corrupt(
                        "name lookup table disagrees with name count",
                    ));
                }
                Some(NameRanges {
                    offs,
                    blob,
                    hash,
                    ids,
                })
            } else {
                None
            };
            (meta, n_queries, n_entries, offsets, targets, scores, names)
        };
        Ok(MappedIndex {
            backing,
            meta,
            n_queries: n_queries as u32,
            n_entries,
            offsets,
            targets,
            scores,
            names,
        })
    }

    /// Build provenance.
    pub fn meta(&self) -> &IndexMeta {
        &self.meta
    }

    /// Number of indexed queries.
    pub fn n_queries(&self) -> usize {
        self.n_queries as usize
    }

    /// Total stored rewrites across all rows.
    pub fn n_entries(&self) -> usize {
        self.n_entries as usize
    }

    /// `"mmap"` or `"heap"`.
    pub fn backing_kind(&self) -> &'static str {
        self.backing.kind()
    }

    /// Size of the backing snapshot file in bytes.
    pub fn file_len(&self) -> u64 {
        self.backing.bytes().len() as u64
    }

    #[inline]
    fn slice_of<T: Pod>(&self, range: &Range<usize>) -> &[T] {
        // Validated at open; the backing is immutable, so the cast cannot
        // start failing later.
        cast_slice(&self.backing.bytes()[range.clone()]).expect("section validated at open")
    }

    /// The row of `q`: `(targets, scores)` slices borrowed from the file
    /// bytes. Bounds-checked — a corrupt (non-monotone or out-of-range)
    /// offset pair answers an empty row rather than panicking, because
    /// open-time validation is deliberately O(1).
    #[inline]
    pub fn row(&self, q: QueryId) -> (&[u32], &[f64]) {
        let offsets: &[u32] = self.slice_of(&self.offsets);
        let targets: &[u32] = self.slice_of(&self.targets);
        let scores: &[f64] = self.slice_of(&self.scores);
        let (Some(&lo), Some(&hi)) = (offsets.get(q.index()), offsets.get(q.index() + 1)) else {
            return (&[], &[]);
        };
        let (lo, hi) = (lo as usize, hi as usize);
        if lo > hi || hi > targets.len() || hi > scores.len() {
            return (&[], &[]);
        }
        (&targets[lo..hi], &scores[lo..hi])
    }

    /// Resolves a query display name to its id by binary search over the
    /// pre-sorted hash table (equal-hash neighbours are disambiguated by
    /// comparing the stored name bytes).
    pub fn lookup(&self, name: &str) -> Option<QueryId> {
        let ranges = self.names.as_ref()?;
        let hashes: &[u64] = self.slice_of(&ranges.hash);
        let ids: &[u32] = self.slice_of(&ranges.ids);
        let h = fnv1a(name.as_bytes());
        let mut i = hashes.partition_point(|&x| x < h);
        while i < hashes.len() && hashes[i] == h {
            let id = QueryId(*ids.get(i)?);
            if self.query_name(id) == Some(name) {
                return Some(id);
            }
            i += 1;
        }
        None
    }

    /// The display name of query `q`, when names were recorded.
    /// Bounds-checked and UTF-8-checked per access (`None` on corruption).
    pub fn query_name(&self, q: QueryId) -> Option<&str> {
        let ranges = self.names.as_ref()?;
        let offs: &[u64] = self.slice_of(&ranges.offs);
        let blob: &[u8] = &self.backing.bytes()[ranges.blob.clone()];
        let (&lo, &hi) = (offs.get(q.index())?, offs.get(q.index() + 1)?);
        let (lo, hi) = (lo as usize, hi as usize);
        if lo > hi || hi > blob.len() {
            return None;
        }
        std::str::from_utf8(&blob[lo..hi]).ok()
    }

    /// Re-hashes every section against its table checksum — O(file size),
    /// run on demand, never at open.
    pub fn verify_deep(&self) -> io::Result<()> {
        let arena = Arena::parse(self.backing.bytes(), MAGIC).map_err(|e| snapshot::corrupt(&e))?;
        arena.verify_deep().map_err(|e| snapshot::corrupt(&e))
    }

    /// Decodes the backing bytes into an owned heap [`RewriteIndex`]
    /// (deep-verified and structurally validated) — the bridge to code
    /// paths that need ownership, like incremental rebuilds.
    pub fn to_owned_index(&self) -> io::Result<RewriteIndex> {
        snapshot::decode_snapshot(self.backing.bytes())
    }
}

fn byte_range(arena: &Arena<'_>, bytes: &[u8], tag: u64) -> io::Result<Range<usize>> {
    let section = arena.require(tag).map_err(|e| snapshot::corrupt(&e))?;
    let base = bytes.as_ptr() as usize;
    let start = section.as_ptr() as usize - base;
    Ok(start..start + section.len())
}

fn typed_range<T: Pod>(arena: &Arena<'_>, bytes: &[u8], tag: u64) -> io::Result<Range<usize>> {
    let range = byte_range(arena, bytes, tag)?;
    // Alignment/length check once at open; later accesses re-cast the same
    // immutable bytes.
    cast_slice::<T>(&bytes[range.clone()])
        .map_err(|e| snapshot::corrupt(&format!("section {tag:#x}: {e}")))?;
    Ok(range)
}

/// The index a server actually serves from: heap-owned (built in-process or
/// fully decoded) or mapped (zero-copy over a snapshot file).
#[derive(Debug)]
pub enum ServingIndex {
    /// A heap-owned [`RewriteIndex`].
    Heap(RewriteIndex),
    /// A zero-copy [`MappedIndex`] over a snapshot v4 file.
    Mapped(MappedIndex),
}

impl ServingIndex {
    /// Build provenance.
    pub fn meta(&self) -> &IndexMeta {
        match self {
            ServingIndex::Heap(i) => i.meta(),
            ServingIndex::Mapped(i) => i.meta(),
        }
    }

    /// Number of indexed queries.
    pub fn n_queries(&self) -> usize {
        match self {
            ServingIndex::Heap(i) => i.n_queries(),
            ServingIndex::Mapped(i) => i.n_queries(),
        }
    }

    /// Total stored rewrites across all rows.
    pub fn n_entries(&self) -> usize {
        match self {
            ServingIndex::Heap(i) => i.n_entries(),
            ServingIndex::Mapped(i) => i.n_entries(),
        }
    }

    /// Name-keyed lookup: the query's id when it is indexed.
    pub fn lookup(&self, name: &str) -> Option<QueryId> {
        match self {
            ServingIndex::Heap(i) => i.lookup_id(name),
            ServingIndex::Mapped(i) => i.lookup(name),
        }
    }

    /// The row of `q`: `(targets, scores)` borrowed slices.
    pub fn row(&self, q: QueryId) -> (&[u32], &[f64]) {
        match self {
            ServingIndex::Heap(i) => {
                let set = i.rewrites_of(q);
                (set.ids(), set.scores())
            }
            ServingIndex::Mapped(i) => i.row(q),
        }
    }

    /// The display name of query `q`, when names were recorded.
    pub fn query_name(&self, q: QueryId) -> Option<&str> {
        match self {
            ServingIndex::Heap(i) => i.query_name(q),
            ServingIndex::Mapped(i) => i.query_name(q),
        }
    }

    /// Where the rows live: `"live"` for heap indexes, `"mmap"`/`"heap"`
    /// for snapshot-backed ones (surfaced by `serve info`).
    pub fn backing(&self) -> &'static str {
        match self {
            ServingIndex::Heap(_) => "live",
            ServingIndex::Mapped(i) => i.backing_kind(),
        }
    }

    /// The backing snapshot file size, when file-backed.
    pub fn file_len(&self) -> Option<u64> {
        match self {
            ServingIndex::Heap(_) => None,
            ServingIndex::Mapped(i) => Some(i.file_len()),
        }
    }

    /// An owned heap [`RewriteIndex`] with the same content (decoding the
    /// mapped bytes when necessary) — what incremental rebuilds start from.
    pub fn to_owned_index(&self) -> io::Result<RewriteIndex> {
        match self {
            ServingIndex::Heap(i) => Ok(i.clone()),
            ServingIndex::Mapped(i) => i.to_owned_index(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
    use simrankpp_graph::fixtures::figure3_graph;
    use simrankpp_graph::WeightKind;
    use std::path::PathBuf;

    fn fig3_index() -> RewriteIndex {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        RewriteIndex::build(&rewriter, None, 1)
    }

    fn saved(name: &str) -> (RewriteIndex, PathBuf) {
        let index = fig3_index();
        let path = std::env::temp_dir().join(name);
        index.save(&path).unwrap();
        (index, path)
    }

    #[test]
    fn mapped_rows_match_heap_index_bit_for_bit() {
        let (index, path) = saved("simrankpp_mapped_rows.idx");
        let mapped = MappedIndex::open(&path).unwrap();
        assert_eq!(mapped.meta(), index.meta());
        assert_eq!(mapped.n_queries(), index.n_queries());
        assert_eq!(mapped.n_entries(), index.n_entries());
        for q in 0..index.n_queries() {
            let q = QueryId(q as u32);
            let (targets, scores) = mapped.row(q);
            let set = index.rewrites_of(q);
            assert_eq!(targets, set.ids());
            assert_eq!(scores.len(), set.scores().len());
            for (a, b) in scores.iter().zip(set.scores()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(mapped.query_name(q), index.query_name(q));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_name_lookup_agrees_with_interner() {
        let (index, path) = saved("simrankpp_mapped_lookup.idx");
        let mapped = MappedIndex::open(&path).unwrap();
        for q in 0..index.n_queries() {
            let name = index.query_name(QueryId(q as u32)).unwrap();
            assert_eq!(mapped.lookup(name), Some(QueryId(q as u32)), "{name}");
        }
        assert_eq!(mapped.lookup("no such query"), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_verify_deep_and_owned_decode() {
        let (index, path) = saved("simrankpp_mapped_deep.idx");
        let mapped = MappedIndex::open(&path).unwrap();
        mapped.verify_deep().unwrap();
        let owned = mapped.to_owned_index().unwrap();
        assert_eq!(owned.meta(), index.meta());
        assert_eq!(owned.n_entries(), index.n_entries());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_row_is_empty_not_panic() {
        let (_, path) = saved("simrankpp_mapped_oob.idx");
        let mapped = MappedIndex::open(&path).unwrap();
        let (t, s) = mapped.row(QueryId(u32::MAX));
        assert!(t.is_empty() && s.is_empty());
        assert_eq!(mapped.query_name(QueryId(u32::MAX)), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_refuses_v3_with_rebuild_hint() {
        let path = std::env::temp_dir().join("simrankpp_mapped_v3.idx");
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SRPPIDX\0");
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &buf).unwrap();
        let err = MappedIndex::open(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unsupported snapshot version 3"), "{msg}");
        assert!(msg.contains("rebuild"), "{msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serving_index_variants_answer_identically() {
        let (index, path) = saved("simrankpp_serving_enum.idx");
        let heap = ServingIndex::Heap(index.clone());
        let mapped = ServingIndex::Mapped(MappedIndex::open(&path).unwrap());
        assert_eq!(heap.meta(), mapped.meta());
        assert_eq!(heap.backing(), "live");
        assert!(matches!(mapped.backing(), "mmap" | "heap"));
        assert!(mapped.file_len().unwrap() > 0);
        for q in 0..index.n_queries() {
            let name = index.query_name(QueryId(q as u32)).unwrap().to_string();
            let hq = heap.lookup(&name).unwrap();
            let mq = mapped.lookup(&name).unwrap();
            assert_eq!(hq, mq);
            assert_eq!(heap.row(hq), mapped.row(mq));
        }
        std::fs::remove_file(&path).ok();
    }
}
