//! Threaded TCP front-end for the line protocol.
//!
//! [`NetServer`] listens on a data-plane address (and optionally a separate
//! admin address), accepts connections on a bounded thread-per-connection
//! pool, and drives each one through [`serve_session_with`] — the exact
//! session loop the stdin pipe uses, so both transports are one code path
//! and every network answer is byte-identical to the pipe's.
//!
//! ## Planes
//!
//! Data-plane connections speak [`Transport::NetData`]: `rewrite` and
//! `quit` only. Admin connections ([`Transport::NetAdmin`]) additionally
//! get `batch`/`update`/`info` and the `shutdown` verb. Binding the admin
//! listener to a loopback/management address while the data plane faces
//! clients is the intended deployment shape.
//!
//! ## Lifecycle
//!
//! [`NetServer::serve`] runs the data accept loop on the calling thread and
//! the admin loop (when configured) on a helper thread. A shutdown —
//! triggered by the admin `shutdown` verb or programmatically via
//! [`ShutdownSignal::trigger`] — flips a flag and self-connects to each
//! listener to wake its blocked `accept`, then *drains*: no new connections
//! are accepted, in-flight sessions answer `bye\tdraining` at their next
//! request, and `serve` joins every handler thread before returning.
//!
//! Every connection gets a read timeout so a stalled peer frees its thread
//! (the session answers `err\tread timeout` and closes), and the pool bound
//! turns overload into an immediate `err\tserver busy` instead of unbounded
//! thread growth.

use std::fmt;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use crate::server::{serve_session_with, ServeState, SessionOptions, Transport};

/// Monotonic counters shared by every connection of one server, surfaced
/// through the `info` verb as `net_*=value` fields.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted and handed to a handler thread (both planes).
    pub accepted: AtomicU64,
    /// Connections turned away with `err\tserver busy` (pool full).
    pub rejected: AtomicU64,
    /// Handler threads currently live.
    pub active: AtomicU64,
    /// Requests answered across all sessions (any response line).
    pub served: AtomicU64,
    /// Requests answered with an `err` response.
    pub errors: AtomicU64,
    /// Sessions closed because the peer stalled past the read timeout.
    pub timeouts: AtomicU64,
    /// Sessions that ended in an I/O error (peer vanished mid-request).
    pub disconnects: AtomicU64,
    /// Handler threads that died panicking (the server keeps serving).
    pub panicked: AtomicU64,
}

impl fmt::Display for ServerMetrics {
    /// Tab-separated `net_*=value` fields, spliceable into an `info` line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "net_accepted={}\tnet_active={}\tnet_rejected={}\tnet_served={}\
             \tnet_errors={}\tnet_timeouts={}\tnet_disconnects={}\tnet_panicked={}",
            self.accepted.load(Ordering::Relaxed),
            self.active.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.served.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
            self.disconnects.load(Ordering::Relaxed),
            self.panicked.load(Ordering::Relaxed),
        )
    }
}

/// Cooperative shutdown flag plus the listener addresses to nudge awake.
///
/// `accept` has no portable timeout, so [`trigger`](ShutdownSignal::trigger)
/// stores the stop flag and then self-connects to each registered listener:
/// the accept call returns with the wake connection, re-checks the flag, and
/// exits its loop.
#[derive(Debug, Default)]
pub struct ShutdownSignal {
    stop: AtomicBool,
    wake: Mutex<Vec<SocketAddr>>,
}

impl ShutdownSignal {
    pub fn new() -> Self {
        ShutdownSignal::default()
    }

    /// True once a shutdown has been requested; sessions answer
    /// `bye\tdraining` and close at their next request.
    pub fn is_draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Records a listener address to self-connect to on trigger.
    fn register(&self, addr: SocketAddr) {
        self.lock_wake().push(addr);
    }

    /// Requests shutdown and wakes every registered accept loop. Idempotent.
    pub fn trigger(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake order doesn't matter; a failed connect means the listener is
        // already gone, which is the goal state anyway.
        for addr in self.lock_wake().iter() {
            let _ = TcpStream::connect_timeout(addr, Duration::from_secs(1));
        }
    }

    /// The address list only ever grows by whole pushes — consistent across
    /// any panic point, so recover from poisoning.
    fn lock_wake(&self) -> std::sync::MutexGuard<'_, Vec<SocketAddr>> {
        self.wake.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Listener configuration for [`NetServer::bind`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Data-plane bind address. Port 0 picks an ephemeral port (query it
    /// back via [`NetServer::local_addr`]).
    pub addr: String,
    /// Optional admin-plane bind address; without it the server has no
    /// network path to `update`/`info`/`shutdown`.
    pub admin_addr: Option<String>,
    /// Data-plane handler-thread bound; excess connections are answered
    /// `err\tserver busy` and closed. Admin connections are not counted
    /// against it.
    pub max_connections: usize,
    /// Per-connection read timeout; `None` lets a silent peer pin its
    /// thread forever (only sensible in tests).
    pub read_timeout: Option<Duration>,
    /// Enables the test-only `debug-panic` verb on network sessions.
    pub debug_verbs: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            admin_addr: None,
            max_connections: 64,
            read_timeout: Some(Duration::from_secs(30)),
            debug_verbs: false,
        }
    }
}

/// A bound (not yet serving) threaded TCP server over one shared
/// [`ServeState`].
#[derive(Debug)]
pub struct NetServer {
    state: Arc<ServeState>,
    listener: TcpListener,
    admin: Option<TcpListener>,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<ShutdownSignal>,
    config: NetConfig,
}

impl NetServer {
    /// Binds the data (and, if configured, admin) listener. Serving starts
    /// with [`serve`](NetServer::serve); until then connections queue in
    /// the OS backlog.
    pub fn bind(state: Arc<ServeState>, config: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let admin = match config.admin_addr.as_deref() {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let shutdown = Arc::new(ShutdownSignal::new());
        shutdown.register(listener.local_addr()?);
        if let Some(a) = admin.as_ref() {
            shutdown.register(a.local_addr()?);
        }
        Ok(NetServer {
            state,
            listener,
            admin,
            metrics: Arc::new(ServerMetrics::default()),
            shutdown,
            config,
        })
    }

    /// The bound data-plane address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound admin-plane address, when configured.
    pub fn admin_addr(&self) -> Option<io::Result<SocketAddr>> {
        self.admin.as_ref().map(|l| l.local_addr())
    }

    /// The server's shared counters (live; readable while serving).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Handle for requesting shutdown from outside the protocol.
    pub fn shutdown_signal(&self) -> Arc<ShutdownSignal> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the accept loops until shutdown, then drains: joins every
    /// in-flight handler thread before returning.
    pub fn serve(self) -> io::Result<()> {
        let NetServer {
            state,
            listener,
            admin,
            metrics,
            shutdown,
            config,
        } = self;
        let handles: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let admin_join = admin.map(|admin_listener| {
            let loop_ = AcceptLoop {
                state: Arc::clone(&state),
                metrics: Arc::clone(&metrics),
                shutdown: Arc::clone(&shutdown),
                handles: Arc::clone(&handles),
                transport: Transport::NetAdmin,
                // The admin plane is a trusted management surface; bounding
                // it could lock an operator out of `shutdown` at the exact
                // moment the data plane is saturated.
                max_connections: usize::MAX,
                read_timeout: config.read_timeout,
                debug_verbs: config.debug_verbs,
            };
            thread::Builder::new()
                .name("serve-admin-accept".to_string())
                .spawn(move || loop_.run(admin_listener))
                .expect("spawn admin accept thread")
        });

        let data_loop = AcceptLoop {
            state,
            metrics,
            shutdown,
            handles: Arc::clone(&handles),
            transport: Transport::NetData,
            max_connections: config.max_connections,
            read_timeout: config.read_timeout,
            debug_verbs: config.debug_verbs,
        };
        data_loop.run(listener);

        if let Some(j) = admin_join {
            let _ = j.join();
        }
        // Drain: in-flight sessions see the shutdown flag at their next
        // request and close; new handler threads cannot appear because both
        // accept loops have exited.
        let drained = std::mem::take(&mut *handles.lock().unwrap_or_else(PoisonError::into_inner));
        for h in drained {
            let _ = h.join();
        }
        Ok(())
    }
}

/// One listener's accept loop: bound check, handler spawn, thread reaping.
struct AcceptLoop {
    state: Arc<ServeState>,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<ShutdownSignal>,
    handles: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    transport: Transport,
    max_connections: usize,
    read_timeout: Option<Duration>,
    debug_verbs: bool,
}

impl AcceptLoop {
    fn run(&self, listener: TcpListener) {
        loop {
            let stream = match listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(_) if self.shutdown.is_draining() => break,
                // Transient accept errors (EMFILE, aborted handshake) must
                // not kill the listener.
                Err(_) => continue,
            };
            // The wake connection from `trigger` lands here: drop it and
            // stop accepting.
            if self.shutdown.is_draining() {
                break;
            }
            self.reap();
            if self.metrics.active.load(Ordering::Relaxed) >= self.max_connections as u64 {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                // Best-effort refusal — the peer may already be gone.
                let mut stream = stream;
                let _ = writeln!(stream, "err\tserver busy\tconnection limit reached");
                continue;
            }
            self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            self.metrics.active.fetch_add(1, Ordering::Relaxed);
            let conn = Connection {
                state: Arc::clone(&self.state),
                metrics: Arc::clone(&self.metrics),
                shutdown: Arc::clone(&self.shutdown),
                transport: self.transport,
                read_timeout: self.read_timeout,
                debug_verbs: self.debug_verbs,
            };
            let spawned = thread::Builder::new()
                .name("serve-conn".to_string())
                .spawn(move || conn.run(stream));
            match spawned {
                Ok(handle) => self
                    .handles
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle),
                Err(_) => {
                    // Spawn failure (resource exhaustion): count the lost
                    // connection and keep the listener alive.
                    self.metrics.active.fetch_sub(1, Ordering::Relaxed);
                    self.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Joins already-finished handler threads so the registry doesn't grow
    /// with every connection ever served.
    fn reap(&self) {
        let finished: Vec<_> = {
            let mut handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
            let mut finished = Vec::new();
            let mut i = 0;
            while i < handles.len() {
                if handles[i].is_finished() {
                    finished.push(handles.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            finished
        };
        for h in finished {
            let _ = h.join();
        }
    }
}

/// One accepted connection: socket setup plus the shared session loop.
struct Connection {
    state: Arc<ServeState>,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<ShutdownSignal>,
    transport: Transport,
    read_timeout: Option<Duration>,
    debug_verbs: bool,
}

impl Connection {
    fn run(self, stream: TcpStream) {
        // Decrement `active` however this thread ends — including a panic
        // inside the session loop (the `debug-panic` verb, or a real bug).
        let _guard = ActiveGuard {
            metrics: Arc::clone(&self.metrics),
        };
        // A `return` action here models the handler dying before its
        // session loop starts: this connection closes (counted as a
        // disconnect), every other connection and the listener live on.
        #[cfg(feature = "failpoints")]
        if let Some(_msg) = simrankpp_util::failpoint::eval("net-handler") {
            self.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Every response line is already batched through the session's
        // BufWriter and flushed per request; Nagle would only add latency.
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.read_timeout);
        let reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => {
                self.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let mut opts = SessionOptions::network(
            self.transport,
            Arc::clone(&self.metrics),
            Arc::clone(&self.shutdown),
        );
        opts.debug_verbs = self.debug_verbs;
        if serve_session_with(&self.state, reader, stream, &opts).is_err() {
            // The peer vanished mid-request (e.g. disconnected between
            // sending half a line and its newline). Session-local: the
            // listener and every other connection are unaffected.
            self.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Drop guard keeping the `active` gauge truthful on every exit path.
struct ActiveGuard {
    metrics: Arc<ServerMetrics>,
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.metrics.active.fetch_sub(1, Ordering::Relaxed);
        if thread::panicking() {
            self.metrics.panicked.fetch_add(1, Ordering::Relaxed);
        }
    }
}
