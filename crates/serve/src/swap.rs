//! Hand-rolled `ArcSwap`-style atomic handle for zero-downtime index swaps.
//!
//! The serving loop must keep answering while an incremental rebuild
//! installs a new index generation. [`AtomicHandle`] holds the current
//! generation behind an `Arc`; readers [`load`](AtomicHandle::load) a clone
//! of the `Arc` (a refcount bump under a briefly-held mutex — nanoseconds,
//! never blocked by a rebuild, which happens entirely *outside* the handle)
//! and keep serving from that generation for as long as they hold it, while
//! [`swap`](AtomicHandle::swap) atomically publishes the next generation.
//! An in-flight request therefore always sees one consistent generation —
//! never a half-written index — and the old generation is freed when its
//! last reader drops it.
//!
//! This is the standard-library equivalent of the `arc-swap` crate's
//! happy path (vendoring policy: no new dependencies). The mutex makes
//! `load` a few nanoseconds slower than a true lock-free `ArcSwap`, which
//! is invisible next to the microsecond-scale protocol I/O per request.
//!
//! ## Poisoning
//!
//! The mutex guards a single `Arc` slot whose every mutation is one
//! assignment — there is no intermediate state a panicking holder could
//! leave behind, so poisoning carries no information here. `load`/`swap`
//! recover the guard with [`PoisonError::into_inner`] instead of
//! propagating the panic: in a multi-threaded server one panicking handler
//! must not turn every subsequent `load` on every other connection into a
//! cascade of poison panics.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// An atomically swappable shared handle to an immutable value.
#[derive(Debug)]
pub struct AtomicHandle<T> {
    slot: Mutex<Arc<T>>,
}

impl<T> AtomicHandle<T> {
    /// Wraps the initial generation.
    pub fn new(value: T) -> Self {
        AtomicHandle {
            slot: Mutex::new(Arc::new(value)),
        }
    }

    /// As [`AtomicHandle::new`] from an already-shared value.
    pub fn from_arc(value: Arc<T>) -> Self {
        AtomicHandle {
            slot: Mutex::new(value),
        }
    }

    /// Locks the slot, recovering from poisoning: the slot's only mutation
    /// is an atomic `Arc` replacement, so the data is consistent no matter
    /// where a previous holder panicked.
    fn lock(&self) -> MutexGuard<'_, Arc<T>> {
        self.slot.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current generation. The returned `Arc` stays valid (and keeps
    /// serving its generation) across any number of concurrent swaps.
    pub fn load(&self) -> Arc<T> {
        self.lock().clone()
    }

    /// Publishes `next` as the current generation, returning the previous
    /// one (which lives until its last outstanding reader drops it).
    pub fn swap(&self, next: T) -> Arc<T> {
        self.swap_arc(Arc::new(next))
    }

    /// As [`AtomicHandle::swap`] with an already-shared next generation.
    pub fn swap_arc(&self, next: Arc<T>) -> Arc<T> {
        // The publish instant: a crash on either side of the replacement
        // must leave a servable state, which the chaos suite proves by
        // aborting here. The site sits *before* the lock so an abort never
        // takes the slot down mid-poison; `return` has no error channel in
        // a swap, so it escalates to a panic rather than silently skipping
        // the publish.
        #[cfg(feature = "failpoints")]
        if let Some(msg) = simrankpp_util::failpoint::eval("handle-swap") {
            panic!("{msg} (no error channel in swap; escalated to panic)");
        }
        std::mem::replace(&mut *self.lock(), next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_swap_generations() {
        let h = AtomicHandle::new(1u64);
        let g1 = h.load();
        let old = h.swap(2);
        assert_eq!(*old, 1);
        assert_eq!(*g1, 1, "outstanding reader keeps the old generation");
        assert_eq!(*h.load(), 2);
    }

    #[test]
    fn concurrent_readers_always_see_a_whole_generation() {
        // Generations are (n, n): a reader observing a torn value would see
        // mismatched halves. Swaps run concurrently with the readers.
        let h = AtomicHandle::new((0u64, 0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        let g = h.load();
                        assert_eq!(g.0, g.1, "torn generation observed");
                    }
                });
            }
            s.spawn(|| {
                for n in 1..=1_000u64 {
                    h.swap((n, n));
                }
            });
        });
        let last = h.load();
        assert_eq!(last.0, last.1);
        assert_eq!(last.0, 1_000);
    }

    #[test]
    fn poisoned_handle_keeps_serving() {
        // One handler thread panics while holding the slot lock — before the
        // into_inner recovery this poisoned the mutex and every later load()
        // (i.e. every other connection's next request) panicked too.
        let h = Arc::new(AtomicHandle::new(7u64));
        let h2 = Arc::clone(&h);
        let _ = std::thread::spawn(move || {
            let _guard = h2.slot.lock().unwrap();
            panic!("handler dies mid-hold");
        })
        .join();
        assert!(h.slot.is_poisoned(), "the panic must actually poison");
        assert_eq!(*h.load(), 7, "load() must survive a poisoned slot");
        let old = h.swap(8);
        assert_eq!(*old, 7);
        assert_eq!(*h.load(), 8, "swap() must survive a poisoned slot");
    }
}
