//! Versioned binary snapshot persistence for [`RewriteIndex`] — format v4.
//!
//! v4 replaces the v3 hand-rolled streaming layout with the shared arena
//! container (`simrankpp_util::arena`): a 32-byte header, a checksummed
//! section table, and 8-byte-aligned zero-padded sections. Two properties
//! fall out of that move:
//!
//! * **whole-section writes** — each array goes to the sink as a single
//!   `write_all` of its native bytes instead of an element-at-a-time loop
//!   (v3 issued one 4–8 byte write per offset/target/score);
//! * **zero-copy loads** — the file can be `mmap`ed and consumed in place
//!   (see [`crate::mapped::MappedIndex`]); parsing costs O(#sections), so
//!   startup time is independent of index size.
//!
//! ```text
//! tag   section         payload
//! 0x01  META            u64 × 7: method, max_rewrites,
//!                       flags (bid_filtered | approx_sharding << 1 |
//!                       has_names << 2), kernel, n_queries, n_entries,
//!                       segments
//! 0x02  OFFSETS         u32 × (n_queries + 1), row extents
//! 0x03  TARGETS         u32 × n_entries, rewrite ids
//! 0x04  SCORES          f64 × n_entries
//! 0x05  NAME_OFFS       u64 × (n_names + 1)   (named indexes only)
//! 0x06  NAME_BLOB       concatenated UTF-8 name bytes
//! 0x07  NAME_HASH       u64 × n_names, fnv1a(name), sorted
//! 0x08  NAME_IDS        u32 × n_names, query id per hash entry
//! ```
//!
//! `NAME_HASH`/`NAME_IDS` are a pre-sorted lookup table written at build
//! time so a mapped server resolves `lookup("camera")` by binary search
//! without materialising a hash map at load (which would be O(n) startup).
//!
//! Version history: v4 this arena layout; v3 added the engine `kernel`
//! byte; v2 added the `approx_sharding` flag. Older versions are refused
//! with a rebuild hint — snapshots are cheap build artifacts, not
//! long-lived data. The v1–v3 header began `magic | version u32`, which
//! coincides with the arena header's magic/version slots, so the version
//! check below reads old files' true version and refuses them cleanly.

use crate::index::{IndexMeta, RewriteIndex};
use simrankpp_core::{KernelKind, MethodKind};
use simrankpp_graph::Interner;
use simrankpp_util::{fnv1a, AlignedBytes, Arena, ArenaWriter};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

pub(crate) const MAGIC: [u8; 8] = *b"SRPPIDX\0";
pub(crate) const VERSION: u32 = 4;

pub(crate) const SEC_META: u64 = 0x01;
pub(crate) const SEC_OFFSETS: u64 = 0x02;
pub(crate) const SEC_TARGETS: u64 = 0x03;
pub(crate) const SEC_SCORES: u64 = 0x04;
pub(crate) const SEC_NAME_OFFS: u64 = 0x05;
pub(crate) const SEC_NAME_BLOB: u64 = 0x06;
pub(crate) const SEC_NAME_HASH: u64 = 0x07;
pub(crate) const SEC_NAME_IDS: u64 = 0x08;

pub(crate) const META_WORDS: usize = 7;
pub(crate) const FLAG_BID: u64 = 1;
pub(crate) const FLAG_APPROX: u64 = 1 << 1;
pub(crate) const FLAG_NAMES: u64 = 1 << 2;

/// Longest name accepted on read; anything larger indicates corruption
/// rather than a real query string.
pub(crate) const MAX_NAME_BYTES: u64 = 1 << 20;

impl RewriteIndex {
    /// Stages the index's sections into an [`ArenaWriter`] borrowing the
    /// index's arrays. `scratch` receives the computed payloads (meta block,
    /// name table) that must outlive the writer.
    pub(crate) fn stage_snapshot<'a>(
        &'a self,
        scratch: &'a mut SnapshotScratch,
    ) -> ArenaWriter<'a> {
        let mut flags = 0u64;
        if self.meta.bid_filtered {
            flags |= FLAG_BID;
        }
        if self.meta.approx_sharding {
            flags |= FLAG_APPROX;
        }
        if self.names.is_some() {
            flags |= FLAG_NAMES;
        }
        scratch.meta = vec![
            kind_to_u8(self.meta.method) as u64,
            self.meta.max_rewrites as u64,
            flags,
            kernel_to_u8(self.meta.kernel) as u64,
            self.n_queries as u64,
            self.targets.len() as u64,
            self.meta.segments as u64,
        ];
        if let Some(names) = &self.names {
            let n = names.len();
            scratch.name_offs = Vec::with_capacity(n + 1);
            scratch.name_offs.push(0u64);
            scratch.name_blob = Vec::new();
            let mut hashed: Vec<(u64, u32)> = Vec::with_capacity(n);
            for (id, name) in names.iter() {
                scratch.name_blob.extend_from_slice(name.as_bytes());
                scratch.name_offs.push(scratch.name_blob.len() as u64);
                hashed.push((fnv1a(name.as_bytes()), id));
            }
            hashed.sort_unstable();
            scratch.name_hash = hashed.iter().map(|&(h, _)| h).collect();
            scratch.name_ids = hashed.iter().map(|&(_, id)| id).collect();
        }

        let mut w = ArenaWriter::new(MAGIC, VERSION);
        w.slice(SEC_META, &scratch.meta)
            .slice(SEC_OFFSETS, &self.offsets)
            .slice(SEC_TARGETS, &self.targets)
            .slice(SEC_SCORES, &self.scores);
        if self.names.is_some() {
            w.slice(SEC_NAME_OFFS, &scratch.name_offs)
                .section(SEC_NAME_BLOB, &scratch.name_blob)
                .slice(SEC_NAME_HASH, &scratch.name_hash)
                .slice(SEC_NAME_IDS, &scratch.name_ids);
        }
        w
    }

    /// Writes the v4 arena snapshot to `out` — every section as one
    /// `write_all` of its native bytes.
    pub fn write_snapshot<W: Write>(&self, out: W) -> io::Result<()> {
        let mut scratch = SnapshotScratch::default();
        let writer = self.stage_snapshot(&mut scratch);
        let mut sink = BufWriter::new(out);
        writer.write_to(&mut sink)?;
        sink.flush()
    }

    /// Reads a v4 snapshot into an owned heap index, verifying the arena's
    /// shallow invariants, every section checksum, and the full set of
    /// [`RewriteIndex::validate`] structural invariants.
    pub fn read_snapshot<R: Read>(mut input: R) -> io::Result<RewriteIndex> {
        let mut raw = Vec::new();
        input.read_to_end(&mut raw)?;
        let buf = AlignedBytes::copy_from(&raw);
        decode_snapshot(buf.as_slice())
    }

    /// Writes the binary snapshot to `path` atomically and durably
    /// (sibling temp + fsync + rename + directory fsync): a crash mid-save
    /// leaves either the previous snapshot or the new one at `path`, never
    /// a torn file that later fails checksum with a confusing error.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        simrankpp_util::fail_point!("snapshot-save");
        simrankpp_util::durable::atomic_write(path.as_ref(), |w| self.write_snapshot(w))
    }

    /// Loads a binary snapshot from `path`.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<RewriteIndex> {
        Self::read_snapshot(File::open(path)?)
    }
}

/// Owned payloads computed while staging a snapshot (the arena writer
/// borrows them until the write finishes).
#[derive(Default)]
pub(crate) struct SnapshotScratch {
    meta: Vec<u64>,
    name_offs: Vec<u64>,
    name_blob: Vec<u8>,
    name_hash: Vec<u64>,
    name_ids: Vec<u32>,
}

/// Checks the version field **before** arena parsing so v1–v3 files (whose
/// header also began `magic | version u32`) get the established refusal
/// message rather than an opaque table-checksum error.
pub(crate) fn check_version(bytes: &[u8]) -> io::Result<()> {
    if bytes.len() < 12 {
        return Err(corrupt("not a rewrite-index snapshot (truncated header)"));
    }
    if bytes[..8] != MAGIC {
        return Err(corrupt("not a rewrite-index snapshot (bad magic)"));
    }
    let version = u32::from_ne_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(corrupt(&format!(
            "unsupported snapshot version {version} (expected {VERSION}; \
             rebuild the snapshot with `serve build`)"
        )));
    }
    Ok(())
}

/// Decodes the meta section into `(IndexMeta, has_names, n_queries,
/// n_entries)`. Shared between the heap decoder and the mapped loader.
pub(crate) fn decode_meta(meta: &[u64]) -> io::Result<(IndexMeta, bool, u64, u64)> {
    if meta.len() != META_WORDS {
        return Err(corrupt(&format!(
            "meta section holds {} words (expected {META_WORDS})",
            meta.len()
        )));
    }
    let method = u8::try_from(meta[0])
        .ok()
        .and_then(kind_from_u8)
        .ok_or_else(|| corrupt("unknown method kind in header"))?;
    let max_rewrites = u32::try_from(meta[1]).map_err(|_| corrupt("max_rewrites out of range"))?;
    let flags = meta[2];
    let kernel = u8::try_from(meta[3])
        .ok()
        .and_then(kernel_from_u8)
        .ok_or_else(|| corrupt("unknown engine kernel in header"))?;
    let n_queries = meta[4];
    let n_entries = meta[5];
    let segments = u32::try_from(meta[6]).map_err(|_| corrupt("segment count out of range"))?;
    if u32::try_from(n_queries).is_err() {
        return Err(corrupt("query count out of range"));
    }
    Ok((
        IndexMeta {
            method,
            max_rewrites,
            bid_filtered: flags & FLAG_BID != 0,
            approx_sharding: flags & FLAG_APPROX != 0,
            kernel,
            segments,
        },
        flags & FLAG_NAMES != 0,
        n_queries,
        n_entries,
    ))
}

/// Rebuilds the name interner from the offs/blob sections, refusing
/// non-monotone offsets, out-of-range extents, invalid UTF-8, oversized
/// names, and duplicates (a repeated name would silently shift every later
/// id, serving the wrong query's rewrites).
pub(crate) fn decode_names(offs: &[u64], blob: &[u8]) -> io::Result<Interner> {
    if offs.first() != Some(&0) || offs.last().copied() != Some(blob.len() as u64) {
        return Err(corrupt("name offsets do not span the name blob"));
    }
    let mut interner = Interner::new();
    for (i, w) in offs.windows(2).enumerate() {
        let (start, end) = (w[0], w[1]);
        if end < start || end - start > MAX_NAME_BYTES {
            return Err(corrupt("name length out of range"));
        }
        let bytes = &blob[start as usize..end as usize];
        let name = std::str::from_utf8(bytes).map_err(|_| corrupt("name is not valid UTF-8"))?;
        if interner.intern(name) != i as u32 {
            return Err(corrupt(&format!("duplicate name {name:?} in name table")));
        }
    }
    Ok(interner)
}

/// Full heap decode: shallow parse + deep checksums + structural validate.
pub(crate) fn decode_snapshot(bytes: &[u8]) -> io::Result<RewriteIndex> {
    check_version(bytes)?;
    let arena = Arena::parse(bytes, MAGIC).map_err(|e| corrupt(&e))?;
    arena.verify_deep().map_err(|e| corrupt(&e))?;

    let meta_words: &[u64] = arena.slice(SEC_META).map_err(|e| corrupt(&e))?;
    let (meta, has_names, n_queries, n_entries) = decode_meta(meta_words)?;

    let offsets: &[u32] = arena.slice(SEC_OFFSETS).map_err(|e| corrupt(&e))?;
    let targets: &[u32] = arena.slice(SEC_TARGETS).map_err(|e| corrupt(&e))?;
    let scores: &[f64] = arena.slice(SEC_SCORES).map_err(|e| corrupt(&e))?;
    if offsets.len() as u64 != n_queries + 1 {
        return Err(corrupt("offsets section disagrees with header query count"));
    }
    if targets.len() as u64 != n_entries || scores.len() as u64 != n_entries {
        return Err(corrupt("entry sections disagree with header entry count"));
    }

    let names = if has_names {
        let offs: &[u64] = arena.slice(SEC_NAME_OFFS).map_err(|e| corrupt(&e))?;
        let blob = arena.require(SEC_NAME_BLOB).map_err(|e| corrupt(&e))?;
        let hash: &[u64] = arena.slice(SEC_NAME_HASH).map_err(|e| corrupt(&e))?;
        let ids: &[u32] = arena.slice(SEC_NAME_IDS).map_err(|e| corrupt(&e))?;
        if offs.is_empty() {
            return Err(corrupt("empty name offsets section"));
        }
        let n_names = offs.len() - 1;
        if hash.len() != n_names || ids.len() != n_names {
            return Err(corrupt("name lookup table disagrees with name count"));
        }
        Some(decode_names(offs, blob)?)
    } else {
        None
    };

    let index = RewriteIndex {
        meta,
        n_queries: n_queries as u32,
        offsets: offsets.to_vec(),
        targets: targets.to_vec(),
        scores: scores.to_vec(),
        names,
    };
    index
        .validate()
        .map_err(|e| corrupt(&format!("invalid index structure: {e}")))?;
    Ok(index)
}

pub(crate) fn kind_to_u8(kind: MethodKind) -> u8 {
    match kind {
        MethodKind::Naive => 0,
        MethodKind::Pearson => 1,
        MethodKind::Simrank => 2,
        MethodKind::EvidenceSimrank => 3,
        MethodKind::WeightedSimrank => 4,
    }
}

pub(crate) fn kind_from_u8(b: u8) -> Option<MethodKind> {
    Some(match b {
        0 => MethodKind::Naive,
        1 => MethodKind::Pearson,
        2 => MethodKind::Simrank,
        3 => MethodKind::EvidenceSimrank,
        4 => MethodKind::WeightedSimrank,
        _ => return None,
    })
}

pub(crate) fn kernel_to_u8(kernel: KernelKind) -> u8 {
    match kernel {
        KernelKind::Pull => 0,
        KernelKind::Flat => 1,
        KernelKind::Hashmap => 2,
    }
}

pub(crate) fn kernel_from_u8(b: u8) -> Option<KernelKind> {
    Some(match b {
        0 => KernelKind::Pull,
        1 => KernelKind::Flat,
        2 => KernelKind::Hashmap,
        _ => return None,
    })
}

pub(crate) fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_core::{Method, Rewriter, RewriterConfig, SimrankConfig};
    use simrankpp_graph::fixtures::figure3_graph;
    use simrankpp_graph::{QueryId, WeightKind};
    use simrankpp_util::{ENDIAN_MARK, HEADER_BYTES, TABLE_ENTRY_BYTES};

    fn fig3_index(kind: MethodKind) -> RewriteIndex {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(kind, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        RewriteIndex::build(&rewriter, None, 1)
    }

    fn roundtrip(index: &RewriteIndex) -> RewriteIndex {
        let mut buf = Vec::new();
        index.write_snapshot(&mut buf).unwrap();
        RewriteIndex::read_snapshot(buf.as_slice()).unwrap()
    }

    fn snapshot_bytes(index: &RewriteIndex) -> Vec<u8> {
        let mut buf = Vec::new();
        index.write_snapshot(&mut buf).unwrap();
        buf
    }

    /// Table extent of an encoded arena: `HEADER_BYTES .. table_end`.
    fn table_end(buf: &[u8]) -> usize {
        let n = u32::from_ne_bytes(buf[12..16].try_into().unwrap()) as usize;
        HEADER_BYTES + n * TABLE_ENTRY_BYTES
    }

    /// Re-seals a tampered arena: recomputes every section checksum from
    /// the (possibly corrupted) payload bytes and the table checksum from
    /// the (possibly corrupted) table, so tampering reaches the targeted
    /// validation layer instead of tripping an earlier checksum.
    fn reseal(buf: &mut [u8]) {
        let end = table_end(buf);
        for base in (HEADER_BYTES..end).step_by(TABLE_ENTRY_BYTES) {
            let off = u64::from_ne_bytes(buf[base + 8..base + 16].try_into().unwrap()) as usize;
            let len = u64::from_ne_bytes(buf[base + 16..base + 24].try_into().unwrap()) as usize;
            if off + len <= buf.len() {
                let h = fnv1a(&buf[off..off + len]);
                buf[base + 24..base + 32].copy_from_slice(&h.to_ne_bytes());
            }
        }
        let h = fnv1a(&buf[HEADER_BYTES..end]);
        buf[24..32].copy_from_slice(&h.to_ne_bytes());
    }

    #[test]
    fn approx_sharding_flag_survives_roundtrip() {
        let mut index = fig3_index(MethodKind::Simrank);
        index.set_approx_sharding(true);
        let loaded = roundtrip(&index);
        assert!(loaded.meta().approx_sharding);
        assert_eq!(loaded.meta(), index.meta());
    }

    #[test]
    fn binary_roundtrip_is_identical() {
        for kind in MethodKind::EVALUATED {
            let index = fig3_index(kind);
            let loaded = roundtrip(&index);
            assert_eq!(loaded.meta(), index.meta());
            assert_eq!(loaded.offsets, index.offsets);
            assert_eq!(loaded.targets, index.targets);
            // Scores roundtrip bit-exactly.
            for (a, b) in loaded.scores.iter().zip(&index.scores) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert!(loaded.lookup("camera").is_some());
        }
    }

    #[test]
    fn snapshot_is_arena_with_aligned_sections() {
        let buf = snapshot_bytes(&fig3_index(MethodKind::Simrank));
        assert_eq!(buf.len() % 8, 0);
        assert_eq!(&buf[..8], &MAGIC);
        assert_eq!(
            u64::from_ne_bytes(buf[16..24].try_into().unwrap()),
            ENDIAN_MARK
        );
        let end = table_end(&buf);
        for base in (HEADER_BYTES..end).step_by(TABLE_ENTRY_BYTES) {
            let off = u64::from_ne_bytes(buf[base + 8..base + 16].try_into().unwrap());
            assert_eq!(off % 8, 0, "section at table offset {base} misaligned");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = RewriteIndex::read_snapshot(&b"NOTANIDX________"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = snapshot_bytes(&fig3_index(MethodKind::Simrank));
        buf[8] = 99; // version byte
        let err = RewriteIndex::read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn v3_snapshot_refused_with_rebuild_hint() {
        // A v1–v3 file began `magic | version u32 | ...`; only those 12
        // bytes matter for the refusal path.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let err = RewriteIndex::read_snapshot(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unsupported snapshot version 3"), "{msg}");
        assert!(
            msg.contains("rebuild the snapshot with `serve build`"),
            "{msg}"
        );
    }

    #[test]
    fn corruption_caught_by_checksum() {
        let mut buf = snapshot_bytes(&fig3_index(MethodKind::Simrank));
        // Flip one payload byte somewhere in the middle.
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        let err = RewriteIndex::read_snapshot(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("checksum") || msg.contains("corrupt") || msg.contains("invalid"),
            "{msg}"
        );
    }

    #[test]
    fn truncated_section_table_rejected() {
        let mut buf = snapshot_bytes(&fig3_index(MethodKind::Simrank));
        buf.truncate(HEADER_BYTES + TABLE_ENTRY_BYTES / 2);
        let err = RewriteIndex::read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn misaligned_section_offset_rejected() {
        let mut buf = snapshot_bytes(&fig3_index(MethodKind::Simrank));
        // Knock the first section's offset off 8-alignment, then re-seal the
        // table checksum so the tamper reaches the alignment check (the
        // table FNV is verified first and would otherwise mask it).
        let base = HEADER_BYTES;
        let off = u64::from_ne_bytes(buf[base + 8..base + 16].try_into().unwrap());
        buf[base + 8..base + 16].copy_from_slice(&(off + 4).to_ne_bytes());
        reseal(&mut buf);
        let err = RewriteIndex::read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("aligned"), "{err}");
    }

    #[test]
    fn oversized_section_length_rejected_without_allocating() {
        let mut buf = snapshot_bytes(&fig3_index(MethodKind::Simrank));
        // Claim the scores section extends far past the file, re-sealed so
        // the bounds check (not the table checksum) is what fires. The
        // reader must refuse via arithmetic, never allocate from the bogus
        // length.
        let base = HEADER_BYTES + 3 * TABLE_ENTRY_BYTES; // SEC_SCORES entry
        buf[base + 16..base + 24].copy_from_slice(&(u64::MAX / 2).to_ne_bytes());
        reseal(&mut buf);
        let err = RewriteIndex::read_snapshot(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("beyond") || msg.contains("overflow"), "{msg}");
    }

    #[test]
    fn absurd_section_count_rejected_without_allocating() {
        let mut buf = snapshot_bytes(&fig3_index(MethodKind::Simrank));
        // A corrupted n_sections field must come back as Err, not as an
        // absurd up-front allocation that aborts the process.
        buf[12..16].copy_from_slice(&u32::MAX.to_ne_bytes());
        assert!(RewriteIndex::read_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn kernel_provenance_survives_roundtrip_and_bad_value_rejected() {
        let index = fig3_index(MethodKind::Simrank);
        // Built with the default config, so the recorded kernel is Pull.
        assert_eq!(index.meta().kernel, KernelKind::Pull);
        let loaded = roundtrip(&index);
        assert_eq!(loaded.meta().kernel, KernelKind::Pull);
        assert_eq!(loaded.meta(), index.meta());
        // Corrupt the kernel word in the META section (first section, 4th
        // u64) and re-seal, so the unknown-kernel refusal — not a checksum
        // error — is what fires.
        let mut buf = snapshot_bytes(&index);
        let meta_off = table_end(&buf);
        buf[meta_off + 24..meta_off + 32].copy_from_slice(&99u64.to_ne_bytes());
        reseal(&mut buf);
        let err = RewriteIndex::read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("kernel"), "{err}");
    }

    #[test]
    fn segments_provenance_survives_roundtrip() {
        let mut index = fig3_index(MethodKind::Simrank);
        index.meta.segments = 17;
        let loaded = roundtrip(&index);
        assert_eq!(loaded.meta().segments, 17);
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = snapshot_bytes(&fig3_index(MethodKind::Simrank));
        buf.truncate(buf.len() - 9);
        assert!(RewriteIndex::read_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn file_save_load_roundtrip() {
        let index = fig3_index(MethodKind::WeightedSimrank);
        let path = std::env::temp_dir().join("simrankpp_fig3_test.idx");
        index.save(&path).unwrap();
        let loaded = RewriteIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for q in 0..index.n_queries() {
            let q = QueryId(q as u32);
            assert_eq!(loaded.rewrites_of(q).ids(), index.rewrites_of(q).ids());
        }
    }
}
