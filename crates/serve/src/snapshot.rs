//! Versioned binary snapshot persistence for [`RewriteIndex`].
//!
//! Layout (integers little-endian):
//!
//! ```text
//! magic "SRPPIDX\0" | version u32 | method u8 | max_rewrites u32 |
//! bid_filtered u8 | has_names u8 | approx_sharding u8 | kernel u8 |
//! n_queries u32 | n_entries u64 | offsets (n_queries+1) × u32 |
//! targets n_entries × u32 | scores n_entries × f64-bits |
//! [n_names u32, (len u32, utf8 bytes)...] | checksum u64
//! ```
//!
//! Version history: v3 added the engine `kernel` byte (which accumulation
//! kernel computed the scores — incremental refresh refuses to mix
//! kernels); v2 added the `approx_sharding` flag (whether the index was
//! built under an edge-cutting sharding regime, which blocks incremental
//! refresh). Older versions are refused with a rebuild hint — snapshots are
//! cheap build artifacts, not long-lived data.
//!
//! The trailing checksum is FNV-1a over every byte after the magic/version
//! prefix, so truncation and bit-rot are detected before
//! [`RewriteIndex::validate`] checks the structural invariants. Loading
//! runs both.

use crate::index::{IndexMeta, RewriteIndex};
use simrankpp_core::{KernelKind, MethodKind};
use simrankpp_graph::Interner;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: [u8; 8] = *b"SRPPIDX\0";
const VERSION: u32 = 3;

/// Longest name accepted on read; anything larger indicates corruption
/// rather than a real query string.
const MAX_NAME_BYTES: u32 = 1 << 20;

/// Pre-allocation cap per section while reading. Header counts are
/// untrusted until the checksum verifies, so a corrupt length field must
/// produce an `Err` (via EOF while reading elements), never an up-front
/// absurd allocation that aborts the process.
const PREALLOC_CAP: usize = 1 << 20;

impl RewriteIndex {
    /// Writes the binary snapshot format to `out`.
    pub fn write_snapshot<W: Write>(&self, out: W) -> io::Result<()> {
        let mut w = HashingWriter::new(BufWriter::new(out));
        w.inner.write_all(&MAGIC)?;
        w.inner.write_all(&VERSION.to_le_bytes())?;

        w.write_all(&[kind_to_u8(self.meta.method)])?;
        w.write_all(&self.meta.max_rewrites.to_le_bytes())?;
        w.write_all(&[
            self.meta.bid_filtered as u8,
            self.names.is_some() as u8,
            self.meta.approx_sharding as u8,
            kernel_to_u8(self.meta.kernel),
        ])?;
        w.write_all(&self.n_queries.to_le_bytes())?;
        w.write_all(&(self.targets.len() as u64).to_le_bytes())?;
        for &o in &self.offsets {
            w.write_all(&o.to_le_bytes())?;
        }
        for &t in &self.targets {
            w.write_all(&t.to_le_bytes())?;
        }
        for &s in &self.scores {
            w.write_all(&s.to_bits().to_le_bytes())?;
        }
        if let Some(names) = &self.names {
            w.write_all(&(names.len() as u32).to_le_bytes())?;
            for (_, name) in names.iter() {
                w.write_all(&(name.len() as u32).to_le_bytes())?;
                w.write_all(name.as_bytes())?;
            }
        }
        let checksum = w.hash;
        w.write_all(&checksum.to_le_bytes())?;
        w.inner.flush()
    }

    /// Reads a binary snapshot, verifying magic, version, checksum, and the
    /// full set of [`RewriteIndex::validate`] invariants.
    pub fn read_snapshot<R: Read>(input: R) -> io::Result<RewriteIndex> {
        let mut r = HashingReader::new(BufReader::new(input));
        let mut magic = [0u8; 8];
        r.inner.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(corrupt("not a rewrite-index snapshot (bad magic)"));
        }
        let version = u32::from_le_bytes(read_array(&mut r.inner)?);
        if version != VERSION {
            return Err(corrupt(&format!(
                "unsupported snapshot version {version} (expected {VERSION}; \
                 rebuild the snapshot with `serve build`)"
            )));
        }

        let method = kind_from_u8(read_u8(&mut r)?)
            .ok_or_else(|| corrupt("unknown method kind in header"))?;
        let max_rewrites = u32::from_le_bytes(read_array(&mut r)?);
        let bid_filtered = read_u8(&mut r)? != 0;
        let has_names = read_u8(&mut r)? != 0;
        let approx_sharding = read_u8(&mut r)? != 0;
        let kernel = kernel_from_u8(read_u8(&mut r)?)
            .ok_or_else(|| corrupt("unknown engine kernel in header"))?;
        let n_queries = u32::from_le_bytes(read_array(&mut r)?);
        let n_entries = u64::from_le_bytes(read_array(&mut r)?) as usize;

        let mut offsets = Vec::with_capacity((n_queries as usize + 1).min(PREALLOC_CAP));
        for _ in 0..n_queries as usize + 1 {
            offsets.push(u32::from_le_bytes(read_array(&mut r)?));
        }
        let mut targets = Vec::with_capacity(n_entries.min(PREALLOC_CAP));
        for _ in 0..n_entries {
            targets.push(u32::from_le_bytes(read_array(&mut r)?));
        }
        let mut scores = Vec::with_capacity(n_entries.min(PREALLOC_CAP));
        for _ in 0..n_entries {
            scores.push(f64::from_bits(u64::from_le_bytes(read_array(&mut r)?)));
        }
        let names = if has_names {
            let n_names = u32::from_le_bytes(read_array(&mut r)?);
            let mut interner = Interner::new();
            for i in 0..n_names {
                let len = u32::from_le_bytes(read_array(&mut r)?);
                if len > MAX_NAME_BYTES {
                    return Err(corrupt("name length out of range"));
                }
                let mut buf = vec![0u8; len as usize];
                r.read_exact(&mut buf)?;
                let name =
                    String::from_utf8(buf).map_err(|_| corrupt("name is not valid UTF-8"))?;
                // Interning dedups: a repeated name would silently shift every
                // later id, serving the wrong query's rewrites. Refuse instead.
                if interner.intern(&name) != i {
                    return Err(corrupt(&format!("duplicate name {name:?} in name table")));
                }
            }
            Some(interner)
        } else {
            None
        };

        let computed = r.hash;
        let stored = u64::from_le_bytes(read_array(&mut r.inner)?);
        if stored != computed {
            return Err(corrupt("checksum mismatch (truncated or corrupt snapshot)"));
        }

        let index = RewriteIndex {
            meta: IndexMeta {
                method,
                max_rewrites,
                bid_filtered,
                approx_sharding,
                kernel,
            },
            n_queries,
            offsets,
            targets,
            scores,
            names,
        };
        index
            .validate()
            .map_err(|e| corrupt(&format!("invalid index structure: {e}")))?;
        Ok(index)
    }

    /// Writes the binary snapshot to `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.write_snapshot(File::create(path)?)
    }

    /// Loads a binary snapshot from `path`.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<RewriteIndex> {
        Self::read_snapshot(File::open(path)?)
    }
}

fn kind_to_u8(kind: MethodKind) -> u8 {
    match kind {
        MethodKind::Naive => 0,
        MethodKind::Pearson => 1,
        MethodKind::Simrank => 2,
        MethodKind::EvidenceSimrank => 3,
        MethodKind::WeightedSimrank => 4,
    }
}

fn kind_from_u8(b: u8) -> Option<MethodKind> {
    Some(match b {
        0 => MethodKind::Naive,
        1 => MethodKind::Pearson,
        2 => MethodKind::Simrank,
        3 => MethodKind::EvidenceSimrank,
        4 => MethodKind::WeightedSimrank,
        _ => return None,
    })
}

fn kernel_to_u8(kernel: KernelKind) -> u8 {
    match kernel {
        KernelKind::Pull => 0,
        KernelKind::Flat => 1,
        KernelKind::Hashmap => 2,
    }
}

fn kernel_from_u8(b: u8) -> Option<KernelKind> {
    Some(match b {
        0 => KernelKind::Pull,
        1 => KernelKind::Flat,
        2 => KernelKind::Hashmap,
        _ => return None,
    })
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_array<R: Read, const N: usize>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Write adapter accumulating an FNV-1a hash of everything written through
/// it (header prefix and final checksum bypass via `.inner`).
struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: FNV_OFFSET,
        }
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash = fnv1a(self.hash, bytes);
        self.inner.write_all(bytes)
    }
}

/// Read adapter mirroring [`HashingWriter`].
struct HashingReader<R: Read> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash = fnv1a(self.hash, &buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_core::{Method, Rewriter, RewriterConfig, SimrankConfig};
    use simrankpp_graph::fixtures::figure3_graph;
    use simrankpp_graph::{QueryId, WeightKind};

    fn fig3_index(kind: MethodKind) -> RewriteIndex {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(kind, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        RewriteIndex::build(&rewriter, None, 1)
    }

    fn roundtrip(index: &RewriteIndex) -> RewriteIndex {
        let mut buf = Vec::new();
        index.write_snapshot(&mut buf).unwrap();
        RewriteIndex::read_snapshot(buf.as_slice()).unwrap()
    }

    #[test]
    fn approx_sharding_flag_survives_roundtrip() {
        let mut index = fig3_index(MethodKind::Simrank);
        index.set_approx_sharding(true);
        let loaded = roundtrip(&index);
        assert!(loaded.meta().approx_sharding);
        assert_eq!(loaded.meta(), index.meta());
    }

    #[test]
    fn binary_roundtrip_is_identical() {
        for kind in MethodKind::EVALUATED {
            let index = fig3_index(kind);
            let loaded = roundtrip(&index);
            assert_eq!(loaded.meta(), index.meta());
            assert_eq!(loaded.offsets, index.offsets);
            assert_eq!(loaded.targets, index.targets);
            // Scores roundtrip bit-exactly.
            for (a, b) in loaded.scores.iter().zip(&index.scores) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert!(loaded.lookup("camera").is_some());
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = RewriteIndex::read_snapshot(&b"NOTANIDX________"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let index = fig3_index(MethodKind::Simrank);
        let mut buf = Vec::new();
        index.write_snapshot(&mut buf).unwrap();
        buf[8] = 99; // version byte
        let err = RewriteIndex::read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn corruption_caught_by_checksum() {
        let index = fig3_index(MethodKind::Simrank);
        let mut buf = Vec::new();
        index.write_snapshot(&mut buf).unwrap();
        // Flip one payload byte somewhere in the middle.
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        let err = RewriteIndex::read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum") || err.to_string().contains("invalid"),);
    }

    #[test]
    fn absurd_entry_count_rejected_without_allocating() {
        // A corrupted n_entries header field (here u64::MAX) must come back
        // as Err, not as a capacity-overflow abort from a trusted
        // with_capacity call. Bytes 25..33 are the n_entries field (after
        // magic 8, version 4, method 1, max_rewrites 4, flags 3, kernel 1,
        // n_queries 4).
        let index = fig3_index(MethodKind::Simrank);
        let mut buf = Vec::new();
        index.write_snapshot(&mut buf).unwrap();
        buf[25..33].fill(0xff);
        assert!(RewriteIndex::read_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn kernel_provenance_survives_roundtrip_and_bad_byte_rejected() {
        let index = fig3_index(MethodKind::Simrank);
        // Built with the default config, so the recorded kernel is Pull.
        assert_eq!(index.meta().kernel, KernelKind::Pull);
        let loaded = roundtrip(&index);
        assert_eq!(loaded.meta().kernel, KernelKind::Pull);
        assert_eq!(loaded.meta(), index.meta());
        // Byte 20 is the kernel byte (magic 8, version 4, method 1,
        // max_rewrites 4, flags 3); an unknown value must be refused.
        let mut buf = Vec::new();
        index.write_snapshot(&mut buf).unwrap();
        buf[20] = 99;
        let err = RewriteIndex::read_snapshot(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("kernel") || err.to_string().contains("checksum"),
            "{err}"
        );
    }

    #[test]
    fn truncation_rejected() {
        let index = fig3_index(MethodKind::Simrank);
        let mut buf = Vec::new();
        index.write_snapshot(&mut buf).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(RewriteIndex::read_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn file_save_load_roundtrip() {
        let index = fig3_index(MethodKind::WeightedSimrank);
        let path = std::env::temp_dir().join("simrankpp_fig3_test.idx");
        index.save(&path).unwrap();
        let loaded = RewriteIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for q in 0..index.n_queries() {
            let q = QueryId(q as u32);
            assert_eq!(loaded.rewrites_of(q).ids(), index.rewrites_of(q).ids());
        }
    }
}
