//! Build, inspect, and serve rewrite indexes from the command line.
//!
//! ```text
//! serve build <graph.tsv> <out.idx> [method] [shard]   offline: TSV graph → snapshot
//! serve build --fixture fig3 <out.idx> [method] [shard]   (the paper's Figure 3 graph)
//! serve run <index.idx>                        online: line protocol on stdin/stdout
//! serve run --graph <graph.tsv> [method] [shard]   build in memory, then serve
//! serve info <index.idx>                       print snapshot header + stats
//! ```
//!
//! `method` is one of `naive | pearson | simrank | evidence | weighted`
//! (default `weighted`, the paper's best). `shard` selects the engine
//! decomposition for the recursive methods: `components` (default; exact —
//! one engine run per click-graph component, so the index is identical to a
//! monolithic build), `off`, or `extracted:K` (approximate ACL carving of
//! the giant component into K blocks). Diagnostics go to stderr; stdout
//! carries only the line protocol, so `serve run` pipes cleanly.

use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, ShardStrategy, SimrankConfig};
use simrankpp_graph::fixtures::figure3_graph;
use simrankpp_graph::{io::read_tsv, ClickGraph, WeightKind};
use simrankpp_serve::{serve_lines, RewriteIndex};
use std::fs::File;
use std::io::{self, BufReader};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage:
  serve build <graph.tsv>|--fixture fig3 <out.idx> [method] [shard]
  serve run <index.idx>
  serve run --graph <graph.tsv> [method] [shard]
  serve info <index.idx>
method: naive | pearson | simrank | evidence | weighted (default weighted)
shard:  components | off | extracted:K (default components; exact)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => build(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("info") => info(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn method_kind(name: &str) -> Result<MethodKind, String> {
    Ok(match name {
        "naive" => MethodKind::Naive,
        "pearson" => MethodKind::Pearson,
        "simrank" => MethodKind::Simrank,
        "evidence" => MethodKind::EvidenceSimrank,
        "weighted" => MethodKind::WeightedSimrank,
        other => return Err(format!("unknown method {other:?}\n{USAGE}")),
    })
}

fn load_graph(source: &str, fixture: bool) -> Result<ClickGraph, String> {
    if fixture {
        return match source {
            "fig3" => Ok(figure3_graph()),
            other => Err(format!("unknown fixture {other:?} (only: fig3)")),
        };
    }
    let file = File::open(source).map_err(|e| format!("cannot open {source}: {e}"))?;
    read_tsv(BufReader::new(file)).map_err(|e| format!("cannot parse {source}: {e}"))
}

fn shard_strategy(name: &str) -> Result<ShardStrategy, String> {
    Ok(match name {
        "off" => ShardStrategy::Off,
        "components" => ShardStrategy::Components,
        other => match other.strip_prefix("extracted:").map(str::parse::<usize>) {
            Some(Ok(k)) if k > 0 => ShardStrategy::Extracted(k),
            _ => return Err(format!("unknown shard strategy {other:?}\n{USAGE}")),
        },
    })
}

fn build_index(graph: &ClickGraph, kind: MethodKind, sharding: ShardStrategy) -> RewriteIndex {
    let t0 = Instant::now();
    let config = SimrankConfig::default()
        .with_weight_kind(WeightKind::Clicks)
        .with_sharding(sharding);
    let method = Method::compute(kind, graph, &config);
    eprintln!(
        "computed {} over {} queries / {} ads ({sharding:?} sharding) in {:.1?}",
        kind.name(),
        graph.n_queries(),
        graph.n_ads(),
        t0.elapsed()
    );
    let t1 = Instant::now();
    let rewriter = Rewriter::new(graph, method, RewriterConfig::default());
    let index = RewriteIndex::build(&rewriter, None, 0);
    eprintln!(
        "indexed {} rewrites for {} queries in {:.1?}",
        index.n_entries(),
        index.n_queries(),
        t1.elapsed()
    );
    index
}

fn build(args: &[String]) -> Result<(), String> {
    let (graph, rest) = match args.first().map(String::as_str) {
        Some("--fixture") => {
            let name = args.get(1).ok_or(USAGE.to_owned())?;
            (load_graph(name, true)?, &args[2..])
        }
        Some(path) => (load_graph(path, false)?, &args[1..]),
        None => return Err(USAGE.to_owned()),
    };
    let out = rest.first().ok_or(USAGE.to_owned())?;
    let kind = method_kind(rest.get(1).map(String::as_str).unwrap_or("weighted"))?;
    let sharding = shard_strategy(rest.get(2).map(String::as_str).unwrap_or("components"))?;

    let index = build_index(&graph, kind, sharding);
    index
        .save(out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("snapshot written to {out}");
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let index = match args.first().map(String::as_str) {
        Some("--graph") => {
            let path = args.get(1).ok_or(USAGE.to_owned())?;
            let kind = method_kind(args.get(2).map(String::as_str).unwrap_or("weighted"))?;
            let sharding = shard_strategy(args.get(3).map(String::as_str).unwrap_or("components"))?;
            build_index(&load_graph(path, false)?, kind, sharding)
        }
        Some(path) => {
            let index = RewriteIndex::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
            eprintln!(
                "loaded {}: {} queries, {} rewrites ({})",
                path,
                index.n_queries(),
                index.n_entries(),
                index.meta().method.name()
            );
            index
        }
        None => return Err(USAGE.to_owned()),
    };
    let stdin = io::stdin();
    serve_lines(&index, stdin.lock(), io::stdout()).map_err(|e| format!("protocol error: {e}"))
}

fn info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE.to_owned())?;
    let index = RewriteIndex::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let covered = (0..index.n_queries())
        .filter(|&q| {
            !index
                .rewrites_of(simrankpp_graph::QueryId(q as u32))
                .is_empty()
        })
        .count();
    println!("snapshot        {path}");
    println!("method          {}", index.meta().method.name());
    println!("max rewrites    {}", index.meta().max_rewrites);
    println!("bid filtered    {}", index.meta().bid_filtered);
    println!("queries         {}", index.n_queries());
    println!("rewrites        {}", index.n_entries());
    println!(
        "coverage        {:.4}",
        covered as f64 / index.n_queries().max(1) as f64
    );
    Ok(())
}
