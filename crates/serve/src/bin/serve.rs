//! Build, inspect, update, and serve rewrite indexes from the command line.
//!
//! ```text
//! serve build <graph.tsv> <out.idx> [method] [shard]   offline: TSV graph → snapshot
//! serve build <store.seg> <out.idx> [method]   segment-at-a-time build: peak memory
//!                                              bounded by the largest segment
//! serve build --fixture fig3 <out.idx> [method] [shard]   (the paper's Figure 3 graph)
//! serve segment <graph.tsv> <out.seg> [target-nodes]   TSV graph → segmented store
//! serve run <index.idx>                        online: line protocol on stdin/stdout;
//!                                              the snapshot is mmap-ed and served
//!                                              zero-copy (O(ms) startup at any size)
//! serve run --graph <graph.tsv> [method] [shard]   build in memory, then serve
//!                                              (enables the `update` protocol verb)
//! serve run --graph <graph.tsv> --mode single-source   skip the offline build: every
//!                                              query is computed live on demand and
//!                                              cached (bounded LRU, see --cache-capacity)
//! serve listen --addr 0.0.0.0:7878 --admin 127.0.0.1:7879 <index.idx>|--graph ...
//!                                              threaded TCP server: same protocol and
//!                                              sources as `run`; data plane serves
//!                                              rewrite/quit, the admin plane adds
//!                                              batch/update/info/shutdown
//! serve update <index.idx> <delta.tsv> --graph <graph.tsv>|--fixture fig3
//!              [out.idx] [--write-graph <path>]    incremental: refresh dirty rows only
//! serve info <index.idx>                       print snapshot header + stats
//! serve ingest <click.log> [method] [--window N] [--decay F] [--poll-ms N]
//!              [--addr H:P] [--admin H:P] ...   streaming: tail an append-only click
//!                                              log, batch events into epochs, and
//!                                              refresh + hot-swap dirty rows at every
//!                                              epoch boundary while the TCP planes
//!                                              keep serving
//! ```
//!
//! `method` is one of `naive | pearson | simrank | evidence | weighted`
//! (default `weighted`, the paper's best). `shard` selects the engine
//! decomposition for the recursive methods: `components` (default; exact —
//! one engine run per click-graph component, so the index is identical to a
//! monolithic build), `off`, or `extracted:K` (approximate ACL carving of
//! the giant component into K blocks). Diagnostics go to stderr; stdout
//! carries only the line protocol, so `serve run` pipes cleanly.
//!
//! With `--graph` and a recursive method the server also holds a live
//! single-source engine: queries the index misses (always, under `--mode
//! single-source`) are computed on demand and cached; the protocol's `info`
//! verb reports the cache's hit/miss counters.
//!
//! `serve update` applies a delta TSV (`+\tquery\tad\timpr\tclicks\tecr`
//! per upsert, `-\tquery\tad` per removal) to the graph the snapshot was
//! built from, recomputes only the dirty components' rows, and writes the
//! next snapshot generation (in place unless `out.idx` is given). The
//! snapshot's own metadata supplies the method — no method argument.
//!
//! `serve ingest` is the streaming counterpart: the click log is the delta
//! upsert shape with a leading epoch column (`+\t<epoch>\t<query>\t<ad>\t
//! <impr>\t<clicks>\t<ecr>`), and `@\t<epoch>` marker lines close epochs.
//! Events accumulate in a sliding window of `--window` epochs (older
//! buckets retire wholesale); `--decay` down-weights an edge's older ECR
//! evidence. Each closed epoch refreshes exactly the dirty components'
//! rows and hot-swaps the generation in — clients never see a partial
//! index. The protocol `info` verb reports the `ingest_*` freshness
//! counters. `--checkpoint <path>` commits a durable checkpoint (log
//! offset + window epoch + graph fingerprint, written atomically) at every
//! epoch boundary; `--resume` restarts from it, replaying only the
//! checkpointed window span plus the log tail and refusing checkpoints
//! whose fingerprint disagrees with the replayed window.
//!
//! `--weight-kind` selects the edge weight behind transition
//! probabilities. Every subcommand defaults to `clicks` except `ingest`,
//! which defaults to `ecr` so the decay knob is visible in scores. The
//! snapshot header records the engine kernel but not the weight kind, so
//! a `serve update` of an index built with a non-default kind must be
//! given the same flag — a mismatch would mix weight regimes between
//! refreshed and copied rows undetected.

use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, ShardStrategy, SimrankConfig};
use simrankpp_graph::delta::{apply_named, read_delta_tsv};
use simrankpp_graph::fixtures::figure3_graph;
use simrankpp_graph::{
    io::{read_tsv, write_tsv},
    write_segmented, ClickGraph, SegmentedStore, WeightKind,
};
use simrankpp_serve::{
    serve_session, LiveContext, MappedIndex, NetServer, RewriteIndex, ServeState, UpdateContext,
};
use std::fs::File;
use std::io::{self, BufReader};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage:
  serve build <graph.tsv>|<store.seg>|--fixture fig3 <out.idx> [method] [shard]
  serve segment <graph.tsv> <out.seg> [target-nodes-per-segment]
  serve run <index.idx>
  serve run --graph <graph.tsv> [method] [shard] [--mode all-pairs|single-source] [--cache-capacity N]
  serve listen [--addr H:P] [--admin H:P] [--max-connections N] [--read-timeout-secs S] <same sources as run>
  serve update <index.idx> <delta.tsv> --graph <graph.tsv>|--fixture fig3 [out.idx] [--write-graph <path>]
  serve info <index.idx>
  serve ingest <click.log> [method] [--window N] [--decay F] [--poll-ms N] [--weight-kind K]
               [--checkpoint <path>] [--resume]
               [--addr H:P] [--admin H:P] [--max-connections N] [--read-timeout-secs S]
method: naive | pearson | simrank | evidence | weighted (default weighted)
shard:  components | off | extracted:K (default components; exact)
mode:   all-pairs (default; precompute every row offline) | single-source
        (no offline build: rows computed per query on demand, LRU-cached)
weight: --weight-kind impressions|clicks|ecr — edge weight behind transition
        probabilities (default clicks; ingest defaults to ecr so --decay shows)
ingest: tail an append-only click log (`+\t<epoch>\t<query>\t<ad>\t<impr>\t<clicks>\t<ecr>`
        events, `@\t<epoch>` epoch marks); --window N epochs of history (default 14),
        --decay F per-epoch ECR down-weight in (0,1] (default 1 = off), --poll-ms log
        poll interval (default 50); each closed epoch refreshes dirty rows + hot-swaps;
        --checkpoint <path> commits a durable checkpoint (atomic temp+fsync+rename)
        at every epoch boundary, --resume restarts from it: the window is rebuilt
        from the checkpointed replay span + log tail (fingerprint-verified) instead
        of re-reading the whole log
a .seg input (see `serve segment`) builds the index one segment at a time:
peak memory is bounded by the largest segment, not the whole graph";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => build(&args[1..]),
        Some("segment") => segment(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("listen") => listen(&args[1..]),
        Some("update") => update(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("ingest") => ingest(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Operator-facing message for a failed artifact open. A corrupt artifact
/// (`InvalidData`: torn write, checksum mismatch, truncation) is
/// additionally quarantined to `<path>.corrupt` so a supervised restart
/// rebuilds from source instead of crash-looping on the same bytes.
fn open_failure(path: &str, e: io::Error) -> String {
    if e.kind() == io::ErrorKind::InvalidData {
        return match simrankpp_util::quarantine(std::path::Path::new(path)) {
            Ok(q) => format!(
                "{path} is corrupt: {e}; quarantined to {} — rebuild it from source",
                q.display()
            ),
            Err(qe) => format!("{path} is corrupt: {e}; quarantine failed: {qe}"),
        };
    }
    format!("cannot load {path}: {e}")
}

fn method_kind(name: &str) -> Result<MethodKind, String> {
    Ok(match name {
        "naive" => MethodKind::Naive,
        "pearson" => MethodKind::Pearson,
        "simrank" => MethodKind::Simrank,
        "evidence" => MethodKind::EvidenceSimrank,
        "weighted" => MethodKind::WeightedSimrank,
        other => return Err(format!("unknown method {other:?}\n{USAGE}")),
    })
}

fn load_graph(source: &str, fixture: bool) -> Result<ClickGraph, String> {
    if fixture {
        return match source {
            "fig3" => Ok(figure3_graph()),
            other => Err(format!("unknown fixture {other:?} (only: fig3)")),
        };
    }
    let file = File::open(source).map_err(|e| format!("cannot open {source}: {e}"))?;
    read_tsv(BufReader::new(file)).map_err(|e| format!("cannot parse {source}: {e}"))
}

fn weight_kind_arg(name: &str) -> Result<WeightKind, String> {
    Ok(match name {
        "impressions" => WeightKind::Impressions,
        "clicks" => WeightKind::Clicks,
        "ecr" => WeightKind::ExpectedClickRate,
        other => return Err(format!("unknown weight kind {other:?}\n{USAGE}")),
    })
}

/// Peels every `--weight-kind <v>` pair out of `args`, for the subcommands
/// whose remaining arguments are positional (`build`, `update`).
fn peel_weight_kind(args: &[String]) -> Result<(Option<WeightKind>, Vec<String>), String> {
    let mut kind = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--weight-kind" {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("--weight-kind needs a value\n{USAGE}"))?;
            kind = Some(weight_kind_arg(v)?);
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok((kind, rest))
}

fn shard_strategy(name: &str) -> Result<ShardStrategy, String> {
    Ok(match name {
        "off" => ShardStrategy::Off,
        "components" => ShardStrategy::Components,
        other => match other.strip_prefix("extracted:").map(str::parse::<usize>) {
            Some(Ok(k)) if k > 0 => ShardStrategy::Extracted(k),
            _ => return Err(format!("unknown shard strategy {other:?}\n{USAGE}")),
        },
    })
}

/// The one serving configuration: every `serve` code path — `build`, `run
/// --graph`, `update`, and the protocol `update` verb — must compute with
/// identical parameters, or an incremental rebuild would mix generations.
/// The weight kind is the operator-chosen part (`--weight-kind`); it must
/// match across a build and its later updates.
fn serve_config(sharding: ShardStrategy, weight: WeightKind) -> SimrankConfig {
    SimrankConfig::default()
        .with_weight_kind(weight)
        .with_sharding(sharding)
}

fn build_index(
    graph: &ClickGraph,
    kind: MethodKind,
    sharding: ShardStrategy,
    weight: WeightKind,
) -> RewriteIndex {
    let t0 = Instant::now();
    let config = serve_config(sharding, weight);
    let method = Method::compute(kind, graph, &config);
    eprintln!(
        "computed {} over {} queries / {} ads ({sharding:?} sharding) in {:.1?}",
        kind.name(),
        graph.n_queries(),
        graph.n_ads(),
        t0.elapsed()
    );
    let t1 = Instant::now();
    let rewriter = Rewriter::new(graph, method, RewriterConfig::default());
    let mut index = RewriteIndex::build(&rewriter, None, 0);
    if let ShardStrategy::Extracted(_) = sharding {
        // Extraction sharding cuts edges; record the approximation so
        // snapshots of this index refuse exact incremental refresh later.
        index.set_approx_sharding(true);
    }
    eprintln!(
        "indexed {} rewrites for {} queries in {:.1?}",
        index.n_entries(),
        index.n_queries(),
        t1.elapsed()
    );
    index
}

fn build(args: &[String]) -> Result<(), String> {
    let (weight, args) = peel_weight_kind(args)?;
    let weight = weight.unwrap_or(WeightKind::Clicks);
    let args = &args[..];
    // A segmented store builds without ever holding the whole graph.
    if let Some(path) = args.first().filter(|p| p.ends_with(".seg")) {
        let out = args.get(1).ok_or(USAGE.to_owned())?;
        let kind = method_kind(args.get(2).map(String::as_str).unwrap_or("weighted"))?;
        let mut store = SegmentedStore::open(path.as_ref()).map_err(|e| open_failure(path, e))?;
        let t0 = Instant::now();
        let config = serve_config(ShardStrategy::Components, weight);
        let index = RewriteIndex::build_segmented(
            &mut store,
            kind,
            &config,
            RewriterConfig::default(),
            None,
        )
        .map_err(|e| format!("segmented build failed: {e}"))?;
        eprintln!(
            "built {} over {} segments ({} queries, {} rewrites) in {:.1?} — \
             peak memory bounded by the largest segment",
            kind.name(),
            store.n_segments(),
            index.n_queries(),
            index.n_entries(),
            t0.elapsed()
        );
        index
            .save(out)
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("snapshot written to {out}");
        return Ok(());
    }
    let (graph, rest) = match args.first().map(String::as_str) {
        Some("--fixture") => {
            let name = args.get(1).ok_or(USAGE.to_owned())?;
            (load_graph(name, true)?, &args[2..])
        }
        Some(path) => (load_graph(path, false)?, &args[1..]),
        None => return Err(USAGE.to_owned()),
    };
    let out = rest.first().ok_or(USAGE.to_owned())?;
    let kind = method_kind(rest.get(1).map(String::as_str).unwrap_or("weighted"))?;
    let sharding = shard_strategy(rest.get(2).map(String::as_str).unwrap_or("components"))?;

    let index = build_index(&graph, kind, sharding, weight);
    index
        .save(out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("snapshot written to {out}");
    Ok(())
}

/// Converts a TSV click graph into a segmented store: component-group
/// segments of roughly `target` nodes each, every segment a self-contained
/// sub-graph blob.
fn segment(args: &[String]) -> Result<(), String> {
    let src = args.first().ok_or(USAGE.to_owned())?;
    let out = args.get(1).ok_or(USAGE.to_owned())?;
    let target: usize = match args.get(2) {
        Some(t) => t
            .parse()
            .map_err(|e| format!("bad target-nodes-per-segment: {e}\n{USAGE}"))?,
        None => 100_000,
    };
    let graph = load_graph(src, false)?;
    let t0 = Instant::now();
    let bytes = write_segmented(&graph, out.as_ref(), target)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    let store =
        SegmentedStore::open(out.as_ref()).map_err(|e| format!("cannot reopen {out}: {e}"))?;
    eprintln!(
        "segmented {} queries / {} ads / {} edges into {} segment(s), {} bytes, in {:.1?}",
        store.total_queries(),
        store.total_ads(),
        store.total_edges(),
        store.n_segments(),
        bytes,
        t0.elapsed()
    );
    Ok(())
}

/// Builds the offline index over `graph` and assembles the serve state.
/// Updatable servers of a recursive method also get the live single-source
/// fallback, so queries the index misses (possible once deltas land) are
/// computed on demand instead of refused.
fn build_state(
    graph: ClickGraph,
    kind: MethodKind,
    sharding: ShardStrategy,
    weight: WeightKind,
    cache_capacity: usize,
    updatable: bool,
) -> Result<ServeState, String> {
    let index = build_index(&graph, kind, sharding, weight);
    let config = serve_config(sharding, weight);
    let live = if updatable
        && matches!(
            kind,
            MethodKind::Simrank | MethodKind::EvidenceSimrank | MethodKind::WeightedSimrank
        ) {
        let t0 = Instant::now();
        let live = LiveContext::new(graph.clone(), kind, config, RewriterConfig::default())?;
        eprintln!(
            "live single-source fallback ready in {:.1?} (row cache: {cache_capacity} entries)",
            t0.elapsed()
        );
        Some(live)
    } else {
        None
    };
    let state = if updatable {
        ServeState::updatable(
            index,
            UpdateContext {
                graph,
                config,
                rewriter: RewriterConfig::default(),
            },
        )
    } else {
        ServeState::fixed(index)
    };
    Ok(match live {
        Some(l) => state.with_live(l, cache_capacity),
        None => state,
    })
}

/// Options shared by `run` (stdin/stdout) and `listen` (TCP): index source,
/// serving mode, and — for `listen` — the listener shape.
struct ServeOptions {
    mode: String,
    cache_capacity: usize,
    weight_kind: Option<WeightKind>,
    window: usize,
    decay: f64,
    poll_ms: u64,
    /// Durable ingest checkpoint file (`--checkpoint`); None disables
    /// checkpointing.
    checkpoint: Option<String>,
    /// Restart from the checkpoint + log tail instead of replaying the
    /// whole log (`--resume`; requires `--checkpoint`).
    resume: bool,
    net: simrankpp_serve::NetConfig,
    positional: Vec<String>,
}

fn parse_serve_options(
    args: &[String],
    listen: bool,
    ingest: bool,
) -> Result<ServeOptions, String> {
    // Peel the flagged options off; what remains keeps the historical
    // positional shape (`--graph <path> [method] [shard]` or `<index.idx>`).
    let mut opts = ServeOptions {
        mode: "all-pairs".to_owned(),
        cache_capacity: 4096,
        weight_kind: None,
        window: 14,
        decay: 1.0,
        poll_ms: 50,
        checkpoint: None,
        resume: false,
        net: simrankpp_serve::NetConfig {
            addr: "127.0.0.1:7878".to_owned(),
            ..simrankpp_serve::NetConfig::default()
        },
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let flag_value = |name: &str| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match args[i].as_str() {
            "--mode" => {
                opts.mode = flag_value("--mode")?;
                i += 2;
            }
            "--cache-capacity" => {
                opts.cache_capacity = flag_value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("bad --cache-capacity: {e}\n{USAGE}"))?;
                i += 2;
            }
            "--weight-kind" => {
                opts.weight_kind = Some(weight_kind_arg(&flag_value("--weight-kind")?)?);
                i += 2;
            }
            "--window" if ingest => {
                opts.window = flag_value("--window")?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}\n{USAGE}"))?;
                if opts.window == 0 {
                    return Err(format!("--window must be at least 1 epoch\n{USAGE}"));
                }
                i += 2;
            }
            "--decay" if ingest => {
                opts.decay = flag_value("--decay")?
                    .parse()
                    .map_err(|e| format!("bad --decay: {e}\n{USAGE}"))?;
                if !(opts.decay > 0.0 && opts.decay <= 1.0) {
                    return Err(format!("--decay must be in (0, 1]\n{USAGE}"));
                }
                i += 2;
            }
            "--poll-ms" if ingest => {
                opts.poll_ms = flag_value("--poll-ms")?
                    .parse()
                    .map_err(|e| format!("bad --poll-ms: {e}\n{USAGE}"))?;
                i += 2;
            }
            "--checkpoint" if ingest => {
                opts.checkpoint = Some(flag_value("--checkpoint")?);
                i += 2;
            }
            "--resume" if ingest => {
                opts.resume = true;
                i += 1;
            }
            "--failpoints" => {
                // CLI twin of the SIMRANKPP_FAILPOINTS environment variable
                // (same grammar). The registry always parses; the sites
                // only exist in binaries built with `--features failpoints`.
                let spec = flag_value("--failpoints")?;
                simrankpp_util::failpoint::configure(&spec)
                    .map_err(|e| format!("bad --failpoints: {e}"))?;
                if cfg!(not(feature = "failpoints")) {
                    eprintln!(
                        "warning: --failpoints given, but this binary was built without \
                         the `failpoints` feature; no site will fire"
                    );
                }
                i += 2;
            }
            "--addr" if listen => {
                opts.net.addr = flag_value("--addr")?;
                i += 2;
            }
            "--admin" if listen => {
                opts.net.admin_addr = Some(flag_value("--admin")?);
                i += 2;
            }
            "--max-connections" if listen => {
                opts.net.max_connections = flag_value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("bad --max-connections: {e}\n{USAGE}"))?;
                i += 2;
            }
            "--read-timeout-secs" if listen => {
                let secs: u64 = flag_value("--read-timeout-secs")?
                    .parse()
                    .map_err(|e| format!("bad --read-timeout-secs: {e}\n{USAGE}"))?;
                // 0 disables the timeout (a stalled peer then pins its
                // handler thread — test/bench use only).
                opts.net.read_timeout = (secs > 0).then(|| std::time::Duration::from_secs(secs));
                i += 2;
            }
            other => {
                opts.positional.push(other.to_owned());
                i += 1;
            }
        }
    }
    if !matches!(opts.mode.as_str(), "all-pairs" | "single-source") {
        return Err(format!("unknown mode {:?}\n{USAGE}", opts.mode));
    }
    Ok(opts)
}

/// Assembles the serve state from the parsed positional source — shared by
/// the stdin and TCP front-ends so both serve identical states.
fn state_from_options(opts: &ServeOptions) -> Result<ServeState, String> {
    let mode = opts.mode.as_str();
    let cache_capacity = opts.cache_capacity;
    let weight = opts.weight_kind.unwrap_or(WeightKind::Clicks);
    let positional: Vec<&str> = opts.positional.iter().map(String::as_str).collect();
    let state = match positional.first().copied() {
        Some("--graph") => {
            let path = positional.get(1).ok_or(USAGE.to_owned())?;
            let kind = method_kind(positional.get(2).copied().unwrap_or("weighted"))?;
            let sharding = shard_strategy(positional.get(3).copied().unwrap_or("components"))?;
            let graph = load_graph(path, false)?;
            if mode == "single-source" {
                // No offline build at all: an empty index (every lookup
                // misses) over a live engine, so each query's row is
                // computed on first demand and LRU-cached.
                let config = serve_config(sharding, weight);
                let meta = simrankpp_serve::IndexMeta {
                    method: kind,
                    max_rewrites: RewriterConfig::default().max_rewrites as u32,
                    bid_filtered: false,
                    approx_sharding: false,
                    kernel: config.kernel,
                    segments: 0,
                };
                let t0 = Instant::now();
                let live = LiveContext::new(graph, kind, config, RewriterConfig::default())?;
                eprintln!(
                    "single-source mode: skipped the offline build; live engine ready in \
                     {:.1?} (row cache: {cache_capacity} entries)",
                    t0.elapsed()
                );
                ServeState::fixed(RewriteIndex::empty(meta)).with_live(live, cache_capacity)
            } else if let ShardStrategy::Extracted(_) = sharding {
                // Extraction sharding cuts edges (approximate); an exact
                // per-component incremental refresh would silently mix
                // regimes with the approximate rows it copies. Serve
                // frozen instead of producing a hybrid index.
                eprintln!(
                    "extracted sharding is approximate: `update` disabled \
                     (rebuild with `components` to enable incremental updates)"
                );
                build_state(graph, kind, sharding, weight, cache_capacity, false)?
            } else {
                eprintln!("live graph held: `update <delta.tsv>` hot-swaps the index in place");
                build_state(graph, kind, sharding, weight, cache_capacity, true)?
            }
        }
        Some(path) => {
            // Zero-copy open: O(#sections) regardless of index size — the
            // row arrays are served straight out of the mapped file bytes.
            let t0 = Instant::now();
            let index = MappedIndex::open(path).map_err(|e| open_failure(path, e))?;
            eprintln!(
                "opened {}: {} queries, {} rewrites ({}) via {} ({} bytes) in {:.2?}; \
                 snapshot mode, `update` disabled (use `serve update` offline or `run --graph`)",
                path,
                index.n_queries(),
                index.n_entries(),
                index.meta().method.name(),
                index.backing_kind(),
                index.file_len(),
                t0.elapsed()
            );
            ServeState::mapped(index)
        }
        None => return Err(USAGE.to_owned()),
    };
    Ok(state)
}

fn run(args: &[String]) -> Result<(), String> {
    let opts = parse_serve_options(args, false, false)?;
    let state = state_from_options(&opts)?;
    let stdin = io::stdin();
    serve_session(&state, stdin.lock(), io::stdout()).map_err(|e| format!("protocol error: {e}"))
}

/// TCP front-end: same state assembly as `run`, served concurrently.
fn listen(args: &[String]) -> Result<(), String> {
    let opts = parse_serve_options(args, true, false)?;
    let state = std::sync::Arc::new(state_from_options(&opts)?);
    let net = opts.net.clone();
    let server = NetServer::bind(state, net).map_err(|e| format!("cannot bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    eprintln!(
        "data plane listening on {addr} (rewrite/quit; max {} connections, read timeout {:?})",
        opts.net.max_connections, opts.net.read_timeout
    );
    match server.admin_addr() {
        Some(Ok(admin)) => eprintln!(
            "admin plane listening on {admin} (batch/update/info/shutdown) — \
             keep this address off untrusted networks"
        ),
        Some(Err(e)) => return Err(format!("cannot resolve admin address: {e}")),
        None => eprintln!(
            "no --admin listener: update/info/shutdown are unreachable over the \
             network (data plane serves rewrite/quit only)"
        ),
    }
    server.serve().map_err(|e| format!("serve failed: {e}"))
}

fn update(args: &[String]) -> Result<(), String> {
    let (weight, args) = peel_weight_kind(args)?;
    let weight = weight.unwrap_or(WeightKind::Clicks);
    let args = &args[..];
    let idx_path = args.first().ok_or(USAGE.to_owned())?;
    let delta_path = args.get(1).ok_or(USAGE.to_owned())?;
    let mut graph_src: Option<(String, bool)> = None;
    let mut out_path: Option<String> = None;
    let mut write_graph: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        let flag_value = |name: &str| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match args[i].as_str() {
            "--graph" => {
                graph_src = Some((flag_value("--graph")?, false));
                i += 2;
            }
            "--fixture" => {
                graph_src = Some((flag_value("--fixture")?, true));
                i += 2;
            }
            "--write-graph" => {
                write_graph = Some(flag_value("--write-graph")?);
                i += 2;
            }
            other if !other.starts_with("--") && out_path.is_none() => {
                out_path = Some(other.to_owned());
                i += 1;
            }
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    let (src, fixture) =
        graph_src.ok_or_else(|| format!("update needs --graph or --fixture\n{USAGE}"))?;
    let graph = load_graph(&src, fixture)?;
    let index = RewriteIndex::load(idx_path).map_err(|e| open_failure(idx_path, e))?;
    let delta_file =
        File::open(delta_path).map_err(|e| format!("cannot open {delta_path}: {e}"))?;
    let ops = read_delta_tsv(BufReader::new(delta_file))
        .map_err(|e| format!("cannot parse {delta_path}: {e}"))?;

    let t0 = Instant::now();
    let (new_graph, delta) = apply_named(&graph, &ops)?;
    let dirty = delta.dirty_components(&new_graph);
    // Honor the snapshot's recorded engine kernel (like the method kind):
    // a refresh must recompute dirty rows with the kernel that produced the
    // clean rows it copies, or rebuild_incremental refuses the mix.
    let config = serve_config(ShardStrategy::Components, weight).with_kernel(index.meta().kernel);
    let (next, stats) = index.rebuild_incremental(
        &new_graph,
        &dirty,
        &config,
        &RewriterConfig::default(),
        None,
    )?;
    eprintln!(
        "applied {} delta op(s): {} of {} queries refreshed, {} copied \
         ({} dirty / {} clean components) in {:.1?}",
        ops.len(),
        stats.refreshed_queries,
        next.n_queries(),
        stats.copied_queries,
        stats.n_dirty_components,
        stats.n_clean_components,
        t0.elapsed()
    );

    let out = out_path.as_deref().unwrap_or(idx_path);
    next.save(out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("snapshot written to {out}");
    match write_graph {
        Some(gp) => {
            // A crash mid-write must never leave a torn graph where the
            // next `serve update` would read it: temp + fsync + rename.
            simrankpp_util::atomic_write(std::path::Path::new(&gp), |w| write_tsv(&new_graph, w))
                .map_err(|e| format!("cannot write {gp}: {e}"))?;
            eprintln!("updated graph written to {gp}");
        }
        None => eprintln!(
            "warning: the post-delta graph was NOT persisted (no --write-graph); a further \
             `serve update` against the original graph source would recompute dirty \
             components without this delta's edges and silently drop its effects"
        ),
    }
    Ok(())
}

fn info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE.to_owned())?;
    let index = MappedIndex::open(path).map_err(|e| open_failure(path, e))?;
    index.verify_deep().map_err(|e| open_failure(path, e))?;
    let covered = (0..index.n_queries())
        .filter(|&q| !index.row(simrankpp_graph::QueryId(q as u32)).0.is_empty())
        .count();
    println!("snapshot        {path}");
    println!("method          {}", index.meta().method.name());
    println!("max rewrites    {}", index.meta().max_rewrites);
    println!("bid filtered    {}", index.meta().bid_filtered);
    println!("approx sharding {}", index.meta().approx_sharding);
    println!("engine kernel   {:?}", index.meta().kernel);
    println!("backing         {}", index.backing_kind());
    println!("file bytes      {}", index.file_len());
    match index.meta().segments {
        0 => println!("segments        0 (monolithic build)"),
        n => println!("segments        {n}"),
    }
    println!("queries         {}", index.n_queries());
    println!("rewrites        {}", index.n_entries());
    println!(
        "coverage        {:.4}",
        covered as f64 / index.n_queries().max(1) as f64
    );
    println!(
        "row cache       n/a offline (the protocol `info` verb reports it on a running server)"
    );
    Ok(())
}

/// Streaming mode: tail a click log, refresh + hot-swap at epoch
/// boundaries, serve over TCP throughout.
///
/// Startup order matters for the freshness contract: the existing log
/// backlog is replayed and the first full index published *before* the
/// listeners bind, so the very first answer any client can get already
/// reflects every complete record — byte-identical to a static build of
/// the same window. After that the main thread runs the accept loops and
/// a background thread tails the log; a tailer failure (unparseable line,
/// I/O error) drains the server and fails the process rather than serving
/// an index that silently stopped following the log.
fn ingest(args: &[String]) -> Result<(), String> {
    use simrankpp_graph::delta::ClickLogRecord;
    use simrankpp_serve::checkpoint::{self, read_checkpoint, resume_ingestor, write_checkpoint};
    use simrankpp_serve::{EpochIngestor, IngestConfig, IngestMetrics, LogTailer};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let opts = parse_serve_options(args, true, true)?;
    let positional: Vec<&str> = opts.positional.iter().map(String::as_str).collect();
    let log_path = positional.first().copied().ok_or(USAGE.to_owned())?;
    let kind = method_kind(positional.get(1).copied().unwrap_or("weighted"))?;
    // Default to ECR weights in ingest mode: the decay knob rescales ECR,
    // so under click weights it would never reach a score.
    let weight = opts.weight_kind.unwrap_or(WeightKind::ExpectedClickRate);
    if opts.decay < 1.0 && weight != WeightKind::ExpectedClickRate {
        eprintln!(
            "warning: --decay rescales expected click rates, but --weight-kind is not ecr; \
             decay will not affect served scores"
        );
    }

    let cfg = IngestConfig {
        window: opts.window,
        decay: opts.decay,
        method: kind,
        config: serve_config(ShardStrategy::Components, weight),
        rewriter: RewriterConfig::default(),
        threads: 0,
    };
    let metrics = Arc::new(IngestMetrics::default());
    if opts.resume && opts.checkpoint.is_none() {
        return Err(format!("--resume requires --checkpoint <path>\n{USAGE}"));
    }

    // Warm path: rebuild the window from the checkpoint's compact replay
    // span instead of the whole log, verifying the graph fingerprint at
    // the committed offset before anything is served.
    let mut resumed: Option<checkpoint::Resumed> = None;
    if opts.resume {
        let ck_path = opts.checkpoint.as_deref().expect("checked above");
        match read_checkpoint(Path::new(ck_path)) {
            Ok(ck) => {
                let t0 = Instant::now();
                let r = resume_ingestor(Path::new(log_path), &cfg, &ck)
                    .map_err(|e| format!("cannot resume from {ck_path}: {e}"))?;
                eprintln!(
                    "resumed from checkpoint {ck_path}: epoch {} -> {}, generation {}, \
                     replayed {} record(s) from byte {} in {:.1?}",
                    ck.epoch,
                    r.epoch,
                    ck.generation,
                    r.replayed,
                    ck.replay_offset,
                    t0.elapsed()
                );
                metrics.events.fetch_add(r.events as u64, Ordering::Relaxed);
                resumed = Some(r);
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                eprintln!(
                    "--resume: no checkpoint at {ck_path}; cold-starting from the full click log"
                );
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // A corrupt checkpoint must not crash-loop a supervised
                // restart: move it aside so the next attempt cold-starts.
                return Err(match simrankpp_util::quarantine(Path::new(ck_path)) {
                    Ok(q) => format!(
                        "checkpoint {ck_path} refused: {e}; quarantined to {}",
                        q.display()
                    ),
                    Err(qe) => {
                        format!("checkpoint {ck_path} refused: {e}; quarantine failed: {qe}")
                    }
                });
            }
            Err(e) => return Err(format!("cannot read checkpoint {ck_path}: {e}")),
        }
    }

    // Catch up on the backlog (cold path: the whole log; warm path: already
    // replayed above), then one full build. Historical epoch marks only
    // advance the window here — there is no audience for intermediate
    // generations yet.
    let t0 = Instant::now();
    let (mut ingestor, mut tailer, caught_up) = match resumed {
        Some(r) => (r.ingestor, r.tailer, r.replayed),
        None => {
            let mut ingestor = EpochIngestor::new(cfg);
            let mut tailer =
                LogTailer::open(log_path).map_err(|e| format!("cannot open {log_path}: {e}"))?;
            let backlog = tailer
                .drain_spanned()
                .map_err(|e| format!("cannot read {log_path}: {e}"))?;
            for sr in &backlog {
                if matches!(sr.rec, ClickLogRecord::Event { .. }) {
                    metrics.events.fetch_add(1, Ordering::Relaxed);
                }
                ingestor.apply_record_at(&sr.rec, (sr.start, sr.end));
            }
            let n = backlog.len();
            (ingestor, tailer, n)
        }
    };
    let (index, stats, _) = ingestor.refresh()?;
    metrics.epoch.store(ingestor.epoch(), Ordering::Relaxed);
    metrics.refreshes.fetch_add(1, Ordering::Relaxed);
    metrics
        .refreshed_rows
        .fetch_add(stats.refreshed_queries as u64, Ordering::Relaxed);
    metrics
        .last_refresh_us
        .store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
    eprintln!(
        "caught up {} record(s) from {log_path} (epoch {}, window {}, decay {}): \
         {} queries / {} rewrites ({}, {:?} weights) in {:.1?}",
        caught_up,
        ingestor.epoch(),
        opts.window,
        opts.decay,
        index.n_queries(),
        index.n_entries(),
        kind.name(),
        weight,
        t0.elapsed()
    );
    // Publish-then-checkpoint: the index above reflects every applied
    // record, so committing now means a crash at any later point resumes
    // at-or-before this state and replays forward deterministically.
    if let Some(ck_path) = opts.checkpoint.as_deref() {
        write_checkpoint(Path::new(ck_path), &checkpoint::capture(&ingestor))
            .map_err(|e| format!("cannot write checkpoint {ck_path}: {e}"))?;
        metrics.mark_checkpoint();
    }

    let state = Arc::new(ServeState::ingesting(index, Arc::clone(&metrics)));
    let server = NetServer::bind(Arc::clone(&state), opts.net.clone())
        .map_err(|e| format!("cannot bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    eprintln!(
        "data plane listening on {addr} (rewrite/quit; max {} connections, read timeout {:?})",
        opts.net.max_connections, opts.net.read_timeout
    );
    match server.admin_addr() {
        Some(Ok(admin)) => eprintln!(
            "admin plane listening on {admin} (batch/info/shutdown; `update` refused — \
             the ingest loop owns index generations)"
        ),
        Some(Err(e)) => return Err(format!("cannot resolve admin address: {e}")),
        None => eprintln!(
            "no --admin listener: info/shutdown are unreachable over the network \
             (data plane serves rewrite/quit only)"
        ),
    }

    let shutdown = server.shutdown_signal();
    let failed = Arc::new(AtomicBool::new(false));
    let tail_handle = {
        let state = Arc::clone(&state);
        let metrics = Arc::clone(&metrics);
        let shutdown = Arc::clone(&shutdown);
        let failed = Arc::clone(&failed);
        let poll = std::time::Duration::from_millis(opts.poll_ms);
        let ck_path = opts.checkpoint.clone();
        std::thread::spawn(move || {
            let fail = |msg: String| {
                eprintln!("ingest: {msg}");
                failed.store(true, Ordering::Relaxed);
                shutdown.trigger();
            };
            loop {
                if shutdown.is_draining() {
                    return;
                }
                let records = match tailer.drain_spanned() {
                    Ok(r) => r,
                    Err(e) => return fail(format!("cannot read the click log: {e}")),
                };
                if records.is_empty() {
                    std::thread::sleep(poll);
                    continue;
                }
                let mut refresh_due = false;
                for sr in &records {
                    if matches!(sr.rec, ClickLogRecord::Event { .. }) {
                        metrics.events.fetch_add(1, Ordering::Relaxed);
                    }
                    refresh_due |= ingestor.apply_record_at(&sr.rec, (sr.start, sr.end));
                }
                if refresh_due {
                    let t0 = Instant::now();
                    match ingestor.refresh_and_publish(&state) {
                        Ok(s) => eprintln!(
                            "epoch {}: refreshed {} row(s), copied {} \
                             ({} dirty / {} clean components) in {:.1?}",
                            ingestor.epoch(),
                            s.refreshed_queries,
                            s.copied_queries,
                            s.n_dirty_components,
                            s.n_clean_components,
                            t0.elapsed()
                        ),
                        Err(e) => return fail(format!("epoch refresh failed: {e}")),
                    }
                    // Commit only after the new generation is visible to
                    // clients: a crash between publish and commit replays
                    // this epoch on resume, which is idempotent; the
                    // reverse order could lose acknowledged freshness.
                    if let Some(ck) = ck_path.as_deref() {
                        if let Err(e) =
                            write_checkpoint(Path::new(ck), &checkpoint::capture(&ingestor))
                        {
                            return fail(format!("cannot write checkpoint {ck}: {e}"));
                        }
                        metrics.mark_checkpoint();
                    }
                }
            }
        })
    };

    let result = server.serve().map_err(|e| format!("serve failed: {e}"));
    // serve() returning means the drain flag is up; the tailer sees it on
    // its next poll.
    tail_handle
        .join()
        .map_err(|_| "ingest thread panicked".to_owned())?;
    if failed.load(Ordering::Relaxed) {
        return Err("the ingest loop failed; the server drained (see above)".to_owned());
    }
    result
}
