//! Read-only file mapping with a heap fallback.
//!
//! Snapshot v4 is an arena of 8-byte-aligned sections designed to be
//! consumed *in place*. On Unix we map the file with a hand-rolled `mmap`
//! binding (raw `extern "C"` — the vendoring policy forbids the `libc`
//! crate, and the two calls we need are stable POSIX); everywhere else, or
//! when the mapping fails, the file is read into an 8-aligned heap buffer
//! ([`AlignedBytes`]) that behaves identically. Either way the bytes come
//! back as one `&[u8]` whose base pointer is at least 8-aligned, so the
//! arena's alignment-checked slice casts work unchanged.

use simrankpp_util::AlignedBytes;
use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only `mmap` of a whole file, unmapped on drop.
#[cfg(unix)]
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

#[cfg(unix)]
impl Mapping {
    /// Maps `file` (of size `len > 0`) read-only and private.
    fn new(file: &File, len: usize) -> io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is a valid open file descriptor; a PROT_READ private
        // mapping of a regular file never aliases writable memory. We treat
        // a failed map (MAP_FAILED == -1) as an error, not a pointer.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping {
            ptr: ptr as *const u8,
            len,
        })
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: the mapping covers exactly `len` readable bytes and lives
        // as long as `self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: (ptr, len) came from a successful mmap and is unmapped
        // exactly once.
        unsafe { sys::munmap(self.ptr as *mut _, self.len) };
    }
}

// SAFETY: the mapping is read-only for its whole lifetime; sharing and
// sending an immutable byte region across threads is sound.
#[cfg(unix)]
unsafe impl Send for Mapping {}
#[cfg(unix)]
unsafe impl Sync for Mapping {}

#[cfg(unix)]
impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping").field("len", &self.len).finish()
    }
}

/// Where a loaded snapshot's bytes live.
#[derive(Debug)]
pub enum Backing {
    /// The file is mapped into the address space: load cost is O(pages
    /// touched), not O(file size).
    #[cfg(unix)]
    Mapped(Mapping),
    /// The whole file was read into an 8-aligned heap buffer.
    Heap(AlignedBytes),
}

impl Backing {
    /// Opens `path`, preferring `mmap` and falling back to a heap read
    /// (non-Unix platforms, empty files, or a failed map).
    pub fn open(path: &Path) -> io::Result<Backing> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        if len > 0 {
            if let Ok(m) = Mapping::new(&file, len) {
                return Ok(Backing::Mapped(m));
            }
        }
        let mut buf = AlignedBytes::zeroed(len);
        file.read_exact(buf.as_mut_slice())?;
        Ok(Backing::Heap(buf))
    }

    /// Opens `path` into the heap unconditionally (for differential tests
    /// that compare the two paths byte for byte).
    pub fn open_heap(path: &Path) -> io::Result<Backing> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        let mut buf = AlignedBytes::zeroed(len);
        file.read_exact(buf.as_mut_slice())?;
        Ok(Backing::Heap(buf))
    }

    /// The backing bytes (8-aligned base pointer in both variants).
    pub fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Mapped(m) => m.as_slice(),
            Backing::Heap(b) => b.as_slice(),
        }
    }

    /// `"mmap"` or `"heap"`, for the `info` report.
    pub fn kind(&self) -> &'static str {
        match self {
            #[cfg(unix)]
            Backing::Mapped(_) => "mmap",
            Backing::Heap(_) => "heap",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_and_heap_read_identical_bytes() {
        let path = std::env::temp_dir().join("simrankpp_mmap_test.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let mapped = Backing::open(&path).unwrap();
        let heap = Backing::open_heap(&path).unwrap();
        assert_eq!(mapped.bytes(), payload.as_slice());
        assert_eq!(heap.bytes(), payload.as_slice());
        assert_eq!(heap.kind(), "heap");
        #[cfg(unix)]
        assert_eq!(mapped.kind(), "mmap");
        assert_eq!(mapped.bytes().as_ptr() as usize % 8, 0);
        assert_eq!(heap.bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_falls_back_to_heap() {
        let path = std::env::temp_dir().join("simrankpp_mmap_empty.bin");
        std::fs::write(&path, b"").unwrap();
        let b = Backing::open(&path).unwrap();
        assert_eq!(b.kind(), "heap");
        assert!(b.bytes().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
