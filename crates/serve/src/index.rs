//! The immutable precomputed top-k rewrite index.
//!
//! `build` runs the full §9.3 pipeline — top-100 candidates → stem-dedup →
//! bid filter → top-5 — for *every* query of the click graph, offline and in
//! parallel, then freezes the results into one flat arena:
//!
//! ```text
//! offsets: [0, 2, 5, 5, ...]          one entry per query + end sentinel
//! targets: [q7, q3, q1, q9, q2, ...]  rewrite ids, ranking order per row
//! scores:  [.61, .43, ...]            parallel to targets
//! ```
//!
//! Lookups slice the arena — no per-request allocation — and an optional
//! cloned name interner answers `lookup("camera")` for the line protocol.

use serde::{Deserialize, Serialize};
use simrankpp_core::{MethodKind, Rewriter};
use simrankpp_graph::{Interner, QueryId};
use simrankpp_util::FxHashSet;

/// Provenance carried by an index (and through snapshots): what produced the
/// rows, so a server can refuse mismatched artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexMeta {
    /// The similarity method the rows were ranked by.
    pub method: MethodKind,
    /// The per-query row-length cap the pipeline ran with (paper: 5).
    pub max_rewrites: u32,
    /// Whether the §9.3 bid-term filter was applied at build time.
    pub bid_filtered: bool,
}

/// An immutable query → top-k rewrites index over one click graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RewriteIndex {
    pub(crate) meta: IndexMeta,
    pub(crate) n_queries: u32,
    /// `offsets[q]..offsets[q + 1]` is query `q`'s row in the arenas.
    pub(crate) offsets: Vec<u32>,
    /// Rewrite target ids, ranking order within each row.
    pub(crate) targets: Vec<u32>,
    /// Final method scores, parallel to `targets`.
    pub(crate) scores: Vec<f64>,
    /// Query display names, when the source graph had them.
    pub(crate) names: Option<Interner>,
}

impl RewriteIndex {
    /// Runs the offline pipeline for every query of `rewriter`'s graph with
    /// `threads` chunked workers (`0` = all cores) and freezes the results.
    ///
    /// Each worker drives the name-free [`Rewriter::rewrite_ids_into`] with
    /// one reused buffer and emits a chunk-local arena; stitching the chunks
    /// in order keeps the result deterministic for any thread count.
    pub fn build(
        rewriter: &Rewriter,
        bid_terms: Option<&FxHashSet<QueryId>>,
        threads: usize,
    ) -> RewriteIndex {
        let g = rewriter.graph();
        let chunks = simrankpp_core::engine::parallel::run_chunked(g.n_queries(), threads, |r| {
            let mut row = Vec::new();
            let mut lens = Vec::with_capacity(r.len());
            let mut targets = Vec::new();
            let mut scores = Vec::new();
            for q in r {
                rewriter.rewrite_ids_into(QueryId(q as u32), bid_terms, &mut row);
                lens.push(row.len() as u32);
                for &(t, s) in &row {
                    targets.push(t.0);
                    scores.push(s);
                }
            }
            (lens, targets, scores)
        });

        let mut offsets = Vec::with_capacity(g.n_queries() + 1);
        let mut targets = Vec::new();
        let mut scores = Vec::new();
        let mut total = 0u64;
        offsets.push(0u32);
        for (chunk_lens, chunk_targets, chunk_scores) in chunks {
            for len in chunk_lens {
                total += u64::from(len);
                assert!(
                    total < u64::from(u32::MAX),
                    "index exceeds u32 arena offsets"
                );
                offsets.push(total as u32);
            }
            targets.extend_from_slice(&chunk_targets);
            scores.extend_from_slice(&chunk_scores);
        }
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        targets.shrink_to_fit();
        scores.shrink_to_fit();

        RewriteIndex {
            meta: IndexMeta {
                method: rewriter.method().kind(),
                max_rewrites: rewriter.config().max_rewrites as u32,
                bid_filtered: bid_terms.is_some(),
            },
            n_queries: g.n_queries() as u32,
            offsets,
            targets,
            scores,
            names: g.query_interner().cloned(),
        }
    }

    /// Build provenance.
    pub fn meta(&self) -> &IndexMeta {
        &self.meta
    }

    /// Number of indexed queries.
    pub fn n_queries(&self) -> usize {
        self.n_queries as usize
    }

    /// Total stored rewrites across all rows.
    pub fn n_entries(&self) -> usize {
        self.targets.len()
    }

    /// The precomputed rewrites of `q` — borrowed slices, no allocation.
    #[inline]
    pub fn rewrites_of(&self, q: QueryId) -> RewriteSet<'_> {
        let lo = self.offsets[q.index()] as usize;
        let hi = self.offsets[q.index() + 1] as usize;
        RewriteSet {
            index: self,
            targets: &self.targets[lo..hi],
            scores: &self.scores[lo..hi],
        }
    }

    /// Name-keyed lookup for the serving front door.
    #[inline]
    pub fn lookup(&self, name: &str) -> Option<RewriteSet<'_>> {
        let id = self.names.as_ref()?.get(name)?;
        Some(self.rewrites_of(QueryId(id)))
    }

    /// The display name of an indexed query, when names were recorded.
    #[inline]
    pub fn query_name(&self, q: QueryId) -> Option<&str> {
        self.names.as_ref().and_then(|i| i.name(q.0))
    }

    /// JSON snapshot (human-inspectable; prefer the binary format for size).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("index serialization cannot fail")
    }

    /// Parses a JSON snapshot, rebuilds the name lookup (serde skips the
    /// reverse index), and validates the structure.
    pub fn from_json(json: &str) -> Result<RewriteIndex, String> {
        let mut index: RewriteIndex = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if let Some(i) = index.names.as_mut() {
            i.rebuild_index();
        }
        index.validate()?;
        Ok(index)
    }

    /// Checks every structural invariant; snapshot loading runs this, so a
    /// corrupt or hand-edited artifact is rejected before it serves traffic.
    ///
    /// Verified: offset shape/monotonicity, arena lengths, target ids in
    /// range and off the diagonal, finite scores in non-increasing ranking
    /// order, row lengths within `meta.max_rewrites`, and that the name
    /// table is a bijection (a duplicated name would route lookups to the
    /// wrong query's row).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_queries as usize;
        if self.offsets.len() != n + 1 {
            return Err(format!(
                "offsets has {} entries for {} queries",
                self.offsets.len(),
                n
            ));
        }
        if self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets not monotone".into());
        }
        if *self.offsets.last().unwrap() as usize != self.targets.len() {
            return Err("last offset != target count".into());
        }
        if self.targets.len() != self.scores.len() {
            return Err("targets/scores arenas must be parallel".into());
        }
        for q in 0..n {
            let (lo, hi) = (self.offsets[q] as usize, self.offsets[q + 1] as usize);
            if hi - lo > self.meta.max_rewrites as usize {
                return Err(format!("query {q}: row exceeds max_rewrites"));
            }
            for i in lo..hi {
                if self.targets[i] as usize >= n {
                    return Err(format!("query {q}: target id out of range"));
                }
                if self.targets[i] as usize == q {
                    return Err(format!("query {q}: listed as its own rewrite"));
                }
                if !self.scores[i].is_finite() {
                    return Err(format!("query {q}: non-finite score"));
                }
                if i > lo && self.scores[i] > self.scores[i - 1] {
                    return Err(format!("query {q}: scores not in ranking order"));
                }
            }
        }
        if let Some(names) = &self.names {
            if names.len() > n {
                return Err(format!(
                    "name table has {} entries for {} queries",
                    names.len(),
                    n
                ));
            }
            for (id, name) in names.iter() {
                if names.get(name) != Some(id) {
                    return Err(format!("duplicate query name {name:?} in name table"));
                }
            }
        }
        Ok(())
    }
}

/// A borrowed view of one query's precomputed rewrites.
#[derive(Debug, Clone, Copy)]
pub struct RewriteSet<'i> {
    index: &'i RewriteIndex,
    targets: &'i [u32],
    scores: &'i [f64],
}

impl<'i> RewriteSet<'i> {
    /// Number of rewrites (the method's §9.4 *depth* for this query).
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// `true` when the pipeline left this query uncovered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Rewrite target ids in ranking order.
    #[inline]
    pub fn ids(&self) -> &'i [u32] {
        self.targets
    }

    /// Final scores, parallel to [`RewriteSet::ids`].
    #[inline]
    pub fn scores(&self) -> &'i [f64] {
        self.scores
    }

    /// Iterates `(target, score, name)` in ranking order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, f64, Option<&'i str>)> + 'i {
        let index = self.index;
        self.targets
            .iter()
            .zip(self.scores)
            .map(move |(&t, &s)| (QueryId(t), s, index.query_name(QueryId(t))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_core::{Method, RewriterConfig, SimrankConfig};
    use simrankpp_graph::fixtures::figure3_graph;
    use simrankpp_graph::WeightKind;

    fn fig3_index() -> RewriteIndex {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        RewriteIndex::build(&rewriter, None, 1)
    }

    #[test]
    fn figure3_index_serves_expected_rewrites() {
        let index = fig3_index();
        index.validate().unwrap();
        assert_eq!(index.n_queries(), 5);
        let camera = index.lookup("camera").unwrap();
        assert!(!camera.is_empty());
        let (_, _, name) = camera.iter().next().unwrap();
        assert_eq!(name, Some("digital camera"));
        // flower is isolated from the rest of the graph.
        assert!(index.lookup("flower").unwrap().is_empty());
        assert!(index.lookup("no such query").is_none());
    }

    #[test]
    fn index_matches_live_rewriter() {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        let index = RewriteIndex::build(&rewriter, None, 1);
        for q in g.queries() {
            let live = rewriter.rewrites(q, None);
            let served = index.rewrites_of(q);
            assert_eq!(served.len(), live.len());
            for (got, want) in served.iter().zip(&live) {
                assert_eq!(got.0, want.query);
                assert_eq!(got.1, want.score);
                assert_eq!(got.2, want.name.as_deref());
            }
        }
    }

    #[test]
    fn bid_filter_recorded_and_applied() {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::Simrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        let mut bids = FxHashSet::default();
        bids.insert(g.query_by_name("digital camera").unwrap());
        let index = RewriteIndex::build(&rewriter, Some(&bids), 2);
        index.validate().unwrap();
        assert!(index.meta().bid_filtered);
        // camera, pc and tv all reach "digital camera" (the only bid term);
        // everything else is filtered, and flower reaches nothing.
        let camera = index.lookup("camera").unwrap();
        assert_eq!(camera.len(), 1);
        assert_eq!(index.lookup("tv").unwrap().len(), 1);
        assert_eq!(index.lookup("pc").unwrap().len(), 1);
        assert!(index.lookup("flower").unwrap().is_empty());
    }

    #[test]
    fn duplicate_name_in_json_snapshot_rejected() {
        // A duplicated name would make the rebuilt name index route lookups
        // to the wrong query's row; from_json must refuse it.
        let json = fig3_index().to_json();
        let forged = json.replace("\"pc\"", "\"tv\"");
        assert_ne!(json, forged, "fixture must contain the pc query name");
        let err = RewriteIndex::from_json(&forged).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn json_roundtrip_preserves_lookups() {
        let index = fig3_index();
        let loaded = RewriteIndex::from_json(&index.to_json()).unwrap();
        assert_eq!(loaded.n_entries(), index.n_entries());
        for q in 0..index.n_queries() {
            let q = QueryId(q as u32);
            assert_eq!(loaded.rewrites_of(q).ids(), index.rewrites_of(q).ids());
            assert_eq!(
                loaded.rewrites_of(q).scores(),
                index.rewrites_of(q).scores()
            );
        }
        // Name lookup works after the reverse index rebuild.
        assert!(loaded.lookup("camera").is_some());
    }

    #[test]
    fn validate_rejects_corruption() {
        let good = fig3_index();

        let mut bad = good.clone();
        bad.targets[0] = bad.n_queries; // out of range
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.scores[0] = f64::NAN;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.offsets[1] = bad.offsets[2] + 1; // non-monotone
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        if let Some(row_start) = bad.offsets.iter().position(|&o| o > 0) {
            let q = row_start - 1;
            bad.targets[0] = q as u32; // self rewrite
            assert!(bad.validate().is_err());
        }

        let mut bad = good;
        bad.scores.pop();
        assert!(bad.validate().is_err());
    }
}
