//! The immutable precomputed top-k rewrite index.
//!
//! `build` runs the full §9.3 pipeline — top-100 candidates → stem-dedup →
//! bid filter → top-5 — for *every* query of the click graph, offline and in
//! parallel, then freezes the results into one flat arena:
//!
//! ```text
//! offsets: [0, 2, 5, 5, ...]          one entry per query + end sentinel
//! targets: [q7, q3, q1, q9, q2, ...]  rewrite ids, ranking order per row
//! scores:  [.61, .43, ...]            parallel to targets
//! ```
//!
//! Lookups slice the arena — no per-request allocation — and an optional
//! cloned name interner answers `lookup("camera")` for the line protocol.

use serde::{Deserialize, Serialize};
use simrankpp_core::{KernelKind, Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
use simrankpp_graph::{ClickGraph, DirtyComponents, Interner, QueryId, SegmentedStore, Sharding};
use simrankpp_util::FxHashSet;

/// Provenance carried by an index (and through snapshots): what produced the
/// rows, so a server can refuse mismatched artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexMeta {
    /// The similarity method the rows were ranked by.
    pub method: MethodKind,
    /// The per-query row-length cap the pipeline ran with (paper: 5).
    pub max_rewrites: u32,
    /// Whether the §9.3 bid-term filter was applied at build time.
    pub bid_filtered: bool,
    /// Whether the scores were computed under an **approximate** (edge
    /// cutting) sharding regime such as `ShardStrategy::Extracted`.
    /// Incremental refresh is exact-per-component and would silently mix
    /// regimes with copied approximate rows, so
    /// [`RewriteIndex::rebuild_incremental`] refuses such indexes.
    /// Defaults to `false` (exact) for artifacts predating the field.
    #[serde(default)]
    pub approx_sharding: bool,
    /// Which engine kernel computed the scores. Kernels agree only to f64
    /// rounding, so an incremental refresh recomputing dirty rows with a
    /// different kernel than the copied clean rows would silently mix
    /// generations; [`RewriteIndex::rebuild_incremental`] refuses the
    /// mismatch. Deliberately **not** serde-defaulted: an artifact without
    /// the field predates the pull kernel and carries flat-kernel scores,
    /// so defaulting to the current `KernelKind::default()` would
    /// mis-attribute it — legacy artifacts are refused on load instead
    /// (binary snapshots via the version check, JSON via the missing
    /// field), matching the v1→v2 `approx_sharding` precedent.
    pub kernel: KernelKind,
    /// How many segments of a [`simrankpp_graph::SegmentedStore`] the index
    /// was built from — `0` for a monolithic in-memory build. Provenance
    /// only: segmented and monolithic builds over the same graph are
    /// bit-identical (both decompose exactly by component), so nothing
    /// refuses on a mismatch; the count surfaces in `serve info`.
    #[serde(default)]
    pub segments: u32,
}

/// One recomputed row during an incremental rebuild: the global query index
/// plus its refreshed `(target, score)` entries.
type FreshRow = (usize, Vec<(u32, f64)>);

/// Refresh accounting returned by [`RewriteIndex::rebuild_incremental`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildStats {
    /// Queries whose rows were recomputed (they live in dirty components).
    pub refreshed_queries: usize,
    /// Queries whose rows were copied verbatim from the previous generation.
    pub copied_queries: usize,
    /// Rewrite entries in the recomputed rows.
    pub refreshed_entries: usize,
    /// Rewrite entries copied verbatim.
    pub copied_entries: usize,
    /// Dirty components in the delta analysis.
    pub n_dirty_components: usize,
    /// Clean components whose queries were all copied.
    pub n_clean_components: usize,
}

/// An immutable query → top-k rewrites index over one click graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RewriteIndex {
    pub(crate) meta: IndexMeta,
    pub(crate) n_queries: u32,
    /// `offsets[q]..offsets[q + 1]` is query `q`'s row in the arenas.
    pub(crate) offsets: Vec<u32>,
    /// Rewrite target ids, ranking order within each row.
    pub(crate) targets: Vec<u32>,
    /// Final method scores, parallel to `targets`.
    pub(crate) scores: Vec<f64>,
    /// Query display names, when the source graph had them.
    pub(crate) names: Option<Interner>,
}

impl RewriteIndex {
    /// Runs the offline pipeline for every query of `rewriter`'s graph with
    /// `threads` chunked workers (`0` = all cores) and freezes the results.
    ///
    /// Each worker drives the name-free [`Rewriter::rewrite_ids_into`] with
    /// one reused buffer and emits a chunk-local arena; stitching the chunks
    /// in order keeps the result deterministic for any thread count.
    pub fn build(
        rewriter: &Rewriter,
        bid_terms: Option<&FxHashSet<QueryId>>,
        threads: usize,
    ) -> RewriteIndex {
        let g = rewriter.graph();
        let chunks = simrankpp_core::engine::parallel::run_chunked(g.n_queries(), threads, |r| {
            let mut row = Vec::new();
            let mut lens = Vec::with_capacity(r.len());
            let mut targets = Vec::new();
            let mut scores = Vec::new();
            for q in r {
                rewriter.rewrite_ids_into(QueryId(q as u32), bid_terms, &mut row);
                lens.push(row.len() as u32);
                for &(t, s) in &row {
                    targets.push(t.0);
                    scores.push(s);
                }
            }
            (lens, targets, scores)
        });

        let mut offsets = Vec::with_capacity(g.n_queries() + 1);
        let mut targets = Vec::new();
        let mut scores = Vec::new();
        let mut total = 0u64;
        offsets.push(0u32);
        for (chunk_lens, chunk_targets, chunk_scores) in chunks {
            for len in chunk_lens {
                total += u64::from(len);
                assert!(
                    total < u64::from(u32::MAX),
                    "index exceeds u32 arena offsets"
                );
                offsets.push(total as u32);
            }
            targets.extend_from_slice(&chunk_targets);
            scores.extend_from_slice(&chunk_scores);
        }
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        targets.shrink_to_fit();
        scores.shrink_to_fit();

        RewriteIndex {
            meta: IndexMeta {
                method: rewriter.method().kind(),
                max_rewrites: rewriter.config().max_rewrites as u32,
                bid_filtered: bid_terms.is_some(),
                approx_sharding: false,
                kernel: rewriter.method().kernel(),
                segments: 0,
            },
            n_queries: g.n_queries() as u32,
            offsets,
            targets,
            scores,
            names: g.query_interner().cloned(),
        }
    }

    /// Builds the index from a [`SegmentedStore`] **one segment at a time**:
    /// peak memory is bounded by the largest segment plus the (flat,
    /// row-cap-bounded) output arena, never the whole graph.
    ///
    /// Segments hold whole connected components and their local ids are
    /// monotone in global ids, so per-segment method computation and the
    /// §9.3 pipeline produce rows bit-identical to a monolithic
    /// [`RewriteIndex::build`] over [`SegmentedStore::load_all`] — including
    /// equal-score tie-breaks. `bid_terms` are global query ids and are
    /// remapped into each segment.
    pub fn build_segmented(
        store: &mut SegmentedStore,
        kind: MethodKind,
        config: &SimrankConfig,
        rewriter_config: RewriterConfig,
        bid_terms: Option<&FxHashSet<QueryId>>,
    ) -> std::io::Result<RewriteIndex> {
        fn bad(msg: String) -> std::io::Error {
            std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
        }

        let n_total = usize::try_from(store.total_queries())
            .map_err(|_| bad("store query count overflows usize".into()))?;
        let has_names = store.has_names();
        let mut rows: Vec<Option<Vec<(u32, f64)>>> = vec![None; n_total];
        let mut names: Vec<(u32, String)> = Vec::with_capacity(if has_names { n_total } else { 0 });
        let mut kernel = None;

        for i in 0..store.n_segments() {
            let seg = store.load_segment(i)?;
            let method = Method::compute(kind, &seg.graph, config);
            kernel = Some(method.kernel());
            let rewriter = Rewriter::new(&seg.graph, method, rewriter_config);
            let local_bids: Option<FxHashSet<QueryId>> = bid_terms.map(|bids| {
                seg.queries
                    .iter()
                    .enumerate()
                    .filter(|(_, &global)| bids.contains(&QueryId(global)))
                    .map(|(local, _)| QueryId(local as u32))
                    .collect()
            });
            let mut row = Vec::new();
            for (local, &global) in seg.queries.iter().enumerate() {
                rewriter.rewrite_ids_into(QueryId(local as u32), local_bids.as_ref(), &mut row);
                let global_row: Vec<(u32, f64)> = row
                    .iter()
                    .map(|&(t, s)| (seg.queries[t.index()], s))
                    .collect();
                let slot = rows.get_mut(global as usize).ok_or_else(|| {
                    bad(format!(
                        "segment {i}: global query id {global} out of range"
                    ))
                })?;
                if slot.replace(global_row).is_some() {
                    return Err(bad(format!(
                        "global query id {global} appears in more than one segment"
                    )));
                }
                if has_names {
                    let name = seg
                        .graph
                        .query_name(QueryId(local as u32))
                        .ok_or_else(|| bad(format!("segment {i}: query {local} has no name")))?;
                    names.push((global, name.to_string()));
                }
            }
        }

        let mut offsets = Vec::with_capacity(n_total + 1);
        let mut targets = Vec::new();
        let mut scores = Vec::new();
        offsets.push(0u32);
        let mut total = 0u64;
        for (q, slot) in rows.into_iter().enumerate() {
            let row =
                slot.ok_or_else(|| bad(format!("global query id {q} missing from every segment")))?;
            total += row.len() as u64;
            if total >= u64::from(u32::MAX) {
                return Err(bad("index exceeds u32 arena offsets".into()));
            }
            offsets.push(total as u32);
            for (t, s) in row {
                targets.push(t);
                scores.push(s);
            }
        }

        let interner = if has_names {
            names.sort_unstable_by_key(|a| a.0);
            let mut interner = Interner::new();
            for (expect, (global, name)) in names.iter().enumerate() {
                if *global != expect as u32 {
                    return Err(bad(format!(
                        "query id {expect} missing or duplicated across segment name maps"
                    )));
                }
                if interner.intern(name) != *global {
                    return Err(bad(format!(
                        "duplicate query name {name:?} across segments"
                    )));
                }
            }
            Some(interner)
        } else {
            None
        };

        Ok(RewriteIndex {
            meta: IndexMeta {
                method: kind,
                max_rewrites: rewriter_config.max_rewrites as u32,
                bid_filtered: bid_terms.is_some(),
                approx_sharding: false,
                kernel: kernel.unwrap_or(config.kernel),
                segments: store.n_segments() as u32,
            },
            n_queries: n_total as u32,
            offsets,
            targets,
            scores,
            names: interner,
        })
    }

    /// Rebuilds only the **dirty** queries' rows after a graph delta,
    /// copying every clean query's row from `self` verbatim — the serving
    /// half of the incremental-update story.
    ///
    /// `new_graph` is the post-delta graph and `dirty` the analysis from
    /// [`simrankpp_graph::GraphDelta::dirty_components`] over it. For each
    /// dirty non-trivial component the similarity method named by
    /// `self.meta.method` is recomputed **on the induced component subgraph
    /// alone** (serial, unsharded — the regime where component decomposition
    /// is bit-exact, see `simrankpp_core::engine::sharded`) and the §9.3
    /// pipeline re-runs for its queries; shard-local ids remap monotonically
    /// to global ones, so candidate ordering ties break identically to a
    /// full rebuild. Queries in clean components keep their exact rows: the
    /// result is bit-identical to `RewriteIndex::build` over the new graph
    /// at test scale.
    ///
    /// `config`/`rewriter_config`/`bid_terms` must match what built `self`
    /// (checked against `meta` where recorded: method family via
    /// `meta.method`, row cap via `meta.max_rewrites`, bid filtering via
    /// `meta.bid_filtered`, engine kernel via `meta.kernel`). Recursive
    /// methods assume the default
    /// (geometric) evidence formula, as [`RewriteIndex::build`] callers use.
    ///
    /// Returns the next index generation plus the refresh accounting.
    pub fn rebuild_incremental(
        &self,
        new_graph: &ClickGraph,
        dirty: &DirtyComponents,
        config: &SimrankConfig,
        rewriter_config: &RewriterConfig,
        bid_terms: Option<&FxHashSet<QueryId>>,
    ) -> Result<(RewriteIndex, RebuildStats), String> {
        if rewriter_config.max_rewrites as u32 != self.meta.max_rewrites {
            return Err(format!(
                "rewriter max_rewrites {} does not match the index's {}",
                rewriter_config.max_rewrites, self.meta.max_rewrites
            ));
        }
        if bid_terms.is_some() != self.meta.bid_filtered {
            return Err("bid filtering must match the original build".into());
        }
        if self.meta.approx_sharding {
            return Err(
                "index was built under approximate (extracted) sharding: an exact \
                 per-component refresh would mix regimes — rebuild with `components`"
                    .into(),
            );
        }
        if config.kernel != self.meta.kernel {
            return Err(format!(
                "index was built with the {:?} engine kernel but the refresh config \
                 selects {:?}: recomputed dirty rows would mix kernels (they agree \
                 only to rounding) with copied clean rows — pass a matching \
                 config.kernel or rebuild the index from scratch",
                self.meta.kernel, config.kernel
            ));
        }
        let old_n = self.n_queries();
        let new_n = new_graph.n_queries();
        if new_n < old_n {
            return Err(format!(
                "updated graph has {new_n} queries but the index covers {old_n}: \
                 deltas never remove nodes"
            ));
        }
        if dirty.components.query_label.len() != new_n {
            return Err("dirty-component analysis was built for a different graph".into());
        }
        for q in old_n..new_n {
            if !dirty.query_dirty(QueryId(q as u32)) {
                return Err(format!(
                    "new query {q} is not marked dirty — stale delta analysis?"
                ));
            }
        }

        // Recompute the method per dirty component, on the induced subgraph,
        // in the serial unsharded regime (bit-exact decomposition). Like the
        // engine's sharded runner, parallelism lives at the shard level:
        // `config.threads` scoped workers pull shards off an atomic queue
        // (each shard stays serial inside, and shards write disjoint query
        // rows, so the result is identical for any worker count).
        let local_cfg = SimrankConfig {
            threads: 1,
            sharding: simrankpp_core::ShardStrategy::Off,
            ..*config
        };
        let sharding = Sharding::from_dirty(new_graph, dirty);
        let rebuild_shard = |shard: &simrankpp_graph::Shard| -> Vec<FreshRow> {
            let method = Method::compute(self.meta.method, &shard.graph, &local_cfg);
            let rewriter = Rewriter::new(&shard.graph, method, *rewriter_config);
            let shard_bids: Option<FxHashSet<QueryId>> = bid_terms.map(|bids| {
                bids.iter()
                    .filter_map(|&b| shard.mapping.to_sub_query(b))
                    .collect()
            });
            let mut row = Vec::new();
            let mut out = Vec::with_capacity(shard.graph.n_queries());
            for sq in shard.graph.queries() {
                rewriter.rewrite_ids_into(sq, shard_bids.as_ref(), &mut row);
                let global: Vec<(u32, f64)> = row
                    .iter()
                    .map(|&(t, s)| (shard.mapping.to_parent_query(t).0, s))
                    .collect();
                out.push((shard.mapping.to_parent_query(sq).index(), global));
            }
            out
        };
        let workers = config.effective_threads().min(sharding.n_shards()).max(1);
        let shard_rows: Vec<Vec<FreshRow>> =
            simrankpp_core::engine::parallel::run_indexed(sharding.n_shards(), workers, |i| {
                rebuild_shard(&sharding.shards[i])
            });
        let mut fresh: Vec<Option<Vec<(u32, f64)>>> = vec![None; new_n];
        let mut refreshed_entries = 0usize;
        for (q, global) in shard_rows.into_iter().flatten() {
            refreshed_entries += global.len();
            fresh[q] = Some(global);
        }

        // Assemble the next arena generation: fresh rows for dirty queries
        // (empty when their component holds no candidates), verbatim copies
        // for clean ones.
        let mut offsets = Vec::with_capacity(new_n + 1);
        let mut targets = Vec::new();
        let mut scores = Vec::new();
        offsets.push(0u32);
        let mut refreshed_queries = 0usize;
        let mut copied_entries = 0usize;
        for (q, slot) in fresh.iter_mut().enumerate() {
            let qid = QueryId(q as u32);
            if dirty.query_dirty(qid) {
                refreshed_queries += 1;
                if let Some(row) = slot.take() {
                    for (t, s) in row {
                        targets.push(t);
                        scores.push(s);
                    }
                }
            } else {
                let old = self.rewrites_of(qid);
                copied_entries += old.len();
                targets.extend_from_slice(old.ids());
                scores.extend_from_slice(old.scores());
            }
            let total = targets.len() as u64;
            if total >= u64::from(u32::MAX) {
                return Err("index exceeds u32 arena offsets".into());
            }
            offsets.push(total as u32);
        }
        targets.shrink_to_fit();
        scores.shrink_to_fit();

        let stats = RebuildStats {
            refreshed_queries,
            copied_queries: new_n - refreshed_queries,
            refreshed_entries,
            copied_entries,
            n_dirty_components: dirty.n_dirty(),
            n_clean_components: dirty.n_clean(),
        };
        Ok((
            RewriteIndex {
                meta: self.meta,
                n_queries: new_n as u32,
                offsets,
                targets,
                scores,
                names: new_graph.query_interner().cloned(),
            },
            stats,
        ))
    }

    /// An index covering **zero** queries: every lookup misses. The
    /// single-source serving mode starts from this — the server skips the
    /// offline all-pairs build entirely and answers each query live, so the
    /// only thing an index contributes is the provenance in `meta`.
    pub fn empty(meta: IndexMeta) -> RewriteIndex {
        RewriteIndex {
            meta,
            n_queries: 0,
            offsets: vec![0],
            targets: Vec::new(),
            scores: Vec::new(),
            names: None,
        }
    }

    /// Marks the index as built under an approximate (edge-cutting) sharding
    /// regime. `RewriteIndex::build` cannot see the engine strategy (it only
    /// receives precomputed scores), so the caller that chose
    /// `ShardStrategy::Extracted` must record it; the flag travels through
    /// snapshots and blocks incremental refresh.
    pub fn set_approx_sharding(&mut self, approx: bool) {
        self.meta.approx_sharding = approx;
    }

    /// Build provenance.
    pub fn meta(&self) -> &IndexMeta {
        &self.meta
    }

    /// Number of indexed queries.
    pub fn n_queries(&self) -> usize {
        self.n_queries as usize
    }

    /// Total stored rewrites across all rows.
    pub fn n_entries(&self) -> usize {
        self.targets.len()
    }

    /// The precomputed rewrites of `q` — borrowed slices, no allocation.
    #[inline]
    pub fn rewrites_of(&self, q: QueryId) -> RewriteSet<'_> {
        let lo = self.offsets[q.index()] as usize;
        let hi = self.offsets[q.index() + 1] as usize;
        RewriteSet {
            index: self,
            targets: &self.targets[lo..hi],
            scores: &self.scores[lo..hi],
        }
    }

    /// Name-keyed lookup for the serving front door.
    #[inline]
    pub fn lookup(&self, name: &str) -> Option<RewriteSet<'_>> {
        Some(self.rewrites_of(self.lookup_id(name)?))
    }

    /// Resolves a query display name to its id.
    #[inline]
    pub fn lookup_id(&self, name: &str) -> Option<QueryId> {
        Some(QueryId(self.names.as_ref()?.get(name)?))
    }

    /// The display name of an indexed query, when names were recorded.
    #[inline]
    pub fn query_name(&self, q: QueryId) -> Option<&str> {
        self.names.as_ref().and_then(|i| i.name(q.0))
    }

    /// JSON snapshot (human-inspectable; prefer the binary format for size).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("index serialization cannot fail")
    }

    /// Parses a JSON snapshot, rebuilds the name lookup (serde skips the
    /// reverse index), and validates the structure.
    pub fn from_json(json: &str) -> Result<RewriteIndex, String> {
        let mut index: RewriteIndex = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if let Some(i) = index.names.as_mut() {
            i.rebuild_index();
        }
        index.validate()?;
        Ok(index)
    }

    /// Checks every structural invariant; snapshot loading runs this, so a
    /// corrupt or hand-edited artifact is rejected before it serves traffic.
    ///
    /// Verified: offset shape/monotonicity, arena lengths, target ids in
    /// range and off the diagonal, finite scores in non-increasing ranking
    /// order, row lengths within `meta.max_rewrites`, and that the name
    /// table is a bijection (a duplicated name would route lookups to the
    /// wrong query's row).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_queries as usize;
        if self.offsets.len() != n + 1 {
            return Err(format!(
                "offsets has {} entries for {} queries",
                self.offsets.len(),
                n
            ));
        }
        if self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets not monotone".into());
        }
        if *self.offsets.last().unwrap() as usize != self.targets.len() {
            return Err("last offset != target count".into());
        }
        if self.targets.len() != self.scores.len() {
            return Err("targets/scores arenas must be parallel".into());
        }
        for q in 0..n {
            let (lo, hi) = (self.offsets[q] as usize, self.offsets[q + 1] as usize);
            if hi - lo > self.meta.max_rewrites as usize {
                return Err(format!("query {q}: row exceeds max_rewrites"));
            }
            for i in lo..hi {
                if self.targets[i] as usize >= n {
                    return Err(format!("query {q}: target id out of range"));
                }
                if self.targets[i] as usize == q {
                    return Err(format!("query {q}: listed as its own rewrite"));
                }
                if !self.scores[i].is_finite() {
                    return Err(format!("query {q}: non-finite score"));
                }
                if i > lo && self.scores[i] > self.scores[i - 1] {
                    return Err(format!("query {q}: scores not in ranking order"));
                }
            }
        }
        if let Some(names) = &self.names {
            if names.len() > n {
                return Err(format!(
                    "name table has {} entries for {} queries",
                    names.len(),
                    n
                ));
            }
            for (id, name) in names.iter() {
                if names.get(name) != Some(id) {
                    return Err(format!("duplicate query name {name:?} in name table"));
                }
            }
        }
        Ok(())
    }
}

/// A borrowed view of one query's precomputed rewrites.
#[derive(Debug, Clone, Copy)]
pub struct RewriteSet<'i> {
    index: &'i RewriteIndex,
    targets: &'i [u32],
    scores: &'i [f64],
}

impl<'i> RewriteSet<'i> {
    /// Number of rewrites (the method's §9.4 *depth* for this query).
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// `true` when the pipeline left this query uncovered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Rewrite target ids in ranking order.
    #[inline]
    pub fn ids(&self) -> &'i [u32] {
        self.targets
    }

    /// Final scores, parallel to [`RewriteSet::ids`].
    #[inline]
    pub fn scores(&self) -> &'i [f64] {
        self.scores
    }

    /// Iterates `(target, score, name)` in ranking order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, f64, Option<&'i str>)> + 'i {
        let index = self.index;
        self.targets
            .iter()
            .zip(self.scores)
            .map(move |(&t, &s)| (QueryId(t), s, index.query_name(QueryId(t))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_core::{Method, RewriterConfig, SimrankConfig};
    use simrankpp_graph::fixtures::figure3_graph;
    use simrankpp_graph::WeightKind;

    fn fig3_index() -> RewriteIndex {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        RewriteIndex::build(&rewriter, None, 1)
    }

    #[test]
    fn figure3_index_serves_expected_rewrites() {
        let index = fig3_index();
        index.validate().unwrap();
        assert_eq!(index.n_queries(), 5);
        let camera = index.lookup("camera").unwrap();
        assert!(!camera.is_empty());
        let (_, _, name) = camera.iter().next().unwrap();
        assert_eq!(name, Some("digital camera"));
        // flower is isolated from the rest of the graph.
        assert!(index.lookup("flower").unwrap().is_empty());
        assert!(index.lookup("no such query").is_none());
    }

    #[test]
    fn index_matches_live_rewriter() {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        let index = RewriteIndex::build(&rewriter, None, 1);
        for q in g.queries() {
            let live = rewriter.rewrites(q, None);
            let served = index.rewrites_of(q);
            assert_eq!(served.len(), live.len());
            for (got, want) in served.iter().zip(&live) {
                assert_eq!(got.0, want.query);
                assert_eq!(got.1, want.score);
                assert_eq!(got.2, want.name.as_deref());
            }
        }
    }

    #[test]
    fn bid_filter_recorded_and_applied() {
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::Simrank, &g, &cfg);
        let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
        let mut bids = FxHashSet::default();
        bids.insert(g.query_by_name("digital camera").unwrap());
        let index = RewriteIndex::build(&rewriter, Some(&bids), 2);
        index.validate().unwrap();
        assert!(index.meta().bid_filtered);
        // camera, pc and tv all reach "digital camera" (the only bid term);
        // everything else is filtered, and flower reaches nothing.
        let camera = index.lookup("camera").unwrap();
        assert_eq!(camera.len(), 1);
        assert_eq!(index.lookup("tv").unwrap().len(), 1);
        assert_eq!(index.lookup("pc").unwrap().len(), 1);
        assert!(index.lookup("flower").unwrap().is_empty());
    }

    #[test]
    fn duplicate_name_in_json_snapshot_rejected() {
        // A duplicated name would make the rebuilt name index route lookups
        // to the wrong query's row; from_json must refuse it.
        let json = fig3_index().to_json();
        let forged = json.replace("\"pc\"", "\"tv\"");
        assert_ne!(json, forged, "fixture must contain the pc query name");
        let err = RewriteIndex::from_json(&forged).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn json_roundtrip_preserves_lookups() {
        let index = fig3_index();
        let loaded = RewriteIndex::from_json(&index.to_json()).unwrap();
        assert_eq!(loaded.n_entries(), index.n_entries());
        for q in 0..index.n_queries() {
            let q = QueryId(q as u32);
            assert_eq!(loaded.rewrites_of(q).ids(), index.rewrites_of(q).ids());
            assert_eq!(
                loaded.rewrites_of(q).scores(),
                index.rewrites_of(q).scores()
            );
        }
        // Name lookup works after the reverse index rebuild.
        assert!(loaded.lookup("camera").is_some());
    }

    #[test]
    fn rebuild_incremental_matches_full_rebuild_and_copies_clean_rows() {
        use simrankpp_graph::{EdgeData, GraphDelta};
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let old = fig3_index();

        // Boost camera→bestbuy: only the big component is dirty; flower's
        // component (and row) must be copied untouched.
        let mut d = GraphDelta::new();
        d.upsert(
            g.query_by_name("camera").unwrap(),
            g.ad_by_name("bestbuy.com").unwrap(),
            EdgeData::from_clicks(50),
        );
        let g2 = d.apply(&g);
        let dirty = d.dirty_components(&g2);

        let (inc, stats) = old
            .rebuild_incremental(&g2, &dirty, &cfg, &RewriterConfig::default(), None)
            .unwrap();
        inc.validate().unwrap();
        assert_eq!(stats.refreshed_queries, 4);
        assert_eq!(stats.copied_queries, 1);
        assert_eq!(stats.n_dirty_components, 1);
        assert_eq!(stats.n_clean_components, 1);

        // Bit-identical to a from-scratch build over the new graph.
        let method = Method::compute(MethodKind::WeightedSimrank, &g2, &cfg);
        let rewriter = Rewriter::new(&g2, method, RewriterConfig::default());
        let full = RewriteIndex::build(&rewriter, None, 1);
        assert_eq!(inc.n_entries(), full.n_entries());
        for q in g2.queries() {
            assert_eq!(inc.rewrites_of(q).ids(), full.rewrites_of(q).ids());
            assert_eq!(inc.rewrites_of(q).scores(), full.rewrites_of(q).scores());
        }
    }

    #[test]
    fn rebuild_incremental_handles_new_queries() {
        use simrankpp_graph::delta::{apply_named, NamedOp};
        use simrankpp_graph::EdgeData;
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let old = fig3_index();
        let ops = vec![NamedOp::Upsert {
            query: "laptop".into(),
            ad: "hp.com".into(),
            data: EdgeData::from_clicks(4),
        }];
        let (g2, delta) = apply_named(&g, &ops).unwrap();
        let dirty = delta.dirty_components(&g2);
        let (inc, stats) = old
            .rebuild_incremental(&g2, &dirty, &cfg, &RewriterConfig::default(), None)
            .unwrap();
        inc.validate().unwrap();
        assert_eq!(inc.n_queries(), g.n_queries() + 1);
        assert_eq!(stats.copied_queries, 1); // flower only
        assert!(!inc.lookup("laptop").unwrap().is_empty());

        let method = Method::compute(MethodKind::WeightedSimrank, &g2, &cfg);
        let rewriter = Rewriter::new(&g2, method, RewriterConfig::default());
        let full = RewriteIndex::build(&rewriter, None, 1);
        for q in g2.queries() {
            assert_eq!(inc.rewrites_of(q).ids(), full.rewrites_of(q).ids());
            assert_eq!(inc.rewrites_of(q).scores(), full.rewrites_of(q).scores());
        }
    }

    #[test]
    fn rebuild_incremental_rejects_mismatched_parameters() {
        use simrankpp_graph::GraphDelta;
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let old = fig3_index();
        let d = GraphDelta::new();
        let g2 = d.apply(&g);
        let dirty = d.dirty_components(&g2);

        // Row cap mismatch.
        let narrow = RewriterConfig {
            max_rewrites: 3,
            ..RewriterConfig::default()
        };
        assert!(old
            .rebuild_incremental(&g2, &dirty, &cfg, &narrow, None)
            .is_err());
        // Bid-filter mismatch (the index was built without bids).
        let bids = FxHashSet::default();
        assert!(old
            .rebuild_incremental(&g2, &dirty, &cfg, &RewriterConfig::default(), Some(&bids))
            .is_err());
        // Wrong-graph dirty analysis.
        let other = {
            use simrankpp_graph::{ClickGraphBuilder, EdgeData};
            let mut b = ClickGraphBuilder::new();
            b.add_named("x", "y", EdgeData::from_clicks(1));
            b.build()
        };
        let other_dirty = GraphDelta::new().dirty_components(&other);
        assert!(old
            .rebuild_incremental(&g2, &other_dirty, &cfg, &RewriterConfig::default(), None)
            .is_err());
        // Approximate-sharding builds refuse exact incremental refresh.
        let mut approx = old.clone();
        approx.set_approx_sharding(true);
        let err = approx
            .rebuild_incremental(&g2, &dirty, &cfg, &RewriterConfig::default(), None)
            .unwrap_err();
        assert!(err.contains("approximate"), "{err}");
        // Kernel mismatch: refreshing a flat-built index (e.g. a snapshot
        // from before the pull kernel existed) with a pull config would mix
        // kernels across copied and recomputed rows — refused, while the
        // matching kernel succeeds.
        let mut legacy = old.clone();
        legacy.meta.kernel = simrankpp_core::KernelKind::Flat;
        let err = legacy
            .rebuild_incremental(&g2, &dirty, &cfg, &RewriterConfig::default(), None)
            .unwrap_err();
        assert!(err.contains("kernel"), "{err}");
        let flat_cfg = cfg.with_kernel(simrankpp_core::KernelKind::Flat);
        assert!(legacy
            .rebuild_incremental(&g2, &dirty, &flat_cfg, &RewriterConfig::default(), None)
            .is_ok());
    }

    #[test]
    fn rebuild_incremental_parallel_workers_match_serial() {
        use simrankpp_graph::{EdgeData, GraphDelta};
        // Shard-level parallelism must not change a single byte of the
        // rebuilt arena (shards write disjoint rows; each stays serial).
        let g = figure3_graph();
        let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
        let old = fig3_index();
        let mut d = GraphDelta::new();
        // Dirty both components so there are two shards to schedule.
        d.upsert(
            g.query_by_name("camera").unwrap(),
            g.ad_by_name("hp.com").unwrap(),
            EdgeData::from_clicks(9),
        );
        d.upsert(
            g.query_by_name("flower").unwrap(),
            g.ad_by_name("orchids.com").unwrap(),
            EdgeData::from_clicks(2),
        );
        let g2 = d.apply(&g);
        let dirty = d.dirty_components(&g2);
        let (serial, s_stats) = old
            .rebuild_incremental(&g2, &dirty, &cfg, &RewriterConfig::default(), None)
            .unwrap();
        let par_cfg = cfg.with_threads(4);
        let (parallel, p_stats) = old
            .rebuild_incremental(&g2, &dirty, &par_cfg, &RewriterConfig::default(), None)
            .unwrap();
        assert_eq!(s_stats, p_stats);
        assert_eq!(serial.offsets, parallel.offsets);
        assert_eq!(serial.targets, parallel.targets);
        assert_eq!(serial.scores, parallel.scores);
    }

    #[test]
    fn validate_rejects_corruption() {
        let good = fig3_index();

        let mut bad = good.clone();
        bad.targets[0] = bad.n_queries; // out of range
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.scores[0] = f64::NAN;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.offsets[1] = bad.offsets[2] + 1; // non-monotone
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        if let Some(row_start) = bad.offsets.iter().position(|&o| o > 0) {
            let q = row_start - 1;
            bad.targets[0] = q as u32; // self rewrite
            assert!(bad.validate().is_err());
        }

        let mut bad = good;
        bad.scores.pop();
        assert!(bad.validate().is_err());
    }
}
