//! Streaming click-log ingestion: windowed epochs driving zero-downtime
//! index refreshes.
//!
//! The offline pipeline treats the click graph as a monthly batch artifact
//! (§3: "a specific time period"); production click traffic is a stream.
//! This module turns the incremental machinery (`GraphDelta` dirty
//! components → [`RewriteIndex::rebuild_incremental`] → `AtomicHandle`
//! hot-swap) into a *continuous* path:
//!
//! * an append-only **click log** (the delta TSV upsert shape with a
//!   leading epoch column, `simrankpp_graph::delta::ClickLogRecord`) is
//!   tailed as it grows ([`LogTailer`]);
//! * events accumulate into the current epoch bucket of a
//!   [`SlidingWindowGraph`]; `@ <epoch>` marker lines close epochs,
//!   retiring buckets older than the window and triggering a refresh;
//! * each refresh freezes the surviving window, marks dirty exactly the
//!   components holding an endpoint of an event **observed or retired**
//!   since the last refresh (sound because a frozen edge's data — decayed
//!   ECR included, see the window docs on per-edge age anchoring — depends
//!   only on its own surviving events), rebuilds those rows, and
//!   hot-swaps the new generation in while the TCP data plane keeps
//!   serving.
//!
//! The first refresh has no previous generation and runs a full build;
//! every later one is incremental, and is bit-identical to a from-scratch
//! build of the surviving window (`tests/stream_equivalence.rs` holds the
//! differential proof).
//!
//! [`IngestMetrics`] instruments the click-to-serve freshness story: how
//! long a refresh takes (`last_refresh_us`), and the end-to-end latency
//! from reading a batch's first event to the moment the swapped-in
//! generation reflects it (`last_freshness_us`). The protocol `info` verb
//! reports the counters; `bench_ci --tier stream` turns them into gated
//! `BENCH_stream.json` metrics.

use crate::index::{RebuildStats, RewriteIndex};
use crate::server::ServeState;
use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
use simrankpp_graph::delta::{dirty_for_endpoints, parse_click_log_line, ClickLogRecord};
use simrankpp_graph::{AdId, EdgeData, QueryId, SlidingWindowGraph};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Parameters of one streaming ingest pipeline. The similarity and
/// rewriter configs play the same role as [`crate::server::UpdateContext`]:
/// every refresh must recompute with the parameters the previous
/// generation was built with, or the incremental rebuild would mix
/// regimes (and [`RewriteIndex::rebuild_incremental`] would refuse).
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Window length in epochs; events older than this retire.
    pub window: usize,
    /// Per-epoch ECR decay factor in `(0, 1]` (see
    /// [`SlidingWindowGraph::with_decay`]); 1 = no decay.
    pub decay: f64,
    /// The similarity method every generation is built with.
    pub method: MethodKind,
    /// The engine configuration every generation is built with.
    pub config: SimrankConfig,
    /// The §9.3 pipeline parameters every generation is built with.
    pub rewriter: RewriterConfig,
    /// Worker threads for the initial full build (`0` = all cores).
    pub threads: usize,
}

/// Shared atomic counters describing a running ingest pipeline, reported
/// by the protocol `info` verb (tab-separated `ingest_*=value` fields,
/// like [`crate::net::ServerMetrics`]).
#[derive(Debug, Default)]
pub struct IngestMetrics {
    /// Click events ingested (epoch marks excluded).
    pub events: AtomicU64,
    /// The window's current epoch.
    pub epoch: AtomicU64,
    /// Refreshes published (the first one is the full build).
    pub refreshes: AtomicU64,
    /// Cumulative index rows recomputed across refreshes.
    pub refreshed_rows: AtomicU64,
    /// Cumulative index rows copied verbatim across refreshes.
    pub copied_rows: AtomicU64,
    /// Wall-clock of the last refresh (freeze → rebuild → swap), in µs.
    pub last_refresh_us: AtomicU64,
    /// Click-to-serve freshness of the last refreshed batch: first event
    /// read → new generation swapped in, in µs.
    pub last_freshness_us: AtomicU64,
    /// Wall-clock of the last durable checkpoint commit, as milliseconds
    /// since the Unix epoch; 0 until the first commit (or when ingest runs
    /// without `--checkpoint`). The `health` verb turns this into an age.
    pub last_checkpoint_unix_ms: AtomicU64,
}

impl IngestMetrics {
    /// Stamps the last-checkpoint clock with the current wall time.
    pub fn mark_checkpoint(&self) {
        let now_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        self.last_checkpoint_unix_ms
            .store(now_ms, Ordering::Relaxed);
    }
}

impl std::fmt::Display for IngestMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ingest_epoch={}\tingest_events={}\tingest_refreshes={}\
             \tingest_refreshed_rows={}\tingest_copied_rows={}\
             \tingest_last_refresh_us={}\tingest_last_freshness_us={}",
            self.epoch.load(Ordering::Relaxed),
            self.events.load(Ordering::Relaxed),
            self.refreshes.load(Ordering::Relaxed),
            self.refreshed_rows.load(Ordering::Relaxed),
            self.copied_rows.load(Ordering::Relaxed),
            self.last_refresh_us.load(Ordering::Relaxed),
            self.last_freshness_us.load(Ordering::Relaxed)
        )
    }
}

/// The state machine between a click log and a served index: the sliding
/// window, the last published generation, and the endpoints whose
/// components the next refresh must recompute.
pub struct EpochIngestor {
    cfg: IngestConfig,
    window: SlidingWindowGraph,
    /// The last published index generation; `None` until the first
    /// refresh (which therefore runs a full build).
    index: Option<RewriteIndex>,
    /// `(query, ad)` endpoints of events observed or retired since the
    /// last refresh — the dirtiness frontier.
    pending: Vec<(QueryId, AdId)>,
    /// When the first event of the current unrefreshed batch was read.
    batch_started: Option<Instant>,
    /// For each recent epoch, the log byte offset of the record whose
    /// application advanced the window *into* that epoch — the offset a
    /// crash-recovery replay of that epoch's bucket must start from. Only
    /// populated by [`Self::apply_record_at`] (offset-aware callers);
    /// pruned to the epochs a future checkpoint could still need.
    advances: std::collections::VecDeque<(u64, u64)>,
    /// End offset of the last record applied via [`Self::apply_record_at`].
    applied_offset: u64,
    /// Index generations produced so far (survives resume: restored from
    /// the checkpoint so generation numbers stay monotonic across crashes).
    generation: u64,
    /// Fingerprint of the window frozen by the last [`Self::refresh`].
    last_fingerprint: u64,
}

impl EpochIngestor {
    /// An empty pipeline at epoch 0.
    pub fn new(cfg: IngestConfig) -> EpochIngestor {
        let window = SlidingWindowGraph::new(cfg.window).with_decay(cfg.decay);
        Self::with_window(cfg, window, 0)
    }

    /// A pipeline resumed mid-stream from checkpointed state: the window
    /// restarts at `epoch` with the full checkpointed name universe (see
    /// [`SlidingWindowGraph::resume`]) and generation numbering continues.
    /// The caller replays the click log tail before serving.
    pub fn resume(
        cfg: IngestConfig,
        epoch: u64,
        replay_offset: u64,
        query_names: simrankpp_graph::Interner,
        ad_names: simrankpp_graph::Interner,
        generation: u64,
    ) -> EpochIngestor {
        let window = SlidingWindowGraph::resume(cfg.window, epoch, query_names, ad_names)
            .with_decay(cfg.decay);
        let mut ing = Self::with_window(cfg, window, generation);
        // Seed the replay table with the bucket we were born into, so a
        // checkpoint committed at this same boundary still records a real
        // replay offset instead of falling back to a whole-log replay.
        ing.advances.push_back((epoch, replay_offset));
        ing.applied_offset = replay_offset;
        ing
    }

    fn with_window(
        cfg: IngestConfig,
        window: SlidingWindowGraph,
        generation: u64,
    ) -> EpochIngestor {
        EpochIngestor {
            cfg,
            window,
            index: None,
            pending: Vec::new(),
            batch_started: None,
            advances: std::collections::VecDeque::new(),
            applied_offset: 0,
            generation,
            last_fingerprint: 0,
        }
    }

    /// The window's current epoch.
    pub fn epoch(&self) -> u64 {
        self.window.epoch()
    }

    /// The sliding window (checkpointing needs its interners).
    pub fn window(&self) -> &SlidingWindowGraph {
        &self.window
    }

    /// Index generations produced so far.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Fingerprint of the window frozen by the last refresh (0 before the
    /// first one).
    pub fn last_fingerprint(&self) -> u64 {
        self.last_fingerprint
    }

    /// End offset of the last record applied with [`Self::apply_record_at`].
    pub fn applied_offset(&self) -> u64 {
        self.applied_offset
    }

    /// Where a crash-recovery replay must start to rebuild the current
    /// window: `(epoch, log byte offset)` of the first record belonging to
    /// the oldest surviving bucket. Falls back to `(0, 0)` — replay the
    /// whole log, always correct, just slower — when the window hasn't
    /// filled yet or offsets were never supplied.
    pub fn replay_start(&self) -> (u64, u64) {
        let epoch = self.window.epoch();
        let window = self.window.window() as u64;
        if epoch < window {
            return (0, 0);
        }
        let oldest = epoch - window + 1;
        self.advances
            .iter()
            .find(|&&(e, _)| e == oldest)
            .map(|&(e, off)| (e, off))
            .unwrap_or((0, 0))
    }

    /// Endpoints awaiting the next refresh.
    pub fn pending_endpoints(&self) -> usize {
        self.pending.len()
    }

    /// Records one click event into the current epoch bucket.
    pub fn observe(&mut self, query: &str, ad: &str, data: EdgeData) {
        if self.batch_started.is_none() {
            self.batch_started = Some(Instant::now());
        }
        let (q, a) = self.window.observe(query, ad, data);
        self.pending.push((q, a));
    }

    /// Advances the window to `epoch` (a no-op when not ahead), folding
    /// the retired events' endpoints into the dirtiness frontier.
    pub fn advance_to(&mut self, epoch: u64) {
        let retired = self.window.advance_to(epoch);
        self.pending.extend(retired);
    }

    /// Applies one parsed click-log record. Returns `true` when the record
    /// was an epoch mark that advanced the window — the signal that a
    /// refresh is due. Events stamped ahead of the current epoch advance
    /// it implicitly (their epoch just started — no refresh signal);
    /// events stamped behind it are late arrivals and fold into the
    /// current bucket.
    pub fn apply_record(&mut self, rec: &ClickLogRecord) -> bool {
        match rec {
            ClickLogRecord::Event {
                epoch,
                query,
                ad,
                data,
            } => {
                if *epoch > self.window.epoch() {
                    self.advance_to(*epoch);
                }
                self.observe(query, ad, *data);
                false
            }
            ClickLogRecord::EpochMark { epoch } => {
                if *epoch > self.window.epoch() {
                    self.advance_to(*epoch);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// [`Self::apply_record`] for offset-aware callers (checkpointed
    /// ingest): `span` is the record's `[start, end)` byte range in the
    /// click log. Every epoch the record advances the window into is noted
    /// with the record's *start* offset — replaying from there re-applies
    /// the advancing record itself, which is required when it was an
    /// event (the event belongs to the new bucket) and a harmless no-op
    /// advance when it was a mark.
    pub fn apply_record_at(&mut self, rec: &ClickLogRecord, span: (u64, u64)) -> bool {
        let before = self.window.epoch();
        let refresh_due = self.apply_record(rec);
        let after = self.window.epoch();
        for epoch in (before + 1)..=after {
            self.advances.push_back((epoch, span.0));
        }
        // Prune entries no future checkpoint can need: a boundary at epoch
        // E replays from bucket E − window + 1, and E only grows.
        let keep_from = after.saturating_sub(self.window.window() as u64 - 1);
        while matches!(self.advances.front(), Some(&(e, _)) if e < keep_from) {
            self.advances.pop_front();
        }
        self.applied_offset = span.1;
        refresh_due
    }

    /// Freezes the surviving window and produces the next index
    /// generation: a full parallel build the first time, an incremental
    /// rebuild of exactly the dirty components' rows afterwards. Returns
    /// the generation to publish, its rebuild stats (for a full build:
    /// every row refreshed, component counts zero), and whether it was
    /// the full build. On error the previous generation stays current and
    /// the dirtiness frontier is preserved for a retry.
    pub fn refresh(&mut self) -> Result<(RewriteIndex, RebuildStats, bool), String> {
        // The batch this refresh absorbs ends here — callers measuring
        // freshness ([`Self::refresh_and_publish`]) take the start first.
        self.batch_started = None;
        simrankpp_util::fail_point!("ingest-epoch-apply", |msg: String| msg);
        let graph = self.window.freeze();
        self.last_fingerprint = graph.fingerprint();
        match self.index.as_ref() {
            None => {
                let method = Method::compute(self.cfg.method, &graph, &self.cfg.config);
                let rewriter = Rewriter::new(&graph, method, self.cfg.rewriter);
                let index = RewriteIndex::build(&rewriter, None, self.cfg.threads);
                let stats = RebuildStats {
                    refreshed_queries: index.n_queries(),
                    copied_queries: 0,
                    refreshed_entries: index.n_entries(),
                    copied_entries: 0,
                    n_dirty_components: 0,
                    n_clean_components: 0,
                };
                self.pending.clear();
                self.index = Some(index.clone());
                self.generation += 1;
                Ok((index, stats, true))
            }
            Some(old) => {
                let dirty = dirty_for_endpoints(&graph, self.pending.iter().copied());
                let (next, stats) = old.rebuild_incremental(
                    &graph,
                    &dirty,
                    &self.cfg.config,
                    &self.cfg.rewriter,
                    None,
                )?;
                self.pending.clear();
                self.index = Some(next.clone());
                self.generation += 1;
                Ok((next, stats, false))
            }
        }
    }

    /// [`Self::refresh`] plus publication: hot-swaps the new generation
    /// into `state` and updates the state's [`IngestMetrics`] (refresh
    /// wall-clock, batch freshness, row counters). The serving index is
    /// never left mid-swap — readers see the old generation until the
    /// single atomic publish.
    pub fn refresh_and_publish(&mut self, state: &ServeState) -> Result<RebuildStats, String> {
        let batch_started = self.batch_started.take();
        let t0 = Instant::now();
        let (index, stats, _full) = self.refresh()?;
        simrankpp_util::fail_point!("ingest-publish", |msg: String| msg);
        state.publish(index);
        let refresh_us = t0.elapsed().as_micros() as u64;
        if let Some(m) = state.ingest_metrics() {
            m.epoch.store(self.window.epoch(), Ordering::Relaxed);
            m.refreshes.fetch_add(1, Ordering::Relaxed);
            m.refreshed_rows
                .fetch_add(stats.refreshed_queries as u64, Ordering::Relaxed);
            m.copied_rows
                .fetch_add(stats.copied_queries as u64, Ordering::Relaxed);
            m.last_refresh_us.store(refresh_us, Ordering::Relaxed);
            if let Some(start) = batch_started {
                m.last_freshness_us
                    .store(start.elapsed().as_micros() as u64, Ordering::Relaxed);
            }
        }
        Ok(stats)
    }
}

impl std::fmt::Debug for EpochIngestor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochIngestor")
            .field("epoch", &self.window.epoch())
            .field("events_held", &self.window.events_held())
            .field("pending", &self.pending.len())
            .field("published", &self.index.is_some())
            .finish_non_exhaustive()
    }
}

/// One parsed click-log record together with its `[start, end)` byte span
/// in the log file — the unit of crash-recovery bookkeeping: a checkpoint
/// records span offsets so a restart can seek straight to the first record
/// of the oldest surviving window bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedRecord {
    /// Byte offset of the record's first byte.
    pub start: u64,
    /// Byte offset one past the record's terminating newline.
    pub end: u64,
    /// The parsed record.
    pub rec: ClickLogRecord,
}

/// Incremental reader of a growing click log. Each [`LogTailer::drain`]
/// call parses every *complete* line appended since the last call; a
/// partial trailing line (the writer mid-append) is left in the file for
/// the next drain, so records are never split, truncated, or re-applied.
///
/// The tailer tracks its own **absolute** byte offset (`offset` = the first
/// byte it has not consumed) and rewinds to it with `SeekFrom::Start`
/// whenever it reads an unterminated fragment. The offset only advances
/// over complete, newline-terminated lines, so a producer crash mid-append
/// can never shift the read position into the middle of a record.
#[derive(Debug)]
pub struct LogTailer {
    reader: BufReader<File>,
    path: PathBuf,
    line_no: usize,
    /// Absolute offset of the first unconsumed byte.
    offset: u64,
}

impl LogTailer {
    /// Opens `path` for tailing from the beginning.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<LogTailer> {
        Self::open_at(path, 0)
    }

    /// Opens `path` for tailing from absolute byte `offset` — the resume
    /// path, where a checkpoint supplies the replay offset. The offset must
    /// fall on a record boundary (checkpoints only ever store record
    /// boundaries); line numbers in parse errors count from the seek point.
    pub fn open_at<P: AsRef<Path>>(path: P, offset: u64) -> io::Result<LogTailer> {
        let mut file = File::open(path.as_ref())?;
        if offset > 0 {
            file.seek(SeekFrom::Start(offset))?;
        }
        Ok(LogTailer {
            reader: BufReader::new(file),
            path: path.as_ref().to_path_buf(),
            line_no: 0,
            offset,
        })
    }

    /// The log being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines consumed so far (complete lines only, since open).
    pub fn lines_read(&self) -> usize {
        self.line_no
    }

    /// Absolute byte offset of the first unconsumed byte: the end of the
    /// last complete line drained (partial fragments don't count).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads every complete record currently available. Returns an empty
    /// vector at (momentary) EOF; parse errors carry the 1-based line
    /// number. The unterminated tail, if any, is pushed back for the next
    /// call.
    pub fn drain(&mut self) -> io::Result<Vec<ClickLogRecord>> {
        Ok(self.drain_spanned()?.into_iter().map(|s| s.rec).collect())
    }

    /// [`Self::drain`], keeping each record's byte span for checkpointing.
    pub fn drain_spanned(&mut self) -> io::Result<Vec<SpannedRecord>> {
        let mut records = Vec::new();
        let mut buf = String::new();
        loop {
            buf.clear();
            let n = self.reader.read_line(&mut buf)?;
            if n == 0 {
                return Ok(records);
            }
            if !buf.ends_with('\n') {
                // The producer is mid-append: rewind to the last known
                // record boundary and let the next drain re-read the
                // completed line from its first byte.
                self.reader.seek(SeekFrom::Start(self.offset))?;
                return Ok(records);
            }
            let start = self.offset;
            self.offset += n as u64;
            self.line_no += 1;
            if let Some(rec) = parse_click_log_line(&buf, self.line_no)? {
                records.push(SpannedRecord {
                    start,
                    end: self.offset,
                    rec,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::delta::write_click_log;
    use std::io::Write;

    fn cfg() -> IngestConfig {
        IngestConfig {
            window: 3,
            decay: 1.0,
            method: MethodKind::WeightedSimrank,
            config: SimrankConfig::default()
                .with_weight_kind(simrankpp_graph::WeightKind::ExpectedClickRate),
            rewriter: RewriterConfig::default(),
            threads: 1,
        }
    }

    fn ev(epoch: u64, q: &str, a: &str) -> ClickLogRecord {
        ClickLogRecord::Event {
            epoch,
            query: q.into(),
            ad: a.into(),
            data: EdgeData::new(10, 4, 0.4),
        }
    }

    #[test]
    fn first_refresh_is_full_then_incremental() {
        let mut ing = EpochIngestor::new(cfg());
        ing.observe("q1", "a1", EdgeData::new(10, 4, 0.4));
        ing.observe("q2", "a1", EdgeData::new(10, 6, 0.6));
        let (index, stats, full) = ing.refresh().unwrap();
        assert!(full);
        assert_eq!(index.n_queries(), 2);
        assert_eq!(stats.refreshed_queries, 2);

        ing.advance_to(1);
        ing.observe("q3", "a2", EdgeData::new(10, 5, 0.5));
        let (index2, stats2, full2) = ing.refresh().unwrap();
        assert!(!full2);
        assert_eq!(index2.n_queries(), 3);
        // q1/q2's component is untouched: copied, not refreshed.
        assert_eq!(stats2.copied_queries, 2);
        assert_eq!(stats2.refreshed_queries, 1);
    }

    #[test]
    fn apply_record_signals_refresh_only_on_advancing_marks() {
        let mut ing = EpochIngestor::new(cfg());
        assert!(!ing.apply_record(&ev(0, "q", "a")));
        // An event stamped ahead advances implicitly but is not a refresh
        // signal; the later mark for that epoch is a no-op.
        assert!(!ing.apply_record(&ev(2, "q2", "a2")));
        assert_eq!(ing.epoch(), 2);
        assert!(!ing.apply_record(&ClickLogRecord::EpochMark { epoch: 2 }));
        assert!(ing.apply_record(&ClickLogRecord::EpochMark { epoch: 3 }));
        assert!(!ing.apply_record(&ClickLogRecord::EpochMark { epoch: 1 }));
        assert_eq!(ing.epoch(), 3);
    }

    #[test]
    fn retired_events_mark_their_components_dirty() {
        let mut ing = EpochIngestor::new(cfg());
        ing.observe("stale", "ad", EdgeData::new(10, 4, 0.4));
        let _ = ing.refresh().unwrap();
        // Window of 3: epoch 3 retires the epoch-0 bucket.
        ing.advance_to(3);
        assert!(ing.pending_endpoints() > 0, "retirement must queue dirt");
        let (index, stats, _) = ing.refresh().unwrap();
        assert_eq!(stats.refreshed_queries, 1, "the stale component refreshes");
        // The retired query survives as an isolated node with no rewrites.
        assert!(index.lookup("stale").unwrap().ids().is_empty());
    }

    #[test]
    fn tailer_drains_complete_lines_and_defers_fragments() {
        let dir = std::env::temp_dir().join(format!(
            "simrankpp_tailer_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("click.log");
        // allow(file-create): test producer simulating the external log appender
        let mut f = File::create(&path).unwrap();
        write_click_log(&[ev(0, "q1", "a1")], &mut f).unwrap();
        f.flush().unwrap();

        let mut tailer = LogTailer::open(&path).unwrap();
        assert_eq!(tailer.drain().unwrap().len(), 1);
        assert!(tailer.drain().unwrap().is_empty(), "EOF drains empty");

        // A partial line stays pending until its newline arrives.
        write!(f, "+\t1\tq2\ta2\t10").unwrap();
        f.flush().unwrap();
        assert!(tailer.drain().unwrap().is_empty());
        writeln!(f, "\t4\t0.4").unwrap();
        writeln!(f, "@\t2").unwrap();
        f.flush().unwrap();
        let records = tailer.drain().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], ev(1, "q2", "a2"));
        assert_eq!(records[1], ClickLogRecord::EpochMark { epoch: 2 });
        assert_eq!(tailer.lines_read(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_reread_intact_never_truncated_or_doubled() {
        // Regression for the crash-mid-append case: the producer dies (or
        // is mid-write) after flushing only part of a line. The tailer
        // must (a) not consume the fragment, (b) re-read the completed
        // line from its first byte once the rest arrives, and (c) never
        // deliver any record twice — verified via byte spans, which a
        // checkpoint would persist.
        let dir = std::env::temp_dir().join(format!(
            "simrankpp_torn_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("click.log");
        // allow(file-create): test producer simulating the external log appender
        let mut f = File::create(&path).unwrap();
        write_click_log(&[ev(0, "q1", "a1")], &mut f).unwrap();
        // Producer crashes mid-append: a torn fragment with no newline.
        write!(f, "+\t1\tq2\ta2\t10\t4").unwrap();
        f.flush().unwrap();

        let mut tailer = LogTailer::open(&path).unwrap();
        let first = tailer.drain_spanned().unwrap();
        assert_eq!(first.len(), 1, "only the complete line is delivered");
        let boundary = first[0].end;
        assert_eq!(
            tailer.offset(),
            boundary,
            "fragment must not advance the offset"
        );

        // Polling again while the tail is still torn: no records, no
        // offset movement (this is where a relative seek could drift).
        for _ in 0..3 {
            assert!(tailer.drain_spanned().unwrap().is_empty());
            assert_eq!(tailer.offset(), boundary);
        }

        // The producer restarts and completes the line.
        writeln!(f, "\t0.4").unwrap();
        f.flush().unwrap();
        let rest = tailer.drain_spanned().unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].rec, ev(1, "q2", "a2"), "fragment re-read intact");
        assert_eq!(rest[0].start, boundary, "no bytes skipped (no truncation)");

        // Spans tile the file exactly once: no gaps, no overlaps — which
        // is precisely "never truncates or double-applies".
        let mut all = first;
        all.extend(rest);
        let mut expect = 0;
        for s in &all {
            assert_eq!(s.start, expect, "span gap/overlap at byte {expect}");
            expect = s.end;
        }
        assert_eq!(expect, std::fs::metadata(&path).unwrap().len());

        // A tailer resumed at the checkpointed boundary sees exactly the
        // completed record, once.
        let mut resumed = LogTailer::open_at(&path, boundary).unwrap();
        let replay = resumed.drain_spanned().unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].rec, ev(1, "q2", "a2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_record_at_tracks_replay_starts() {
        let mut ing = EpochIngestor::new(cfg()); // window 3
                                                 // Records with synthetic spans 10 bytes apart.
        let recs = [
            (ev(0, "q0", "a0"), (0, 10)),
            (ClickLogRecord::EpochMark { epoch: 1 }, (10, 20)),
            (ev(1, "q1", "a1"), (20, 30)),
            (ClickLogRecord::EpochMark { epoch: 2 }, (30, 40)),
            // A stamped-ahead event advances implicitly: its own start is
            // the replay point for epoch 3 (the event belongs to bucket 3).
            (ev(3, "q3", "a3"), (40, 50)),
            (ClickLogRecord::EpochMark { epoch: 4 }, (50, 60)),
        ];
        for (rec, span) in &recs {
            ing.apply_record_at(rec, *span);
        }
        assert_eq!(ing.epoch(), 4);
        assert_eq!(ing.applied_offset(), 60);
        // Window 3 at epoch 4: oldest surviving bucket is 2, whose
        // advancing record (the mark) starts at byte 30.
        assert_eq!(ing.replay_start(), (2, 30));
        // Advance further: epoch 5's oldest is 3 — the stamped-ahead
        // event's own start offset.
        ing.apply_record_at(&ClickLogRecord::EpochMark { epoch: 5 }, (60, 70));
        assert_eq!(ing.replay_start(), (3, 40));
    }

    #[test]
    fn refresh_and_publish_swaps_the_serving_index_and_counts() {
        let metrics = std::sync::Arc::new(IngestMetrics::default());
        let mut ing = EpochIngestor::new(cfg());
        ing.observe("q1", "a1", EdgeData::new(10, 4, 0.4));
        ing.observe("q2", "a1", EdgeData::new(10, 6, 0.6));
        let (first, _, _) = ing.refresh().unwrap();
        let state = ServeState::ingesting(first, std::sync::Arc::clone(&metrics));

        ing.advance_to(1);
        ing.observe("q3", "a1", EdgeData::new(10, 5, 0.5));
        ing.refresh_and_publish(&state).unwrap();
        assert_eq!(metrics.refreshes.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.epoch.load(Ordering::Relaxed), 1);
        assert!(metrics.last_freshness_us.load(Ordering::Relaxed) > 0);
        // The published generation serves the new query.
        let index = state.handle().load();
        assert!(index.lookup("q3").is_some());
        // Ingest mode refuses the update verb.
        let err = state.apply_update("/nonexistent").unwrap_err();
        assert!(err.contains("epoch boundaries"), "{err}");
    }
}
