//! Streaming click-log ingestion: windowed epochs driving zero-downtime
//! index refreshes.
//!
//! The offline pipeline treats the click graph as a monthly batch artifact
//! (§3: "a specific time period"); production click traffic is a stream.
//! This module turns the incremental machinery (`GraphDelta` dirty
//! components → [`RewriteIndex::rebuild_incremental`] → `AtomicHandle`
//! hot-swap) into a *continuous* path:
//!
//! * an append-only **click log** (the delta TSV upsert shape with a
//!   leading epoch column, `simrankpp_graph::delta::ClickLogRecord`) is
//!   tailed as it grows ([`LogTailer`]);
//! * events accumulate into the current epoch bucket of a
//!   [`SlidingWindowGraph`]; `@ <epoch>` marker lines close epochs,
//!   retiring buckets older than the window and triggering a refresh;
//! * each refresh freezes the surviving window, marks dirty exactly the
//!   components holding an endpoint of an event **observed or retired**
//!   since the last refresh (sound because a frozen edge's data — decayed
//!   ECR included, see the window docs on per-edge age anchoring — depends
//!   only on its own surviving events), rebuilds those rows, and
//!   hot-swaps the new generation in while the TCP data plane keeps
//!   serving.
//!
//! The first refresh has no previous generation and runs a full build;
//! every later one is incremental, and is bit-identical to a from-scratch
//! build of the surviving window (`tests/stream_equivalence.rs` holds the
//! differential proof).
//!
//! [`IngestMetrics`] instruments the click-to-serve freshness story: how
//! long a refresh takes (`last_refresh_us`), and the end-to-end latency
//! from reading a batch's first event to the moment the swapped-in
//! generation reflects it (`last_freshness_us`). The protocol `info` verb
//! reports the counters; `bench_ci --tier stream` turns them into gated
//! `BENCH_stream.json` metrics.

use crate::index::{RebuildStats, RewriteIndex};
use crate::server::ServeState;
use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
use simrankpp_graph::delta::{dirty_for_endpoints, parse_click_log_line, ClickLogRecord};
use simrankpp_graph::{AdId, EdgeData, QueryId, SlidingWindowGraph};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Parameters of one streaming ingest pipeline. The similarity and
/// rewriter configs play the same role as [`crate::server::UpdateContext`]:
/// every refresh must recompute with the parameters the previous
/// generation was built with, or the incremental rebuild would mix
/// regimes (and [`RewriteIndex::rebuild_incremental`] would refuse).
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Window length in epochs; events older than this retire.
    pub window: usize,
    /// Per-epoch ECR decay factor in `(0, 1]` (see
    /// [`SlidingWindowGraph::with_decay`]); 1 = no decay.
    pub decay: f64,
    /// The similarity method every generation is built with.
    pub method: MethodKind,
    /// The engine configuration every generation is built with.
    pub config: SimrankConfig,
    /// The §9.3 pipeline parameters every generation is built with.
    pub rewriter: RewriterConfig,
    /// Worker threads for the initial full build (`0` = all cores).
    pub threads: usize,
}

/// Shared atomic counters describing a running ingest pipeline, reported
/// by the protocol `info` verb (tab-separated `ingest_*=value` fields,
/// like [`crate::net::ServerMetrics`]).
#[derive(Debug, Default)]
pub struct IngestMetrics {
    /// Click events ingested (epoch marks excluded).
    pub events: AtomicU64,
    /// The window's current epoch.
    pub epoch: AtomicU64,
    /// Refreshes published (the first one is the full build).
    pub refreshes: AtomicU64,
    /// Cumulative index rows recomputed across refreshes.
    pub refreshed_rows: AtomicU64,
    /// Cumulative index rows copied verbatim across refreshes.
    pub copied_rows: AtomicU64,
    /// Wall-clock of the last refresh (freeze → rebuild → swap), in µs.
    pub last_refresh_us: AtomicU64,
    /// Click-to-serve freshness of the last refreshed batch: first event
    /// read → new generation swapped in, in µs.
    pub last_freshness_us: AtomicU64,
}

impl std::fmt::Display for IngestMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ingest_epoch={}\tingest_events={}\tingest_refreshes={}\
             \tingest_refreshed_rows={}\tingest_copied_rows={}\
             \tingest_last_refresh_us={}\tingest_last_freshness_us={}",
            self.epoch.load(Ordering::Relaxed),
            self.events.load(Ordering::Relaxed),
            self.refreshes.load(Ordering::Relaxed),
            self.refreshed_rows.load(Ordering::Relaxed),
            self.copied_rows.load(Ordering::Relaxed),
            self.last_refresh_us.load(Ordering::Relaxed),
            self.last_freshness_us.load(Ordering::Relaxed)
        )
    }
}

/// The state machine between a click log and a served index: the sliding
/// window, the last published generation, and the endpoints whose
/// components the next refresh must recompute.
pub struct EpochIngestor {
    cfg: IngestConfig,
    window: SlidingWindowGraph,
    /// The last published index generation; `None` until the first
    /// refresh (which therefore runs a full build).
    index: Option<RewriteIndex>,
    /// `(query, ad)` endpoints of events observed or retired since the
    /// last refresh — the dirtiness frontier.
    pending: Vec<(QueryId, AdId)>,
    /// When the first event of the current unrefreshed batch was read.
    batch_started: Option<Instant>,
}

impl EpochIngestor {
    /// An empty pipeline at epoch 0.
    pub fn new(cfg: IngestConfig) -> EpochIngestor {
        let window = SlidingWindowGraph::new(cfg.window).with_decay(cfg.decay);
        EpochIngestor {
            cfg,
            window,
            index: None,
            pending: Vec::new(),
            batch_started: None,
        }
    }

    /// The window's current epoch.
    pub fn epoch(&self) -> u64 {
        self.window.epoch()
    }

    /// Endpoints awaiting the next refresh.
    pub fn pending_endpoints(&self) -> usize {
        self.pending.len()
    }

    /// Records one click event into the current epoch bucket.
    pub fn observe(&mut self, query: &str, ad: &str, data: EdgeData) {
        if self.batch_started.is_none() {
            self.batch_started = Some(Instant::now());
        }
        let (q, a) = self.window.observe(query, ad, data);
        self.pending.push((q, a));
    }

    /// Advances the window to `epoch` (a no-op when not ahead), folding
    /// the retired events' endpoints into the dirtiness frontier.
    pub fn advance_to(&mut self, epoch: u64) {
        let retired = self.window.advance_to(epoch);
        self.pending.extend(retired);
    }

    /// Applies one parsed click-log record. Returns `true` when the record
    /// was an epoch mark that advanced the window — the signal that a
    /// refresh is due. Events stamped ahead of the current epoch advance
    /// it implicitly (their epoch just started — no refresh signal);
    /// events stamped behind it are late arrivals and fold into the
    /// current bucket.
    pub fn apply_record(&mut self, rec: &ClickLogRecord) -> bool {
        match rec {
            ClickLogRecord::Event {
                epoch,
                query,
                ad,
                data,
            } => {
                if *epoch > self.window.epoch() {
                    self.advance_to(*epoch);
                }
                self.observe(query, ad, *data);
                false
            }
            ClickLogRecord::EpochMark { epoch } => {
                if *epoch > self.window.epoch() {
                    self.advance_to(*epoch);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Freezes the surviving window and produces the next index
    /// generation: a full parallel build the first time, an incremental
    /// rebuild of exactly the dirty components' rows afterwards. Returns
    /// the generation to publish, its rebuild stats (for a full build:
    /// every row refreshed, component counts zero), and whether it was
    /// the full build. On error the previous generation stays current and
    /// the dirtiness frontier is preserved for a retry.
    pub fn refresh(&mut self) -> Result<(RewriteIndex, RebuildStats, bool), String> {
        // The batch this refresh absorbs ends here — callers measuring
        // freshness ([`Self::refresh_and_publish`]) take the start first.
        self.batch_started = None;
        let graph = self.window.freeze();
        match self.index.as_ref() {
            None => {
                let method = Method::compute(self.cfg.method, &graph, &self.cfg.config);
                let rewriter = Rewriter::new(&graph, method, self.cfg.rewriter);
                let index = RewriteIndex::build(&rewriter, None, self.cfg.threads);
                let stats = RebuildStats {
                    refreshed_queries: index.n_queries(),
                    copied_queries: 0,
                    refreshed_entries: index.n_entries(),
                    copied_entries: 0,
                    n_dirty_components: 0,
                    n_clean_components: 0,
                };
                self.pending.clear();
                self.index = Some(index.clone());
                Ok((index, stats, true))
            }
            Some(old) => {
                let dirty = dirty_for_endpoints(&graph, self.pending.iter().copied());
                let (next, stats) = old.rebuild_incremental(
                    &graph,
                    &dirty,
                    &self.cfg.config,
                    &self.cfg.rewriter,
                    None,
                )?;
                self.pending.clear();
                self.index = Some(next.clone());
                Ok((next, stats, false))
            }
        }
    }

    /// [`Self::refresh`] plus publication: hot-swaps the new generation
    /// into `state` and updates the state's [`IngestMetrics`] (refresh
    /// wall-clock, batch freshness, row counters). The serving index is
    /// never left mid-swap — readers see the old generation until the
    /// single atomic publish.
    pub fn refresh_and_publish(&mut self, state: &ServeState) -> Result<RebuildStats, String> {
        let batch_started = self.batch_started.take();
        let t0 = Instant::now();
        let (index, stats, _full) = self.refresh()?;
        state.publish(index);
        let refresh_us = t0.elapsed().as_micros() as u64;
        if let Some(m) = state.ingest_metrics() {
            m.epoch.store(self.window.epoch(), Ordering::Relaxed);
            m.refreshes.fetch_add(1, Ordering::Relaxed);
            m.refreshed_rows
                .fetch_add(stats.refreshed_queries as u64, Ordering::Relaxed);
            m.copied_rows
                .fetch_add(stats.copied_queries as u64, Ordering::Relaxed);
            m.last_refresh_us.store(refresh_us, Ordering::Relaxed);
            if let Some(start) = batch_started {
                m.last_freshness_us
                    .store(start.elapsed().as_micros() as u64, Ordering::Relaxed);
            }
        }
        Ok(stats)
    }
}

impl std::fmt::Debug for EpochIngestor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochIngestor")
            .field("epoch", &self.window.epoch())
            .field("events_held", &self.window.events_held())
            .field("pending", &self.pending.len())
            .field("published", &self.index.is_some())
            .finish_non_exhaustive()
    }
}

/// Incremental reader of a growing click log. Each [`LogTailer::drain`]
/// call parses every *complete* line appended since the last call; a
/// partial trailing line (the writer mid-append) is left in the file for
/// the next drain, so records are never split.
#[derive(Debug)]
pub struct LogTailer {
    reader: BufReader<File>,
    path: PathBuf,
    line_no: usize,
}

impl LogTailer {
    /// Opens `path` for tailing from the beginning.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<LogTailer> {
        let file = File::open(path.as_ref())?;
        Ok(LogTailer {
            reader: BufReader::new(file),
            path: path.as_ref().to_path_buf(),
            line_no: 0,
        })
    }

    /// The log being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines consumed so far (complete lines only).
    pub fn lines_read(&self) -> usize {
        self.line_no
    }

    /// Reads every complete record currently available. Returns an empty
    /// vector at (momentary) EOF; parse errors carry the 1-based line
    /// number. The unterminated tail, if any, is pushed back for the next
    /// call.
    pub fn drain(&mut self) -> io::Result<Vec<ClickLogRecord>> {
        let mut records = Vec::new();
        let mut buf = String::new();
        loop {
            buf.clear();
            let n = self.reader.read_line(&mut buf)?;
            if n == 0 {
                return Ok(records);
            }
            if !buf.ends_with('\n') {
                // The writer is mid-append: rewind past the fragment and
                // let the next drain see the completed line.
                self.reader.seek(SeekFrom::Current(-(n as i64)))?;
                return Ok(records);
            }
            self.line_no += 1;
            if let Some(rec) = parse_click_log_line(&buf, self.line_no)? {
                records.push(rec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::delta::write_click_log;
    use std::io::Write;

    fn cfg() -> IngestConfig {
        IngestConfig {
            window: 3,
            decay: 1.0,
            method: MethodKind::WeightedSimrank,
            config: SimrankConfig::default()
                .with_weight_kind(simrankpp_graph::WeightKind::ExpectedClickRate),
            rewriter: RewriterConfig::default(),
            threads: 1,
        }
    }

    fn ev(epoch: u64, q: &str, a: &str) -> ClickLogRecord {
        ClickLogRecord::Event {
            epoch,
            query: q.into(),
            ad: a.into(),
            data: EdgeData::new(10, 4, 0.4),
        }
    }

    #[test]
    fn first_refresh_is_full_then_incremental() {
        let mut ing = EpochIngestor::new(cfg());
        ing.observe("q1", "a1", EdgeData::new(10, 4, 0.4));
        ing.observe("q2", "a1", EdgeData::new(10, 6, 0.6));
        let (index, stats, full) = ing.refresh().unwrap();
        assert!(full);
        assert_eq!(index.n_queries(), 2);
        assert_eq!(stats.refreshed_queries, 2);

        ing.advance_to(1);
        ing.observe("q3", "a2", EdgeData::new(10, 5, 0.5));
        let (index2, stats2, full2) = ing.refresh().unwrap();
        assert!(!full2);
        assert_eq!(index2.n_queries(), 3);
        // q1/q2's component is untouched: copied, not refreshed.
        assert_eq!(stats2.copied_queries, 2);
        assert_eq!(stats2.refreshed_queries, 1);
    }

    #[test]
    fn apply_record_signals_refresh_only_on_advancing_marks() {
        let mut ing = EpochIngestor::new(cfg());
        assert!(!ing.apply_record(&ev(0, "q", "a")));
        // An event stamped ahead advances implicitly but is not a refresh
        // signal; the later mark for that epoch is a no-op.
        assert!(!ing.apply_record(&ev(2, "q2", "a2")));
        assert_eq!(ing.epoch(), 2);
        assert!(!ing.apply_record(&ClickLogRecord::EpochMark { epoch: 2 }));
        assert!(ing.apply_record(&ClickLogRecord::EpochMark { epoch: 3 }));
        assert!(!ing.apply_record(&ClickLogRecord::EpochMark { epoch: 1 }));
        assert_eq!(ing.epoch(), 3);
    }

    #[test]
    fn retired_events_mark_their_components_dirty() {
        let mut ing = EpochIngestor::new(cfg());
        ing.observe("stale", "ad", EdgeData::new(10, 4, 0.4));
        let _ = ing.refresh().unwrap();
        // Window of 3: epoch 3 retires the epoch-0 bucket.
        ing.advance_to(3);
        assert!(ing.pending_endpoints() > 0, "retirement must queue dirt");
        let (index, stats, _) = ing.refresh().unwrap();
        assert_eq!(stats.refreshed_queries, 1, "the stale component refreshes");
        // The retired query survives as an isolated node with no rewrites.
        assert!(index.lookup("stale").unwrap().ids().is_empty());
    }

    #[test]
    fn tailer_drains_complete_lines_and_defers_fragments() {
        let dir = std::env::temp_dir().join(format!(
            "simrankpp_tailer_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("click.log");
        let mut f = File::create(&path).unwrap();
        write_click_log(&[ev(0, "q1", "a1")], &mut f).unwrap();
        f.flush().unwrap();

        let mut tailer = LogTailer::open(&path).unwrap();
        assert_eq!(tailer.drain().unwrap().len(), 1);
        assert!(tailer.drain().unwrap().is_empty(), "EOF drains empty");

        // A partial line stays pending until its newline arrives.
        write!(f, "+\t1\tq2\ta2\t10").unwrap();
        f.flush().unwrap();
        assert!(tailer.drain().unwrap().is_empty());
        writeln!(f, "\t4\t0.4").unwrap();
        writeln!(f, "@\t2").unwrap();
        f.flush().unwrap();
        let records = tailer.drain().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], ev(1, "q2", "a2"));
        assert_eq!(records[1], ClickLogRecord::EpochMark { epoch: 2 });
        assert_eq!(tailer.lines_read(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refresh_and_publish_swaps_the_serving_index_and_counts() {
        let metrics = std::sync::Arc::new(IngestMetrics::default());
        let mut ing = EpochIngestor::new(cfg());
        ing.observe("q1", "a1", EdgeData::new(10, 4, 0.4));
        ing.observe("q2", "a1", EdgeData::new(10, 6, 0.6));
        let (first, _, _) = ing.refresh().unwrap();
        let state = ServeState::ingesting(first, std::sync::Arc::clone(&metrics));

        ing.advance_to(1);
        ing.observe("q3", "a1", EdgeData::new(10, 5, 0.5));
        ing.refresh_and_publish(&state).unwrap();
        assert_eq!(metrics.refreshes.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.epoch.load(Ordering::Relaxed), 1);
        assert!(metrics.last_freshness_us.load(Ordering::Relaxed) > 0);
        // The published generation serves the new query.
        let index = state.handle().load();
        assert!(index.lookup("q3").is_some());
        // Ingest mode refuses the update verb.
        let err = state.apply_update("/nonexistent").unwrap_err();
        assert!(err.contains("epoch boundaries"), "{err}");
    }
}
