//! The TCP front-end over real sockets: N concurrent clients must get
//! byte-identical answers to the stdin protocol, a disconnecting or
//! panicking client must not disturb any other connection, the data plane
//! must refuse admin verbs, and an `update` must hot-swap generations with
//! zero downtime under load.

use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
use simrankpp_graph::fixtures::figure3_graph;
use simrankpp_graph::WeightKind;
use simrankpp_serve::{
    serve_session, IngestMetrics, NetConfig, NetServer, RewriteIndex, ServeState, ServerMetrics,
    ShutdownSignal, UpdateContext,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Deterministic figure-3 build: every call yields a byte-identical state,
/// so a fresh copy can stand in for "what stdin would have answered".
fn fig3_state() -> ServeState {
    let g = figure3_graph();
    let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
    let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
    let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
    let index = RewriteIndex::build(&rewriter, None, 1);
    ServeState::updatable(
        index,
        UpdateContext {
            graph: g,
            config: cfg,
            rewriter: RewriterConfig::default(),
        },
    )
}

/// Runs `input` through the stdin session loop on a fresh identical state.
fn stdin_answers(input: &str) -> String {
    let state = fig3_state();
    let mut out = Vec::new();
    serve_session(&state, input.as_bytes(), &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

struct TestServer {
    addr: SocketAddr,
    admin: SocketAddr,
    metrics: Arc<ServerMetrics>,
    signal: Arc<ShutdownSignal>,
    join: thread::JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    fn start(state: ServeState, mut config: NetConfig) -> TestServer {
        config.addr = "127.0.0.1:0".to_string();
        config.admin_addr = Some("127.0.0.1:0".to_string());
        let server = NetServer::bind(Arc::new(state), config).unwrap();
        let addr = server.local_addr().unwrap();
        let admin = server.admin_addr().unwrap().unwrap();
        let metrics = server.metrics();
        let signal = server.shutdown_signal();
        let join = thread::spawn(move || server.serve());
        TestServer {
            addr,
            admin,
            metrics,
            signal,
            join,
        }
    }

    fn stop(self) {
        self.signal.trigger();
        self.join.join().unwrap().unwrap();
    }
}

/// Sends `input`, half-closes, and reads the whole response stream.
fn roundtrip(addr: SocketAddr, input: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(input.as_bytes()).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut out = String::new();
    BufReader::new(stream).read_to_string(&mut out).unwrap();
    out
}

#[test]
fn eight_concurrent_clients_match_the_stdin_protocol_byte_for_byte() {
    let input = "rewrite camera\nrewrite pc\nrewrite flower\nrewrite zzz\nrewrite digital camera\n";
    let expected = stdin_answers(input);
    let ts = TestServer::start(fig3_state(), NetConfig::default());
    let answers: Vec<String> = thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| s.spawn(|| roundtrip(ts.addr, input)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for a in &answers {
        assert_eq!(a, &expected, "TCP answer diverged from the stdin protocol");
    }
    assert_eq!(ts.metrics.accepted.load(Ordering::Relaxed), 8);
    ts.stop();
}

#[test]
fn mid_line_disconnect_leaves_the_server_serving() {
    let ts = TestServer::start(fig3_state(), NetConfig::default());
    {
        // Half a request, no newline — then the peer vanishes.
        let mut stream = TcpStream::connect(ts.addr).unwrap();
        stream.write_all(b"rewrite cam").unwrap();
    }
    // The listener and the shared state must be unharmed.
    let out = roundtrip(ts.addr, "rewrite camera\n");
    assert!(out.starts_with("ok\tcamera\t"), "{out}");
    ts.stop();
}

#[test]
fn panicking_handler_does_not_drop_other_connections() {
    let config = NetConfig {
        debug_verbs: true,
        ..NetConfig::default()
    };
    let ts = TestServer::start(fig3_state(), config);

    // A long-lived client, mid-session before the panic…
    let victim = TcpStream::connect(ts.addr).unwrap();
    let mut victim_reader = BufReader::new(victim.try_clone().unwrap());
    let mut victim_writer = victim;
    victim_writer.write_all(b"rewrite camera\n").unwrap();
    let mut line = String::new();
    victim_reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok\tcamera\t"), "{line}");

    // …while another connection's handler thread dies panicking.
    let out = roundtrip(ts.addr, "debug-panic\n");
    assert!(out.starts_with("ok\tdebug-panic\t"), "{out}");

    // The victim's next request must still be answered: before the poison
    // recovery in AtomicHandle, the dead handler's lock would have turned
    // this load() into a panic cascade across every connection.
    victim_writer.write_all(b"rewrite pc\n").unwrap();
    line.clear();
    victim_reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok\tpc\t"), "{line}");
    // Close *both* halves (reader is a try_clone'd fd): the handler must
    // see EOF, or stop()'s drain would wait out the full read timeout.
    drop(victim_reader);
    drop(victim_writer);

    // The counter bumps during the dead thread's unwind, which races the
    // client's EOF — poll briefly instead of asserting the instant.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while ts.metrics.panicked.load(Ordering::Relaxed) != 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "panicked counter never reached 1"
        );
        thread::sleep(Duration::from_millis(5));
    }
    ts.stop();
}

#[test]
fn data_plane_refuses_admin_verbs_and_admin_plane_serves_them() {
    let ts = TestServer::start(fig3_state(), NetConfig::default());
    let out = roundtrip(ts.addr, "batch /etc/passwd\nupdate x.tsv\ninfo\nshutdown\n");
    let lines: Vec<&str> = out.lines().collect();
    assert!(lines[0].starts_with("err\tbatch not permitted\t"), "{out}");
    assert!(lines[1].starts_with("err\tupdate not permitted\t"), "{out}");
    assert!(lines[2].starts_with("err\tinfo not permitted\t"), "{out}");
    assert!(
        lines[3].starts_with("err\tshutdown not permitted\t"),
        "{out}"
    );

    // The admin plane keeps the full surface, and its `info` carries the
    // shared net counters — including the four errors counted above.
    let out = roundtrip(ts.admin, "info\n");
    assert!(out.starts_with("info\t"), "{out}");
    assert!(out.contains("net_accepted=2"), "{out}");
    assert!(out.contains("net_errors=4"), "{out}");
    ts.stop();
}

#[test]
fn update_hot_swaps_generations_under_concurrent_load() {
    // Expected before/after bytes from identical offline states.
    let delta_path = std::env::temp_dir().join("simrankpp_net_update_delta.tsv");
    std::fs::write(&delta_path, "+\tpc\thp.com\t100\t80\t0.8\n").unwrap();
    let before = stdin_answers("rewrite camera\n");
    let before = before.trim_end().to_string();
    let after_session = stdin_answers(&format!(
        "update {}\nrewrite camera\n",
        delta_path.display()
    ));
    let after = after_session.lines().nth(1).unwrap().to_string();
    assert_ne!(before, after, "delta must change camera's answer");

    let ts = TestServer::start(fig3_state(), NetConfig::default());
    let updated = Arc::new(AtomicBool::new(false));
    let transcripts: Vec<Vec<String>> = thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let updated = Arc::clone(&updated);
                let addr = ts.addr;
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut lines = Vec::new();
                    // Keep load on until the swap has landed, then take a
                    // few more answers that must be the new generation.
                    let mut post_update = 0;
                    while post_update < 3 {
                        writer.write_all(b"rewrite camera\n").unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        lines.push(line.trim_end().to_string());
                        if updated.load(Ordering::SeqCst) {
                            post_update += 1;
                        }
                    }
                    lines
                })
            })
            .collect();
        // Let every client get at least one pre-update answer in flight,
        // then hot-swap through the admin plane mid-load.
        thread::sleep(Duration::from_millis(20));
        let out = roundtrip(ts.admin, &format!("update {}\n", delta_path.display()));
        assert!(out.starts_with("updated\t"), "{out}");
        updated.store(true, Ordering::SeqCst);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    std::fs::remove_file(&delta_path).ok();

    for lines in &transcripts {
        for line in lines {
            assert!(
                line == &before || line == &after,
                "mid-swap answer is neither generation: {line:?}"
            );
        }
        // Zero downtime, and the swap is visible: once the update verb has
        // returned, every subsequent answer is the new generation.
        assert_eq!(lines.last().unwrap(), &after, "swap never became visible");
    }
    ts.stop();
}

#[test]
fn graceful_shutdown_drains_in_flight_sessions() {
    let ts = TestServer::start(fig3_state(), NetConfig::default());

    // An in-flight session, mid-conversation…
    let stream = TcpStream::connect(ts.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(b"rewrite camera\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok\tcamera\t"), "{line}");

    // …when the admin plane orders shutdown.
    let out = roundtrip(ts.admin, "shutdown\n");
    assert_eq!(out, "bye\tdraining\n");

    // The in-flight session is drained, not severed: its next request gets
    // the farewell and a clean close.
    writer.write_all(b"rewrite pc\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "bye\tdraining\n");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "clean EOF");
    drop(writer);

    // serve() returns only after every handler joined; the listener is gone.
    ts.join.join().unwrap().unwrap();
    assert!(
        TcpStream::connect(ts.addr).is_err(),
        "listener must be closed after drain"
    );
}

#[test]
fn full_pool_rejects_excess_connections_with_busy() {
    let config = NetConfig {
        max_connections: 1,
        ..NetConfig::default()
    };
    let ts = TestServer::start(fig3_state(), config);

    // Occupy the single slot (round-trip proves the handler is live).
    let stream = TcpStream::connect(ts.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(b"rewrite camera\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok\tcamera\t"), "{line}");

    // The refusal is written immediately on accept — read it without
    // sending anything (unread client bytes would turn the server's close
    // into an RST that could discard the busy line).
    let mut out = String::new();
    BufReader::new(TcpStream::connect(ts.addr).unwrap())
        .read_to_string(&mut out)
        .unwrap();
    assert_eq!(out, "err\tserver busy\tconnection limit reached\n");
    assert_eq!(ts.metrics.rejected.load(Ordering::Relaxed), 1);

    // The admin plane is exempt from the data-plane bound: `shutdown` must
    // stay reachable exactly when the data plane is saturated.
    let admin_out = roundtrip(ts.admin, "info\n");
    assert!(admin_out.starts_with("info\t"), "{admin_out}");

    // Close both halves so the handler sees EOF and drain is immediate.
    drop(reader);
    drop(writer);
    ts.stop();
}

#[test]
fn read_timeout_frees_a_stalled_connection() {
    let config = NetConfig {
        read_timeout: Some(Duration::from_millis(150)),
        ..NetConfig::default()
    };
    let ts = TestServer::start(fig3_state(), config);

    // Connect and go silent: the server must close the session itself.
    let stream = TcpStream::connect(ts.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut out = String::new();
    reader.read_to_string(&mut out).unwrap();
    assert_eq!(out, "err\tread timeout\tclosing stalled connection\n");
    assert_eq!(ts.metrics.timeouts.load(Ordering::Relaxed), 1);
    ts.stop();
}

#[test]
fn health_is_answered_on_every_plane_and_reports_ready() {
    let ts = TestServer::start(fig3_state(), NetConfig::default());
    // Unlike the rest of the admin surface, `health` must be reachable
    // wherever a supervisor can connect — including the data plane.
    let out = roundtrip(ts.addr, "health\n");
    assert_eq!(out, "health\tstate=ready\n");
    let out = roundtrip(ts.admin, "health\n");
    assert_eq!(out, "health\tstate=ready\n");
    ts.stop();
}

#[test]
fn health_reports_ingest_state_and_checkpoint_age() {
    let g = figure3_graph();
    let cfg = SimrankConfig::default().with_weight_kind(WeightKind::Clicks);
    let method = Method::compute(MethodKind::WeightedSimrank, &g, &cfg);
    let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
    let index = RewriteIndex::build(&rewriter, None, 1);
    let metrics = Arc::new(IngestMetrics::default());
    metrics.epoch.store(7, Ordering::Relaxed);
    metrics.refreshes.store(3, Ordering::Relaxed);
    let ts = TestServer::start(
        ServeState::ingesting(index, Arc::clone(&metrics)),
        NetConfig::default(),
    );

    // No checkpoint committed yet: the supervisor must be able to tell
    // "checkpointing disabled/never happened" from "checkpoint is stale".
    let out = roundtrip(ts.addr, "health\n");
    assert_eq!(
        out,
        "health\tstate=ingesting\tingest_epoch=7\tingest_refreshes=3\tlast_checkpoint_age_ms=none\n"
    );

    metrics.mark_checkpoint();
    let out = roundtrip(ts.addr, "health\n");
    let age = out
        .trim_end()
        .rsplit_once("last_checkpoint_age_ms=")
        .expect("age field present")
        .1
        .parse::<u64>()
        .expect("age is numeric after a commit");
    assert!(
        age < 60_000,
        "checkpoint age {age} ms is absurd for a fresh mark"
    );
    ts.stop();
}

#[test]
fn health_is_answered_while_draining() {
    let ts = TestServer::start(fig3_state(), NetConfig::default());

    // An in-flight session…
    let stream = TcpStream::connect(ts.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(b"rewrite camera\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok\tcamera\t"), "{line}");

    // …outlives the shutdown order, and its health probe still gets the
    // structured draining state (then a clean close), not a bare farewell
    // indistinguishable from the shutdown verb's own reply.
    let out = roundtrip(ts.admin, "shutdown\n");
    assert_eq!(out, "bye\tdraining\n");
    writer.write_all(b"health\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "health\tstate=draining\n");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "clean EOF");
    drop(writer);
    ts.join.join().unwrap().unwrap();
}
