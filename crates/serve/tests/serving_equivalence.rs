//! Integration properties for the serving layer: a snapshotted index must be
//! indistinguishable from the live pipeline — build → save → load → identical
//! rewrites for every query, for both snapshot formats, on randomized graphs.

// The vendored proptest! macro expands recursively per doc-commented test.
#![recursion_limit = "256"]

use proptest::prelude::*;
use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
use simrankpp_graph::{ClickGraph, ClickGraphBuilder, EdgeData, QueryId, WeightKind};
use simrankpp_serve::RewriteIndex;
use simrankpp_util::FxHashSet;

/// A random small *named* click graph; names include stem-duplicates
/// ("shoe N"/"shoes N") so the dedup stage is exercised, plus a tail of
/// unnamed queries added by raw id so partial name coverage is exercised too.
fn arb_named_graph() -> impl Strategy<Value = ClickGraph> {
    (
        proptest::collection::vec(((0u32..24), (0u32..12), (1u64..40)), 1..80),
        0u32..3,
    )
        .prop_map(|(edges, unnamed)| {
            // Every "shoe N"/"shoes N" pair is a stem-duplicate, so the
            // dedup stage of the pipeline actually fires on these graphs.
            let query_name = |q: u32| match q % 4 {
                0 => format!("shoe {}", q / 4),
                1 => format!("shoes {}", q / 4),
                _ => format!("query {q}"),
            };
            let mut b = ClickGraphBuilder::new();
            for (q, a, w) in &edges {
                b.add_named(
                    &query_name(*q),
                    &format!("ad{a}"),
                    EdgeData::from_clicks(*w),
                );
            }
            // Unnamed tail queries (raw ids past the interner) reusing the
            // ad/weight of an existing edge.
            for u in 0..unnamed {
                let (_, a, w) = edges[u as usize % edges.len()];
                b.add_edge(
                    QueryId(60 + u),
                    simrankpp_graph::AdId(a),
                    EdgeData::from_clicks(w),
                );
            }
            b.build()
        })
}

fn rewriter_for(g: &ClickGraph, kind: MethodKind) -> Rewriter<'_> {
    let cfg = SimrankConfig::default()
        .with_iterations(5)
        .with_weight_kind(WeightKind::Clicks);
    Rewriter::new(g, Method::compute(kind, g, &cfg), RewriterConfig::default())
}

fn assert_index_matches_live(
    index: &RewriteIndex,
    rewriter: &Rewriter<'_>,
    bid_terms: Option<&FxHashSet<QueryId>>,
) {
    assert_eq!(index.n_queries(), rewriter.graph().n_queries());
    for q in rewriter.graph().queries() {
        let live = rewriter.rewrites(q, bid_terms);
        let served = index.rewrites_of(q);
        assert_eq!(served.len(), live.len(), "depth mismatch for {q:?}");
        for (got, want) in served.iter().zip(&live) {
            assert_eq!(got.0, want.query, "target mismatch for {q:?}");
            assert_eq!(got.1.to_bits(), want.score.to_bits(), "score for {q:?}");
            assert_eq!(got.2, want.name.as_deref(), "name for {q:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Served lookups equal fresh `Rewriter::rewrites` calls for every query
    // and every evaluated method.
    #[test]
    fn index_equals_live_pipeline(g in arb_named_graph()) {
        for kind in [MethodKind::Simrank, MethodKind::WeightedSimrank] {
            let rewriter = rewriter_for(&g, kind);
            let index = RewriteIndex::build(&rewriter, None, 2);
            index.validate().unwrap();
            assert_index_matches_live(&index, &rewriter, None);
        }
    }

    // build → save → load → identical rewrites (binary format).
    #[test]
    fn binary_snapshot_roundtrips(g in arb_named_graph()) {
        let rewriter = rewriter_for(&g, MethodKind::WeightedSimrank);
        let index = RewriteIndex::build(&rewriter, None, 1);
        let mut buf = Vec::new();
        index.write_snapshot(&mut buf).unwrap();
        let loaded = RewriteIndex::read_snapshot(buf.as_slice()).unwrap();
        loaded.validate().unwrap();
        assert_index_matches_live(&loaded, &rewriter, None);
    }

    // build → to_json → from_json → identical rewrites (JSON format).
    #[test]
    fn json_snapshot_roundtrips(g in arb_named_graph()) {
        let rewriter = rewriter_for(&g, MethodKind::Simrank);
        let index = RewriteIndex::build(&rewriter, None, 1);
        let loaded = RewriteIndex::from_json(&index.to_json()).unwrap();
        loaded.validate().unwrap();
        assert_index_matches_live(&loaded, &rewriter, None);
    }

    // The bid filter survives the precompute + snapshot round-trip.
    #[test]
    fn bid_filtered_index_roundtrips(g in arb_named_graph(), picks in proptest::collection::vec(0u32..24, 1..8)) {
        let mut bids = FxHashSet::default();
        for p in picks {
            if (p as usize) < g.n_queries() {
                bids.insert(QueryId(p));
            }
        }
        let rewriter = rewriter_for(&g, MethodKind::WeightedSimrank);
        let index = RewriteIndex::build(&rewriter, Some(&bids), 2);
        let mut buf = Vec::new();
        index.write_snapshot(&mut buf).unwrap();
        let loaded = RewriteIndex::read_snapshot(buf.as_slice()).unwrap();
        assert!(loaded.meta().bid_filtered);
        assert_index_matches_live(&loaded, &rewriter, Some(&bids));
    }
}
