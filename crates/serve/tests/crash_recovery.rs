//! Kill-anywhere chaos suite: crash the real `serve ingest` process at
//! every registered failpoint site (plus a raw SIGKILL), restart it with
//! `--resume`, and differentially assert the recovered server's answers
//! are byte-identical — ids and score text alike — to an uninterrupted
//! oracle run over the same click log.
//!
//! Requires the `failpoints` feature (declared via `required-features` in
//! Cargo.toml), so plain tier-1 `cargo test` skips this file; CI runs it
//! as the `crash-smoke` job under `--release`.
//!
//! The harness is deliberately crash-agnostic: a site that never fires on
//! the ingest path (e.g. `snapshot-save`, which belongs to `serve update`)
//! degrades to a SIGKILL mid-run — still a valid crash, still required to
//! recover bit-identically. That keeps the suite correct-by-construction
//! when new sites are added: discovery greps the source tree, so an
//! unregistered site cannot silently escape the kill-anywhere invariant.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_serve");

/// Epochs 0–2: enough history that `--window 3` retires epoch 0 once the
/// appended tail closes epoch 4, exercising the retired-name universe.
const BACKLOG: &str = "+\t0\tretired-query\tad-old\t50\t5\t0.10\n\
@\t1\n\
+\t1\tcamera\tad-cam\t100\t10\t0.12\n\
+\t1\tdigital camera\tad-cam\t80\t8\t0.15\n\
@\t2\n\
+\t2\tflights\tad-fly\t50\t5\t0.20\n\
+\t2\tcheap flights\tad-fly\t60\t6\t0.18\n\
@\t3\n";

/// Appended while the victim is live: closes epoch 4, so the surviving
/// window is epochs 2–4 with non-trivial rewrites on both components.
const TAIL: &str = "+\t3\tcamera\tad-cam2\t60\t6\t0.30\n\
+\t3\tdigital camera\tad-cam2\t40\t4\t0.25\n\
+\t3\thotels\tad-hot\t20\t2\t0.10\n\
@\t4\n";

/// Every name the final log ever saw, plus one it never did: the oracle
/// and the recovered server must agree byte-for-byte on all of them —
/// including `ok\t…\t0` for retired queries (universe preservation) and
/// the error shape for the unknown one.
const QUERIES: &[&str] = &[
    "retired-query",
    "camera",
    "digital camera",
    "flights",
    "cheap flights",
    "hotels",
    "no-such-query",
];

struct ServeProc {
    child: Child,
    stderr: Arc<Mutex<Vec<String>>>,
}

impl ServeProc {
    fn spawn(dir: &Path, args: &[&str], failpoints: Option<&str>) -> ServeProc {
        let mut cmd = Command::new(BIN);
        cmd.args(args)
            .current_dir(dir)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .env_remove("SIMRANKPP_FAILPOINTS");
        if let Some(spec) = failpoints {
            cmd.env("SIMRANKPP_FAILPOINTS", spec);
        }
        let mut child = cmd.spawn().expect("spawn serve");
        let stderr = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&stderr);
        let pipe = child.stderr.take().expect("stderr piped");
        std::thread::spawn(move || {
            for line in BufReader::new(pipe).lines().map_while(Result::ok) {
                sink.lock().unwrap().push(line);
            }
        });
        ServeProc { child, stderr }
    }

    fn stderr_text(&self) -> String {
        self.stderr.lock().unwrap().join("\n")
    }

    /// First stderr line containing `pat`, polled until `timeout`; None if
    /// the process exits first without ever printing it.
    fn wait_for_line(&mut self, pat: &str, timeout: Duration) -> Option<String> {
        let t0 = Instant::now();
        loop {
            if let Some(l) = self.stderr.lock().unwrap().iter().find(|l| l.contains(pat)) {
                return Some(l.clone());
            }
            if self.child.try_wait().expect("try_wait").is_some() {
                // One last scan: the reader thread may still be draining.
                std::thread::sleep(Duration::from_millis(50));
                return self
                    .stderr
                    .lock()
                    .unwrap()
                    .iter()
                    .find(|l| l.contains(pat))
                    .cloned();
            }
            if t0.elapsed() > timeout {
                return None;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn wait_for_exit(&mut self, timeout: Duration) -> bool {
        let t0 = Instant::now();
        while t0.elapsed() < timeout {
            if self.child.try_wait().expect("try_wait").is_some() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn addr_of(line: &str) -> String {
    line.split_whitespace()
        .find(|w| w.contains(':') && w.rsplit(':').next().unwrap().parse::<u16>().is_ok())
        .unwrap_or_else(|| panic!("no addr in {line:?}"))
        .to_owned()
}

/// One connection, all queries, full transcript (including the final
/// `bye`) — the unit of the differential comparison.
fn query_transcript(addr: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect data plane");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut req = String::new();
    for q in QUERIES {
        req.push_str(&format!("rewrite {q}\n"));
    }
    req.push_str("quit\n");
    conn.write_all(req.as_bytes()).expect("send queries");
    let mut out = String::new();
    conn.read_to_string(&mut out).expect("read transcript");
    out
}

fn shutdown_via(admin: &str) {
    if let Ok(mut conn) = TcpStream::connect(admin) {
        let _ = conn.write_all(b"shutdown\n");
        let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
        let mut buf = String::new();
        let _ = conn.read_to_string(&mut buf);
    }
}

fn ingest_args(ck: Option<&str>, resume: bool) -> Vec<&str> {
    let mut v = vec![
        "ingest",
        "click.log",
        "--window",
        "3",
        "--poll-ms",
        "10",
        "--addr",
        "127.0.0.1:0",
        "--admin",
        "127.0.0.1:0",
    ];
    if let Some(ck) = ck {
        v.push("--checkpoint");
        v.push(ck);
    }
    if resume {
        v.push("--resume");
    }
    v
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simrankpp_crash_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn append_tail(dir: &Path) {
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("click.log"))
        .unwrap();
    f.write_all(TAIL.as_bytes()).unwrap();
    f.flush().unwrap();
}

/// Serve the final log uninterrupted and capture the answer transcript —
/// the ground truth every crashed-and-recovered run must reproduce.
fn oracle_transcript() -> String {
    let dir = fresh_dir("oracle");
    std::fs::write(dir.join("click.log"), format!("{BACKLOG}{TAIL}")).unwrap();
    let mut p = ServeProc::spawn(&dir, &ingest_args(None, false), None);
    let data = addr_of(
        &p.wait_for_line("data plane listening", Duration::from_secs(20))
            .expect("oracle serves"),
    );
    let admin = addr_of(
        &p.wait_for_line("admin plane listening", Duration::from_secs(5))
            .unwrap(),
    );
    let transcript = query_transcript(&data);
    shutdown_via(&admin);
    p.wait_for_exit(Duration::from_secs(10));
    transcript
}

/// Crash one `serve ingest` run (abort failpoint if the site fires on the
/// ingest path, SIGKILL otherwise), restart with `--resume`, and return
/// the recovered transcript plus whether the restart took the warm path.
fn crash_and_recover(site: &str, spec: Option<&str>) -> (String, bool) {
    let dir = fresh_dir(&site.replace('-', "_"));
    std::fs::write(dir.join("click.log"), BACKLOG).unwrap();

    let mut victim = ServeProc::spawn(&dir, &ingest_args(Some("ck.bin"), false), spec);
    // The victim may die during catch-up (checkpoint-path sites) before it
    // ever listens; both outcomes are valid crash points.
    let listening = victim.wait_for_line("data plane listening", Duration::from_secs(20));
    append_tail(&dir);
    if let Some(ref line) = listening {
        // Poke the data plane once so connection-scoped sites (net-handler)
        // get their chance to fire; ignore errors — the victim may be dead.
        if let Ok(mut conn) = TcpStream::connect(addr_of(line)) {
            let _ = conn.write_all(b"rewrite camera\nquit\n");
            let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
            let mut buf = String::new();
            let _ = conn.read_to_string(&mut buf);
        }
    }
    if !victim.wait_for_exit(Duration::from_secs(3)) {
        // Site never fired mid-ingest: fall back to the ultimate failpoint.
        victim.kill();
    }

    let had_checkpoint = dir.join("ck.bin").exists();
    let mut rec = ServeProc::spawn(&dir, &ingest_args(Some("ck.bin"), true), None);
    let data = addr_of(
        &rec.wait_for_line("data plane listening", Duration::from_secs(20))
            .unwrap_or_else(|| {
                panic!(
                    "[{site}] recovery never served; stderr:\n{}",
                    rec.stderr_text()
                )
            }),
    );
    let admin = addr_of(
        &rec.wait_for_line("admin plane listening", Duration::from_secs(5))
            .unwrap(),
    );
    let transcript = query_transcript(&data);
    let resumed = rec.stderr_text().contains("resumed from checkpoint");
    if had_checkpoint {
        assert!(
            resumed,
            "[{site}] a committed checkpoint existed but recovery cold-started; stderr:\n{}",
            rec.stderr_text()
        );
    }
    shutdown_via(&admin);
    rec.wait_for_exit(Duration::from_secs(10));
    (transcript, resumed)
}

/// Greps the workspace source for registered failpoint sites so a newly
/// added site is automatically pulled into the kill-anywhere sweep.
fn discover_sites() -> Vec<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("read_dir").flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs")
                && p.components().any(|c| c.as_os_str() == "src")
            {
                files.push(p);
            }
        }
    }
    let mut sites = BTreeSet::new();
    for f in files {
        let text = std::fs::read_to_string(&f).unwrap_or_default();
        for marker in ["fail_point!(\"", "eval(\""] {
            let mut rest = text.as_str();
            while let Some(i) = rest.find(marker) {
                rest = &rest[i + marker.len()..];
                if let Some(end) = rest.find('"') {
                    let site = &rest[..end];
                    if !site.is_empty() && !site.starts_with("fp-test-") {
                        sites.insert(site.to_owned());
                    }
                }
            }
        }
    }
    let sites: Vec<String> = sites.into_iter().collect();
    assert!(
        sites.len() >= 10,
        "site discovery broke (found only {sites:?})"
    );
    sites
}

/// The tentpole invariant: abort at EVERY registered site, resume, and the
/// served answers are identical to the uninterrupted oracle. One test (not
/// one per site) so the oracle is computed once.
#[test]
fn kill_anywhere_recovery_is_bit_identical() {
    let oracle = oracle_transcript();
    assert!(
        oracle.contains("ok\tcamera") && oracle.contains("digital camera"),
        "oracle transcript looks wrong:\n{oracle}"
    );
    let mut any_resumed = false;
    for site in discover_sites() {
        let (transcript, resumed) = crash_and_recover(&site, Some(&format!("{site}=abort")));
        any_resumed |= resumed;
        assert_eq!(
            transcript, oracle,
            "[{site}] recovered answers diverge from the uninterrupted oracle"
        );
    }
    assert!(
        any_resumed,
        "no site run ever took the warm --resume path; the checkpoint machinery is dead code"
    );
}

/// A raw SIGKILL (no failpoint cooperation at all) mid-ingest must recover
/// just the same.
#[test]
fn sigkill_mid_ingest_recovers_bit_identical() {
    let oracle = oracle_transcript();
    let (transcript, _) = crash_and_recover("sigkill", None);
    assert_eq!(
        transcript, oracle,
        "SIGKILL recovery diverges from the uninterrupted oracle"
    );
}

/// A corrupt checkpoint is refused with a structured error and moved to
/// `.corrupt` quarantine — never a panic, never a silent zero-offset
/// restart that would lie about resuming.
#[test]
fn corrupt_checkpoint_is_refused_and_quarantined() {
    let dir = fresh_dir("corrupt_ck");
    std::fs::write(dir.join("click.log"), format!("{BACKLOG}{TAIL}")).unwrap();
    std::fs::write(
        dir.join("ck.bin"),
        b"SRPPCKPT but then garbage garbage garbage",
    )
    .unwrap();

    let mut p = ServeProc::spawn(&dir, &ingest_args(Some("ck.bin"), true), None);
    assert!(
        p.wait_for_exit(Duration::from_secs(20)),
        "a corrupt checkpoint must fail fast, not serve"
    );
    let status = p.child.wait().expect("wait");
    assert!(!status.success(), "corrupt checkpoint must exit non-zero");
    let err = p.stderr_text();
    assert!(
        err.contains("refused") && err.contains("quarantined"),
        "structured refusal missing from stderr:\n{err}"
    );
    assert!(
        dir.join("ck.bin.corrupt").exists(),
        "corrupt checkpoint was not quarantined"
    );
    assert!(
        !dir.join("ck.bin").exists(),
        "corrupt checkpoint left in place would crash-loop a supervisor"
    );
}
