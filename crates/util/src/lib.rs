//! Small shared utilities for the Simrank++ reproduction.
//!
//! This crate deliberately has no dependencies. It provides:
//!
//! * [`fx`] — an FxHash-style fast hasher and `HashMap`/`HashSet` aliases.
//!   The allowed offline dependency list does not include `rustc-hash`, and
//!   the algorithm is tiny, so we implement it here (see `DESIGN.md` §4).
//! * [`topk`] — a bounded min-heap for top-*k* selection by score.
//! * [`stats`] — online mean/variance (Welford) and small numeric helpers.
//! * [`pairs`] — canonical symmetric pair keys for score matrices.
//! * [`durable`] — atomic temp+fsync+rename+dir-fsync file writes and
//!   corrupt-artifact quarantine; every artifact writer goes through it.
//! * [`failpoint`] — hand-rolled fault injection for the crash-recovery
//!   suite; sites compile out unless a crate's `failpoints` feature is on.

pub mod arena;
pub mod durable;
pub mod failpoint;
pub mod fx;
pub mod pairs;
pub mod stats;
pub mod topk;

pub use arena::{
    bytes_of, cast_slice, fnv1a, fnv1a_seeded, AlignedBytes, Arena, ArenaWriter, Pod, ENDIAN_MARK,
    HEADER_BYTES, TABLE_ENTRY_BYTES,
};
pub use durable::{atomic_write, atomic_write_bytes, quarantine, temp_path, AtomicFile};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use pairs::PairKey;
pub use stats::{population_variance, OnlineStats};
pub use topk::TopK;
