//! Canonical symmetric pair keys.
//!
//! SimRank scores are symmetric: `s(a,b) = s(b,a)`. Storing one entry per
//! unordered pair halves memory. A [`PairKey`] packs the two `u32` ids into a
//! single `u64` with the smaller id in the high half, so it is `Copy`, hashes
//! as one word, and sorts in (min, max) lexicographic order.

/// An unordered pair of `u32` ids packed into a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairKey(u64);

impl PairKey {
    /// Builds the canonical key for `(a, b)`; order of arguments is irrelevant.
    #[inline]
    pub fn new(a: u32, b: u32) -> Self {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        PairKey(((lo as u64) << 32) | hi as u64)
    }

    /// The smaller id of the pair.
    #[inline]
    pub fn first(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The larger id of the pair.
    #[inline]
    pub fn second(self) -> u32 {
        self.0 as u32
    }

    /// Unpacks into `(min, max)`.
    #[inline]
    pub fn parts(self) -> (u32, u32) {
        (self.first(), self.second())
    }

    /// `true` when both ids are the same node.
    #[inline]
    pub fn is_diagonal(self) -> bool {
        self.first() == self.second()
    }

    /// Raw packed representation (stable across runs; useful for sorting).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a key from its [`PairKey::raw`] representation (the arena
    /// wire format stores keys as plain `u64`s).
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        PairKey(raw)
    }
}

impl From<(u32, u32)> for PairKey {
    fn from((a, b): (u32, u32)) -> Self {
        PairKey::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_construction() {
        assert_eq!(PairKey::new(3, 9), PairKey::new(9, 3));
    }

    #[test]
    fn parts_are_sorted() {
        let k = PairKey::new(9, 3);
        assert_eq!(k.parts(), (3, 9));
        assert_eq!(k.first(), 3);
        assert_eq!(k.second(), 9);
    }

    #[test]
    fn diagonal_detection() {
        assert!(PairKey::new(5, 5).is_diagonal());
        assert!(!PairKey::new(5, 6).is_diagonal());
    }

    #[test]
    fn ordering_is_min_major() {
        let a = PairKey::new(1, 100);
        let b = PairKey::new(2, 3);
        assert!(a < b, "pairs sort by smaller id first");
    }

    #[test]
    fn extremes_roundtrip() {
        let k = PairKey::new(u32::MAX, 0);
        assert_eq!(k.parts(), (0, u32::MAX));
    }
}
