//! An FxHash-style hasher.
//!
//! This is the same multiply-and-rotate construction used by `rustc-hash`:
//! low quality by cryptographic standards but extremely fast for the small
//! integer keys (node ids, pair keys) that dominate this workload. HashDoS
//! is not a concern — all keys are internally generated dense ids.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Golden-ratio derived odd multiplier (same constant as Firefox / rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_input() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&11), Some(&"eleven"));
        assert_eq!(m.get(&13), None);
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn write_bytes_chunks() {
        // Byte-stream writes of the same content hash identically.
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world, this is more than eight bytes");
        b.write(b"hello world, this is more than eight bytes");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn low_collision_on_dense_ids() {
        // Dense u32 ids should spread across the 64-bit space.
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..10_000 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}
