//! Zero-copy arena container format.
//!
//! One wire format shared by every serialized artifact in the workspace
//! (snapshot v4 in `serve`, the segmented graph store in `graph`, the
//! score/transition arenas in `core`): a fixed header, a front section
//! table, then 8-byte-aligned sections of raw native-endian bytes. The
//! format is designed so that a *mapped* file can be consumed in place —
//! loading checks only the header and table (O(#sections)), and typed
//! views are produced by alignment-checked slice casts, never by copying.
//!
//! ```text
//! offset 0   header   (32 bytes)
//!            magic        [u8; 8]   caller-chosen
//!            version      u32
//!            n_sections   u32
//!            endian mark  u64       0x0102030405060708 (refuses foreign
//!                                   byte order; we never byte-swap)
//!            table fnv    u64       FNV-1a of the raw section table
//! offset 32  table    (32 bytes per section)
//!            tag          u64       caller-chosen section id
//!            offset       u64       absolute file offset, 8-aligned
//!            len          u64       payload bytes (not padded)
//!            fnv          u64       FNV-1a of the payload
//! ...        sections, each zero-padded to the next 8-byte boundary
//! ```
//!
//! Sections are written front-to-back through any `Write` sink: all
//! lengths are known up front, so the table can precede the payloads
//! without seeking. Integrity is two-tier: [`Arena::parse`] verifies the
//! header, endianness, table checksum, bounds, and alignment only —
//! startup stays O(table) no matter how large the file — while
//! [`Arena::verify_deep`] re-hashes every payload on demand.

use std::borrow::Cow;
use std::io::{self, Write};

/// Marker written after the version so a file produced on a foreign-endian
/// machine is refused instead of misread. We always read and write native
/// byte order; files are portable between same-endian machines, which is
/// every deployment target we have.
pub const ENDIAN_MARK: u64 = 0x0102_0304_0506_0708;

/// Size of the fixed arena header in bytes.
pub const HEADER_BYTES: usize = 32;

/// Size of one section-table entry in bytes.
pub const TABLE_ENTRY_BYTES: usize = 32;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the workspace's checksum for on-disk
/// artifacts (small, dependency-free, good avalanche for corruption
/// detection; not cryptographic).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_seeded(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a hash from a previous state, for hashing a logical
/// byte stream presented as multiple slices. Seed the first call with the
/// result of [`fnv1a`] on the first chunk, or start from `fnv1a(&[])`.
#[inline]
pub fn fnv1a_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Types that are plain-old-data: any bit pattern is a valid value, no
/// padding, no pointers. Only these may cross the byte-slice boundary.
///
/// # Safety
/// Implementors must be `repr`-compatible with a flat array of bytes:
/// fixed size, no padding bytes, no invalid bit patterns, no interior
/// mutability, no drop glue.
pub unsafe trait Pod: Copy + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for f64 {}

/// Reinterprets a typed slice as raw bytes (always valid for [`Pod`]).
#[inline]
pub fn bytes_of<T: Pod>(slice: &[T]) -> &[u8] {
    // SAFETY: T is Pod (no padding, any bit pattern valid as bytes), and
    // the length is the exact byte extent of the slice.
    unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const u8, std::mem::size_of_val(slice)) }
}

/// Reinterprets raw bytes as a typed slice, refusing misaligned or
/// odd-length input instead of copying or panicking.
pub fn cast_slice<T: Pod>(bytes: &[u8]) -> Result<&[T], String> {
    let size = std::mem::size_of::<T>();
    if size == 0 || bytes.len() % size != 0 {
        return Err(format!(
            "byte length {} is not a multiple of element size {}",
            bytes.len(),
            size
        ));
    }
    // SAFETY: align_to's prefix/suffix are empty only when the pointer is
    // properly aligned and the length divides evenly; T is Pod so any bit
    // pattern is valid.
    let (prefix, mid, suffix) = unsafe { bytes.align_to::<T>() };
    if !prefix.is_empty() || !suffix.is_empty() {
        return Err(format!(
            "byte slice is not aligned to {} bytes",
            std::mem::align_of::<T>()
        ));
    }
    Ok(mid)
}

/// An owned byte buffer whose storage is guaranteed 8-byte aligned, so
/// [`cast_slice`] works on it exactly as it does on mapped pages. This is
/// the heap fallback for platforms (or code paths) without `mmap`.
#[derive(Debug, Clone, Default)]
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into fresh 8-aligned storage.
    pub fn copy_from(bytes: &[u8]) -> Self {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: u64 storage is valid as bytes; destination has at least
        // `bytes.len()` bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                words.as_mut_ptr() as *mut u8,
                bytes.len(),
            )
        };
        AlignedBytes {
            words,
            len: bytes.len(),
        }
    }

    /// An 8-aligned zeroed buffer of `len` bytes (for read-into paths).
    pub fn zeroed(len: usize) -> Self {
        AlignedBytes {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// The buffer as a byte slice (8-aligned base pointer).
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: words owns at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    /// The buffer as a mutable byte slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: words owns at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A section staged for writing: a tag plus its payload bytes.
struct Staged<'a> {
    tag: u64,
    bytes: Cow<'a, [u8]>,
}

/// Builds an arena file section-at-a-time and streams it through any
/// [`Write`] sink — whole sections go out as single `write_all` calls
/// (this is what replaced the element-at-a-time loops of snapshot v3).
pub struct ArenaWriter<'a> {
    magic: [u8; 8],
    version: u32,
    sections: Vec<Staged<'a>>,
}

impl<'a> ArenaWriter<'a> {
    /// Starts an arena with the caller's magic and version.
    pub fn new(magic: [u8; 8], version: u32) -> Self {
        ArenaWriter {
            magic,
            version,
            sections: Vec::new(),
        }
    }

    /// Stages a section borrowing the caller's bytes (zero-copy path).
    pub fn section(&mut self, tag: u64, bytes: &'a [u8]) -> &mut Self {
        self.sections.push(Staged {
            tag,
            bytes: Cow::Borrowed(bytes),
        });
        self
    }

    /// Stages a section borrowing a typed slice as bytes.
    pub fn slice<T: Pod>(&mut self, tag: u64, slice: &'a [T]) -> &mut Self {
        self.section(tag, bytes_of(slice))
    }

    /// Stages a section that owns its bytes (for small computed payloads
    /// like fixed-size metadata blocks).
    pub fn owned(&mut self, tag: u64, bytes: Vec<u8>) -> &mut Self {
        self.sections.push(Staged {
            tag,
            bytes: Cow::Owned(bytes),
        });
        self
    }

    /// Total encoded size in bytes (header + table + padded sections).
    pub fn encoded_len(&self) -> u64 {
        let mut off = (HEADER_BYTES + self.sections.len() * TABLE_ENTRY_BYTES) as u64;
        for s in &self.sections {
            off += pad8(s.bytes.len() as u64);
        }
        off
    }

    /// Writes header, table, and sections front-to-back. Lengths are all
    /// known up front, so no seeking is needed; per-section checksums are
    /// computed in a cheap pre-pass.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<u64> {
        let n = self.sections.len();
        let mut table = Vec::with_capacity(n * TABLE_ENTRY_BYTES);
        let mut off = (HEADER_BYTES + n * TABLE_ENTRY_BYTES) as u64;
        for s in &self.sections {
            table.extend_from_slice(&s.tag.to_ne_bytes());
            table.extend_from_slice(&off.to_ne_bytes());
            table.extend_from_slice(&(s.bytes.len() as u64).to_ne_bytes());
            table.extend_from_slice(&fnv1a(&s.bytes).to_ne_bytes());
            off += pad8(s.bytes.len() as u64);
        }
        w.write_all(&self.magic)?;
        w.write_all(&self.version.to_ne_bytes())?;
        w.write_all(&(n as u32).to_ne_bytes())?;
        w.write_all(&ENDIAN_MARK.to_ne_bytes())?;
        w.write_all(&fnv1a(&table).to_ne_bytes())?;
        w.write_all(&table)?;
        const PAD: [u8; 8] = [0; 8];
        for s in &self.sections {
            w.write_all(&s.bytes)?;
            let rem = s.bytes.len() % 8;
            if rem != 0 {
                w.write_all(&PAD[..8 - rem])?;
            }
        }
        Ok(off)
    }

    /// Encodes into a fresh 8-aligned buffer (for in-memory round-trips).
    pub fn to_aligned_bytes(&self) -> AlignedBytes {
        let mut buf = Vec::with_capacity(self.encoded_len() as usize);
        self.write_to(&mut buf).expect("Vec writes are infallible");
        AlignedBytes::copy_from(&buf)
    }
}

#[inline]
fn pad8(len: u64) -> u64 {
    (len + 7) & !7
}

/// One parsed section-table entry.
#[derive(Debug, Clone, Copy)]
pub struct SectionEntry {
    /// Caller-chosen section id.
    pub tag: u64,
    /// Absolute byte offset of the payload within the arena.
    pub offset: u64,
    /// Payload length in bytes (excluding padding).
    pub len: u64,
    /// FNV-1a checksum of the payload.
    pub fnv: u64,
}

/// A parsed, validated view over an arena's bytes. Holds only the borrowed
/// buffer plus the decoded table — producing one costs O(#sections)
/// regardless of payload size, which is what makes mapped startup O(ms).
#[derive(Debug)]
pub struct Arena<'a> {
    bytes: &'a [u8],
    version: u32,
    entries: Vec<SectionEntry>,
}

impl<'a> Arena<'a> {
    /// Parses and shallow-validates an arena: magic, endianness, table
    /// checksum, and per-section bounds + 8-alignment. Does **not** hash
    /// payloads — see [`Arena::verify_deep`].
    pub fn parse(bytes: &'a [u8], magic: [u8; 8]) -> Result<Arena<'a>, String> {
        if bytes.len() < HEADER_BYTES {
            return Err(format!(
                "arena too short for header: {} bytes (need {HEADER_BYTES})",
                bytes.len()
            ));
        }
        if bytes[..8] != magic {
            return Err(format!(
                "bad magic {:02x?} (expected {:02x?})",
                &bytes[..8],
                magic
            ));
        }
        let version = u32::from_ne_bytes(bytes[8..12].try_into().unwrap());
        let n = u32::from_ne_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let endian = u64::from_ne_bytes(bytes[16..24].try_into().unwrap());
        if endian != ENDIAN_MARK {
            return Err(
                "endianness marker mismatch — file was written on a foreign-endian machine"
                    .to_string(),
            );
        }
        let table_fnv = u64::from_ne_bytes(bytes[24..32].try_into().unwrap());
        let table_end = HEADER_BYTES
            .checked_add(
                n.checked_mul(TABLE_ENTRY_BYTES)
                    .ok_or("section count overflow")?,
            )
            .ok_or("section table overflow")?;
        if bytes.len() < table_end {
            return Err(format!(
                "truncated section table: {} sections need {} bytes, have {}",
                n,
                table_end,
                bytes.len()
            ));
        }
        let table = &bytes[HEADER_BYTES..table_end];
        if fnv1a(table) != table_fnv {
            return Err("section table checksum mismatch — file is corrupt".to_string());
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let e = &table[i * TABLE_ENTRY_BYTES..(i + 1) * TABLE_ENTRY_BYTES];
            let entry = SectionEntry {
                tag: u64::from_ne_bytes(e[0..8].try_into().unwrap()),
                offset: u64::from_ne_bytes(e[8..16].try_into().unwrap()),
                len: u64::from_ne_bytes(e[16..24].try_into().unwrap()),
                fnv: u64::from_ne_bytes(e[24..32].try_into().unwrap()),
            };
            if entry.offset % 8 != 0 {
                return Err(format!(
                    "section {:#x} offset {} is not 8-byte aligned",
                    entry.tag, entry.offset
                ));
            }
            let end = entry
                .offset
                .checked_add(entry.len)
                .ok_or_else(|| format!("section {:#x} length overflows", entry.tag))?;
            if end > bytes.len() as u64 {
                return Err(format!(
                    "section {:#x} claims bytes {}..{} beyond arena end {}",
                    entry.tag,
                    entry.offset,
                    end,
                    bytes.len()
                ));
            }
            entries.push(entry);
        }
        Ok(Arena {
            bytes,
            version,
            entries,
        })
    }

    /// The format version from the header.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The decoded section table.
    pub fn entries(&self) -> &[SectionEntry] {
        &self.entries
    }

    /// The whole underlying buffer.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Raw bytes of the section tagged `tag`, if present.
    pub fn section(&self, tag: u64) -> Option<&'a [u8]> {
        let e = self.entries.iter().find(|e| e.tag == tag)?;
        Some(&self.bytes[e.offset as usize..(e.offset + e.len) as usize])
    }

    /// Raw bytes of a required section.
    pub fn require(&self, tag: u64) -> Result<&'a [u8], String> {
        self.section(tag)
            .ok_or_else(|| format!("missing required section {tag:#x}"))
    }

    /// Typed view of a required section — alignment- and length-checked.
    pub fn slice<T: Pod>(&self, tag: u64) -> Result<&'a [T], String> {
        cast_slice(self.require(tag)?).map_err(|e| format!("section {tag:#x}: {e}"))
    }

    /// Re-hashes every payload against its table checksum (O(file size);
    /// run on demand, not at load).
    pub fn verify_deep(&self) -> Result<(), String> {
        for e in &self.entries {
            let payload = &self.bytes[e.offset as usize..(e.offset + e.len) as usize];
            if fnv1a(payload) != e.fnv {
                return Err(format!(
                    "section {:#x} checksum mismatch — file is corrupt",
                    e.tag
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 8] = *b"ARENATST";

    fn sample() -> AlignedBytes {
        let nums: Vec<u32> = vec![1, 2, 3];
        let vals: Vec<f64> = vec![0.5, 0.25];
        let mut w = ArenaWriter::new(MAGIC, 7);
        w.slice(0x10, &nums)
            .slice(0x20, &vals)
            .owned(0x30, vec![9u8; 5]);
        w.to_aligned_bytes()
    }

    #[test]
    fn roundtrip_typed_sections() {
        let buf = sample();
        let a = Arena::parse(buf.as_slice(), MAGIC).unwrap();
        assert_eq!(a.version(), 7);
        assert_eq!(a.slice::<u32>(0x10).unwrap(), &[1, 2, 3]);
        assert_eq!(a.slice::<f64>(0x20).unwrap(), &[0.5, 0.25]);
        assert_eq!(a.section(0x30).unwrap(), &[9u8; 5]);
        assert!(a.section(0x99).is_none());
        a.verify_deep().unwrap();
    }

    #[test]
    fn encoded_len_matches() {
        let nums: Vec<u32> = vec![1, 2, 3];
        let mut w = ArenaWriter::new(MAGIC, 1);
        w.slice(1, &nums);
        let mut out = Vec::new();
        let written = w.write_to(&mut out).unwrap();
        assert_eq!(written, out.len() as u64);
        assert_eq!(written, w.encoded_len());
    }

    #[test]
    fn refuses_bad_magic_and_truncation() {
        let buf = sample();
        let mut wrong = buf.as_slice().to_vec();
        wrong[0] ^= 0xff;
        assert!(Arena::parse(&wrong, MAGIC).unwrap_err().contains("magic"));
        let err = Arena::parse(&buf.as_slice()[..HEADER_BYTES + 3], MAGIC).unwrap_err();
        assert!(err.contains("truncated section table"), "{err}");
        assert!(Arena::parse(&[], MAGIC).unwrap_err().contains("too short"));
    }

    #[test]
    fn refuses_corrupt_table_and_payload() {
        let buf = sample();
        // Flip a byte inside the table: shallow parse catches it.
        let mut t = buf.as_slice().to_vec();
        t[HEADER_BYTES + 1] ^= 0x01;
        assert!(Arena::parse(&t, MAGIC)
            .unwrap_err()
            .contains("section table checksum"));
        // Flip a payload byte: shallow parse passes, deep verify refuses.
        let mut p = buf.as_slice().to_vec();
        let last = p.len() - 6;
        p[last] ^= 0x01;
        let p = AlignedBytes::copy_from(&p);
        let a = Arena::parse(p.as_slice(), MAGIC).unwrap();
        assert!(a.verify_deep().unwrap_err().contains("checksum"));
    }

    #[test]
    fn refuses_foreign_endianness() {
        let buf = sample();
        let mut e = buf.as_slice().to_vec();
        e[16..24].reverse(); // byte-swapped marker, as a foreign writer would emit
        let err = Arena::parse(&e, MAGIC).unwrap_err();
        assert!(err.contains("endianness"), "{err}");
    }

    #[test]
    fn cast_slice_checks_alignment_and_length() {
        let buf = AlignedBytes::copy_from(&[0u8; 16]);
        assert!(cast_slice::<u64>(buf.as_slice()).is_ok());
        assert!(cast_slice::<u64>(&buf.as_slice()[1..9])
            .unwrap_err()
            .contains("aligned"));
        assert!(cast_slice::<u64>(&buf.as_slice()[..12])
            .unwrap_err()
            .contains("multiple"));
    }

    #[test]
    fn aligned_bytes_is_aligned() {
        for n in [0usize, 1, 7, 8, 9, 4096] {
            let b = AlignedBytes::zeroed(n);
            assert_eq!(b.as_slice().as_ptr() as usize % 8, 0);
            assert_eq!(b.len(), n);
        }
    }
}
