//! Bounded top-*k* selection.
//!
//! The rewriter keeps the top 100 candidate rewrites per query (§9.3 of the
//! paper) before filtering down to 5. A bounded binary min-heap keeps that
//! O(n log k) instead of sorting all candidates.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry: min-heap on score, with a deterministic id tiebreak
/// (smaller id preferred on equal score) so results are reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry<T> {
    score: f64,
    item: T,
}

impl<T: PartialEq> Eq for Entry<T> {}

impl<T: Ord> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse score order => BinaryHeap (a max-heap) behaves as a min-heap
        // on score. On ties, *larger* items are "smaller priority" so they are
        // evicted first, keeping smaller ids.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.item.cmp(&other.item))
    }
}

impl<T: Ord> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded collection retaining the `k` highest-scoring items.
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<Entry<T>>,
}

impl<T: Ord + Copy> TopK<T> {
    /// Creates a collector retaining the top `k` items. `k == 0` retains none.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers an item; it is kept only if it ranks within the current top-k.
    /// NaN scores are ignored.
    pub fn push(&mut self, item: T, score: f64) {
        if self.k == 0 || score.is_nan() {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Entry { score, item });
            return;
        }
        // Heap is full: compare with the current minimum (heap peek).
        if let Some(min) = self.heap.peek() {
            let replace = score > min.score || (score == min.score && item < min.item);
            if replace {
                self.heap.pop();
                self.heap.push(Entry { score, item });
            }
        }
    }

    /// Current number of retained items (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The smallest retained score, if any.
    pub fn threshold(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.score)
    }

    /// Consumes the collector, returning `(item, score)` pairs sorted by
    /// descending score (ties broken by ascending item).
    pub fn into_sorted_vec(self) -> Vec<(T, f64)> {
        let mut v: Vec<(T, f64)> = self.heap.into_iter().map(|e| (e.item, e.score)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_best() {
        let mut t = TopK::new(3);
        for (i, s) in [(1u32, 0.5), (2, 0.9), (3, 0.1), (4, 0.7), (5, 0.8)] {
            t.push(i, s);
        }
        let out = t.into_sorted_vec();
        assert_eq!(
            out.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![2, 5, 4]
        );
    }

    #[test]
    fn fewer_than_k_returns_all_sorted() {
        let mut t = TopK::new(10);
        t.push(1u32, 0.2);
        t.push(2, 0.4);
        let out = t.into_sorted_vec();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 2);
    }

    #[test]
    fn zero_k_retains_nothing() {
        let mut t = TopK::new(0);
        t.push(1u32, 1.0);
        assert!(t.is_empty());
        assert!(t.into_sorted_vec().is_empty());
    }

    #[test]
    fn nan_is_ignored() {
        let mut t = TopK::new(2);
        t.push(1u32, f64::NAN);
        t.push(2, 0.5);
        let out = t.into_sorted_vec();
        assert_eq!(out, vec![(2, 0.5)]);
    }

    #[test]
    fn tie_break_prefers_smaller_id() {
        let mut t = TopK::new(2);
        t.push(9u32, 0.5);
        t.push(3, 0.5);
        t.push(7, 0.5);
        let out = t.into_sorted_vec();
        assert_eq!(out.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn threshold_tracks_min() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), None);
        t.push(1u32, 0.9);
        t.push(2, 0.4);
        assert_eq!(t.threshold(), Some(0.4));
        t.push(3, 0.8);
        assert_eq!(t.threshold(), Some(0.8));
    }

    #[test]
    fn large_stream_matches_full_sort() {
        // Deterministic pseudo-random stream (LCG).
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let mut scored: Vec<(u32, f64)> = Vec::new();
        let mut t = TopK::new(25);
        for i in 0..5_000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = (x >> 11) as f64 / (1u64 << 53) as f64;
            scored.push((i, s));
            t.push(i, s);
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let expect: Vec<u32> = scored[..25].iter().map(|&(i, _)| i).collect();
        let got: Vec<u32> = t.into_sorted_vec().iter().map(|&(i, _)| i).collect();
        assert_eq!(got, expect);
    }
}
