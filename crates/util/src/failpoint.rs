//! Hand-rolled failpoint injection (no crates.io access, so no `fail` crate).
//!
//! A *failpoint* is a named site in a hot path where a test or operator can
//! inject a fault. Sites are declared with [`fail_point!`]; each site supports
//! three actions:
//!
//! * `return` — the macro evaluates to an `Err`, exercising the error path.
//! * `panic` — the site panics, exercising unwind/poison handling.
//! * `abort` — the process dies on the spot (`std::process::abort`), the
//!   closest portable stand-in for `kill -9` at an exact instruction.
//!
//! Configuration comes from the `SIMRANKPP_FAILPOINTS` environment variable
//! (read once, at first evaluation) or programmatically via [`set`] in tests:
//!
//! ```text
//! SIMRANKPP_FAILPOINTS="snapshot-save=return,checkpoint-commit=abort"
//! SIMRANKPP_FAILPOINTS="ingest-epoch-apply=2*abort"   # fire on the 2nd hit
//! ```
//!
//! Entries are comma- or semicolon-separated `site=action` pairs; an action
//! may be prefixed `N*` to pass through N−1 hits before firing (a countdown),
//! which is how the chaos harness reaches *mid-stream* crash points rather
//! than only the first write.
//!
//! ## Zero cost when disabled
//!
//! The registry below always compiles (it is a few hundred bytes), but the
//! [`fail_point!`] macro expands to nothing unless the **calling** crate is
//! built with its `failpoints` feature. Release binaries built without the
//! feature contain no trace of the sites — no branch, no string, nothing.
//! Crates that declare sites (`util`, `graph`, `serve`) each have a
//! `failpoints` feature, unified by the facade crate's `failpoints`.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// What a configured site does when evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Evaluate to an error at the site (`fail_point!` returns `Err`).
    ReturnError,
    /// Panic at the site with a recognizable message.
    Panic,
    /// `std::process::abort()` — no unwinding, no destructors, no flush.
    Abort,
}

#[derive(Debug, Clone, Copy)]
struct Arm {
    action: Action,
    /// Hits remaining before the action fires; 0 means "fire now".
    countdown: u64,
}

struct Registry {
    sites: Mutex<HashMap<String, Arm>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let reg = Registry {
            sites: Mutex::new(HashMap::new()),
        };
        if let Ok(spec) = std::env::var("SIMRANKPP_FAILPOINTS") {
            if let Err(err) = apply_spec(&reg, &spec) {
                // A malformed spec must be loud, not silently ignored: the
                // whole point is deterministic fault injection.
                panic!("invalid SIMRANKPP_FAILPOINTS: {err}");
            }
        }
        reg
    })
}

fn apply_spec(reg: &Registry, spec: &str) -> Result<(), String> {
    let mut sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    for entry in spec.split([',', ';']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, action) = entry
            .split_once('=')
            .ok_or_else(|| format!("entry `{entry}` is not of the form site=action"))?;
        let arm = parse_action(action.trim())?;
        sites.insert(site.trim().to_string(), arm);
    }
    Ok(())
}

fn parse_action(spec: &str) -> Result<Arm, String> {
    let (countdown, action) = match spec.split_once('*') {
        Some((n, rest)) => {
            let n: u64 = n
                .trim()
                .parse()
                .map_err(|_| format!("bad countdown in `{spec}`"))?;
            if n == 0 {
                return Err(format!("countdown in `{spec}` must be >= 1"));
            }
            (n - 1, rest.trim())
        }
        None => (0, spec),
    };
    let action = match action {
        "return" => Action::ReturnError,
        "panic" => Action::Panic,
        "abort" => Action::Abort,
        other => return Err(format!("unknown action `{other}` (return|panic|abort)")),
    };
    Ok(Arm { action, countdown })
}

/// Programmatically configures `site` (tests; overrides any env spec).
pub fn set(site: &str, action: Action, countdown: u64) {
    let reg = registry();
    let mut sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    sites.insert(
        site.to_string(),
        Arm {
            action,
            countdown: countdown.saturating_sub(1),
        },
    );
}

/// Parses and applies a `site=action,...` spec at runtime (same grammar as
/// the `SIMRANKPP_FAILPOINTS` environment variable).
pub fn configure(spec: &str) -> Result<(), String> {
    apply_spec(registry(), spec)
}

/// Removes the configuration for `site`.
pub fn clear(site: &str) {
    let reg = registry();
    let mut sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    sites.remove(site);
}

/// Removes every configured site (test isolation).
pub fn clear_all() {
    let reg = registry();
    let mut sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    sites.clear();
}

/// Evaluates the failpoint `site`.
///
/// Returns `Some(message)` when the site is configured with `return` and its
/// countdown has elapsed — the caller (the [`fail_point!`] expansion) turns
/// the message into its error type. `Panic` and `Abort` never return.
/// Unconfigured sites return `None`.
///
/// This function is called only from `fail_point!` expansions, which are
/// compiled out without the `failpoints` feature; it is not itself hot.
pub fn eval(site: &str) -> Option<String> {
    let reg = registry();
    let mut sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    let arm = sites.get_mut(site)?;
    if arm.countdown > 0 {
        arm.countdown -= 1;
        return None;
    }
    let action = arm.action;
    drop(sites); // never panic/abort while holding the registry lock
    match action {
        Action::ReturnError => Some(format!("failpoint `{site}` triggered")),
        Action::Panic => panic!("failpoint `{site}` panic"),
        Action::Abort => {
            // stderr is line-buffered and abort() skips atexit flushing, so
            // write the marker eagerly for the chaos harness to observe.
            use std::io::Write;
            let _ = writeln!(std::io::stderr(), "failpoint `{site}` abort");
            let _ = std::io::stderr().flush();
            std::process::abort();
        }
    }
}

/// Injects a failpoint at the current statement.
///
/// `fail_point!("site")` — in a function returning `io::Result`, a `return`
/// action becomes `Err(io::Error::new(ErrorKind::Other, msg))`.
///
/// `fail_point!("site", |msg| expr)` — maps the message through a closure to
/// build a custom error type (`String`, enum variant, ...).
///
/// Expands to nothing unless the calling crate enables its `failpoints`
/// feature, so every site is free in production builds.
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        #[cfg(feature = "failpoints")]
        {
            if let Some(msg) = $crate::failpoint::eval($site) {
                return Err(::std::io::Error::new(::std::io::ErrorKind::Other, msg).into());
            }
        }
    };
    ($site:expr, $to_err:expr) => {
        #[cfg(feature = "failpoints")]
        {
            if let Some(msg) = $crate::failpoint::eval($site) {
                #[allow(clippy::redundant_closure_call)]
                return Err(($to_err)(msg));
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so tests use distinct site names and
    // clean up after themselves rather than relying on clear_all (other test
    // threads may be mid-flight).

    #[test]
    fn unconfigured_site_is_inert() {
        assert_eq!(eval("fp-test-unconfigured"), None);
    }

    #[test]
    fn return_action_yields_message() {
        set("fp-test-return", Action::ReturnError, 1);
        let msg = eval("fp-test-return").expect("configured site must fire");
        assert!(msg.contains("fp-test-return"));
        // Still configured: fires every evaluation until cleared.
        assert!(eval("fp-test-return").is_some());
        clear("fp-test-return");
        assert_eq!(eval("fp-test-return"), None);
    }

    #[test]
    fn countdown_passes_through_then_fires() {
        set("fp-test-countdown", Action::ReturnError, 3);
        assert_eq!(eval("fp-test-countdown"), None);
        assert_eq!(eval("fp-test-countdown"), None);
        assert!(eval("fp-test-countdown").is_some());
        clear("fp-test-countdown");
    }

    #[test]
    #[should_panic(expected = "failpoint `fp-test-panic` panic")]
    fn panic_action_panics() {
        set("fp-test-panic", Action::Panic, 1);
        eval("fp-test-panic");
    }

    #[test]
    fn spec_grammar() {
        configure("fp-test-spec-a=return; fp-test-spec-b = 5*abort ,").unwrap();
        assert!(eval("fp-test-spec-a").is_some());
        // b has countdown 4 remaining; evaluate twice, it must not abort the
        // test process (we only burn 2 of the 4 pass-throughs).
        assert_eq!(eval("fp-test-spec-b"), None);
        assert_eq!(eval("fp-test-spec-b"), None);
        clear("fp-test-spec-a");
        clear("fp-test-spec-b");

        assert!(configure("no-equals-sign").is_err());
        assert!(configure("x=explode").is_err());
        assert!(configure("x=0*return").is_err());
        assert!(configure("x=zz*return").is_err());
    }
}
