//! Atomic, durable file writes — the one discipline every artifact writer
//! in the workspace goes through.
//!
//! A crash mid-`File::create(final_path)` leaves a torn file *at the final
//! path*: the next reader finds a header with a bad checksum and fails with
//! a confusing error, or worse, silently parses a prefix. The fix is the
//! classic four-step dance, packaged once here so no writer re-implements
//! it subtly wrong:
//!
//! 1. write the full payload to a sibling temp file (`.name.tmp`),
//! 2. `fsync` the temp file (contents durable),
//! 3. `rename` it over the final path (atomic on POSIX),
//! 4. `fsync` the parent directory (the rename itself durable).
//!
//! A crash before step 3 leaves only a stale temp (overwritten by the next
//! attempt); a crash after step 3 leaves the complete new file. At no point
//! does a partially-written file exist at the final path.
//!
//! [`atomic_write`] is the closure-based entry point for writers that can
//! borrow a sink; [`AtomicFile`] is the two-phase version for streaming
//! writers (e.g. `SegmentWriter`) that need to *own* their sink. Readers
//! that discover a torn/corrupt artifact at open time use [`quarantine`] to
//! move it aside as `<path>.corrupt` so a supervisor restart rebuilds from
//! source instead of crash-looping on the same bad bytes.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::fail_point;

/// The sibling temp path used by every atomic write of `path`:
/// `dir/.<file_name>.tmp`. Deterministic, so a stale temp left by a crash
/// is simply overwritten by the next attempt.
pub fn temp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    path.with_file_name(format!(".{name}.tmp"))
}

/// Fsyncs the directory containing `path`, making a completed rename of
/// `path` durable. An empty parent means the current directory.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

/// A file being written under the atomic-durable discipline.
///
/// [`AtomicFile::create`] opens the sibling temp file; the caller streams
/// the payload into the returned [`File`] (usually via its own buffered
/// writer) and then calls [`AtomicFile::commit`] with it to fsync, rename,
/// and fsync-dir. Dropping an uncommitted `AtomicFile` removes the temp,
/// so early returns on error leave nothing behind.
#[derive(Debug)]
pub struct AtomicFile {
    tmp: PathBuf,
    path: PathBuf,
    committed: bool,
}

impl AtomicFile {
    /// Opens the temp sibling of `path` for writing.
    pub fn create(path: &Path) -> io::Result<(AtomicFile, File)> {
        let tmp = temp_path(path);
        fail_point!("durable-create");
        // allow(file-create): this is the temp sibling; the final path only
        // ever appears via the rename in commit().
        let file = File::create(&tmp)?;
        Ok((
            AtomicFile {
                tmp,
                path: path.to_path_buf(),
                committed: false,
            },
            file,
        ))
    }

    /// Fsyncs `file` (which must be the handle returned by
    /// [`AtomicFile::create`], fully written and flushed), renames the temp
    /// over the final path, and fsyncs the parent directory.
    pub fn commit(mut self, file: File) -> io::Result<()> {
        fail_point!("durable-fsync");
        file.sync_all()?;
        drop(file);
        fail_point!("durable-rename");
        fs::rename(&self.tmp, &self.path)?;
        self.committed = true;
        fail_point!("durable-dir-sync");
        sync_parent_dir(&self.path)
    }

    /// The temp path being written (for diagnostics).
    pub fn temp(&self) -> &Path {
        &self.tmp
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if !self.committed {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// Writes `path` atomically and durably: `write` receives a buffered writer
/// over the temp sibling; on `Ok` the temp is flushed, fsynced, renamed over
/// `path`, and the directory fsynced. On any error the temp is removed and
/// `path` is untouched.
pub fn atomic_write<F>(path: &Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut BufWriter<File>) -> io::Result<()>,
{
    let (atomic, file) = AtomicFile::create(path)?;
    let mut writer = BufWriter::new(file);
    write(&mut writer)?;
    writer.flush()?;
    let file = writer
        .into_inner()
        .map_err(|e| io::Error::other(e.to_string()))?;
    atomic.commit(file)
}

/// [`atomic_write`] for callers that already hold the full payload.
pub fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write(path, |w| w.write_all(bytes))
}

/// Moves a corrupt artifact aside as `<path>.corrupt` (or `.corrupt.N` if
/// that exists) and returns the quarantine path. The caller still reports
/// the structured error; quarantining just guarantees the next start does
/// not crash-loop on the same bytes.
pub fn quarantine(path: &Path) -> io::Result<PathBuf> {
    let base = format!("{}.corrupt", path.display());
    let mut candidate = PathBuf::from(&base);
    let mut n = 0u32;
    while candidate.exists() {
        n += 1;
        if n > 1000 {
            return Err(io::Error::other(format!(
                "no free quarantine name for {}",
                path.display()
            )));
        }
        candidate = PathBuf::from(format!("{base}.{n}"));
    }
    fs::rename(path, &candidate)?;
    // Make the rename durable too: a quarantine that un-happens after a
    // crash would resurrect the corrupt artifact.
    sync_parent_dir(path)?;
    Ok(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srpp-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("artifact.bin");
        atomic_write_bytes(&path, b"hello durable world").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello durable world");
        // No temp residue.
        assert!(!temp_path(&path).exists());
        // Overwrite goes through the same path.
        atomic_write_bytes(&path, b"second generation").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second generation");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_leaves_final_path_untouched() {
        let dir = tmp_dir("fail");
        let path = dir.join("artifact.bin");
        atomic_write_bytes(&path, b"good generation").unwrap();
        let err = atomic_write(&path, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("simulated crash"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "simulated crash");
        assert_eq!(fs::read(&path).unwrap(), b"good generation");
        assert!(!temp_path(&path).exists(), "temp must be cleaned up");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_temp_is_overwritten() {
        let dir = tmp_dir("stale");
        let path = dir.join("artifact.bin");
        fs::write(temp_path(&path), b"torn temp from a crash").unwrap();
        atomic_write_bytes(&path, b"fresh").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"fresh");
        assert!(!temp_path(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_renames_and_numbers() {
        let dir = tmp_dir("quarantine");
        let path = dir.join("artifact.bin");
        fs::write(&path, b"corrupt").unwrap();
        let q1 = quarantine(&path).unwrap();
        assert!(q1.to_string_lossy().ends_with("artifact.bin.corrupt"));
        assert!(!path.exists());
        fs::write(&path, b"corrupt again").unwrap();
        let q2 = quarantine(&path).unwrap();
        assert!(q2.to_string_lossy().ends_with("artifact.bin.corrupt.1"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_path_is_a_hidden_sibling() {
        assert_eq!(
            temp_path(Path::new("/a/b/index.bin")),
            Path::new("/a/b/.index.bin.tmp")
        );
        assert_eq!(temp_path(Path::new("rel.bin")), Path::new(".rel.bin.tmp"));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn durable_failpoints_fire() {
        use crate::failpoint::{self, Action};
        let dir = tmp_dir("failpoint");
        let path = dir.join("artifact.bin");
        failpoint::set("durable-rename", Action::ReturnError, 1);
        let err = atomic_write_bytes(&path, b"doomed").unwrap_err();
        assert!(err.to_string().contains("durable-rename"));
        assert!(!path.exists(), "rename failpoint must abort before rename");
        assert!(!temp_path(&path).exists(), "temp cleaned up on error");
        failpoint::clear("durable-rename");
        atomic_write_bytes(&path, b"recovered").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"recovered");
        fs::remove_dir_all(&dir).unwrap();
    }
}
