//! Numeric helpers: online statistics and variance.
//!
//! Weighted SimRank (§8.2 of the paper) needs the *variance* of the weight
//! set incident to a node: `spread(i) = exp(-variance(i))`. The paper does
//! not pin down sample vs population variance; we use population variance,
//! which is well-defined for a single-element set (zero) and matches the
//! worked examples (a node with equal incident weights has spread 1).

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; population variance is
/// `m2 / count`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance `Σ(x-μ)²/n` (0 when fewer than 2 observations).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance `Σ(x-μ)²/(n-1)` (0 when fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }
}

/// Population variance of a slice (0 for empty or single-element slices).
pub fn population_variance(values: &[f64]) -> f64 {
    let mut s = OnlineStats::new();
    for &v in values {
        s.push(v);
    }
    s.population_variance()
}

/// `true` when `a` and `b` differ by at most `eps` absolutely.
#[inline]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn known_variance() {
        // Values 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population variance 4.
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for v in vals {
            s.push(v);
        }
        assert!(approx_eq(s.mean(), 5.0, 1e-12));
        assert!(approx_eq(s.population_variance(), 4.0, 1e-12));
        assert!(approx_eq(s.sample_variance(), 32.0 / 7.0, 1e-12));
    }

    #[test]
    fn slice_helper_matches_online() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        assert!(approx_eq(population_variance(&vals), 1.25, 1e-12));
    }

    #[test]
    fn merge_equals_sequential() {
        let vals: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &v in &vals {
            whole.push(v);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &v in &vals[..37] {
            left.push(v);
        }
        for &v in &vals[37..] {
            right.push(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!(approx_eq(left.mean(), whole.mean(), 1e-9));
        assert!(approx_eq(
            left.population_variance(),
            whole.population_variance(),
            1e-9
        ));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn constant_stream_has_zero_variance() {
        let mut s = OnlineStats::new();
        for _ in 0..1000 {
            s.push(3.5);
        }
        assert!(approx_eq(s.population_variance(), 0.0, 1e-12));
    }
}
