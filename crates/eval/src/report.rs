//! Paper-style text rendering of experiment results.
//!
//! The bench binaries print these tables; `EXPERIMENTS.md` is assembled
//! from the same strings, so the console output and the document always
//! agree.

use crate::experiment::ExperimentReport;
use std::fmt::Write as _;

/// Renders Table 5 (dataset statistics).
pub fn render_table5(report: &ExperimentReport) -> String {
    let mut out = String::new();
    writeln!(out, "Table 5: Dataset statistics").unwrap();
    writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>12}",
        "", "# Queries", "# Ads", "# Edges"
    )
    .unwrap();
    let n = report.table5.len();
    for (i, (q, a, e)) in report.table5.iter().enumerate() {
        let label = if i + 1 == n {
            "Total".to_owned()
        } else {
            format!("subgraph {}", i + 1)
        };
        writeln!(out, "{label:<14} {q:>12} {a:>12} {e:>12}").unwrap();
    }
    out
}

/// Renders Figure 8 (query coverage).
pub fn render_fig8(report: &ExperimentReport) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 8: Query coverage ({} eval queries)",
        report.eval_queries
    )
    .unwrap();
    for m in &report.methods {
        writeln!(
            out,
            "  {:<26} {:>5.1}%  {}",
            m.method,
            m.coverage * 100.0,
            bar(m.coverage, 40)
        )
        .unwrap();
    }
    out
}

/// Renders Figure 9 (P/R + P@X at grades {1,2}) or Figure 10 (grade {1}).
pub fn render_fig9_or_10(report: &ExperimentReport, threshold_one: bool) -> String {
    let mut out = String::new();
    let (fig, label) = if threshold_one {
        (10, "positive = {1}")
    } else {
        (9, "positive = {1,2}")
    };
    writeln!(out, "Figure {fig}: Precision at 11 recall levels ({label})").unwrap();
    write!(out, "  {:<26}", "recall:").unwrap();
    for i in 0..11 {
        write!(out, " {:>6.1}", i as f64 / 10.0).unwrap();
    }
    writeln!(out).unwrap();
    for m in &report.methods {
        let curve = if threshold_one {
            &m.pr_grade1
        } else {
            &m.pr_grade12
        };
        write!(out, "  {:<26}", m.method).unwrap();
        for p in curve.precision_at_recall {
            write!(out, " {:>6.3}", p).unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "\nFigure {fig}: Precision after X rewrites (P@X, {label})"
    )
    .unwrap();
    write!(out, "  {:<26}", "X:").unwrap();
    for x in 1..=5 {
        write!(out, " {x:>6}").unwrap();
    }
    writeln!(out).unwrap();
    for m in &report.methods {
        let p = if threshold_one {
            &m.p_at_x_grade1
        } else {
            &m.p_at_x_grade12
        };
        write!(out, "  {:<26}", m.method).unwrap();
        for v in p {
            write!(out, " {:>6.3}", v).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Renders Figure 11 (rewriting depth bands).
pub fn render_fig11(report: &ExperimentReport) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 11: Rewriting depth (fraction of sample queries)"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<26} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}",
        "", "5", "4-5", "3-5", "2-5", "1-5", "mean"
    )
    .unwrap();
    for m in &report.methods {
        writeln!(
            out,
            "  {:<26} {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>7.2}",
            m.method,
            m.depth_bands[0] * 100.0,
            m.depth_bands[1] * 100.0,
            m.depth_bands[2] * 100.0,
            m.depth_bands[3] * 100.0,
            m.depth_bands[4] * 100.0,
            m.mean_depth
        )
        .unwrap();
    }
    out
}

/// Renders Figure 12 (desirability prediction).
pub fn render_fig12(report: &ExperimentReport) -> String {
    let mut out = String::new();
    writeln!(out, "Figure 12: Correct desirability-order predictions").unwrap();
    for o in &report.desirability {
        writeln!(
            out,
            "  {:<26} {:>3}/{:<3} = {:>5.1}%  {}",
            o.method,
            o.correct,
            o.trials,
            o.accuracy() * 100.0,
            bar(o.accuracy(), 40)
        )
        .unwrap();
    }
    out
}

/// Renders the full report.
pub fn render_full(report: &ExperimentReport) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Evaluation sample: {} sampled from traffic, {} present in the evaluation graph\n",
        report.sampled_queries, report.eval_queries
    )
    .unwrap();
    out.push_str(&render_table5(report));
    out.push('\n');
    out.push_str(&render_fig8(report));
    out.push('\n');
    out.push_str(&render_fig9_or_10(report, false));
    out.push('\n');
    out.push_str(&render_fig9_or_10(report, true));
    out.push('\n');
    out.push_str(&render_fig11(report));
    out.push('\n');
    out.push_str(&render_fig12(report));
    out
}

fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '█' } else { '·' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desirability::DesirabilityOutcome;
    use crate::experiment::MethodReport;
    use crate::metrics::PrCurve;

    fn fake_report() -> ExperimentReport {
        let method = |name: &str, cov: f64| MethodReport {
            method: name.to_owned(),
            coverage: cov,
            p_at_x_grade12: [0.9, 0.8, 0.7, 0.6, 0.5],
            p_at_x_grade1: [0.4, 0.35, 0.3, 0.25, 0.2],
            pr_grade12: PrCurve {
                precision_at_recall: [0.9; 11],
                queries_scored: 10,
            },
            pr_grade1: PrCurve {
                precision_at_recall: [0.3; 11],
                queries_scored: 10,
            },
            mean_precision_grade12: 0.8,
            mean_recall_grade12: 0.6,
            depth_bands: [0.5, 0.6, 0.7, 0.8, 0.9],
            mean_depth: 3.4,
        };
        ExperimentReport {
            table5: vec![(100, 80, 250), (50, 40, 90), (150, 120, 340)],
            sampled_queries: 120,
            eval_queries: 25,
            methods: vec![method("Pearson", 0.41), method("Simrank", 0.98)],
            desirability: vec![DesirabilityOutcome {
                method: "weighted Simrank".into(),
                correct: 46,
                trials: 50,
            }],
        }
    }

    #[test]
    fn table5_lists_subgraphs_and_total() {
        let s = render_table5(&fake_report());
        assert!(s.contains("subgraph 1"));
        assert!(s.contains("subgraph 2"));
        assert!(s.contains("Total"));
        assert!(s.contains("340"));
    }

    #[test]
    fn fig8_shows_percentages() {
        let s = render_fig8(&fake_report());
        assert!(s.contains("41.0%"));
        assert!(s.contains("98.0%"));
    }

    #[test]
    fn fig9_and_10_render_both_sections() {
        let s9 = render_fig9_or_10(&fake_report(), false);
        assert!(s9.contains("Figure 9"));
        assert!(s9.contains("P@X"));
        let s10 = render_fig9_or_10(&fake_report(), true);
        assert!(s10.contains("Figure 10"));
        assert!(s10.contains("0.300"));
    }

    #[test]
    fn fig11_and_12_render() {
        let s = render_fig11(&fake_report());
        assert!(s.contains("4-5"));
        assert!(s.contains("3.40"));
        let s = render_fig12(&fake_report());
        assert!(s.contains("46/50"));
        assert!(s.contains("92.0%"));
    }

    #[test]
    fn full_report_contains_everything() {
        let s = render_full(&fake_report());
        for needle in [
            "Table 5",
            "Figure 8",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Figure 12",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn bar_widths() {
        assert_eq!(bar(0.0, 10).chars().filter(|&c| c == '█').count(), 0);
        assert_eq!(bar(1.0, 10).chars().filter(|&c| c == '█').count(), 10);
        assert_eq!(bar(0.5, 10).chars().filter(|&c| c == '█').count(), 5);
    }
}
