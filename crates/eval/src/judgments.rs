//! Judged rewrite lists — the unit every §9.4 metric consumes.

use serde::{Deserialize, Serialize};
use simrankpp_graph::QueryId;
use simrankpp_synth::Grade;

/// One rewrite with its editorial grade.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JudgedRewrite {
    /// The rewrite (evaluation-graph id).
    pub rewrite: QueryId,
    /// The method's similarity score.
    pub score: f64,
    /// The editorial grade (Table 6).
    pub grade: Grade,
}

/// The judged rewrites one method produced for one query, in rank order.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct QueryJudgments {
    /// The original query (evaluation-graph id).
    pub query: QueryId,
    /// Ranked judged rewrites (≤ the pipeline's max, 5 in the paper).
    pub rewrites: Vec<JudgedRewrite>,
}

impl QueryJudgments {
    /// Number of rewrites (the method's depth for this query).
    pub fn depth(&self) -> usize {
        self.rewrites.len()
    }

    /// Number of rewrites relevant at the given threshold.
    pub fn relevant_count(&self, threshold: crate::metrics::RelevanceThreshold) -> usize {
        self.rewrites
            .iter()
            .filter(|r| threshold.is_relevant(r.grade))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RelevanceThreshold;

    fn sample() -> QueryJudgments {
        QueryJudgments {
            query: QueryId(0),
            rewrites: vec![
                JudgedRewrite {
                    rewrite: QueryId(1),
                    score: 0.9,
                    grade: Grade::Precise,
                },
                JudgedRewrite {
                    rewrite: QueryId(2),
                    score: 0.5,
                    grade: Grade::Possible,
                },
                JudgedRewrite {
                    rewrite: QueryId(3),
                    score: 0.4,
                    grade: Grade::Approximate,
                },
            ],
        }
    }

    #[test]
    fn depth_counts_rewrites() {
        assert_eq!(sample().depth(), 3);
        assert_eq!(QueryJudgments::default().depth(), 0);
    }

    #[test]
    fn relevant_counts_respect_threshold() {
        let j = sample();
        assert_eq!(j.relevant_count(RelevanceThreshold::Grade12), 2);
        assert_eq!(j.relevant_count(RelevanceThreshold::Grade1), 1);
    }
}
