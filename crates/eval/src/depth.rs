//! The Figure 11 rewriting-depth distribution.
//!
//! For each method, the percentage of sample queries with depth exactly 5,
//! and cumulative bands 4–5, 3–5, 2–5, 1–5 (the paper's x-axis categories).

use crate::judgments::QueryJudgments;
use serde::{Deserialize, Serialize};

/// Depth distribution over a query sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthDistribution {
    /// `counts[d]` = queries with exactly `d` rewrites (0..=max).
    pub counts: Vec<usize>,
    /// Total queries in the sample.
    pub total: usize,
}

impl DepthDistribution {
    /// Computes the distribution for one method's judgments over the sample
    /// (queries absent from `judgments` count as depth 0). `max_depth` is
    /// the pipeline cap (5 in the paper).
    pub fn compute(judgments: &[QueryJudgments], total_queries: usize, max_depth: usize) -> Self {
        let mut counts = vec![0usize; max_depth + 1];
        let mut seen = 0usize;
        for qj in judgments {
            let d = qj.depth().min(max_depth);
            counts[d] += 1;
            seen += 1;
        }
        // Queries not in the judgment list at all → depth 0.
        counts[0] += total_queries.saturating_sub(seen);
        DepthDistribution {
            counts,
            total: total_queries,
        }
    }

    /// Fraction of queries with depth in `lo..=hi` (Figure 11's bands).
    pub fn band(&self, lo: usize, hi: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n: usize = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(d, _)| d >= lo && d <= hi)
            .map(|(_, &c)| c)
            .sum();
        n as f64 / self.total as f64
    }

    /// The five Figure 11 bands for a max depth of 5:
    /// `[5, 4–5, 3–5, 2–5, 1–5]` as fractions.
    pub fn figure11_bands(&self) -> [f64; 5] {
        [
            self.band(5, 5),
            self.band(4, 5),
            self.band(3, 5),
            self.band(2, 5),
            self.band(1, 5),
        ]
    }

    /// Mean depth.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: usize = self.counts.iter().enumerate().map(|(d, &c)| d * c).sum();
        sum as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::judgments::{JudgedRewrite, QueryJudgments};
    use simrankpp_graph::QueryId;
    use simrankpp_synth::Grade;

    fn with_depth(q: u32, d: usize) -> QueryJudgments {
        QueryJudgments {
            query: QueryId(q),
            rewrites: (0..d)
                .map(|i| JudgedRewrite {
                    rewrite: QueryId(100 + i as u32),
                    score: 0.5,
                    grade: Grade::Approximate,
                })
                .collect(),
        }
    }

    #[test]
    fn bands_are_cumulative() {
        let judgments = vec![
            with_depth(0, 5),
            with_depth(1, 5),
            with_depth(2, 3),
            with_depth(3, 1),
        ];
        let d = DepthDistribution::compute(&judgments, 5, 5); // one query missing → depth 0
        assert_eq!(d.counts[5], 2);
        assert_eq!(d.counts[3], 1);
        assert_eq!(d.counts[1], 1);
        assert_eq!(d.counts[0], 1);
        let bands = d.figure11_bands();
        assert!((bands[0] - 0.4).abs() < 1e-12); // exactly 5
        assert!((bands[1] - 0.4).abs() < 1e-12); // 4–5
        assert!((bands[2] - 0.6).abs() < 1e-12); // 3–5
        assert!((bands[3] - 0.6).abs() < 1e-12); // 2–5
        assert!((bands[4] - 0.8).abs() < 1e-12); // 1–5
                                                 // Bands never decrease.
        for w in bands.windows(2) {
            assert!(w[1] + 1e-12 >= w[0]);
        }
    }

    #[test]
    fn depth_above_cap_is_clamped() {
        let judgments = vec![with_depth(0, 9)];
        let d = DepthDistribution::compute(&judgments, 1, 5);
        assert_eq!(d.counts[5], 1);
    }

    #[test]
    fn mean_depth() {
        let judgments = vec![with_depth(0, 4), with_depth(1, 2)];
        let d = DepthDistribution::compute(&judgments, 2, 5);
        assert!((d.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample() {
        let d = DepthDistribution::compute(&[], 0, 5);
        assert_eq!(d.band(1, 5), 0.0);
        assert_eq!(d.mean(), 0.0);
    }
}
