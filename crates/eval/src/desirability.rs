//! The §9.3 edge-removal desirability-prediction experiment (Figure 12).
//!
//! For each of `n` trial queries `q1`:
//!
//! 1. find queries sharing ≥ 1 ad with `q1`; pick two candidates `q2`, `q3`
//!    such that after removing the shared edges each still has a path to
//!    `q1` (otherwise no similarity could possibly be inferred);
//! 2. the ground truth preference is the higher `des(q1, ·)` on the
//!    *original* graph;
//! 3. remove from `q1` every edge to an ad shared with `q2` or `q3` (the
//!    red dashed edges of Figure 7);
//! 4. recompute each method on the remaining graph and check whether its
//!    similarity ordering matches the desirability ordering. Ties in the
//!    final score fall back to the raw walk score (see `core::method`); a
//!    tie remaining after that counts as a miss.
//!
//! Pearson is excluded: with the shared edges removed it has no common ad
//! to work with, exactly as the paper notes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simrankpp_core::desirability::preferred_rewrite;
use simrankpp_core::{Method, MethodKind, SimrankConfig};
use simrankpp_graph::subgraph::remove_edges;
use simrankpp_graph::{AdId, ClickGraph, QueryId};
use std::collections::VecDeque;

/// Result of the experiment for one method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesirabilityOutcome {
    /// Method evaluated.
    pub method: String,
    /// Trials where the method's ordering matched the desirability ordering.
    pub correct: usize,
    /// Total trials.
    pub trials: usize,
}

impl DesirabilityOutcome {
    /// Fraction correct.
    pub fn accuracy(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.correct as f64 / self.trials as f64
        }
    }
}

/// One prepared trial.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The query being rewritten.
    pub q1: QueryId,
    /// First candidate.
    pub q2: QueryId,
    /// Second candidate.
    pub q3: QueryId,
    /// The ground-truth preferred candidate (by desirability).
    pub preferred: QueryId,
    /// The edges removed from `q1`.
    pub removed: Vec<(QueryId, AdId)>,
}

/// Prepares up to `n_trials` valid trials from `g`.
pub fn prepare_trials(
    g: &ClickGraph,
    n_trials: usize,
    config: &SimrankConfig,
    seed: u64,
) -> Vec<Trial> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trials = Vec::with_capacity(n_trials);
    let n_q = g.n_queries();
    if n_q < 3 {
        return trials;
    }
    let mut attempts = 0usize;
    let max_attempts = n_trials * 200;
    while trials.len() < n_trials && attempts < max_attempts {
        attempts += 1;
        let q1 = QueryId(rng.gen_range(0..n_q) as u32);
        // Queries sharing at least one ad with q1.
        let mut sharers: Vec<QueryId> = Vec::new();
        let (ads, _) = g.ads_of(q1);
        for &a in ads {
            let (qs, _) = g.queries_of(a);
            for &q in qs {
                if q != q1 && !sharers.contains(&q) {
                    sharers.push(q);
                }
            }
        }
        if sharers.len() < 2 {
            continue;
        }
        let i = rng.gen_range(0..sharers.len());
        let mut j = rng.gen_range(0..sharers.len());
        if i == j {
            j = (j + 1) % sharers.len();
        }
        let (q2, q3) = (sharers[i], sharers[j]);

        let Some(preferred) = preferred_rewrite(g, q1, q2, q3, config.weight_kind) else {
            continue; // desirability tie: no ground truth
        };

        // Edges to remove: q1's edges to ads shared with q2 or q3.
        let mut removed: Vec<(QueryId, AdId)> = Vec::new();
        for (a, _, _) in g.common_ads_iter(q1, q2) {
            removed.push((q1, a));
        }
        for (a, _, _) in g.common_ads_iter(q1, q3) {
            if !removed.contains(&(q1, a)) {
                removed.push((q1, a));
            }
        }
        // q1 must stay meaningfully embedded after removal. At the paper's
        // scale a random query keeps most of its neighborhood when the
        // shared edges go; on a small synthetic graph the removal can gut
        // q1 entirely, leaving nothing for any method to work with.
        if g.query_degree(q1) < removed.len() + 2 {
            continue;
        }
        // Connectivity requirement after removal.
        let pruned = remove_edges(g, &removed);
        if !connected(&pruned, q1, q2) || !connected(&pruned, q1, q3) {
            continue;
        }
        trials.push(Trial {
            q1,
            q2,
            q3,
            preferred,
            removed,
        });
    }
    trials
}

/// Runs the experiment for the given methods, returning one outcome each.
///
/// Per-trial scores are computed on the radius-`k+1` BFS ball around
/// `{q1, q2, q3}` (where `k = config.iterations`): `s^k(q1,q2)` depends only
/// on nodes within `k` edges of the endpoints — the iteration at depth `d`
/// reads degrees/normalized weights of distance-`d` nodes and the identity
/// diagonal at distance `k` — plus, for weighted SimRank, the `spread`
/// (incident-weight variance) of distance-`k` nodes, which needs their
/// distance-`k+1` neighbors. Radius `k+1` therefore makes localization
/// exact (up to FP summation order) while keeping trials cheap on large
/// graphs.
pub fn run_desirability_experiment(
    g: &ClickGraph,
    methods: &[MethodKind],
    n_trials: usize,
    config: &SimrankConfig,
    seed: u64,
) -> Vec<DesirabilityOutcome> {
    let trials = prepare_trials(g, n_trials, config, seed);
    let mut outcomes: Vec<DesirabilityOutcome> = methods
        .iter()
        .map(|m| DesirabilityOutcome {
            method: m.name().to_owned(),
            correct: 0,
            trials: trials.len(),
        })
        .collect();

    for trial in &trials {
        let pruned = remove_edges(g, &trial.removed);
        let (ball, q1, q2, q3) = local_ball(
            &pruned,
            [trial.q1, trial.q2, trial.q3],
            config.iterations + 1,
        );
        for (mi, &kind) in methods.iter().enumerate() {
            let method = Method::compute(kind, &ball, config);
            let (s2, r2) = method.score_with_tiebreak(q1, q2);
            let (s3, r3) = method.score_with_tiebreak(q1, q3);
            let predicted = if (s2, r2) > (s3, r3) {
                Some(trial.q2)
            } else if (s3, r3) > (s2, r2) {
                Some(trial.q3)
            } else {
                None // unresolved tie: a miss
            };
            if predicted == Some(trial.preferred) {
                outcomes[mi].correct += 1;
            }
        }
    }
    outcomes
}

/// Induced subgraph of all nodes within `radius` edges of the seeds, plus
/// the seeds' ids remapped into it.
fn local_ball(
    g: &ClickGraph,
    seeds: [QueryId; 3],
    radius: usize,
) -> (ClickGraph, QueryId, QueryId, QueryId) {
    use simrankpp_graph::NodeRef;
    let mut depth_q: Vec<Option<u32>> = vec![None; g.n_queries()];
    let mut depth_a: Vec<Option<u32>> = vec![None; g.n_ads()];
    let mut queue: VecDeque<NodeRef> = VecDeque::new();
    for s in seeds {
        if depth_q[s.index()].is_none() {
            depth_q[s.index()] = Some(0);
            queue.push_back(NodeRef::Query(s));
        }
    }
    while let Some(node) = queue.pop_front() {
        let d = match node {
            NodeRef::Query(q) => depth_q[q.index()].unwrap(),
            NodeRef::Ad(a) => depth_a[a.index()].unwrap(),
        };
        if d as usize >= radius {
            continue;
        }
        match node {
            NodeRef::Query(q) => {
                let (ads, _) = g.ads_of(q);
                for &a in ads {
                    if depth_a[a.index()].is_none() {
                        depth_a[a.index()] = Some(d + 1);
                        queue.push_back(NodeRef::Ad(a));
                    }
                }
            }
            NodeRef::Ad(a) => {
                let (qs, _) = g.queries_of(a);
                for &q in qs {
                    if depth_q[q.index()].is_none() {
                        depth_q[q.index()] = Some(d + 1);
                        queue.push_back(NodeRef::Query(q));
                    }
                }
            }
        }
    }
    let mut nodes: Vec<NodeRef> = Vec::new();
    for (i, d) in depth_q.iter().enumerate() {
        if d.is_some() {
            nodes.push(NodeRef::Query(QueryId(i as u32)));
        }
    }
    for (i, d) in depth_a.iter().enumerate() {
        if d.is_some() {
            nodes.push(NodeRef::Ad(simrankpp_graph::AdId(i as u32)));
        }
    }
    let (ball, mapping) = simrankpp_graph::subgraph::induced_subgraph(g, &nodes);
    let map = |q: QueryId| mapping.to_sub_query(q).expect("seed inside its own ball");
    (ball, map(seeds[0]), map(seeds[1]), map(seeds[2]))
}

/// BFS connectivity between two queries.
fn connected(g: &ClickGraph, from: QueryId, to: QueryId) -> bool {
    if from == to {
        return true;
    }
    let mut seen_q = vec![false; g.n_queries()];
    let mut seen_a = vec![false; g.n_ads()];
    let mut queue = VecDeque::new();
    seen_q[from.index()] = true;
    queue.push_back(simrankpp_graph::NodeRef::Query(from));
    while let Some(node) = queue.pop_front() {
        match node {
            simrankpp_graph::NodeRef::Query(q) => {
                let (ads, _) = g.ads_of(q);
                for &a in ads {
                    if !seen_a[a.index()] {
                        seen_a[a.index()] = true;
                        queue.push_back(simrankpp_graph::NodeRef::Ad(a));
                    }
                }
            }
            simrankpp_graph::NodeRef::Ad(a) => {
                let (qs, _) = g.queries_of(a);
                for &q in qs {
                    if q == to {
                        return true;
                    }
                    if !seen_q[q.index()] {
                        seen_q[q.index()] = true;
                        queue.push_back(simrankpp_graph::NodeRef::Query(q));
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::WeightKind;
    use simrankpp_synth::{generator::generate, GeneratorConfig};

    fn cfg() -> SimrankConfig {
        SimrankConfig::default()
            .with_iterations(5)
            .with_weight_kind(WeightKind::ExpectedClickRate)
    }

    #[test]
    fn trials_are_well_formed() {
        let d = generate(&GeneratorConfig::tiny());
        let trials = prepare_trials(&d.graph, 10, &cfg(), 7);
        for t in &trials {
            assert_ne!(t.q1, t.q2);
            assert_ne!(t.q1, t.q3);
            assert_ne!(t.q2, t.q3);
            assert!(t.preferred == t.q2 || t.preferred == t.q3);
            assert!(!t.removed.is_empty(), "trial must remove direct evidence");
            // After removal, no common ads remain between q1 and q2/q3.
            let pruned = remove_edges(&d.graph, &t.removed);
            assert_eq!(pruned.common_ads(t.q1, t.q2), 0);
            assert_eq!(pruned.common_ads(t.q1, t.q3), 0);
            assert!(connected(&pruned, t.q1, t.q2));
        }
    }

    #[test]
    fn experiment_runs_all_methods() {
        let d = generate(&GeneratorConfig::tiny());
        let methods = [
            MethodKind::Simrank,
            MethodKind::EvidenceSimrank,
            MethodKind::WeightedSimrank,
        ];
        let outcomes = run_desirability_experiment(&d.graph, &methods, 6, &cfg(), 11);
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            assert!(o.correct <= o.trials);
            assert!((0.0..=1.0).contains(&o.accuracy()));
        }
    }

    #[test]
    fn weighted_beats_unweighted_on_synthetic_data() {
        // The Figure 12 shape: weighted SimRank predicts desirability far
        // better than the structure-only variants.
        let d = generate(&GeneratorConfig::tiny().with_seed(5));
        let methods = [MethodKind::Simrank, MethodKind::WeightedSimrank];
        let outcomes = run_desirability_experiment(&d.graph, &methods, 15, &cfg(), 23);
        assert!(outcomes[0].trials >= 5, "need enough valid trials");
        assert!(
            outcomes[1].correct >= outcomes[0].correct,
            "weighted ({}/{}) should be at least as good as plain ({}/{})",
            outcomes[1].correct,
            outcomes[1].trials,
            outcomes[0].correct,
            outcomes[0].trials
        );
    }

    #[test]
    fn ball_localization_is_exact() {
        // s^k on the radius-k ball must equal s^k on the whole graph for
        // the trial pairs, for every method.
        let d = generate(&GeneratorConfig::tiny());
        let cfg = cfg();
        let trials = prepare_trials(&d.graph, 4, &cfg, 3);
        assert!(!trials.is_empty());
        for t in &trials {
            let pruned = remove_edges(&d.graph, &t.removed);
            let (ball, q1, q2, q3) =
                super::local_ball(&pruned, [t.q1, t.q2, t.q3], cfg.iterations + 1);
            for kind in [
                MethodKind::Simrank,
                MethodKind::EvidenceSimrank,
                MethodKind::WeightedSimrank,
            ] {
                let full = Method::compute(kind, &pruned, &cfg);
                let local = Method::compute(kind, &ball, &cfg);
                let (fs2, fr2) = full.score_with_tiebreak(t.q1, t.q2);
                let (ls2, lr2) = local.score_with_tiebreak(q1, q2);
                assert!(
                    (fs2 - ls2).abs() < 1e-9 && (fr2 - lr2).abs() < 1e-9,
                    "{}: ball score differs beyond FP reassociation tolerance: ({fs2},{fr2}) vs ({ls2},{lr2})",
                    kind.name()
                );
                let (fs3, fr3) = full.score_with_tiebreak(t.q1, t.q3);
                let (ls3, lr3) = local.score_with_tiebreak(q1, q3);
                assert!((fs3 - ls3).abs() < 1e-9 && (fr3 - lr3).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn connectivity_helper() {
        use simrankpp_graph::fixtures::figure3_graph;
        let g = figure3_graph();
        let q = |n: &str| g.query_by_name(n).unwrap();
        assert!(connected(&g, q("pc"), q("tv")));
        assert!(!connected(&g, q("pc"), q("flower")));
        assert!(connected(&g, q("pc"), q("pc")));
    }

    #[test]
    fn tiny_graph_yields_no_trials() {
        use simrankpp_graph::{ClickGraphBuilder, EdgeData};
        let mut b = ClickGraphBuilder::new();
        b.add_named("a", "x", EdgeData::from_clicks(1));
        let g = b.build();
        assert!(prepare_trials(&g, 5, &cfg(), 1).is_empty());
    }
}
