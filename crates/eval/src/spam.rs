//! The adversarial click-spam scenario (§11's open problem, streamed).
//!
//! `simrankpp_synth::spam` fabricates similarity paths: a spam ad clicked
//! from many unrelated queries makes those queries look related. The paper
//! notes its evidence weighting should resist this; the streaming layer
//! adds a second, stronger defense — a campaign is a *burst*, and a
//! sliding window simply ages it out while organic evidence keeps
//! arriving.
//!
//! This module measures both defenses with one metric, **contamination**:
//! the fraction of served rewrites that are *fabricated*, i.e. the query
//! and its rewrite lie in **different connected components** of the
//! spam-free reference graph. SimRank similarity across components is
//! exactly zero (no even-length path, no score), so a served
//! cross-component pair can only have come from the campaign's bridging
//! edges — unlike "no common ad", which legitimate multi-hop similarity
//! triggers too. The metric needs no human judgments — the clean graph
//! itself is the ground truth — which keeps it cheap enough for proptest
//! and `bench_ci` gates.
//!
//! [`run_windowed_spam_experiment`] replays one timeline twice: organic
//! edges are re-observed every epoch, the campaign only in the early
//! epochs. A no-windowing observer (window spans the whole timeline)
//! still holds every spam click at the end; a windowed observer has
//! retired them all. The windowed contamination is gated at zero —
//! expiry removes the spam *edges*, not merely their weight.

use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
use simrankpp_graph::components::connected_components;
use simrankpp_graph::{ClickGraph, SlidingWindowGraph};
use simrankpp_synth::spam::{inject_click_spam, SpamConfig};

/// Contamination tally of one rewriter against a spam-free reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpamImpact {
    /// Reference queries that served at least one rewrite.
    pub covered_queries: usize,
    /// Rewrites served across all reference queries.
    pub rewrites: usize,
    /// Served rewrites crossing reference-graph components — pairs only
    /// the campaign could have related.
    pub fabricated: usize,
}

impl SpamImpact {
    /// Fabricated fraction of served rewrites (0 when nothing is served).
    pub fn contamination(&self) -> f64 {
        if self.rewrites == 0 {
            0.0
        } else {
            self.fabricated as f64 / self.rewrites as f64
        }
    }
}

/// Runs the full §9.3 pipeline of `kind` over `observed` and tallies, for
/// every reference query, how many served rewrites are fabricated — query
/// pairs in different connected components of `clean`. Both graphs must
/// be named (queries are matched by name, so the two graphs may intern in
/// different orders).
pub fn spam_contamination(
    clean: &ClickGraph,
    observed: &ClickGraph,
    kind: MethodKind,
    config: &SimrankConfig,
    rewriter_config: RewriterConfig,
) -> SpamImpact {
    assert!(
        clean.query_interner().is_some() && observed.query_interner().is_some(),
        "contamination matches queries by name: both graphs must be named"
    );
    let labels = connected_components(clean);
    let method = Method::compute(kind, observed, config);
    let rewriter = Rewriter::new(observed, method, rewriter_config);
    let mut impact = SpamImpact {
        covered_queries: 0,
        rewrites: 0,
        fabricated: 0,
    };
    for q_clean in clean.queries() {
        let name = clean.query_name(q_clean).expect("named graph");
        let Some(q_obs) = observed.query_by_name(name) else {
            continue;
        };
        let served = rewriter.rewrites(q_obs, None);
        if served.is_empty() {
            continue;
        }
        impact.covered_queries += 1;
        for rewrite in &served {
            impact.rewrites += 1;
            let fabricated = match rewrite.name.as_deref().and_then(|n| clean.query_by_name(n)) {
                Some(r_clean) => {
                    labels.query_label[q_clean.index()] != labels.query_label[r_clean.index()]
                }
                // A rewrite the clean graph does not even know is
                // fabricated by definition.
                None => true,
            };
            impact.fabricated += usize::from(fabricated);
        }
    }
    impact
}

/// Shape of one streamed spam-campaign timeline.
#[derive(Debug, Clone, Copy)]
pub struct SpamTimeline {
    /// Total epochs replayed (organic edges re-observed in each).
    pub epochs: u64,
    /// The campaign runs in epochs `0..spam_epochs`.
    pub spam_epochs: u64,
    /// The windowed observer's window, in epochs. Must satisfy
    /// `spam_epochs + window <= epochs` so the campaign has fully retired
    /// by the end of the replay.
    pub window: usize,
    /// The campaign itself.
    pub spam: SpamConfig,
}

impl Default for SpamTimeline {
    fn default() -> Self {
        SpamTimeline {
            epochs: 6,
            spam_epochs: 2,
            window: 3,
            spam: SpamConfig::default(),
        }
    }
}

/// Outcome of [`run_windowed_spam_experiment`]: the same timeline seen by
/// an unwindowed and a windowed observer.
#[derive(Debug, Clone, Copy)]
pub struct WindowedSpamOutcome {
    /// Contamination with no expiry — every spam click still counts.
    pub unwindowed: SpamImpact,
    /// Contamination after the window retired the campaign epochs.
    pub windowed: SpamImpact,
}

/// Replays `clean`'s edges for `timeline.epochs` epochs with a spam
/// campaign occupying the first `timeline.spam_epochs`, then measures
/// contamination as served by a no-windowing observer and by a
/// `timeline.window`-epoch sliding window. Windowing removes the spam
/// *edges* outright, so the windowed observer's contamination is exactly
/// zero; the unwindowed observer's is whatever the method's evidence
/// weighting fails to suppress.
pub fn run_windowed_spam_experiment(
    clean: &ClickGraph,
    timeline: &SpamTimeline,
    kind: MethodKind,
    config: &SimrankConfig,
    rewriter_config: RewriterConfig,
) -> WindowedSpamOutcome {
    assert!(
        timeline.spam_epochs + timeline.window as u64 <= timeline.epochs,
        "the window must have fully retired the campaign by the last epoch"
    );
    let (spammed, _) = inject_click_spam(clean, &timeline.spam);
    let mut unwindowed = SlidingWindowGraph::new(timeline.epochs as usize);
    let mut windowed = SlidingWindowGraph::new(timeline.window);
    for epoch in 0..timeline.epochs {
        let source = if epoch < timeline.spam_epochs {
            &spammed
        } else {
            clean
        };
        for (q, a, e) in source.edges() {
            let name_q = source.query_name(q).expect("named graph");
            let name_a = source.ad_name(a).expect("named graph");
            unwindowed.observe(name_q, name_a, *e);
            windowed.observe(name_q, name_a, *e);
        }
        unwindowed.advance();
        windowed.advance();
    }
    WindowedSpamOutcome {
        unwindowed: spam_contamination(clean, &unwindowed.freeze(), kind, config, rewriter_config),
        windowed: spam_contamination(clean, &windowed.freeze(), kind, config, rewriter_config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_synth::generator::{generate, GeneratorConfig};

    fn clean_graph() -> ClickGraph {
        generate(&GeneratorConfig::tiny()).graph
    }

    fn config() -> SimrankConfig {
        SimrankConfig::default()
    }

    #[test]
    fn clean_graph_has_zero_contamination() {
        let clean = clean_graph();
        let impact = spam_contamination(
            &clean,
            &clean,
            MethodKind::WeightedSimrank,
            &config(),
            RewriterConfig::default(),
        );
        assert_eq!(impact.fabricated, 0);
        assert_eq!(impact.contamination(), 0.0);
        assert!(impact.rewrites > 0, "the tiny graph serves some rewrites");
    }

    #[test]
    fn spam_campaign_contaminates_the_unwindowed_observer() {
        let clean = clean_graph();
        let outcome = run_windowed_spam_experiment(
            &clean,
            &SpamTimeline::default(),
            MethodKind::WeightedSimrank,
            &config(),
            RewriterConfig::default(),
        );
        assert!(
            outcome.unwindowed.fabricated > 0,
            "the campaign must fabricate rewrites without expiry: {outcome:?}"
        );
        assert_eq!(
            outcome.windowed.fabricated, 0,
            "expiry removes the spam edges outright: {outcome:?}"
        );
        assert!(outcome.windowed.rewrites > 0, "organic service continues");
    }

    #[test]
    fn evidence_weighting_blunts_what_plain_simrank_swallows() {
        // §6's motivation, measured: on the same spammed graph, the
        // evidence-weighted variants fabricate no more than plain
        // SimRank — common-neighbor evidence discounts the spam ad's
        // single shared path.
        let clean = clean_graph();
        let (spammed, _) = inject_click_spam(&clean, &SpamConfig::default());
        let at = |kind| {
            spam_contamination(&clean, &spammed, kind, &config(), RewriterConfig::default())
                .contamination()
        };
        let plain = at(MethodKind::Simrank);
        let weighted = at(MethodKind::WeightedSimrank);
        assert!(plain > 0.0, "spam must register on plain SimRank");
        assert!(
            weighted <= plain,
            "evidence weighting must not amplify spam: weighted {weighted} vs plain {plain}"
        );
    }

    #[test]
    fn timeline_shorter_than_window_retirement_is_rejected() {
        let clean = clean_graph();
        let bad = SpamTimeline {
            epochs: 3,
            spam_epochs: 2,
            window: 3,
            ..SpamTimeline::default()
        };
        let result = std::panic::catch_unwind(|| {
            run_windowed_spam_experiment(
                &clean,
                &bad,
                MethodKind::WeightedSimrank,
                &config(),
                RewriterConfig::default(),
            )
        });
        assert!(result.is_err(), "a still-visible campaign must be refused");
    }
}
