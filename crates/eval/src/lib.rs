//! Evaluation harness for the paper's §9–§10 experiments.
//!
//! * [`judgments`] — per-query judged rewrite lists (the unit all metrics
//!   consume);
//! * [`metrics`] — §9.4 metrics: precision/recall with pooled relevance,
//!   11-point interpolated precision-recall curves, P@X;
//! * [`depth`] — the Figure 11 rewriting-depth distribution;
//! * [`desirability`] — the §9.3 edge-removal desirability-prediction
//!   experiment (Figure 12);
//! * [`experiment`] — the end-to-end driver: generate → extract five
//!   subgraphs → sample evaluation queries → run all four methods → judge →
//!   aggregate (regenerates Table 5 and Figures 8–12);
//! * [`report`] — paper-style text rendering of the results;
//! * [`spam`] — the §11 adversarial click-spam scenario: contamination of
//!   served rewrites against a spam-free reference, and the streamed
//!   timeline showing window expiry plus evidence weighting blunt a
//!   campaign.

pub mod depth;
pub mod desirability;
pub mod experiment;
pub mod judgments;
pub mod metrics;
pub mod report;
pub mod spam;

pub use depth::DepthDistribution;
pub use desirability::{run_desirability_experiment, DesirabilityOutcome};
pub use experiment::{run_experiment, ExperimentConfig, ExperimentReport, MethodReport};
pub use judgments::{JudgedRewrite, QueryJudgments};
pub use metrics::{interpolated_pr_curve, precision_at_x, PrCurve, RelevanceThreshold};
pub use spam::{
    run_windowed_spam_experiment, spam_contamination, SpamImpact, SpamTimeline, WindowedSpamOutcome,
};
