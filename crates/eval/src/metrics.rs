//! §9.4 metrics: precision/recall with pooled relevance, 11-point
//! interpolated precision-recall curves (Figures 9–10 top), and precision
//! after X rewrites (Figures 9–10 bottom).
//!
//! Relevance is binary at one of two thresholds:
//! * **Grade12** — grades {1,2} positive, {3,4} negative (Figure 9);
//! * **Grade1** — grade {1} positive, {2,3,4} negative (Figure 10).
//!
//! Recall needs a base: per the paper, "the number of relevant rewrites for
//! q among all methods" — the pooled union of relevant rewrites any
//! evaluated method produced for `q`.

use crate::judgments::QueryJudgments;
use serde::{Deserialize, Serialize};
use simrankpp_graph::QueryId;
use simrankpp_synth::Grade;
use simrankpp_util::{FxHashMap, FxHashSet};

/// Which binary relevance task is being scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelevanceThreshold {
    /// Grades {1,2} relevant (Figure 9).
    Grade12,
    /// Grade {1} relevant (Figure 10, "threshold 1").
    Grade1,
}

impl RelevanceThreshold {
    /// Is `grade` relevant under this threshold?
    pub fn is_relevant(self, grade: Grade) -> bool {
        match self {
            RelevanceThreshold::Grade12 => grade.relevant_at_2(),
            RelevanceThreshold::Grade1 => grade.relevant_at_1(),
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            RelevanceThreshold::Grade12 => "scores {1-2} positive",
            RelevanceThreshold::Grade1 => "score {1} positive",
        }
    }
}

/// Builds the pooled relevant-rewrite sets: for each query, the union of
/// relevant rewrites over all methods' judgment lists.
pub fn pooled_relevant(
    all_methods: &[&[QueryJudgments]],
    threshold: RelevanceThreshold,
) -> FxHashMap<QueryId, FxHashSet<QueryId>> {
    let mut pool: FxHashMap<QueryId, FxHashSet<QueryId>> = FxHashMap::default();
    for method in all_methods {
        for qj in *method {
            let set = pool.entry(qj.query).or_default();
            for r in &qj.rewrites {
                if threshold.is_relevant(r.grade) {
                    set.insert(r.rewrite);
                }
            }
        }
    }
    pool
}

/// Micro-averaged precision after X rewrites: of all rewrites the method
/// placed in ranks 1..=X (over all queries), the fraction that is relevant.
/// (Figure 9's caption reads P@2 = 93% as "93% of its rewrites in the top
/// two ranks were given scores of 1 or 2".)
pub fn precision_at_x(
    judgments: &[QueryJudgments],
    x: usize,
    threshold: RelevanceThreshold,
) -> f64 {
    let mut shown = 0usize;
    let mut relevant = 0usize;
    for qj in judgments {
        for r in qj.rewrites.iter().take(x) {
            shown += 1;
            if threshold.is_relevant(r.grade) {
                relevant += 1;
            }
        }
    }
    if shown == 0 {
        0.0
    } else {
        relevant as f64 / shown as f64
    }
}

/// An 11-point interpolated precision-recall curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrCurve {
    /// Interpolated precision at recall 0.0, 0.1, …, 1.0.
    pub precision_at_recall: [f64; 11],
    /// Number of queries that contributed (had a nonempty pooled set).
    pub queries_scored: usize,
}

/// Standard 11-point interpolated precision-recall, macro-averaged over
/// queries. The per-query recall base is the pooled relevant set.
pub fn interpolated_pr_curve(
    judgments: &[QueryJudgments],
    pool: &FxHashMap<QueryId, FxHashSet<QueryId>>,
    threshold: RelevanceThreshold,
) -> PrCurve {
    let mut sums = [0.0f64; 11];
    let mut scored = 0usize;

    for qj in judgments {
        let Some(relevant_set) = pool.get(&qj.query) else {
            continue;
        };
        if relevant_set.is_empty() {
            continue;
        }
        scored += 1;
        let base = relevant_set.len() as f64;

        // Precision/recall after each rank.
        let mut rel_so_far = 0usize;
        let mut points: Vec<(f64, f64)> = Vec::with_capacity(qj.rewrites.len());
        for (rank, r) in qj.rewrites.iter().enumerate() {
            if threshold.is_relevant(r.grade) && relevant_set.contains(&r.rewrite) {
                rel_so_far += 1;
            }
            let precision = rel_so_far as f64 / (rank + 1) as f64;
            let recall = rel_so_far as f64 / base;
            points.push((recall, precision));
        }
        // Interpolate: p_interp(r) = max precision at recall ≥ r.
        for (level_idx, sum) in sums.iter_mut().enumerate() {
            let level = level_idx as f64 / 10.0;
            let p = points
                .iter()
                .filter(|&&(r, _)| r + 1e-12 >= level)
                .map(|&(_, p)| p)
                .fold(0.0f64, f64::max);
            *sum += p;
        }
    }

    let mut precision_at_recall = [0.0f64; 11];
    if scored > 0 {
        for (i, s) in sums.iter().enumerate() {
            precision_at_recall[i] = s / scored as f64;
        }
    }
    PrCurve {
        precision_at_recall,
        queries_scored: scored,
    }
}

/// Macro-averaged plain precision (over queries that produced ≥1 rewrite).
pub fn mean_precision(judgments: &[QueryJudgments], threshold: RelevanceThreshold) -> f64 {
    let mut total = 0.0f64;
    let mut n = 0usize;
    for qj in judgments {
        if qj.rewrites.is_empty() {
            continue;
        }
        n += 1;
        total += qj.relevant_count(threshold) as f64 / qj.rewrites.len() as f64;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Macro-averaged recall against the pooled base.
pub fn mean_recall(
    judgments: &[QueryJudgments],
    pool: &FxHashMap<QueryId, FxHashSet<QueryId>>,
    threshold: RelevanceThreshold,
) -> f64 {
    let mut total = 0.0f64;
    let mut n = 0usize;
    for qj in judgments {
        let Some(relevant_set) = pool.get(&qj.query) else {
            continue;
        };
        if relevant_set.is_empty() {
            continue;
        }
        n += 1;
        let hit = qj
            .rewrites
            .iter()
            .filter(|r| threshold.is_relevant(r.grade) && relevant_set.contains(&r.rewrite))
            .count();
        total += hit as f64 / relevant_set.len() as f64;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::judgments::JudgedRewrite;

    fn jr(id: u32, grade: Grade) -> JudgedRewrite {
        JudgedRewrite {
            rewrite: QueryId(id),
            score: 1.0 / (id + 1) as f64,
            grade,
        }
    }

    fn method_a() -> Vec<QueryJudgments> {
        vec![QueryJudgments {
            query: QueryId(0),
            rewrites: vec![
                jr(1, Grade::Precise),
                jr(2, Grade::Mismatch),
                jr(3, Grade::Approximate),
            ],
        }]
    }

    fn method_b() -> Vec<QueryJudgments> {
        vec![QueryJudgments {
            query: QueryId(0),
            rewrites: vec![jr(4, Grade::Approximate), jr(1, Grade::Precise)],
        }]
    }

    #[test]
    fn pool_unions_methods() {
        let a = method_a();
        let b = method_b();
        let pool = pooled_relevant(&[&a, &b], RelevanceThreshold::Grade12);
        let set = &pool[&QueryId(0)];
        // Relevant: 1 (precise), 3 (approx), 4 (approx).
        assert_eq!(set.len(), 3);
        assert!(
            set.contains(&QueryId(1)) && set.contains(&QueryId(3)) && set.contains(&QueryId(4))
        );
    }

    #[test]
    fn pool_respects_threshold() {
        let a = method_a();
        let b = method_b();
        let pool = pooled_relevant(&[&a, &b], RelevanceThreshold::Grade1);
        assert_eq!(pool[&QueryId(0)].len(), 1);
    }

    #[test]
    fn precision_at_x_micro_average() {
        let a = method_a();
        // Top-1: 1 relevant of 1 → 1.0. Top-2: 1 of 2 → 0.5. Top-3: 2/3.
        assert_eq!(precision_at_x(&a, 1, RelevanceThreshold::Grade12), 1.0);
        assert_eq!(precision_at_x(&a, 2, RelevanceThreshold::Grade12), 0.5);
        assert!((precision_at_x(&a, 3, RelevanceThreshold::Grade12) - 2.0 / 3.0).abs() < 1e-12);
        // X beyond depth: same as depth.
        assert!((precision_at_x(&a, 5, RelevanceThreshold::Grade12) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn precision_at_x_empty() {
        assert_eq!(precision_at_x(&[], 3, RelevanceThreshold::Grade12), 0.0);
    }

    #[test]
    fn pr_curve_monotone_nonincreasing() {
        let a = method_a();
        let b = method_b();
        let pool = pooled_relevant(&[&a, &b], RelevanceThreshold::Grade12);
        let curve = interpolated_pr_curve(&a, &pool, RelevanceThreshold::Grade12);
        assert_eq!(curve.queries_scored, 1);
        for w in curve.precision_at_recall.windows(2) {
            assert!(
                w[0] + 1e-12 >= w[1],
                "interpolated precision must not increase"
            );
        }
        // Recall 0 level: best precision anywhere = 1.0 (first rewrite hit).
        assert_eq!(curve.precision_at_recall[0], 1.0);
    }

    #[test]
    fn pr_curve_perfect_method() {
        let perfect = vec![QueryJudgments {
            query: QueryId(0),
            rewrites: vec![jr(1, Grade::Precise), jr(2, Grade::Precise)],
        }];
        let pool = pooled_relevant(&[&perfect], RelevanceThreshold::Grade12);
        let curve = interpolated_pr_curve(&perfect, &pool, RelevanceThreshold::Grade12);
        for &p in &curve.precision_at_recall {
            assert_eq!(p, 1.0);
        }
    }

    #[test]
    fn mean_precision_recall() {
        let a = method_a();
        let b = method_b();
        let pool = pooled_relevant(&[&a, &b], RelevanceThreshold::Grade12);
        // A: 2 relevant of 3 produced → precision 2/3; recall 2 of pooled 3.
        assert!((mean_precision(&a, RelevanceThreshold::Grade12) - 2.0 / 3.0).abs() < 1e-12);
        assert!((mean_recall(&a, &pool, RelevanceThreshold::Grade12) - 2.0 / 3.0).abs() < 1e-12);
        // B: 2 of 2 → precision 1; recall 2/3.
        assert!((mean_precision(&b, RelevanceThreshold::Grade12) - 1.0).abs() < 1e-12);
        assert!((mean_recall(&b, &pool, RelevanceThreshold::Grade12) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn queries_without_pool_are_skipped() {
        let a = method_a();
        let pool = FxHashMap::default();
        let curve = interpolated_pr_curve(&a, &pool, RelevanceThreshold::Grade12);
        assert_eq!(curve.queries_scored, 0);
        assert_eq!(mean_recall(&a, &pool, RelevanceThreshold::Grade12), 0.0);
    }
}
