//! The end-to-end §9 experiment driver.
//!
//! Reproduces the paper's pipeline:
//!
//! 1. **Dataset** — generate the synthetic click graph (stand-in for the
//!    two-week Yahoo! graph), extract five disjoint subgraphs with the ACL
//!    partitioner, and take their union as the evaluation graph (Table 5);
//! 2. **Evaluation queries** — sample `eval_sample_size` queries from
//!    traffic (popularity-weighted), keep those present in the evaluation
//!    graph (the paper's 1200 → 120 step);
//! 3. **Methods** — run Pearson, SimRank, evidence-based SimRank and
//!    weighted SimRank; produce ≤ 5 rewrites per query through the §9.3
//!    pipeline (top-100 → stem dedup → bid filter → top-5);
//! 4. **Judging** — grade every (query, rewrite) pair with the simulated
//!    editorial judge (Table 6 rubric on planted ground truth);
//! 5. **Metrics** — coverage (Figure 8), 11-point interpolated P/R and P@X
//!    at both relevance thresholds (Figures 9–10), depth bands (Figure 11),
//!    and the desirability experiment (Figure 12).

use crate::depth::DepthDistribution;
use crate::desirability::{run_desirability_experiment, DesirabilityOutcome};
use crate::judgments::{JudgedRewrite, QueryJudgments};
use crate::metrics::{
    interpolated_pr_curve, mean_precision, mean_recall, pooled_relevant, precision_at_x, PrCurve,
    RelevanceThreshold,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use simrankpp_core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
use simrankpp_graph::subgraph::{induced_subgraph, SubgraphMapping};
use simrankpp_graph::{ClickGraph, GraphStats, NodeRef, QueryId};
use simrankpp_partition::{extract_subgraphs, ExtractConfig};
use simrankpp_synth::generator::{generate, GeneratorConfig, SynthDataset};
use simrankpp_synth::traffic::sample_eval_queries;
use simrankpp_synth::EditorialJudge;
use simrankpp_util::FxHashSet;

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Synthetic dataset parameters.
    pub generator: GeneratorConfig,
    /// Subgraph extraction parameters (five subgraphs in the paper).
    pub extract: ExtractConfig,
    /// SimRank parameters shared by all variants.
    pub simrank: SimrankConfig,
    /// Rewriting pipeline parameters.
    pub rewriter: RewriterConfig,
    /// Size of the traffic sample (1200 in the paper, pre-restriction).
    pub eval_sample_size: usize,
    /// Trials for the desirability experiment (50 in the paper).
    pub desirability_trials: usize,
    /// Seed for sampling steps.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A fast configuration for tests and the quickstart example.
    pub fn fast() -> Self {
        ExperimentConfig {
            generator: GeneratorConfig::tiny(),
            extract: ExtractConfig {
                n_subgraphs: 2,
                min_size: 6,
                max_size: 60,
                ..ExtractConfig::default()
            },
            simrank: SimrankConfig::default().with_iterations(5),
            rewriter: RewriterConfig::default(),
            eval_sample_size: 30,
            desirability_trials: 8,
            seed: 0x5EED,
        }
    }

    /// The paper-shaped configuration at example scale (~2k queries).
    pub fn paper_shaped() -> Self {
        ExperimentConfig {
            generator: GeneratorConfig::small(),
            extract: ExtractConfig {
                n_subgraphs: 5,
                min_size: 20,
                max_size: 1200,
                ..ExtractConfig::default()
            },
            simrank: SimrankConfig::default().with_iterations(7),
            rewriter: RewriterConfig::default(),
            eval_sample_size: 1200,
            desirability_trials: 50,
            seed: 0x5EED,
        }
    }
}

/// Per-method results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodReport {
    /// Method display name.
    pub method: String,
    /// Figure 8: fraction of evaluation queries with ≥ 1 rewrite.
    pub coverage: f64,
    /// Figures 9/10 bottom: micro-averaged P@1..=5, threshold {1,2}.
    pub p_at_x_grade12: [f64; 5],
    /// P@1..=5 with only grade 1 positive.
    pub p_at_x_grade1: [f64; 5],
    /// Figure 9 top: 11-point interpolated P/R, threshold {1,2}.
    pub pr_grade12: PrCurve,
    /// Figure 10 top: 11-point interpolated P/R, threshold {1}.
    pub pr_grade1: PrCurve,
    /// Mean plain precision / pooled recall at threshold {1,2}.
    pub mean_precision_grade12: f64,
    /// Mean pooled recall at threshold {1,2}.
    pub mean_recall_grade12: f64,
    /// Figure 11 bands `[5, 4–5, 3–5, 2–5, 1–5]`.
    pub depth_bands: [f64; 5],
    /// Mean rewrites per query.
    pub mean_depth: f64,
}

/// The whole experiment's outputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Table 5: per-subgraph (queries, ads, edges) plus the total row.
    pub table5: Vec<(usize, usize, usize)>,
    /// Size of the traffic sample drawn.
    pub sampled_queries: usize,
    /// Evaluation queries that landed in the evaluation graph.
    pub eval_queries: usize,
    /// Per-method §9.4 metrics (Figures 8–11).
    pub methods: Vec<MethodReport>,
    /// Figure 12 outcomes (methods that support it).
    pub desirability: Vec<DesirabilityOutcome>,
}

/// Runs the full experiment.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentReport {
    let dataset = generate(&config.generator);
    run_experiment_on(config, &dataset)
}

/// Runs the experiment on an existing dataset (lets callers reuse one
/// generation across ablations).
pub fn run_experiment_on(config: &ExperimentConfig, dataset: &SynthDataset) -> ExperimentReport {
    // --- 1. Extract subgraphs and build the evaluation graph. -------------
    let subs = extract_subgraphs(&dataset.graph, &config.extract);
    let mut table5: Vec<(usize, usize, usize)> = subs
        .iter()
        .map(|s| GraphStats::compute(&s.graph).table5_row())
        .collect();

    // Disjoint union of the subgraphs → one evaluation graph. The induced
    // subgraph over the union of node sets can contain edges *between*
    // subgraphs; the paper's five-subgraphs dataset is a true disjoint
    // union (Table 5's total row sums its parts), so those cross edges are
    // removed.
    let mut union_nodes: Vec<NodeRef> = Vec::new();
    let mut sub_of_query: simrankpp_util::FxHashMap<u32, usize> =
        simrankpp_util::FxHashMap::default();
    let mut sub_of_ad: simrankpp_util::FxHashMap<u32, usize> = simrankpp_util::FxHashMap::default();
    for (i, s) in subs.iter().enumerate() {
        for &q in &s.mapping.queries {
            union_nodes.push(NodeRef::Query(q));
            sub_of_query.insert(q.0, i);
        }
        for &a in &s.mapping.ads {
            union_nodes.push(NodeRef::Ad(a));
            sub_of_ad.insert(a.0, i);
        }
    }
    let (eval_graph, mapping): (ClickGraph, SubgraphMapping) = if union_nodes.is_empty() {
        // Degenerate fallback: evaluate on the whole graph.
        let all: Vec<NodeRef> = dataset.graph.nodes().collect();
        induced_subgraph(&dataset.graph, &all)
    } else {
        let (unioned, mapping) = induced_subgraph(&dataset.graph, &union_nodes);
        let cross: Vec<(QueryId, simrankpp_graph::AdId)> = unioned
            .edges()
            .filter(|&(q, a, _)| {
                let pq = mapping.to_parent_query(q);
                let pa = mapping.to_parent_ad(a);
                sub_of_query.get(&pq.0) != sub_of_ad.get(&pa.0)
            })
            .map(|(q, a, _)| (q, a))
            .collect();
        if cross.is_empty() {
            (unioned, mapping)
        } else {
            (
                simrankpp_graph::subgraph::remove_edges(&unioned, &cross),
                mapping,
            )
        }
    };
    let total = GraphStats::compute(&eval_graph).table5_row();
    table5.push(total);

    // --- 2. Sample evaluation queries from traffic. -----------------------
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let sample = sample_eval_queries(
        &dataset.world.query_popularity,
        config.eval_sample_size,
        &mut rng,
    );
    // Keep queries that exist in the evaluation graph with ≥1 edge.
    let eval_pairs: Vec<(QueryId, QueryId)> = sample
        .iter()
        .filter_map(|&parent| {
            mapping
                .to_sub_query(parent)
                .and_then(|sub| (eval_graph.query_degree(sub) > 0).then_some((parent, sub)))
        })
        .collect();

    // Bid list in evaluation-graph ids.
    let bid_terms: FxHashSet<QueryId> = dataset
        .world
        .bids
        .iter()
        .filter_map(|&parent| mapping.to_sub_query(parent))
        .collect();

    // --- 3+4. Run methods, produce and judge rewrites. ---------------------
    let judge = EditorialJudge::new(&dataset.world);
    let kinds = MethodKind::EVALUATED;
    let mut per_method_judgments: Vec<Vec<QueryJudgments>> = Vec::with_capacity(kinds.len());
    for kind in kinds {
        let method = Method::compute(kind, &eval_graph, &config.simrank);
        let rewriter = Rewriter::new(&eval_graph, method, config.rewriter);
        let mut judgments = Vec::with_capacity(eval_pairs.len());
        for &(parent_q, sub_q) in &eval_pairs {
            let rewrites = rewriter.rewrites(sub_q, Some(&bid_terms));
            let judged: Vec<JudgedRewrite> = rewrites
                .into_iter()
                .map(|rw| {
                    let parent_rw = mapping.to_parent_query(rw.query);
                    JudgedRewrite {
                        rewrite: rw.query,
                        score: rw.score,
                        grade: judge.judge(parent_q, parent_rw),
                    }
                })
                .collect();
            judgments.push(QueryJudgments {
                query: sub_q,
                rewrites: judged,
            });
        }
        per_method_judgments.push(judgments);
    }

    // --- 5. Metrics. --------------------------------------------------------
    let judgment_refs: Vec<&[QueryJudgments]> =
        per_method_judgments.iter().map(|v| v.as_slice()).collect();
    let pool12 = pooled_relevant(&judgment_refs, RelevanceThreshold::Grade12);
    let pool1 = pooled_relevant(&judgment_refs, RelevanceThreshold::Grade1);

    let n_eval = eval_pairs.len();
    let mut methods = Vec::with_capacity(kinds.len());
    for (kind, judgments) in kinds.iter().zip(&per_method_judgments) {
        let covered = judgments.iter().filter(|j| !j.rewrites.is_empty()).count();
        let coverage = if n_eval == 0 {
            0.0
        } else {
            covered as f64 / n_eval as f64
        };
        let mut p12 = [0.0f64; 5];
        let mut p1 = [0.0f64; 5];
        for x in 1..=5 {
            p12[x - 1] = precision_at_x(judgments, x, RelevanceThreshold::Grade12);
            p1[x - 1] = precision_at_x(judgments, x, RelevanceThreshold::Grade1);
        }
        let depth = DepthDistribution::compute(judgments, n_eval, config.rewriter.max_rewrites);
        methods.push(MethodReport {
            method: kind.name().to_owned(),
            coverage,
            p_at_x_grade12: p12,
            p_at_x_grade1: p1,
            pr_grade12: interpolated_pr_curve(judgments, &pool12, RelevanceThreshold::Grade12),
            pr_grade1: interpolated_pr_curve(judgments, &pool1, RelevanceThreshold::Grade1),
            mean_precision_grade12: mean_precision(judgments, RelevanceThreshold::Grade12),
            mean_recall_grade12: mean_recall(judgments, &pool12, RelevanceThreshold::Grade12),
            depth_bands: depth.figure11_bands(),
            mean_depth: depth.mean(),
        });
    }

    // --- Figure 12. ----------------------------------------------------------
    let desirability = run_desirability_experiment(
        &eval_graph,
        &[
            MethodKind::Simrank,
            MethodKind::EvidenceSimrank,
            MethodKind::WeightedSimrank,
        ],
        config.desirability_trials,
        &config.simrank,
        config.seed ^ 0xD5,
    );

    ExperimentReport {
        table5,
        sampled_queries: sample.len(),
        eval_queries: n_eval,
        methods,
        desirability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> ExperimentConfig {
        ExperimentConfig {
            generator: GeneratorConfig::tiny(),
            extract: ExtractConfig {
                n_subgraphs: 2,
                min_size: 6,
                max_size: 60,
                ..ExtractConfig::default()
            },
            simrank: SimrankConfig::default().with_iterations(5),
            rewriter: RewriterConfig::default(),
            eval_sample_size: 30,
            desirability_trials: 5,
            seed: 0x5EED,
        }
    }

    #[test]
    fn experiment_end_to_end() {
        let report = run_experiment(&fast_config());
        assert_eq!(report.methods.len(), 4);
        // Table 5 has per-subgraph rows plus the total.
        assert!(report.table5.len() >= 2);
        let total = report.table5.last().unwrap();
        let sum_edges: usize = report.table5[..report.table5.len() - 1]
            .iter()
            .map(|r| r.2)
            .sum();
        assert_eq!(total.2, sum_edges, "total row must sum subgraph edges");
        for m in &report.methods {
            assert!((0.0..=1.0).contains(&m.coverage));
            for p in m.p_at_x_grade12.iter().chain(&m.p_at_x_grade1) {
                assert!((0.0..=1.0).contains(p));
            }
            // Depth bands are cumulative.
            for w in m.depth_bands.windows(2) {
                assert!(w[1] + 1e-12 >= w[0]);
            }
        }
    }

    #[test]
    fn simrank_coverage_at_least_pearson() {
        // The Figure 8 shape.
        let report = run_experiment(&fast_config());
        let cov = |name: &str| {
            report
                .methods
                .iter()
                .find(|m| m.method == name)
                .unwrap()
                .coverage
        };
        assert!(cov("Simrank") >= cov("Pearson"));
    }

    #[test]
    fn deterministic() {
        let a = run_experiment(&fast_config());
        let b = run_experiment(&fast_config());
        assert_eq!(a.eval_queries, b.eval_queries);
        for (x, y) in a.methods.iter().zip(&b.methods) {
            assert_eq!(x.coverage, y.coverage);
            assert_eq!(x.p_at_x_grade12, y.p_at_x_grade12);
        }
    }
}
