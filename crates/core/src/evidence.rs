//! Evidence-based SimRank (§7).
//!
//! The evidence that two same-side nodes are similar grows with their common
//! neighbor count `n = |E(a) ∩ E(b)|`:
//!
//! * Eq. 7.3 (geometric, used in the paper's experiments):
//!   `evidence(a,b) = Σ_{i=1..n} 2⁻ⁱ = 1 − 2⁻ⁿ`
//! * Eq. 7.4 (exponential alternative): `evidence(a,b) = 1 − e⁻ⁿ`
//!
//! Evidence-based scores multiply the `k`-iteration SimRank scores at
//! read-out (Eq. 7.5/7.6): `s_ev(q,q') = evidence(q,q') · s(q,q')`.
//!
//! Note a consequence the evaluation depends on: pairs with **no** common
//! neighbor have evidence 0, so their evidence-based score collapses to 0
//! regardless of the underlying SimRank score. The ranking code therefore
//! keeps the raw SimRank score as a tie-breaker, which reproduces the
//! paper's Figure 12 result where evidence-based SimRank predicts exactly
//! as plain SimRank does once direct evidence is removed (27/50 for both).
//!
//! (The paper's Appendix B.1 writes the K2,2 evidence factor as `(1/2 + 1/3)`;
//! Table 4's numbers use `1/2 + 1/4 = 3/4`, consistent with Eq. 7.3. We follow
//! Eq. 7.3 / Table 4 and flag the appendix constant as a typo.)

use crate::config::SimrankConfig;
use crate::scores::{ScoreMatrix, ScoreMatrixBuilder};
use crate::simrank::{simrank, SimrankResult};
use serde::{Deserialize, Serialize};
use simrankpp_graph::{AdId, ClickGraph, QueryId};

/// Which evidence formula to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum EvidenceKind {
    /// Eq. 7.3: `1 − 2⁻ⁿ` (the paper's experiments).
    #[default]
    Geometric,
    /// Eq. 7.4: `1 − e⁻ⁿ`.
    Exponential,
}

impl EvidenceKind {
    /// Evidence value for `n` common neighbors.
    #[inline]
    pub fn value(self, n: usize) -> f64 {
        match self {
            EvidenceKind::Geometric => evidence_geometric(n),
            EvidenceKind::Exponential => evidence_exponential(n),
        }
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            EvidenceKind::Geometric => "geometric",
            EvidenceKind::Exponential => "exponential",
        }
    }
}

/// Eq. 7.3: `Σ_{i=1..n} 2⁻ⁱ = 1 − 2⁻ⁿ`.
#[inline]
pub fn evidence_geometric(n: usize) -> f64 {
    if n == 0 {
        0.0
    } else if n >= 64 {
        1.0
    } else {
        1.0 - 0.5f64.powi(n as i32)
    }
}

/// Eq. 7.4: `1 − e⁻ⁿ`.
#[inline]
pub fn evidence_exponential(n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        1.0 - (-(n as f64)).exp()
    }
}

/// Result of evidence-based SimRank: both the raw SimRank scores and the
/// evidence-multiplied scores.
#[derive(Debug, Clone)]
pub struct EvidenceSimrankResult {
    /// The underlying plain SimRank result.
    pub raw: SimrankResult,
    /// Evidence-multiplied query-side scores (Eq. 7.5).
    pub queries: ScoreMatrix,
    /// Evidence-multiplied ad-side scores (Eq. 7.6).
    pub ads: ScoreMatrix,
    /// Evidence formula used.
    pub kind: EvidenceKind,
}

/// Runs SimRank then applies evidence at read-out (Eq. 7.5/7.6).
pub fn evidence_simrank(
    g: &ClickGraph,
    config: &SimrankConfig,
    kind: EvidenceKind,
) -> EvidenceSimrankResult {
    let raw = simrank(g, config);
    apply_evidence(g, raw, kind)
}

/// Multiplies an existing SimRank result by evidence factors.
pub fn apply_evidence(
    g: &ClickGraph,
    raw: SimrankResult,
    kind: EvidenceKind,
) -> EvidenceSimrankResult {
    let (queries, ads) = evidence_multiply(g, &raw.queries, &raw.ads, kind);
    EvidenceSimrankResult {
        queries,
        ads,
        raw,
        kind,
    }
}

/// The Eq. 7.5/7.6 read-out on bare score matrices: every stored pair is
/// multiplied by its evidence factor, and zero-evidence pairs are dropped.
/// Shared by evidence-based SimRank (§7) and weighted SimRank (§8), which
/// apply the same read-out to different walks.
pub fn evidence_multiply(
    g: &ClickGraph,
    raw_queries: &ScoreMatrix,
    raw_ads: &ScoreMatrix,
    kind: EvidenceKind,
) -> (ScoreMatrix, ScoreMatrix) {
    let mut qb = ScoreMatrixBuilder::new(g.n_queries());
    for (a, b, v) in raw_queries.iter() {
        let ev = kind.value(g.common_ads(QueryId(a), QueryId(b)));
        if ev > 0.0 {
            qb.set(a, b, ev * v);
        }
    }
    let mut ab = ScoreMatrixBuilder::new(g.n_ads());
    for (a, b, v) in raw_ads.iter() {
        let ev = kind.value(g.common_queries(AdId(a), AdId(b)));
        if ev > 0.0 {
            ab.set(a, b, ev * v);
        }
    }
    (qb.build(), ab.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::fixtures::{figure4_k12, figure4_k22};

    fn cfg(k: usize) -> SimrankConfig {
        SimrankConfig::default().with_iterations(k)
    }

    #[test]
    fn geometric_values() {
        assert_eq!(evidence_geometric(0), 0.0);
        assert_eq!(evidence_geometric(1), 0.5);
        assert_eq!(evidence_geometric(2), 0.75);
        assert_eq!(evidence_geometric(3), 0.875);
        assert_eq!(evidence_geometric(100), 1.0);
    }

    #[test]
    fn exponential_values() {
        assert_eq!(evidence_exponential(0), 0.0);
        assert!((evidence_exponential(1) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(evidence_exponential(50) > 0.999999);
    }

    #[test]
    fn both_kinds_increase_towards_one() {
        for kind in [EvidenceKind::Geometric, EvidenceKind::Exponential] {
            let mut prev = 0.0;
            for n in 1..30 {
                let v = kind.value(n);
                assert!(v > prev, "{} not increasing at n={n}", kind.name());
                assert!(v < 1.0 + 1e-12);
                prev = v;
            }
        }
    }

    #[test]
    fn appendix_b1_typo_uses_eq_7_3() {
        // Appendix B.1 writes the K2,2 evidence factor as (1/2 + 1/3); the
        // numbers in Table 4 use Eq. 7.3's geometric sum 1/2 + 1/4 = 3/4.
        // This invariant pins the implementation to Eq. 7.3 / Table 4 so the
        // documented typo-handling cannot silently regress.
        assert_eq!(evidence_geometric(2), 0.75);
        assert_ne!(evidence_geometric(2), 0.5 + 1.0 / 3.0);
        // The factor actually applied on K2,2 (two common ads) is 3/4: the
        // evidence-based score is exactly 0.75 × the plain SimRank score.
        let g = figure4_k22();
        let r = evidence_simrank(&g, &cfg(3), EvidenceKind::Geometric);
        let plain = crate::simrank::simrank(&g, &cfg(3));
        assert_eq!(r.queries.get(0, 1), 0.75 * plain.queries.get(0, 1));
    }

    #[test]
    fn table4_k22_iterations() {
        // Table 4: evidence-based sim("camera","digital camera") on K2,2.
        let g = figure4_k22();
        let expected = [0.3, 0.42, 0.468, 0.4872, 0.49488, 0.497952, 0.4991808];
        for (k, &want) in expected.iter().enumerate() {
            let r = evidence_simrank(&g, &cfg(k + 1), EvidenceKind::Geometric);
            let got = r.queries.get(0, 1);
            assert!(
                (got - want).abs() < 1e-9,
                "iteration {}: got {got}, want {want}",
                k + 1
            );
        }
    }

    #[test]
    fn table4_k12_constant() {
        // Table 4: evidence-based sim("pc","camera") = 0.4 at every iteration.
        let g = figure4_k12();
        for k in 1..=7 {
            let r = evidence_simrank(&g, &cfg(k), EvidenceKind::Geometric);
            assert!((r.queries.get(0, 1) - 0.4).abs() < 1e-12, "iteration {k}");
        }
    }

    #[test]
    fn evidence_crossover_after_first_iteration() {
        // §7: after iteration 2, the K2,2 pair overtakes the K1,2 pair —
        // the fix the evidence score was designed for.
        let k22 = figure4_k22();
        let k12 = figure4_k12();
        let at = |g: &simrankpp_graph::ClickGraph, k: usize| {
            evidence_simrank(g, &cfg(k), EvidenceKind::Geometric)
                .queries
                .get(0, 1)
        };
        assert!(at(&k22, 1) < at(&k12, 1)); // 0.3 < 0.4
        for k in 2..=7 {
            assert!(at(&k22, k) > at(&k12, k), "no crossover at iteration {k}");
        }
    }

    #[test]
    fn no_common_neighbors_zeroes_score() {
        use simrankpp_graph::fixtures::figure3_graph;
        let g = figure3_graph();
        let r = evidence_simrank(&g, &cfg(10), EvidenceKind::Geometric);
        let pc = g.query_by_name("pc").unwrap().0;
        let tv = g.query_by_name("tv").unwrap().0;
        // pc and tv share no ad: evidence = 0 even though SimRank > 0.
        assert!(r.raw.queries.get(pc, tv) > 0.0);
        assert_eq!(r.queries.get(pc, tv), 0.0);
    }

    #[test]
    fn evidence_scores_bounded_by_raw() {
        use simrankpp_graph::fixtures::figure3_graph;
        let g = figure3_graph();
        let r = evidence_simrank(&g, &cfg(10), EvidenceKind::Geometric);
        for (a, b, v) in r.queries.iter() {
            assert!(v <= r.raw.queries.get(a, b) + 1e-12);
        }
    }
}
