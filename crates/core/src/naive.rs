//! The §3 naive similarity: count of common ads (Table 1).
//!
//! "A naive way to measure the similarity of a pair of queries would be to
//! count the number of common ads that they are connected to." It sees only
//! one hop, so "pc"–"tv" score 0 even though the whole-graph structure links
//! them — the failure SimRank fixes.

use crate::scores::{ScoreMatrix, ScoreMatrixBuilder};
use simrankpp_graph::{AdId, ClickGraph, QueryId};

/// Common-ad count between two queries.
pub fn naive_similarity(g: &ClickGraph, q1: QueryId, q2: QueryId) -> usize {
    g.common_ads(q1, q2)
}

/// All-pairs naive similarity as a score matrix (scores are raw counts, so
/// they are *not* bounded by 1).
///
/// Enumerates co-clicked pairs through each ad, which touches every pair at
/// most `common ads` times — linear in `Σ_α N(α)²` rather than `|Q|²`.
pub fn naive_scores(g: &ClickGraph) -> ScoreMatrix {
    let mut b = ScoreMatrixBuilder::new(g.n_queries());
    for ai in 0..g.n_ads() {
        let (qs, _) = g.queries_of(AdId(ai as u32));
        for (x, &qa) in qs.iter().enumerate() {
            for &qb in &qs[x + 1..] {
                b.add(qa.0, qb.0, 1.0);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::fixtures::figure3_graph;

    #[test]
    fn table1_counts() {
        // Table 1 of the paper, digit for digit.
        let g = figure3_graph();
        let q = |name: &str| g.query_by_name(name).unwrap();
        let expected = [
            ("pc", "camera", 1.0),
            ("pc", "digital camera", 1.0),
            ("pc", "tv", 0.0),
            ("pc", "flower", 0.0),
            ("camera", "digital camera", 2.0),
            ("camera", "tv", 1.0),
            ("camera", "flower", 0.0),
            ("digital camera", "tv", 1.0),
            ("digital camera", "flower", 0.0),
            ("tv", "flower", 0.0),
        ];
        let m = naive_scores(&g);
        for (a, b, want) in expected {
            assert_eq!(m.get(q(a).0, q(b).0), want, "naive({a},{b})");
            assert_eq!(naive_similarity(&g, q(a), q(b)) as f64, want);
        }
    }

    #[test]
    fn matrix_matches_pairwise_function() {
        let g = figure3_graph();
        let m = naive_scores(&g);
        for q1 in g.queries() {
            for q2 in g.queries() {
                if q1 < q2 {
                    assert_eq!(m.get(q1.0, q2.0), naive_similarity(&g, q1, q2) as f64);
                }
            }
        }
    }

    #[test]
    fn self_similarity_is_identity() {
        let g = figure3_graph();
        let m = naive_scores(&g);
        assert_eq!(m.get(0, 0), 1.0);
    }
}
