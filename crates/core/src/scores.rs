//! Sparse symmetric score storage.
//!
//! SimRank scores are symmetric with unit diagonal, so engines accumulate
//! only off-diagonal unordered pairs in a hash map ([`ScoreMatrixBuilder`]),
//! then freeze into a per-node sorted adjacency form ([`ScoreMatrix`]) for
//! fast `get`, per-node top-k, and iteration.
//!
//! Since the zero-copy refactor the frozen form is [`ScoreMatrixArena`]: a
//! set of `Cow` slices that either own their storage (the engine-build
//! path, `ScoreMatrix = ScoreMatrixArena<'static>`) or borrow directly from
//! the 8-aligned sections of a serialized arena
//! ([`ScoreMatrixArena::from_bytes`]), so mapped score files are readable
//! without copying a byte.

use simrankpp_util::arena::{AlignedBytes, Arena, ArenaWriter};
use simrankpp_util::{FxHashMap, PairKey};
use std::borrow::Cow;
use std::io::{self, Write};

/// Fills a flat symmetric CSR arena (`offsets`/`partners`/`scores`) from a
/// key-sorted, duplicate-free pair list, reusing the caller's buffers.
///
/// One counting pass over `pairs` sizes every row, a prefix sum turns counts
/// into offsets, and a placement pass scatters each pair into both endpoint
/// rows. **Rows come out sorted without any per-row sort**: scanning pairs in
/// `(min, max)` order, row `r` first receives its partners `< r` (one per
/// `min`-block `m < r`, in ascending `m`) and then its partners `> r` (the
/// `min == r` block, ascending `max`) — two ascending runs whose
/// concatenation is ascending. This replaces the old per-node
/// `Vec<Vec<(u32, f64)>>` push-then-sort construction and doubles as the
/// per-half-step iterate CSR of the pull kernel (`engine::pull`).
pub(crate) fn fill_sym_csr(
    n: usize,
    pairs: &[(PairKey, f64)],
    offsets: &mut Vec<u64>,
    cursor: &mut Vec<usize>,
    partners: &mut Vec<u32>,
    scores: &mut Vec<f64>,
) {
    debug_assert!(
        pairs.windows(2).all(|w| w[0].0.raw() < w[1].0.raw()),
        "pairs must be strictly sorted by key"
    );
    offsets.clear();
    offsets.resize(n + 1, 0);
    for &(k, _) in pairs {
        let (a, b) = k.parts();
        offsets[a as usize + 1] += 1;
        offsets[b as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let nnz = offsets[n] as usize;
    partners.clear();
    partners.resize(nnz, 0);
    scores.clear();
    scores.resize(nnz, 0.0);
    cursor.clear();
    cursor.extend(offsets[..n].iter().map(|&o| o as usize));
    for &(k, v) in pairs {
        let (a, b) = k.parts();
        let (ai, bi) = (a as usize, b as usize);
        partners[cursor[ai]] = b;
        scores[cursor[ai]] = v;
        cursor[ai] += 1;
        partners[cursor[bi]] = a;
        scores[cursor[bi]] = v;
        cursor[bi] += 1;
    }
    debug_assert!(
        (0..n).all(|r| partners[offsets[r] as usize..offsets[r + 1] as usize]
            .windows(2)
            .all(|w| w[0] < w[1]))
    );
}

/// Accumulating builder: an unordered-pair → score map.
#[derive(Debug, Clone, Default)]
pub struct ScoreMatrixBuilder {
    n: usize,
    entries: FxHashMap<PairKey, f64>,
}

impl ScoreMatrixBuilder {
    /// Creates a builder for a side with `n` nodes.
    pub fn new(n: usize) -> Self {
        ScoreMatrixBuilder {
            n,
            entries: FxHashMap::default(),
        }
    }

    /// Adds `delta` to the score of unordered pair `(a, b)`.
    ///
    /// # Panics
    /// Panics in debug builds on diagonal pairs — the diagonal is fixed at 1.
    #[inline]
    pub fn add(&mut self, a: u32, b: u32, delta: f64) {
        debug_assert_ne!(a, b, "diagonal scores are fixed at 1");
        *self.entries.entry(PairKey::new(a, b)).or_insert(0.0) += delta;
    }

    /// Sets the score of unordered pair `(a, b)`.
    #[inline]
    pub fn set(&mut self, a: u32, b: u32, value: f64) {
        debug_assert_ne!(a, b, "diagonal scores are fixed at 1");
        self.entries.insert(PairKey::new(a, b), value);
    }

    /// Current number of stored pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops entries with score below `threshold` (or non-positive).
    pub fn prune(&mut self, threshold: f64) {
        self.entries.retain(|_, v| *v > threshold && *v > 0.0);
    }

    /// Merges another builder's entries additively (parallel reduction).
    ///
    /// The node count widens to the larger of the two sides, so merging a
    /// wider builder into a narrower (e.g. freshly-constructed empty) one
    /// cannot make `build()` index out of bounds.
    pub fn merge(&mut self, other: ScoreMatrixBuilder) {
        self.n = self.n.max(other.n);
        if self.entries.is_empty() {
            self.entries = other.entries;
            return;
        }
        for (k, v) in other.entries {
            *self.entries.entry(k).or_insert(0.0) += v;
        }
    }

    /// Merges another builder's entries, **rejecting** any pair already
    /// present instead of summing it — the builder-level stitch path for
    /// sharded score blocks, where each unordered pair belongs to exactly
    /// one shard and a duplicate means the shards overlap. Plain
    /// [`ScoreMatrixBuilder::merge`] would silently sum the colliding scores
    /// and corrupt the stitched matrix; this variant surfaces the bug
    /// instead. (The engine's hot stitch uses the equivalent sorted-merge,
    /// `engine::accum::merge_all_disjoint`, which skips the hashing.) On
    /// error, `self` may have absorbed a prefix of `other`'s entries —
    /// discard it.
    ///
    /// The node count widens like [`ScoreMatrixBuilder::merge`].
    pub fn merge_disjoint(&mut self, other: ScoreMatrixBuilder) -> Result<(), String> {
        self.n = self.n.max(other.n);
        if self.entries.is_empty() {
            self.entries = other.entries;
            return Ok(());
        }
        for (k, v) in other.entries {
            match self.entries.entry(k) {
                std::collections::hash_map::Entry::Occupied(_) => {
                    let (a, b) = k.parts();
                    return Err(format!(
                        "pair ({a}, {b}) inserted by two shards — shards must be disjoint"
                    ));
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
        Ok(())
    }

    /// Applies `f` to every stored score (e.g. evidence multiplication).
    pub fn map_scores(&mut self, mut f: impl FnMut(PairKey, f64) -> f64) {
        for (k, v) in self.entries.iter_mut() {
            *v = f(*k, *v);
        }
    }

    /// Freezes into the read-optimized [`ScoreMatrix`]. Non-positive scores
    /// are dropped.
    pub fn build(self) -> ScoreMatrix {
        let mut sorted: Vec<(PairKey, f64)> =
            self.entries.into_iter().filter(|&(_, v)| v > 0.0).collect();
        sorted.sort_unstable_by_key(|&(k, _)| k.raw());
        ScoreMatrixArena::from_sorted_pairs(self.n, sorted)
    }

    /// Read access during iteration: score of `(a, b)` with unit diagonal.
    #[inline]
    pub fn get(&self, a: u32, b: u32) -> f64 {
        if a == b {
            1.0
        } else {
            self.entries
                .get(&PairKey::new(a, b))
                .copied()
                .unwrap_or(0.0)
        }
    }

    /// Iterates stored `(pair, score)` entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (PairKey, f64)> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }
}

/// Frozen symmetric sparse score matrix with unit diagonal.
///
/// The per-node view is a flat CSR arena (`offsets`/`partners`/`scores`)
/// rather than the historical `Vec<Vec<(u32, f64)>>`: one allocation per
/// side instead of one per node, `O(1)` [`ScoreMatrixArena::row`] slice
/// views, and the layout the pull kernel consumes directly.
///
/// Every slice is a `Cow`: the engine-build path owns its storage (the
/// [`ScoreMatrix`] alias, `'static`), while [`ScoreMatrixArena::from_bytes`]
/// borrows all five arrays straight out of an arena's 8-aligned sections —
/// read paths are identical, and nothing is copied when serving from a
/// mapped file.
#[derive(Debug, Clone, Default)]
pub struct ScoreMatrixArena<'a> {
    n: usize,
    /// Packed [`PairKey`]s of the off-diagonal pairs, strictly ascending.
    pair_keys: Cow<'a, [u64]>,
    /// Scores aligned with `pair_keys`; strictly positive.
    pair_scores: Cow<'a, [f64]>,
    /// Row bounds into `partners`/`scores`: node `a`'s row is
    /// `offsets[a]..offsets[a + 1]`. Length `n + 1`.
    offsets: Cow<'a, [u64]>,
    /// Partner ids, ascending within each row.
    partners: Cow<'a, [u32]>,
    /// Scores aligned with `partners`.
    scores: Cow<'a, [f64]>,
}

/// The owning form of [`ScoreMatrixArena`] — what every engine produces.
pub type ScoreMatrix = ScoreMatrixArena<'static>;

/// Arena magic for a serialized score matrix.
const SCM_MAGIC: [u8; 8] = *b"SRPPSCM\0";
const SCM_VERSION: u32 = 1;
const SEC_META: u64 = 0x01;
const SEC_PAIR_KEYS: u64 = 0x02;
const SEC_PAIR_SCORES: u64 = 0x03;
const SEC_OFFSETS: u64 = 0x04;
const SEC_PARTNERS: u64 = 0x05;
const SEC_SCORES: u64 = 0x06;

impl<'a> ScoreMatrixArena<'a> {
    /// An empty matrix (all off-diagonal scores zero) over `n` nodes.
    pub fn empty(n: usize) -> Self {
        ScoreMatrixArena {
            n,
            pair_keys: Cow::Owned(Vec::new()),
            pair_scores: Cow::Owned(Vec::new()),
            offsets: Cow::Owned(vec![0; n + 1]),
            partners: Cow::Owned(Vec::new()),
            scores: Cow::Owned(Vec::new()),
        }
    }

    /// Freezes an already key-sorted, duplicate-free pair list (the unified
    /// engine's iterate format) without the hash-map detour of
    /// [`ScoreMatrixBuilder`]. Non-positive scores are dropped. The CSR
    /// arena is built with a counting pass — no per-node pushes, no per-row
    /// sorts (see [`fill_sym_csr`]).
    ///
    /// # Panics
    /// Debug builds panic if `pairs` is not strictly sorted by packed key.
    pub fn from_sorted_pairs(n: usize, mut pairs: Vec<(PairKey, f64)>) -> Self {
        pairs.retain(|&(_, v)| v > 0.0);
        let mut offsets = Vec::new();
        let mut cursor = Vec::new();
        let mut partners = Vec::new();
        let mut scores = Vec::new();
        fill_sym_csr(
            n,
            &pairs,
            &mut offsets,
            &mut cursor,
            &mut partners,
            &mut scores,
        );
        let mut pair_keys = Vec::with_capacity(pairs.len());
        let mut pair_scores = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            pair_keys.push(k.raw());
            pair_scores.push(v);
        }
        ScoreMatrixArena {
            n,
            pair_keys: Cow::Owned(pair_keys),
            pair_scores: Cow::Owned(pair_scores),
            offsets: Cow::Owned(offsets),
            partners: Cow::Owned(partners),
            scores: Cow::Owned(scores),
        }
    }

    /// Number of nodes on this side.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Number of stored (positive, off-diagonal) pairs.
    pub fn n_pairs(&self) -> usize {
        self.pair_keys.len()
    }

    /// `true` when any slice borrows from an external arena buffer.
    pub fn is_borrowed(&self) -> bool {
        matches!(self.offsets, Cow::Borrowed(_))
    }

    /// Score of `(a, b)`: 1 on the diagonal, 0 for unstored pairs.
    pub fn get(&self, a: u32, b: u32) -> f64 {
        if a == b {
            return 1.0;
        }
        let (ids, vals) = self.row(a);
        ids.binary_search(&b).map(|i| vals[i]).unwrap_or(0.0)
    }

    /// The stored off-diagonal pairs in packed-key-sorted order — the
    /// engine's iterate format. The incremental engine filters this list to
    /// carry clean-component blocks into the next generation verbatim.
    pub fn sorted_pairs(&self) -> impl Iterator<Item = (PairKey, f64)> + '_ {
        self.pair_keys
            .iter()
            .zip(self.pair_scores.iter())
            .map(|(&k, &v)| (PairKey::from_raw(k), v))
    }

    /// All stored `(a, b, score)` with `a < b`, ascending by `(a, b)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.sorted_pairs().map(|(k, v)| {
            let (a, b) = k.parts();
            (a, b, v)
        })
    }

    /// Node `a`'s row of the CSR arena as `O(1)` parallel slices:
    /// ascending partner ids and their scores.
    #[inline]
    pub fn row(&self, a: u32) -> (&[u32], &[f64]) {
        let (lo, hi) = (
            self.offsets[a as usize] as usize,
            self.offsets[a as usize + 1] as usize,
        );
        (&self.partners[lo..hi], &self.scores[lo..hi])
    }

    /// Serializes into the shared arena container (see
    /// [`simrankpp_util::arena`]): six 8-aligned sections, each written as
    /// one byte-slice `write_all`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<u64> {
        let meta = [self.n as u64];
        let mut a = ArenaWriter::new(SCM_MAGIC, SCM_VERSION);
        a.slice(SEC_META, &meta)
            .slice(SEC_PAIR_KEYS, &self.pair_keys)
            .slice(SEC_PAIR_SCORES, &self.pair_scores)
            .slice(SEC_OFFSETS, &self.offsets)
            .slice(SEC_PARTNERS, &self.partners)
            .slice(SEC_SCORES, &self.scores);
        a.write_to(w)
    }

    /// Serializes into a fresh 8-aligned buffer.
    pub fn to_arena_bytes(&self) -> AlignedBytes {
        let mut buf = Vec::new();
        self.write_to(&mut buf).expect("Vec writes are infallible");
        AlignedBytes::copy_from(&buf)
    }

    /// Reconstructs a matrix whose slices *borrow* from `bytes` (which must
    /// be 8-aligned, e.g. a mapped file or an
    /// [`AlignedBytes`] buffer). No payload is copied; engines and top-k
    /// reads run directly over the arena sections.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<ScoreMatrixArena<'a>, String> {
        let a = Arena::parse(bytes, SCM_MAGIC)?;
        if a.version() != SCM_VERSION {
            return Err(format!(
                "unsupported score-matrix arena version {} (expected {SCM_VERSION})",
                a.version()
            ));
        }
        let meta = a.slice::<u64>(SEC_META)?;
        let n = *meta.first().ok_or("empty meta section")? as usize;
        let pair_keys = a.slice::<u64>(SEC_PAIR_KEYS)?;
        let pair_scores = a.slice::<f64>(SEC_PAIR_SCORES)?;
        let offsets = a.slice::<u64>(SEC_OFFSETS)?;
        let partners = a.slice::<u32>(SEC_PARTNERS)?;
        let scores = a.slice::<f64>(SEC_SCORES)?;
        if pair_keys.len() != pair_scores.len() {
            return Err("pair key/score sections disagree in length".into());
        }
        if offsets.len() != n + 1 {
            return Err(format!(
                "offsets section has {} entries (expected n + 1 = {})",
                offsets.len(),
                n + 1
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets section is not monotone".into());
        }
        let nnz = *offsets.last().unwrap_or(&0) as usize;
        if partners.len() != nnz || scores.len() != nnz {
            return Err("partner/score sections disagree with offsets".into());
        }
        Ok(ScoreMatrixArena {
            n,
            pair_keys: Cow::Borrowed(pair_keys),
            pair_scores: Cow::Borrowed(pair_scores),
            offsets: Cow::Borrowed(offsets),
            partners: Cow::Borrowed(partners),
            scores: Cow::Borrowed(scores),
        })
    }

    /// Deep-copies into the owning form (detaches from a borrowed arena).
    pub fn to_owned_matrix(&self) -> ScoreMatrix {
        ScoreMatrixArena {
            n: self.n,
            pair_keys: Cow::Owned(self.pair_keys.to_vec()),
            pair_scores: Cow::Owned(self.pair_scores.to_vec()),
            offsets: Cow::Owned(self.offsets.to_vec()),
            partners: Cow::Owned(self.partners.to_vec()),
            scores: Cow::Owned(self.scores.to_vec()),
        }
    }

    /// The stored partners of node `a` with their scores, ascending by id.
    pub fn partners(&self, a: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let (ids, vals) = self.row(a);
        ids.iter().copied().zip(vals.iter().copied())
    }

    /// The `k` highest-scoring partners of `a` (descending score, ties by
    /// ascending id).
    pub fn top_k(&self, a: u32, k: usize) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        self.top_k_into(a, k, &mut out);
        out
    }

    /// As [`ScoreMatrixArena::top_k`], but writing into `out` (cleared
    /// first) so
    /// batched per-node extraction reuses one buffer instead of allocating
    /// per call. NaN scores are skipped (as [`TopK`](simrankpp_util::TopK)
    /// does), keeping the comparator total; selection is O(m) + O(k log k)
    /// rather than a full row sort.
    pub fn top_k_into(&self, a: u32, k: usize, out: &mut Vec<(u32, f64)>) {
        out.clear();
        if k == 0 {
            return;
        }
        out.extend(self.partners(a).filter(|&(_, s)| !s.is_nan()));
        let descending = |x: &(u32, f64), y: &(u32, f64)| {
            y.1.partial_cmp(&x.1)
                .expect("NaN scores are filtered above")
                .then_with(|| x.0.cmp(&y.0))
        };
        if out.len() > k {
            out.select_nth_unstable_by(k - 1, descending);
            out.truncate(k);
        }
        out.sort_unstable_by(descending);
    }

    /// Largest absolute score difference against another matrix over the
    /// union of stored pairs (convergence / engine cross-check metric).
    pub fn max_abs_diff(&self, other: &ScoreMatrixArena<'_>) -> f64 {
        let mut max = 0.0f64;
        for (k, v) in self.sorted_pairs() {
            let (a, b) = k.parts();
            max = max.max((v - other.get(a, b)).abs());
        }
        for (k, v) in other.sorted_pairs() {
            let (a, b) = k.parts();
            max = max.max((v - self.get(a, b)).abs());
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_symmetrically() {
        let mut b = ScoreMatrixBuilder::new(4);
        b.add(1, 2, 0.25);
        b.add(2, 1, 0.25); // same unordered pair
        let m = b.build();
        assert_eq!(m.n_pairs(), 1);
        assert!((m.get(1, 2) - 0.5).abs() < 1e-12);
        assert!((m.get(2, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn diagonal_is_one_and_missing_zero() {
        let m = ScoreMatrixBuilder::new(3).build();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn prune_drops_small_entries() {
        let mut b = ScoreMatrixBuilder::new(4);
        b.set(0, 1, 0.5);
        b.set(0, 2, 1e-9);
        b.set(0, 3, -0.1);
        b.prune(1e-6);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn build_drops_nonpositive() {
        let mut b = ScoreMatrixBuilder::new(3);
        b.set(0, 1, 0.0);
        b.set(1, 2, 0.3);
        let m = b.build();
        assert_eq!(m.n_pairs(), 1);
    }

    #[test]
    fn merge_adds() {
        let mut a = ScoreMatrixBuilder::new(3);
        a.set(0, 1, 0.2);
        let mut b = ScoreMatrixBuilder::new(3);
        b.set(0, 1, 0.3);
        b.set(1, 2, 0.1);
        a.merge(b);
        assert!((a.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((a.get(1, 2) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_disjoint_rejects_duplicate_pairs() {
        // Failing-before regression: the stitch path used to ride on plain
        // `merge`, which silently *summed* a pair inserted by two
        // overlapping shards (0.2 + 0.3 = 0.5 below) instead of rejecting
        // the overlap.
        let mut a = ScoreMatrixBuilder::new(3);
        a.set(0, 1, 0.2);
        let mut b = ScoreMatrixBuilder::new(3);
        b.set(1, 0, 0.3); // same unordered pair
        b.set(1, 2, 0.1);
        let err = a.merge_disjoint(b).unwrap_err();
        assert!(err.contains("(0, 1)"), "{err}");
        // Sanity: plain merge on identical inputs silently sums — the
        // behavior the stitch path must not inherit.
        let mut c = ScoreMatrixBuilder::new(3);
        c.set(0, 1, 0.2);
        let mut d = ScoreMatrixBuilder::new(3);
        d.set(1, 0, 0.3);
        c.merge(d);
        assert!((c.get(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_disjoint_accepts_disjoint_and_widens() {
        let mut a = ScoreMatrixBuilder::new(2);
        a.set(0, 1, 0.4);
        let mut b = ScoreMatrixBuilder::new(6);
        b.set(4, 5, 0.3);
        a.merge_disjoint(b).unwrap();
        let m = a.build();
        assert_eq!(m.n_nodes(), 6);
        assert!((m.get(0, 1) - 0.4).abs() < 1e-12);
        assert!((m.get(4, 5) - 0.3).abs() < 1e-12);

        // Empty-receiver fast path steals the entries wholesale.
        let mut e = ScoreMatrixBuilder::new(0);
        let mut f = ScoreMatrixBuilder::new(3);
        f.set(1, 2, 0.7);
        e.merge_disjoint(f).unwrap();
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn merge_widens_node_count() {
        // Regression: merging a wider builder into a narrower empty one used
        // to keep the narrow `n`, so `build()` indexed `by_node` out of
        // bounds for the stolen entries.
        let mut a = ScoreMatrixBuilder::new(2);
        let mut b = ScoreMatrixBuilder::new(6);
        b.set(4, 5, 0.3);
        a.merge(b);
        let m = a.build();
        assert_eq!(m.n_nodes(), 6);
        assert!((m.get(4, 5) - 0.3).abs() < 1e-12);

        // Same widening on the non-empty path.
        let mut c = ScoreMatrixBuilder::new(2);
        c.set(0, 1, 0.1);
        let mut d = ScoreMatrixBuilder::new(9);
        d.set(7, 8, 0.2);
        c.merge(d);
        let m = c.build();
        assert_eq!(m.n_nodes(), 9);
        assert!((m.get(7, 8) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn top_k_into_ranks_and_reuses_buffer() {
        let mut b = ScoreMatrixBuilder::new(6);
        b.set(0, 1, 0.1);
        b.set(0, 2, 0.9);
        b.set(0, 3, 0.5);
        b.set(0, 4, 0.5); // tie with node 3: smaller id first
        let m = b.build();
        let mut buf = vec![(99u32, 0.0)];
        m.top_k_into(0, 3, &mut buf);
        assert_eq!(buf, vec![(2, 0.9), (3, 0.5), (4, 0.5)]);
        assert_eq!(m.top_k(0, 2), vec![(2, 0.9), (3, 0.5)]);
        m.top_k_into(0, 0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn top_k_skips_nan_scores() {
        // A NaN entry (only constructible via from_sorted_pairs-free paths
        // like map_scores misuse) must be dropped, not ranked arbitrarily.
        let mut b = ScoreMatrixBuilder::new(4);
        b.set(0, 1, 0.4);
        b.set(0, 2, 0.7);
        let mut m = b.build();
        let lo = m.offsets[0] as usize;
        assert_eq!(m.partners[lo], 1);
        m.scores.to_mut()[lo] = f64::NAN; // partner id 1 of node 0
        let mut buf = Vec::new();
        m.top_k_into(0, 3, &mut buf);
        assert_eq!(buf, vec![(2, 0.7)]);
    }

    #[test]
    fn top_k_orders_descending() {
        let mut b = ScoreMatrixBuilder::new(5);
        b.set(0, 1, 0.1);
        b.set(0, 2, 0.9);
        b.set(0, 3, 0.5);
        b.set(2, 3, 0.7); // unrelated to node 0
        let m = b.build();
        let top = m.top_k(0, 2);
        assert_eq!(top.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(m.top_k(4, 3), vec![]);
    }

    #[test]
    fn partners_sorted_by_id() {
        let mut b = ScoreMatrixBuilder::new(4);
        b.set(2, 0, 0.3);
        b.set(2, 3, 0.1);
        b.set(2, 1, 0.2);
        let m = b.build();
        let ids: Vec<u32> = m.partners(2).map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 3]);
        let (row_ids, row_scores) = m.row(2);
        assert_eq!(row_ids, &[0, 1, 3]);
        assert_eq!(row_scores.len(), 3);
        assert!((row_scores[0] - 0.3).abs() < 1e-12);
        // Node 1's only partner is 2; its row is the matching O(1) slice.
        assert_eq!(m.row(1).0, &[2]);
    }

    #[test]
    fn iter_is_sorted_min_major() {
        let mut b = ScoreMatrixBuilder::new(4);
        b.set(2, 3, 0.1);
        b.set(0, 3, 0.2);
        b.set(0, 1, 0.3);
        let m = b.build();
        let keys: Vec<(u32, u32)> = m.iter().map(|(a, b, _)| (a, b)).collect();
        assert_eq!(keys, vec![(0, 1), (0, 3), (2, 3)]);
    }

    #[test]
    fn max_abs_diff_covers_union() {
        let mut a = ScoreMatrixBuilder::new(3);
        a.set(0, 1, 0.5);
        let ma = a.build();
        let mut b = ScoreMatrixBuilder::new(3);
        b.set(1, 2, 0.4);
        let mb = b.build();
        assert!((ma.max_abs_diff(&mb) - 0.5).abs() < 1e-12);
        assert!((mb.max_abs_diff(&ma) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arena_roundtrip_borrows_and_matches() {
        let mut b = ScoreMatrixBuilder::new(5);
        b.set(0, 1, 0.5);
        b.set(2, 4, 0.25);
        b.set(0, 4, 0.125);
        let m = b.build();
        let bytes = m.to_arena_bytes();
        let v = ScoreMatrixArena::from_bytes(bytes.as_slice()).unwrap();
        assert!(v.is_borrowed() && !m.is_borrowed());
        assert_eq!(v.n_nodes(), 5);
        assert_eq!(v.n_pairs(), m.n_pairs());
        assert_eq!(m.max_abs_diff(&v), 0.0);
        for a in 0..5 {
            assert_eq!(m.row(a), v.row(a), "row {a}");
            assert_eq!(m.top_k(a, 3), v.top_k(a, 3));
        }
        assert!(m.sorted_pairs().eq(v.sorted_pairs()));
        // Detaching copies the slices back onto the heap.
        let o = v.to_owned_matrix();
        assert!(!o.is_borrowed());
        assert_eq!(o.row(0), m.row(0));
    }

    #[test]
    fn arena_from_bytes_refuses_corruption() {
        let mut b = ScoreMatrixBuilder::new(3);
        b.set(0, 2, 0.5);
        let bytes = b.build().to_arena_bytes();
        // Truncated buffer.
        assert!(ScoreMatrixArena::from_bytes(&bytes.as_slice()[..40]).is_err());
        // Wrong magic.
        let mut wrong = bytes.as_slice().to_vec();
        wrong[0] ^= 0xff;
        assert!(ScoreMatrixArena::from_bytes(&wrong).is_err());
    }

    #[test]
    fn map_scores_applies() {
        let mut b = ScoreMatrixBuilder::new(3);
        b.set(0, 1, 0.5);
        b.set(1, 2, 0.25);
        b.map_scores(|_, v| v * 2.0);
        assert!((b.get(0, 1) - 1.0).abs() < 1e-12);
        assert!((b.get(1, 2) - 0.5).abs() < 1e-12);
    }
}
