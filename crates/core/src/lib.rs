//! Simrank++ core: the paper's primary contribution.
//!
//! This crate implements every similarity scheme the paper studies:
//!
//! * [`naive`] — §3's common-ad count (Table 1);
//! * [`engine`] — the unified sparse propagation kernel all recursive
//!   variants run on: a [`engine::Transition`] abstracts the per-edge walk
//!   factor, one flat sorted-pair accumulation kernel propagates scores,
//!   shared chunked parallelism, threshold pruning, per-iteration
//!   `pair_counts`/max-delta diagnostics and tolerance-based early exit;
//! * [`mod@simrank`] — §4's bipartite SimRank (Eq. 4.1/4.2): a thin
//!   front-end over [`engine`] with the uniform `1/N` transition, plus a
//!   dense cross-validation oracle;
//! * [`evidence`] — §7's evidence-based SimRank (Eq. 7.3–7.6);
//! * [`weighted`] — §8's weighted SimRank (spread × normalized-weight walk),
//!   the same engine kernel with [`engine::WeightedTransition`];
//! * [`pearson`] — §9.1's Pearson-correlation baseline;
//! * [`desirability`] — §9.3's desirability score for the edge-removal
//!   experiment;
//! * [`complete_bipartite`] — closed forms on `K_{m,2}` (Theorems 6.1–7.1,
//!   Appendices A–B), used for paper-exactness tests and Tables 3–4;
//! * [`montecarlo`] — §11-adjacent extension: Monte-Carlo single-pair
//!   estimation of the SimRank random-surfer model;
//! * [`hybrid`] — §11 future-work extension: combining click-graph similarity
//!   with text similarity;
//! * [`rewriter`] — the Figure 2 front-end: score → rank → stem-dedup →
//!   bid-filter → top-5 rewrites.
//!
//! The similarity conventions follow the paper exactly: `s(x,x) = 1`,
//! simultaneous (Jacobi) iteration from `s⁰ = I`, and decay factors
//! `C1` (query side) and `C2` (ad side). All iterated tables of the paper
//! (Tables 2–4) are reproduced digit-for-digit by the test suite.

pub mod complete_bipartite;
pub mod config;
pub mod desirability;
pub mod engine;
pub mod evidence;
pub mod hybrid;
pub mod method;
pub mod montecarlo;
pub mod naive;
pub mod pearson;
pub mod rewriter;
pub mod scores;
pub mod simrank;
pub mod weighted;

pub use config::{EngineMode, KernelKind, ShardStrategy, SimrankConfig};
pub use engine::{
    run_incremental, top_k_by_mode, DiagonalCorrection, IncrementalRun, RowWorkspace,
    SingleSourceEngine, Transition, TransitionFactors, TransitionFactorsArena, UniformTransition,
    WeightedTransition,
};
pub use evidence::{evidence_exponential, evidence_geometric, EvidenceKind};
pub use method::{Method, MethodKind};
pub use rewriter::{Rewrite, Rewriter, RewriterConfig};
pub use scores::{ScoreMatrix, ScoreMatrixArena, ScoreMatrixBuilder};
pub use simrank::{simrank, SimrankResult};
pub use weighted::{weighted_simrank, WeightedSimrankResult};
