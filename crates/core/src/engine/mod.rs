//! The unified sparse propagation engine.
//!
//! The paper's recursive similarity methods — plain SimRank (§4, Eq. 4.1/4.2)
//! and weighted SimRank (§8.2) — are the *same* Jacobi pair-propagation loop
//! with different per-edge transition factors:
//!
//! ```text
//! s_{k+1}(q,q') = C1 · Σ_{i∈E(q)} Σ_{j∈E(q')} F(q,i) · F(q',j) · s_k(i,j)
//! ```
//!
//! with `F(q,i) = 1/N(q)` for the uniform walk (§4) and
//! `F(q,i) = spread(i)·normalized_weight(q,i)` for the weighted walk (§8.2),
//! and the mirror equation on the ad side. This module factors that loop out
//! once:
//!
//! * [`Transition`] abstracts the per-edge walk factor ([`UniformTransition`],
//!   [`WeightedTransition`]); new variants only supply factor tables.
//! * [`run`] drives the shared kernel behind a
//!   [`crate::config::KernelKind`] knob. The default **pull kernel**
//!   ([`pull`]) computes each half-step as two row-parallel Gustavson
//!   SpGEMM passes over CSR score rows (`S' = c·F·S·Fᵀ` with unit
//!   diagonal): no contribution buffers, no sorting, no cross-worker
//!   merging, and bit-deterministic for any thread count. The previous
//!   **flat sorted-pair accumulator** ([`accum::FlatAccumulator`]) and the
//!   historical **hash-map** path stay selectable as independent
//!   cross-check oracles.
//! * [`parallel::run_chunked`] supplies chunked scoped-thread parallelism for
//!   every variant (previously each engine carried its own copy), and the
//!   `_stateful` variants thread a reusable per-worker workspace pool
//!   through it, so scratch survives across Jacobi half-steps and — in the
//!   sharded engine — across shards.
//! * Per-iteration diagnostics — stored pair counts and the max score delta —
//!   are recorded for *all* variants, and [`crate::SimrankConfig::tolerance`]
//!   enables early exit once the iteration becomes stationary.
//!
//! * [`sharded::run_sharded`] exploits the block-diagonal structure of the
//!   score matrix over connected components (§9.2's "one huge connected
//!   component and several smaller subgraphs"): one engine run per shard,
//!   scheduled largest-first across scoped threads, stitched back into
//!   global ids — exact for component sharding. [`run_with_strategy`]
//!   dispatches on [`crate::config::ShardStrategy`].
//!
//! * [`incremental::run_incremental`] extends the same block-diagonal
//!   argument through time: after a [`simrankpp_graph::GraphDelta`], only
//!   the dirty components are recomputed and every clean component's block
//!   is carried over verbatim from the previous score matrices.
//!
//! * [`single_source::SingleSourceEngine`] escapes the all-pairs matrix
//!   entirely: one query's score row on demand via the linearized series
//!   (precomputed diagonal correction + per-query sparse forward/backward
//!   passes), selected by [`crate::config::EngineMode`] with the all-pairs
//!   engine as the differential oracle.
//!
//! [`reference::run_hashmap`] keeps the historical hash-map accumulation path
//! alive for cross-checking and the `bench_engine` comparison.

pub mod accum;
pub mod incremental;
pub mod parallel;
pub mod pull;
pub mod reference;
pub mod sharded;
pub mod single_source;
pub mod transition;

pub use incremental::{run_incremental, IncrementalRun};
pub use sharded::run_sharded;
pub use single_source::{top_k_by_mode, DiagonalCorrection, RowWorkspace, SingleSourceEngine};
pub use transition::{
    Transition, TransitionFactors, TransitionFactorsArena, UniformTransition, WeightedTransition,
};

use crate::config::{KernelKind, ShardStrategy, SimrankConfig};
use crate::scores::ScoreMatrix;
use accum::{max_delta, FlatAccumulator, FlatWorkspace, PairVec};
use simrankpp_graph::{AdId, ClickGraph, QueryId};

/// Output of one engine run: frozen score matrices plus the per-iteration
/// diagnostics shared by every variant.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Query-side similarity scores.
    pub queries: ScoreMatrix,
    /// Ad-side similarity scores.
    pub ads: ScoreMatrix,
    /// Stored (query-pairs, ad-pairs) after each executed iteration.
    pub pair_counts: Vec<(usize, usize)>,
    /// Largest absolute per-pair score change (both sides) at each iteration.
    pub max_deltas: Vec<f64>,
    /// Iterations actually executed (< `config.iterations` on early exit).
    pub iterations_run: usize,
    /// Whether the run stopped because the max delta fell below
    /// `config.tolerance`.
    pub converged: bool,
}

/// Minimal id abstraction so one kernel walks both CSR directions.
pub(crate) trait NodeId: Copy + Sync {
    /// The raw dense id.
    fn raw(self) -> u32;
}

impl NodeId for QueryId {
    #[inline]
    fn raw(self) -> u32 {
        self.0
    }
}

impl NodeId for AdId {
    #[inline]
    fn raw(self) -> u32 {
        self.0
    }
}

/// [`run`] output before freezing into [`ScoreMatrix`] form: key-sorted
/// pair lists plus diagnostics. The sharded stitch consumes this directly —
/// remapping and merging sorted vectors — so per-shard runs skip the
/// per-shard `by_node` construction that [`EngineRun`] would pay, and the
/// stitched result is frozen exactly once.
#[derive(Debug)]
pub(crate) struct RawRun {
    pub(crate) q_pairs: PairVec,
    pub(crate) a_pairs: PairVec,
    pub(crate) pair_counts: Vec<(usize, usize)>,
    pub(crate) max_deltas: Vec<f64>,
    pub(crate) iterations_run: usize,
    pub(crate) converged: bool,
}

/// Runs the unified Jacobi propagation loop for `transition` on `g`.
///
/// Exact (bar floating-point rounding) when `config.prune_threshold == 0`;
/// with a threshold, pairs whose scaled score falls at or below it are
/// dropped after each iteration. When `config.tolerance > 0`, iteration stops
/// as soon as the largest per-pair change on either side is at or below it.
pub fn run<T: Transition>(g: &ClickGraph, config: &SimrankConfig, transition: &T) -> EngineRun {
    let raw = run_raw(g, config, transition);
    EngineRun {
        queries: ScoreMatrix::from_sorted_pairs(g.n_queries(), raw.q_pairs),
        ads: ScoreMatrix::from_sorted_pairs(g.n_ads(), raw.a_pairs),
        pair_counts: raw.pair_counts,
        max_deltas: raw.max_deltas,
        iterations_run: raw.iterations_run,
        converged: raw.converged,
    }
}

/// Reusable per-run kernel scratch: one workspace per worker (plus, for the
/// pull kernel, the shared iterate-CSR buffers). Created once per engine run
/// and threaded through every Jacobi half-step, so no kernel allocates
/// per-iteration scratch; the sharded engine goes further and reuses one
/// scratch per queue worker across *all* its shards.
#[derive(Debug)]
pub(crate) struct EngineScratch {
    pull: Vec<pull::PullWorkspace>,
    csr: pull::CsrScratch,
    flat: Vec<FlatWorkspace>,
}

impl EngineScratch {
    pub(crate) fn new(kernel: KernelKind, threads: usize) -> Self {
        let threads = threads.max(1);
        let (n_pull, n_flat) = match kernel {
            KernelKind::Pull => (threads, 0),
            KernelKind::Flat => (0, threads),
            KernelKind::Hashmap => (0, 0),
        };
        EngineScratch {
            pull: (0..n_pull)
                .map(|_| pull::PullWorkspace::default())
                .collect(),
            csr: pull::CsrScratch::default(),
            flat: (0..n_flat).map(|_| FlatWorkspace::default()).collect(),
        }
    }
}

/// [`run`] without the final freeze — the sharded engine's per-shard entry.
pub(crate) fn run_raw<T: Transition>(
    g: &ClickGraph,
    config: &SimrankConfig,
    transition: &T,
) -> RawRun {
    let mut scratch = EngineScratch::new(config.kernel, config.effective_threads());
    run_raw_with(g, config, transition, &mut scratch)
}

/// [`run_raw`] against caller-owned [`EngineScratch`], so a worker draining
/// a shard queue reuses its workspaces across every shard it claims.
pub(crate) fn run_raw_with<T: Transition>(
    g: &ClickGraph,
    config: &SimrankConfig,
    transition: &T,
    scratch: &mut EngineScratch,
) -> RawRun {
    config.validate().expect("invalid SimRank configuration");
    let factors = transition.factors(g);
    let threads = config.effective_threads();

    let mut q_pairs: PairVec = Vec::new();
    let mut a_pairs: PairVec = Vec::new();
    let mut pair_counts = Vec::with_capacity(config.iterations);
    let mut max_deltas = Vec::with_capacity(config.iterations);
    let mut converged = false;

    // The four CSR row views the kernels walk. The scatter kernels (flat,
    // hashmap) stream *source* rows with source-major factors; the pull
    // kernel walks the *output* node's own row in pass 1 (output-major
    // factors) and scatters through inner rows in pass 2 (inner-major).
    let ad_row_qfac = |a: u32| {
        let (qs, _) = g.queries_of(AdId(a));
        let lo = g.ad_csr_offset(AdId(a));
        (qs, &factors.ad_to_query[lo..lo + qs.len()])
    };
    let query_row_afac = |q: u32| {
        let (ads, _) = g.ads_of(QueryId(q));
        let lo = g.query_csr_offset(QueryId(q));
        (ads, &factors.query_to_ad[lo..lo + ads.len()])
    };
    let query_row_qfac = |q: u32| {
        let (ads, _) = g.ads_of(QueryId(q));
        let lo = g.query_csr_offset(QueryId(q));
        (ads, &factors.ad_to_query_by_query[lo..lo + ads.len()])
    };
    let ad_row_afac = |a: u32| {
        let (qs, _) = g.queries_of(AdId(a));
        let lo = g.ad_csr_offset(AdId(a));
        (qs, &factors.query_to_ad_by_ad[lo..lo + qs.len()])
    };

    for _ in 0..config.iterations {
        // Jacobi: both sides advance from the *previous* iterate.
        let next_q = match config.kernel {
            KernelKind::Pull => pull::propagate_pull(
                g.n_queries(),
                g.n_ads(),
                query_row_qfac,
                ad_row_qfac,
                &a_pairs,
                config.c1,
                config.prune_threshold,
                &mut scratch.csr,
                &mut scratch.pull,
            ),
            KernelKind::Flat => propagate(
                g.n_ads(),
                ad_row_qfac,
                &a_pairs,
                config.c1,
                config.prune_threshold,
                &mut scratch.flat,
            ),
            KernelKind::Hashmap => reference::propagate_hashmap_sorted(
                g.n_queries(),
                g.n_ads(),
                ad_row_qfac,
                &a_pairs,
                config.c1,
                config.prune_threshold,
                threads,
            ),
        };
        let next_a = match config.kernel {
            KernelKind::Pull => pull::propagate_pull(
                g.n_ads(),
                g.n_queries(),
                ad_row_afac,
                query_row_afac,
                &q_pairs,
                config.c2,
                config.prune_threshold,
                &mut scratch.csr,
                &mut scratch.pull,
            ),
            KernelKind::Flat => propagate(
                g.n_queries(),
                query_row_afac,
                &q_pairs,
                config.c2,
                config.prune_threshold,
                &mut scratch.flat,
            ),
            KernelKind::Hashmap => reference::propagate_hashmap_sorted(
                g.n_ads(),
                g.n_queries(),
                query_row_afac,
                &q_pairs,
                config.c2,
                config.prune_threshold,
                threads,
            ),
        };

        let delta = max_delta(&q_pairs, &next_q).max(max_delta(&a_pairs, &next_a));
        q_pairs = next_q;
        a_pairs = next_a;
        pair_counts.push((q_pairs.len(), a_pairs.len()));
        max_deltas.push(delta);

        if config.tolerance > 0.0 && delta <= config.tolerance {
            converged = true;
            break;
        }
    }

    let iterations_run = pair_counts.len();
    RawRun {
        q_pairs,
        a_pairs,
        pair_counts,
        max_deltas,
        iterations_run,
        converged,
    }
}

/// Runs the engine under `config.sharding`: monolithic ([`run`]) when `Off`,
/// per-connected-component ([`run_sharded`], exact) for `Components`, and
/// ACL-extracted blocks (approximate) for `Extracted`. This is the entry
/// point the `simrank`/`weighted` front-ends use, so the strategy knob
/// reaches every recursive variant and the serving index build.
pub fn run_with_strategy<T: Transition>(
    g: &ClickGraph,
    config: &SimrankConfig,
    transition: &T,
) -> EngineRun {
    match config.sharding {
        ShardStrategy::Off => run(g, config, transition),
        ShardStrategy::Components => {
            let sharding = simrankpp_graph::Sharding::from_components(g);
            sharded::run_sharded(g, config, transition, &sharding)
        }
        ShardStrategy::Extracted(k) => {
            let sharding = simrankpp_partition::extraction_sharding(g, k);
            sharded::run_sharded(g, config, transition, &sharding)
        }
    }
}

/// Destination of kernel contributions — lets the flat and the reference
/// hash-map paths share one scatter loop, so the two can only differ in
/// accumulation strategy, never in the propagation math.
pub(crate) trait PairSink {
    /// Adds `delta` to the unordered pair `(a, b)`.
    fn add_pair(&mut self, a: u32, b: u32, delta: f64);
}

impl PairSink for FlatAccumulator {
    #[inline]
    fn add_pair(&mut self, a: u32, b: u32, delta: f64) {
        self.add(a, b, delta);
    }
}

impl PairSink for crate::scores::ScoreMatrixBuilder {
    #[inline]
    fn add_pair(&mut self, a: u32, b: u32, delta: f64) {
        self.add(a, b, delta);
    }
}

/// The shared scatter loop of one Jacobi half-step, over one chunk of the
/// combined item space (`0..prev.len()` = stored source pairs, the rest =
/// unit source diagonals).
///
/// `row(src)` returns the source node's target neighbors together with the
/// matching factor slice (`F(target, src)` per edge). The stored pair
/// `(i, j, s)` contributes `F(t,i)·F(t',j)·s` to every ordered neighbor
/// combination `(t ∈ row(i), t' ∈ row(j))`, and each source's diagonal
/// (`s(i,i) = 1`) contributes `F(t,i)·F(t',i)` per unordered neighbor pair.
pub(crate) fn scatter_chunk<'g, I, RowFn, S>(
    range: std::ops::Range<usize>,
    prev: &[(simrankpp_util::PairKey, f64)],
    row: &RowFn,
    sink: &mut S,
) where
    I: NodeId + 'g,
    RowFn: Fn(u32) -> (&'g [I], &'g [f64]),
    S: PairSink,
{
    let n_pair_items = prev.len();
    for idx in range {
        if idx < n_pair_items {
            let (key, s) = prev[idx];
            let (i, j) = key.parts();
            let (targets_i, f_i) = row(i);
            let (targets_j, f_j) = row(j);
            for (x, ti) in targets_i.iter().enumerate() {
                let w = f_i[x] * s;
                for (y, tj) in targets_j.iter().enumerate() {
                    if ti.raw() != tj.raw() {
                        sink.add_pair(ti.raw(), tj.raw(), w * f_j[y]);
                    }
                }
            }
        } else {
            let src = (idx - n_pair_items) as u32;
            let (targets, f) = row(src);
            for x in 0..targets.len() {
                for y in (x + 1)..targets.len() {
                    sink.add_pair(targets[x].raw(), targets[y].raw(), f[x] * f[y]);
                }
            }
        }
    }
}

/// One Jacobi half-step on the flat path: scatter into per-worker pooled
/// [`FlatAccumulator`]s, merge, then scale by the decay `c` and prune.
pub(crate) fn propagate<'g, I, RowFn>(
    n_sources: usize,
    row: RowFn,
    prev: &PairVec,
    c: f64,
    prune_threshold: f64,
    workspaces: &mut [FlatWorkspace],
) -> PairVec
where
    I: NodeId + 'g,
    RowFn: Fn(u32) -> (&'g [I], &'g [f64]) + Sync,
{
    let pieces = parallel::run_chunked_stateful(prev.len() + n_sources, workspaces, |ws, range| {
        ws.start();
        scatter_chunk(range, prev, &row, &mut ws.acc);
        ws.finish()
    });
    let merged = accum::merge_all(pieces);
    accum::scale_prune(merged, c, prune_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighted::SpreadMode;
    use simrankpp_graph::fixtures::{figure3_graph, figure4_k22};
    use simrankpp_graph::WeightKind;

    fn cfg(k: usize) -> SimrankConfig {
        SimrankConfig::default().with_iterations(k)
    }

    #[test]
    fn uniform_engine_reproduces_table3() {
        let g = figure4_k22();
        let expected = [0.4, 0.56, 0.624, 0.6496, 0.65984, 0.663936, 0.6655744];
        for (k, &want) in expected.iter().enumerate() {
            let r = run(&g, &cfg(k + 1), &UniformTransition);
            assert!(
                (r.queries.get(0, 1) - want).abs() < 1e-9,
                "iteration {}",
                k + 1
            );
        }
    }

    #[test]
    fn diagnostics_recorded_every_iteration() {
        let g = figure3_graph();
        let r = run(&g, &cfg(5), &UniformTransition);
        assert_eq!(r.pair_counts.len(), 5);
        assert_eq!(r.max_deltas.len(), 5);
        assert_eq!(r.iterations_run, 5);
        assert!(!r.converged);
        // First iteration jumps from the identity, so the delta is largest.
        assert!(r.max_deltas[0] >= r.max_deltas[4]);
        assert!(r.max_deltas.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn tolerance_stops_early_and_flags_convergence() {
        let g = figure3_graph();
        let full = run(&g, &cfg(100), &UniformTransition);
        let tol = run(&g, &cfg(100).with_tolerance(1e-6), &UniformTransition);
        assert!(tol.converged);
        assert!(tol.iterations_run < full.iterations_run);
        // Early exit at tolerance t bounds the per-pair error by t·C/(1−C).
        assert!(full.queries.max_abs_diff(&tol.queries) < 1e-5);
    }

    #[test]
    fn weighted_transition_diagnostics_present() {
        let g = figure3_graph();
        let t = WeightedTransition {
            kind: WeightKind::Clicks,
            spread: SpreadMode::Exponential,
        };
        let r = run(&g, &cfg(4), &t);
        assert_eq!(r.pair_counts.len(), 4);
        assert_eq!(r.max_deltas.len(), 4);
        assert!(r.pair_counts[3].0 > 0);
    }

    #[test]
    fn flat_and_hashmap_paths_agree() {
        use simrankpp_graph::{AdId, ClickGraphBuilder, EdgeData, QueryId};
        let mut b = ClickGraphBuilder::new();
        let mut x: u64 = 17;
        for _ in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.add_edge(
                QueryId(((x >> 33) % 50) as u32),
                AdId(((x >> 13) % 40) as u32),
                EdgeData::from_clicks(1 + (x % 5)),
            );
        }
        let g = b.build();
        for transition in [
            None,
            Some(WeightedTransition {
                kind: WeightKind::Clicks,
                spread: SpreadMode::Exponential,
            }),
        ] {
            let (flat, hashed) = match &transition {
                None => (
                    run(&g, &cfg(5), &UniformTransition),
                    reference::run_hashmap(&g, &cfg(5), &UniformTransition),
                ),
                Some(t) => (run(&g, &cfg(5), t), reference::run_hashmap(&g, &cfg(5), t)),
            };
            assert!(
                flat.queries.max_abs_diff(&hashed.queries) < 1e-12,
                "query drift {}",
                flat.queries.max_abs_diff(&hashed.queries)
            );
            assert!(flat.ads.max_abs_diff(&hashed.ads) < 1e-12);
        }
    }
}
