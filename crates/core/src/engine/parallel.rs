//! Chunked scoped-thread parallelism shared by every engine variant.
//!
//! The seed code carried one `parallel_chunks` copy per engine, each welded
//! to `ScoreMatrixBuilder` and crossbeam. This version is generic over the
//! per-chunk result and uses `std::thread::scope`, dropping the external
//! dependency.

use std::ops::Range;

/// Below this item count the threading overhead outweighs the work; run
/// serially regardless of the configured thread count.
const PARALLEL_THRESHOLD: usize = 1024;

/// Splits `0..n_items` into `threads` contiguous chunks (`0` = all available
/// cores), runs `work` on each (serially when one thread or the range is
/// small), and returns the per-chunk results in chunk order — deterministic
/// given deterministic `work`.
pub fn run_chunked<T, F>(n_items: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let mut states = vec![(); threads.max(1)];
    run_chunked_stateful(n_items, &mut states, |_, range| work(range))
}

/// [`run_chunked`] with one reusable per-worker state: chunk `t` runs with
/// exclusive access to `states[t]`, so a workspace pool allocated once by
/// the caller survives across every call (the engine reuses scratch across
/// Jacobi half-steps this way). `states.len()` fixes the worker count;
/// results come back in chunk order.
pub fn run_chunked_stateful<S, T, F>(n_items: usize, states: &mut [S], work: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(&mut S, Range<usize>) -> T + Sync,
{
    let threads = states.len();
    if threads <= 1 || n_items < PARALLEL_THRESHOLD {
        let state = states.first_mut().expect("at least one worker state");
        return vec![work(state, 0..n_items)];
    }
    let threads = threads.min(n_items);
    let chunk = n_items.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = states[..threads]
            .iter_mut()
            .enumerate()
            .map(|(t, state)| {
                let lo = (t * chunk).min(n_items);
                let hi = ((t + 1) * chunk).min(n_items);
                let work = &work;
                scope.spawn(move || work(state, lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    })
}

/// Runs `work(i)` for every `i in 0..n_items` with `workers` scoped threads
/// pulling indices off an atomic queue, returning the results **in index
/// order** — the greedy work-stealing schedule the sharded engine uses
/// (items sorted largest-first amortize best), shared with the serving
/// layer's incremental rebuild. Serial when `workers <= 1` or there is at
/// most one item. Deterministic output for deterministic `work` regardless
/// of the worker count.
pub fn run_indexed<T, F>(n_items: usize, workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut states = vec![(); workers.max(1)];
    run_indexed_stateful(n_items, &mut states, |_, i| work(i))
}

/// [`run_indexed`] with one reusable per-worker state: each queue worker
/// owns one slot of `states` for its whole drain, so scratch built for the
/// first item it claims is reused for every later item (the sharded engine
/// threads its kernel workspaces through here). `states.len()` fixes the
/// worker count; results still come back in index order.
pub fn run_indexed_stateful<S, T, F>(n_items: usize, states: &mut [S], work: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = states.len();
    if workers <= 1 || n_items <= 1 {
        let state = states.first_mut().expect("at least one worker state");
        return (0..n_items).map(|i| work(state, i)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_items).map(|_| None).collect();
    let finished: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = states[..workers.min(n_items)]
            .iter_mut()
            .map(|state| {
                let next = &next;
                let work = &work;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n_items {
                            break;
                        }
                        out.push((i, work(state, i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("queue worker panicked"))
            .collect()
    });
    for (i, v) in finished.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|v| v.expect("every index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_orders_results_for_any_worker_count() {
        for workers in [1, 2, 7] {
            let out = run_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn serial_and_parallel_cover_the_same_items() {
        let serial: usize = run_chunked(10, 1, |r| r.sum::<usize>()).into_iter().sum();
        let parallel: usize = run_chunked(5000, 4, |r| r.sum::<usize>()).into_iter().sum();
        assert_eq!(serial, (0..10).sum());
        assert_eq!(parallel, (0..5000).sum());
    }

    #[test]
    fn chunks_are_ordered() {
        let pieces = run_chunked(4096, 4, |r| r.start);
        assert!(pieces.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn stateful_chunked_reuses_worker_state_across_calls() {
        let mut states = vec![0usize; 3];
        for round in 1..=2 {
            let out = run_chunked_stateful(6000, &mut states, |s, r| {
                *s += r.len();
                r.len()
            });
            assert_eq!(out.iter().sum::<usize>(), 6000);
            assert_eq!(states.iter().sum::<usize>(), 6000 * round);
        }
    }

    #[test]
    fn stateful_indexed_orders_results_and_persists_state() {
        for workers in [1usize, 2, 5] {
            let mut states = vec![0usize; workers];
            let out = run_indexed_stateful(17, &mut states, |s, i| {
                *s += 1;
                i * 2
            });
            assert_eq!(out, (0..17).map(|i| i * 2).collect::<Vec<_>>());
            assert_eq!(states.iter().sum::<usize>(), 17, "workers={workers}");
        }
        let mut states = vec![(); 4];
        assert!(run_indexed_stateful(0, &mut states, |_, i| i).is_empty());
    }
}
