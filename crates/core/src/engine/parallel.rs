//! Chunked scoped-thread parallelism shared by every engine variant.
//!
//! The seed code carried one `parallel_chunks` copy per engine, each welded
//! to `ScoreMatrixBuilder` and crossbeam. This version is generic over the
//! per-chunk result and uses `std::thread::scope`, dropping the external
//! dependency.

use std::ops::Range;

/// Below this item count the threading overhead outweighs the work; run
/// serially regardless of the configured thread count.
const PARALLEL_THRESHOLD: usize = 1024;

/// Splits `0..n_items` into `threads` contiguous chunks (`0` = all available
/// cores), runs `work` on each (serially when one thread or the range is
/// small), and returns the per-chunk results in chunk order — deterministic
/// given deterministic `work`.
pub fn run_chunked<T, F>(n_items: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    if threads <= 1 || n_items < PARALLEL_THRESHOLD {
        return vec![work(0..n_items)];
    }
    let threads = threads.min(n_items);
    let chunk = n_items.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = (t * chunk).min(n_items);
                let hi = ((t + 1) * chunk).min(n_items);
                let work = &work;
                scope.spawn(move || work(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    })
}

/// Runs `work(i)` for every `i in 0..n_items` with `workers` scoped threads
/// pulling indices off an atomic queue, returning the results **in index
/// order** — the greedy work-stealing schedule the sharded engine uses
/// (items sorted largest-first amortize best), shared with the serving
/// layer's incremental rebuild. Serial when `workers <= 1` or there is at
/// most one item. Deterministic output for deterministic `work` regardless
/// of the worker count.
pub fn run_indexed<T, F>(n_items: usize, workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n_items <= 1 {
        return (0..n_items).map(work).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_items).map(|_| None).collect();
    let finished: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n_items))
            .map(|_| {
                let next = &next;
                let work = &work;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n_items {
                            break;
                        }
                        out.push((i, work(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("queue worker panicked"))
            .collect()
    });
    for (i, v) in finished.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|v| v.expect("every index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_orders_results_for_any_worker_count() {
        for workers in [1, 2, 7] {
            let out = run_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn serial_and_parallel_cover_the_same_items() {
        let serial: usize = run_chunked(10, 1, |r| r.sum::<usize>()).into_iter().sum();
        let parallel: usize = run_chunked(5000, 4, |r| r.sum::<usize>()).into_iter().sum();
        assert_eq!(serial, (0..10).sum());
        assert_eq!(parallel, (0..5000).sum());
    }

    #[test]
    fn chunks_are_ordered() {
        let pieces = run_chunked(4096, 4, |r| r.start);
        assert!(pieces.windows(2).all(|w| w[0] < w[1]));
    }
}
