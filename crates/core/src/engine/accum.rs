//! Flat sorted-pair accumulation.
//!
//! The historical engines rebuilt an `FxHashMap<PairKey, f64>` every
//! iteration: each contribution paid a hash + probe, and the map's buckets
//! were scattered across the heap. The flat path appends contributions to a
//! plain buffer; full buffers are sorted, duplicate-combined, and kept as
//! independent sorted runs that a tournament merge combines at the end —
//! sequential memory traffic throughout, and output already in the sorted
//! order [`crate::scores::ScoreMatrix`] wants. Since ISSUE 5 this is the
//! `KernelKind::Flat` cross-check oracle: the production default is the
//! sort-free pull kernel ([`super::pull`]), and `bench_engine`/`bench_ci`
//! measure all three kernels side by side.

use simrankpp_util::PairKey;

/// Sorted-by-key, duplicate-free pair scores — the engine's iterate format.
pub type PairVec = Vec<(PairKey, f64)>;

/// Buffer length that triggers an intermediate flush, bounding the *unsorted*
/// working set per worker; flushed runs hold only distinct pairs.
const FLUSH_AT: usize = 1 << 20;

/// Accumulates `(pair, delta)` contributions and produces a combined,
/// key-sorted vector.
#[derive(Debug, Default)]
pub struct FlatAccumulator {
    /// Sorted, duplicate-free runs, one per flush; merged in [`Self::finish`]
    /// so a long accumulation costs `O(n log k)` rather than re-merging the
    /// running total on every flush.
    runs: Vec<PairVec>,
    /// Raw contributions awaiting a flush.
    buf: PairVec,
    /// Contributions added since construction or the last
    /// [`Self::finish_reset`] — the next round's capacity hint.
    added: usize,
}

impl FlatAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserves contribution-buffer capacity (capped at the flush
    /// threshold — a larger buffer would flush before filling anyway).
    pub fn reserve(&mut self, contributions: usize) {
        let want = contributions.min(FLUSH_AT);
        self.buf.reserve(want.saturating_sub(self.buf.len()));
    }

    /// Contributions added since construction or the last
    /// [`Self::finish_reset`].
    pub fn added(&self) -> usize {
        self.added
    }

    /// Adds `delta` to the unordered pair `(a, b)`.
    ///
    /// # Panics
    /// Debug builds panic on diagonal pairs — the diagonal is fixed at 1.
    #[inline]
    pub fn add(&mut self, a: u32, b: u32, delta: f64) {
        debug_assert_ne!(a, b, "diagonal scores are fixed at 1");
        self.added += 1;
        self.buf.push((PairKey::new(a, b), delta));
        if self.buf.len() >= FLUSH_AT {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        // Sort by (key, value bits), not key alone: a key-only unstable sort
        // leaves the order of a pair's contributions at the mercy of the
        // *surrounding* elements, so the same multiset of contributions could
        // be summed in different orders — and float addition is not
        // associative. The value tiebreak makes the per-pair summation order
        // a function of the contributions themselves, which is what lets a
        // component-sharded run reproduce the monolithic run bit for bit
        // (contribution values are engine outputs, hence non-NaN; `to_bits`
        // orders non-negative floats like the floats themselves).
        self.buf
            .sort_unstable_by_key(|&(k, v)| (k.raw(), v.to_bits()));
        combine_sorted(&mut self.buf);
        self.runs.push(std::mem::take(&mut self.buf));
    }

    /// Finishes accumulation: sorted, duplicate-free pair scores.
    pub fn finish(mut self) -> PairVec {
        self.finish_reset()
    }

    /// As [`Self::finish`], but leaves the accumulator reusable: the result
    /// is returned, the contribution counter resets, and the (now empty)
    /// internal vectors keep their capacity for the next round — the
    /// workspace-pool path ([`FlatWorkspace`]) calls this every half-step.
    pub fn finish_reset(&mut self) -> PairVec {
        self.flush();
        self.added = 0;
        merge_all(std::mem::take(&mut self.runs))
    }
}

/// A pooled flat-path worker workspace: the accumulator plus a contribution
/// peak that pre-sizes the next round's buffer, so repeated half-steps stop
/// paying growth reallocations. One per engine worker, threaded through
/// `parallel::run_chunked_stateful` and reused across all iterations of a
/// run.
#[derive(Debug, Default)]
pub struct FlatWorkspace {
    /// The reusable accumulator.
    pub acc: FlatAccumulator,
    peak: usize,
}

impl FlatWorkspace {
    /// Prepares the accumulator for a half-step, reserving the largest
    /// contribution count any previous half-step produced.
    pub fn start(&mut self) {
        self.acc.reserve(self.peak);
    }

    /// Finishes the half-step, recording the contribution peak.
    pub fn finish(&mut self) -> PairVec {
        self.peak = self.peak.max(self.acc.added());
        self.acc.finish_reset()
    }
}

/// Sums adjacent entries with equal keys in a sorted vector, in place.
fn combine_sorted(v: &mut PairVec) {
    let mut w = 0usize;
    for r in 0..v.len() {
        if w > 0 && v[w - 1].0 == v[r].0 {
            v[w - 1].1 += v[r].1;
        } else {
            v[w] = v[r];
            w += 1;
        }
    }
    v.truncate(w);
}

/// Additively merges two sorted, duplicate-free vectors.
fn merge_two(a: PairVec, b: &[(PairKey, f64)]) -> PairVec {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.raw().cmp(&b[j].0.raw()) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merges two sorted vectors whose key sets must be disjoint; a shared key
/// is an error (used by the sharded stitch, where a duplicate means two
/// shards claim the same pair). Walks the smaller side and gallops
/// (binary-searches) through the larger, copying the skipped span in bulk —
/// `O(small · log big)` comparisons plus one pass of bulk copies, so merging
/// a satellite component into the §9.2 giant costs ~memcpy, not an
/// element-by-element walk of the giant.
fn merge_two_disjoint(a: PairVec, b: PairVec) -> Result<PairVec, String> {
    if a.is_empty() {
        return Ok(b);
    }
    if b.is_empty() {
        return Ok(a);
    }
    let (big, small) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(big.len() + small.len());
    let mut i = 0usize;
    for &(k, v) in &small {
        let pos = i + big[i..].partition_point(|&(bk, _)| bk.raw() < k.raw());
        out.extend_from_slice(&big[i..pos]);
        if pos < big.len() && big[pos].0 == k {
            let (x, y) = k.parts();
            return Err(format!("pair ({x}, {y}) produced by two shards"));
        }
        out.push((k, v));
        i = pos;
    }
    out.extend_from_slice(&big[i..]);
    Ok(out)
}

/// Merges sorted, pairwise-disjoint vectors into one sorted vector, erroring
/// on any key that appears twice. The sharded engine's stitch path — no
/// hashing, unlike the equivalent `ScoreMatrixBuilder::merge_disjoint`
/// (which serves the builder-level API).
///
/// Pieces are merged smallest-pair-first (the optimal-merge-tree order): the
/// component stitch sees one giant piece and hundreds of tiny satellites,
/// and pairing by size collapses the satellites among themselves before the
/// giant is touched exactly once. A balanced tournament re-copied the giant
/// `log k` times, which dominated the whole sharded run at 10k-query scale.
pub fn merge_all_disjoint(pieces: Vec<PairVec>) -> Result<PairVec, String> {
    let pieces: Vec<PairVec> = pieces.into_iter().filter(|p| !p.is_empty()).collect();
    if pieces.is_empty() {
        return Ok(Vec::new());
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> = pieces
        .iter()
        .enumerate()
        .map(|(i, p)| std::cmp::Reverse((p.len(), i)))
        .collect();
    let mut slots: Vec<Option<PairVec>> = pieces.into_iter().map(Some).collect();
    while heap.len() > 1 {
        let std::cmp::Reverse((_, i)) = heap.pop().unwrap();
        let std::cmp::Reverse((_, j)) = heap.pop().unwrap();
        let merged = merge_two_disjoint(
            slots[i].take().expect("heap entries own live slots"),
            slots[j].take().expect("heap entries own live slots"),
        )?;
        heap.push(std::cmp::Reverse((merged.len(), i)));
        slots[i] = Some(merged);
    }
    let std::cmp::Reverse((_, i)) = heap.pop().unwrap();
    Ok(slots[i].take().expect("final slot holds the merge result"))
}

/// Additively merges per-worker results into one sorted vector.
///
/// Merges pairwise (tournament-style) so total work is `O(n log k)` for `k`
/// chunks rather than `O(n·k)` for a left fold.
pub fn merge_all(mut pieces: Vec<PairVec>) -> PairVec {
    if pieces.is_empty() {
        return Vec::new();
    }
    while pieces.len() > 1 {
        let mut next = Vec::with_capacity(pieces.len().div_ceil(2));
        let mut it = pieces.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, &b)),
                None => next.push(a),
            }
        }
        pieces = next;
    }
    pieces.pop().unwrap()
}

/// Scales every score by `c` and drops entries at or below
/// `prune_threshold` (and any non-positive entries), in place.
pub fn scale_prune(mut v: PairVec, c: f64, prune_threshold: f64) -> PairVec {
    v.retain_mut(|(_, s)| {
        *s *= c;
        *s > prune_threshold && *s > 0.0
    });
    v
}

/// Largest absolute score difference between two sorted pair vectors, over
/// the union of their keys (missing entries count as 0).
pub fn max_delta(a: &[(PairKey, f64)], b: &[(PairKey, f64)]) -> f64 {
    let mut max = 0.0f64;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.raw().cmp(&b[j].0.raw()) {
            std::cmp::Ordering::Less => {
                max = max.max(a[i].1.abs());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                max = max.max(b[j].1.abs());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                max = max.max((a[i].1 - b[j].1).abs());
                i += 1;
                j += 1;
            }
        }
    }
    for &(_, s) in &a[i..] {
        max = max.max(s.abs());
    }
    for &(_, s) in &b[j..] {
        max = max.max(s.abs());
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_combines_duplicates() {
        let mut acc = FlatAccumulator::new();
        acc.add(3, 1, 0.25);
        acc.add(1, 3, 0.25); // same unordered pair
        acc.add(0, 2, 1.0);
        let v = acc.finish();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, PairKey::new(0, 2));
        assert_eq!(v[1], (PairKey::new(1, 3), 0.5));
    }

    #[test]
    fn output_is_sorted_even_across_flushes() {
        let mut acc = FlatAccumulator::new();
        // Force multiple flushes with descending keys.
        for round in 0..3 {
            for i in (0..(FLUSH_AT as u32 / 2)).rev() {
                acc.add(i, i + 1 + round, 1.0);
            }
        }
        let v = acc.finish();
        assert!(v.windows(2).all(|w| w[0].0.raw() < w[1].0.raw()));
        let total: f64 = v.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 3.0 * (FLUSH_AT as f64 / 2.0));
    }

    #[test]
    fn workspace_finish_reset_is_reusable_and_tracks_peak() {
        let mut ws = FlatWorkspace::default();
        for round in 0..3 {
            ws.start();
            ws.acc.add(0, 1, 1.0);
            ws.acc.add(1, 2, 0.5);
            ws.acc.add(2, 1, 0.5);
            let v = ws.finish();
            assert_eq!(v.len(), 2, "round {round}");
            assert_eq!(v[1], (PairKey::new(1, 2), 1.0));
            assert_eq!(ws.acc.added(), 0, "counter resets");
        }
        assert_eq!(ws.peak, 3);
    }

    #[test]
    fn merge_all_disjoint_merges_and_rejects_overlap() {
        let a = vec![(PairKey::new(0, 1), 1.0), (PairKey::new(4, 5), 2.0)];
        let b = vec![(PairKey::new(2, 3), 0.5)];
        let m = merge_all_disjoint(vec![a.clone(), b]).unwrap();
        assert_eq!(m.len(), 3);
        assert!(m.windows(2).all(|w| w[0].0.raw() < w[1].0.raw()));

        let overlap = vec![(PairKey::new(4, 5), 0.1)];
        let err = merge_all_disjoint(vec![a, overlap]).unwrap_err();
        assert!(err.contains("(4, 5)"), "{err}");
        assert!(merge_all_disjoint(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn merge_all_sums_across_pieces() {
        let a = vec![(PairKey::new(0, 1), 1.0), (PairKey::new(2, 3), 2.0)];
        let b = vec![(PairKey::new(0, 1), 0.5)];
        let c = vec![(PairKey::new(4, 5), 4.0)];
        let m = merge_all(vec![a, b, c]);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0], (PairKey::new(0, 1), 1.5));
    }

    #[test]
    fn scale_prune_drops_small() {
        let v = vec![
            (PairKey::new(0, 1), 1.0),
            (PairKey::new(0, 2), 1e-9),
            (PairKey::new(0, 3), 0.0),
        ];
        let out = scale_prune(v, 0.8, 1e-6);
        assert_eq!(out.len(), 1);
        assert!((out[0].1 - 0.8).abs() < 1e-15);
    }

    #[test]
    fn max_delta_covers_union() {
        let a = vec![(PairKey::new(0, 1), 0.5), (PairKey::new(2, 3), 0.1)];
        let b = vec![(PairKey::new(0, 1), 0.4), (PairKey::new(4, 5), 0.3)];
        assert!((max_delta(&a, &b) - 0.3).abs() < 1e-15);
        assert_eq!(max_delta(&[], &[]), 0.0);
    }
}
