//! Flat sorted-pair accumulation.
//!
//! The historical engines rebuilt an `FxHashMap<PairKey, f64>` every
//! iteration: each contribution paid a hash + probe, and the map's buckets
//! were scattered across the heap. The flat path appends contributions to a
//! plain buffer; full buffers are sorted, duplicate-combined, and kept as
//! independent sorted runs that a tournament merge combines at the end —
//! sequential memory traffic throughout, and output already in the sorted
//! order [`crate::scores::ScoreMatrix`] wants. `bench_engine` measures the
//! two side by side.

use simrankpp_util::PairKey;

/// Sorted-by-key, duplicate-free pair scores — the engine's iterate format.
pub type PairVec = Vec<(PairKey, f64)>;

/// Buffer length that triggers an intermediate flush, bounding the *unsorted*
/// working set per worker; flushed runs hold only distinct pairs.
const FLUSH_AT: usize = 1 << 20;

/// Accumulates `(pair, delta)` contributions and produces a combined,
/// key-sorted vector.
#[derive(Debug, Default)]
pub struct FlatAccumulator {
    /// Sorted, duplicate-free runs, one per flush; merged in [`Self::finish`]
    /// so a long accumulation costs `O(n log k)` rather than re-merging the
    /// running total on every flush.
    runs: Vec<PairVec>,
    /// Raw contributions awaiting a flush.
    buf: PairVec,
}

impl FlatAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the unordered pair `(a, b)`.
    ///
    /// # Panics
    /// Debug builds panic on diagonal pairs — the diagonal is fixed at 1.
    #[inline]
    pub fn add(&mut self, a: u32, b: u32, delta: f64) {
        debug_assert_ne!(a, b, "diagonal scores are fixed at 1");
        self.buf.push((PairKey::new(a, b), delta));
        if self.buf.len() >= FLUSH_AT {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.buf.sort_unstable_by_key(|&(k, _)| k.raw());
        combine_sorted(&mut self.buf);
        self.runs.push(std::mem::take(&mut self.buf));
    }

    /// Finishes accumulation: sorted, duplicate-free pair scores.
    pub fn finish(mut self) -> PairVec {
        self.flush();
        merge_all(self.runs)
    }
}

/// Sums adjacent entries with equal keys in a sorted vector, in place.
fn combine_sorted(v: &mut PairVec) {
    let mut w = 0usize;
    for r in 0..v.len() {
        if w > 0 && v[w - 1].0 == v[r].0 {
            v[w - 1].1 += v[r].1;
        } else {
            v[w] = v[r];
            w += 1;
        }
    }
    v.truncate(w);
}

/// Additively merges two sorted, duplicate-free vectors.
fn merge_two(a: PairVec, b: &[(PairKey, f64)]) -> PairVec {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.raw().cmp(&b[j].0.raw()) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Additively merges per-worker results into one sorted vector.
///
/// Merges pairwise (tournament-style) so total work is `O(n log k)` for `k`
/// chunks rather than `O(n·k)` for a left fold.
pub fn merge_all(mut pieces: Vec<PairVec>) -> PairVec {
    if pieces.is_empty() {
        return Vec::new();
    }
    while pieces.len() > 1 {
        let mut next = Vec::with_capacity(pieces.len().div_ceil(2));
        let mut it = pieces.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, &b)),
                None => next.push(a),
            }
        }
        pieces = next;
    }
    pieces.pop().unwrap()
}

/// Scales every score by `c` and drops entries at or below
/// `prune_threshold` (and any non-positive entries), in place.
pub fn scale_prune(mut v: PairVec, c: f64, prune_threshold: f64) -> PairVec {
    v.retain_mut(|(_, s)| {
        *s *= c;
        *s > prune_threshold && *s > 0.0
    });
    v
}

/// Largest absolute score difference between two sorted pair vectors, over
/// the union of their keys (missing entries count as 0).
pub fn max_delta(a: &[(PairKey, f64)], b: &[(PairKey, f64)]) -> f64 {
    let mut max = 0.0f64;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.raw().cmp(&b[j].0.raw()) {
            std::cmp::Ordering::Less => {
                max = max.max(a[i].1.abs());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                max = max.max(b[j].1.abs());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                max = max.max((a[i].1 - b[j].1).abs());
                i += 1;
                j += 1;
            }
        }
    }
    for &(_, s) in &a[i..] {
        max = max.max(s.abs());
    }
    for &(_, s) in &b[j..] {
        max = max.max(s.abs());
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_combines_duplicates() {
        let mut acc = FlatAccumulator::new();
        acc.add(3, 1, 0.25);
        acc.add(1, 3, 0.25); // same unordered pair
        acc.add(0, 2, 1.0);
        let v = acc.finish();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, PairKey::new(0, 2));
        assert_eq!(v[1], (PairKey::new(1, 3), 0.5));
    }

    #[test]
    fn output_is_sorted_even_across_flushes() {
        let mut acc = FlatAccumulator::new();
        // Force multiple flushes with descending keys.
        for round in 0..3 {
            for i in (0..(FLUSH_AT as u32 / 2)).rev() {
                acc.add(i, i + 1 + round, 1.0);
            }
        }
        let v = acc.finish();
        assert!(v.windows(2).all(|w| w[0].0.raw() < w[1].0.raw()));
        let total: f64 = v.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 3.0 * (FLUSH_AT as f64 / 2.0));
    }

    #[test]
    fn merge_all_sums_across_pieces() {
        let a = vec![(PairKey::new(0, 1), 1.0), (PairKey::new(2, 3), 2.0)];
        let b = vec![(PairKey::new(0, 1), 0.5)];
        let c = vec![(PairKey::new(4, 5), 4.0)];
        let m = merge_all(vec![a, b, c]);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0], (PairKey::new(0, 1), 1.5));
    }

    #[test]
    fn scale_prune_drops_small() {
        let v = vec![
            (PairKey::new(0, 1), 1.0),
            (PairKey::new(0, 2), 1e-9),
            (PairKey::new(0, 3), 0.0),
        ];
        let out = scale_prune(v, 0.8, 1e-6);
        assert_eq!(out.len(), 1);
        assert!((out[0].1 - 0.8).abs() < 1e-15);
    }

    #[test]
    fn max_delta_covers_union() {
        let a = vec![(PairKey::new(0, 1), 0.5), (PairKey::new(2, 3), 0.1)];
        let b = vec![(PairKey::new(0, 1), 0.4), (PairKey::new(4, 5), 0.3)];
        assert!((max_delta(&a, &b) - 0.3).abs() < 1e-15);
        assert_eq!(max_delta(&[], &[]), 0.0);
    }
}
