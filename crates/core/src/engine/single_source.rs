//! Single-source SimRank: one query's score row without the all-pairs matrix.
//!
//! Every other path in this crate materializes the full O(n²) pair matrix
//! before a single score can be read. This module answers "scores of query
//! `q` against everyone" on demand, following the linearization idea of
//! Maehara et al., *Efficient SimRank Computation via Linearization*
//! (adapted here to the paper's bipartite click graph with two decay
//! factors and a pinned diagonal).
//!
//! # The linearized series
//!
//! Let `A[q,a] = F(q,a)` and `B[a,q] = F(a,q)` be the transition-factor
//! matrices (PR 5's CSR [`TransitionFactors`], both orders). At the fixed
//! point the paper's recurrences (Eq. 4.1/4.2 with the diagonal pinned to 1)
//! read, *including* the diagonal:
//!
//! ```text
//! S_Q = C1·A·S_A·Aᵀ + diag(d_Q)      S_A = C2·B·S_Q·Bᵀ + diag(d_A)
//! ```
//!
//! where `d_Q`/`d_A` are exactly the corrections that lift each diagonal
//! entry back to 1. Substituting one into the other gives a discrete
//! Lyapunov equation in `S_Q` alone:
//!
//! ```text
//! S_Q = c·T·S_Q·Tᵀ + E       c = C1·C2,  T = A·B,
//!                            E = C1·A·diag(d_A)·Aᵀ + diag(d_Q)
//! ```
//!
//! whose solution is the geometric series `S_Q = Σ_j c^j T^j E (Tᵀ)^j`.
//! One *row* of that series needs only sparse vector products:
//!
//! * forward: `u_j = (Tᵀ)^j e_q` for `j = 0..J` (two CSR scatters per
//!   level, caching `y_j = Aᵀu_j`);
//! * backward (Horner): `v ← A(c·B·v + C1·d_A⊙y_j) + d_Q⊙u_j` for
//!   `j = J..0`, starting from `v = 0`.
//!
//! The result `v` is `S_Q[q, ·]` up to the `c^{J+1}/(1−c)` series tail and
//! whatever the pruning threshold discards. The four scatters consume all
//! four factor layouts of [`TransitionFactors`]:
//! `Aᵀ` = `ad_to_query_by_query`, `Bᵀ` = `query_to_ad_by_ad`,
//! `B` = `query_to_ad`, `A` = `ad_to_query`.
//!
//! # The diagonal correction
//!
//! `d_Q`/`d_A` do not depend on the queried row, so they are precomputed
//! once per graph (the "index build" of this mode) and reused by every
//! query. Two constructors:
//!
//! * [`DiagonalCorrection::from_scores`] — exact, read off a *converged*
//!   all-pairs run; the differential-test oracle.
//! * [`DiagonalCorrection::estimate`] — no all-pairs run: the diagonal
//!   constraints `diag(S_Q) = 1`, `diag(S_A) = 1` form a linear system in
//!   `(d_Q, d_A)` whose coefficients are squared walk masses. Each node's
//!   sparse coefficient row is computed once (pruned truncated walks,
//!   parallelized with [`run_chunked`]), then cheap Gauss–Seidel sweeps
//!   solve for `d` — the sweep matrix is a contraction with factor ≈ `c`.

use crate::config::{EngineMode, SimrankConfig};
use crate::engine::parallel::run_chunked;
use crate::engine::transition::{Transition, TransitionFactorsArena};
use crate::scores::ScoreMatrixArena;
use simrankpp_graph::{AdId, ClickGraph, QueryId};
use simrankpp_util::TopK;

/// Truncation target for the series tail when the config's `tolerance` is 0
/// (its "run everything" convention does not bound a series).
const DEFAULT_SERIES_TARGET: f64 = 1e-8;
/// The diagonal estimator's own accuracy target: serving needs ~1e-3 scores,
/// so the estimator walks fewer levels than the row computation.
const ESTIMATE_TARGET: f64 = 1e-4;
/// Walk entries below this are dropped while accumulating estimator
/// coefficients (their *squared* contribution is ≤ 1e-8 each).
const ESTIMATE_WALK_PRUNE: f64 = 1e-4;
/// Coefficient-row entries below this are not stored.
const ESTIMATE_COEFF_EPS: f64 = 1e-9;
/// Gauss–Seidel sweep budget / convergence cutoff for the `d` solve.
const MAX_SWEEPS: usize = 128;
const SWEEP_TOL: f64 = 1e-12;

/// Smallest `J` with `c^(J+1)/(1−c) ≤ target`: the series tail beyond level
/// `J` cannot move any score by more than `target`.
fn levels_for(c: f64, target: f64) -> usize {
    if c <= 0.0 {
        return 0;
    }
    if c >= 1.0 {
        return 64;
    }
    let need = (target * (1.0 - c)).ln() / c.ln() - 1.0;
    (need.ceil().max(1.0) as usize).min(64)
}

/// The precomputed diagonal-correction vectors `d_Q` / `d_A`.
#[derive(Debug, Clone)]
pub struct DiagonalCorrection {
    /// Query-side correction: `d_Q[q] = 1 − C1·(A·S_A·Aᵀ)[q,q]`.
    pub d_query: Vec<f64>,
    /// Ad-side correction: `d_A[a] = 1 − C2·(B·S_Q·Bᵀ)[a,a]`.
    pub d_ad: Vec<f64>,
}

impl DiagonalCorrection {
    /// Reads the exact correction off converged all-pairs score matrices —
    /// the oracle constructor for differential tests. `queries`/`ads` must
    /// come from a run of the same transition on the same graph, iterated
    /// to (near-)convergence for the correction to be exact.
    pub fn from_scores(
        g: &ClickGraph,
        factors: &TransitionFactorsArena<'_>,
        c1: f64,
        c2: f64,
        queries: &ScoreMatrixArena<'_>,
        ads: &ScoreMatrixArena<'_>,
    ) -> Self {
        let mut d_query = vec![1.0; g.n_queries()];
        for q in g.queries() {
            let (neigh, _) = g.ads_of(q);
            let lo = g.query_csr_offset(q);
            let mut acc = 0.0;
            for (x, &i) in neigh.iter().enumerate() {
                let fi = factors.ad_to_query_by_query[lo + x];
                for (y, &j) in neigh.iter().enumerate() {
                    let fj = factors.ad_to_query_by_query[lo + y];
                    acc += fi * fj * ads.get(i.0, j.0);
                }
            }
            d_query[q.index()] = 1.0 - c1 * acc;
        }
        let mut d_ad = vec![1.0; g.n_ads()];
        for a in g.ads() {
            let (neigh, _) = g.queries_of(a);
            let lo = g.ad_csr_offset(a);
            let mut acc = 0.0;
            for (x, &i) in neigh.iter().enumerate() {
                let fi = factors.query_to_ad_by_ad[lo + x];
                for (y, &j) in neigh.iter().enumerate() {
                    let fj = factors.query_to_ad_by_ad[lo + y];
                    acc += fi * fj * queries.get(i.0, j.0);
                }
            }
            d_ad[a.index()] = 1.0 - c2 * acc;
        }
        DiagonalCorrection { d_query, d_ad }
    }

    /// Estimates the correction without any all-pairs run.
    ///
    /// Expanding `S_Q[v,v] = 1` through the series turns each diagonal
    /// constraint into a linear equation over `(d_Q, d_A)` with squared
    /// truncated-walk masses as coefficients:
    ///
    /// ```text
    /// 1        = Σ_j c^j ( Σ_w u_j[w]²·d_Q[w] + C1·Σ_a y_j[a]²·d_A[a] )
    /// d_A[a]   = 1 − C2·Σ_j c^j ( Σ_w z_j[w]²·d_Q[w] + C1·Σ_b (Aᵀz_j)[b]²·d_A[b] )
    /// ```
    ///
    /// with `u_j = (Tᵀ)^j e_v` (resp. `z_j = (Tᵀ)^j Bᵀe_a`). The sparse
    /// coefficient rows are built once per node — the expensive part, run
    /// chunk-parallel across `threads` — then Gauss–Seidel sweeps solve the
    /// system: every row's diagonal coefficient dominates (the `j = 0` term
    /// contributes a full 1), so the sweeps contract with factor ≈ `c`.
    pub fn estimate(
        g: &ClickGraph,
        factors: &TransitionFactorsArena<'_>,
        config: &SimrankConfig,
    ) -> Self {
        let c1 = config.c1;
        let c2 = config.c2;
        let c = c1 * c2;
        let levels = levels_for(c, ESTIMATE_TARGET);
        let prune = config.prune_threshold.max(ESTIMATE_WALK_PRUNE);
        let threads = config.effective_threads();

        // One coefficient row per query: (over d_Q, over d_A).
        type Row = (Vec<(u32, f64)>, Vec<(u32, f64)>);
        let q_rows: Vec<Row> = run_chunked(g.n_queries(), threads, |range| {
            let mut ws = RowWorkspace::new(g.n_queries(), g.n_ads());
            let mut out = Vec::with_capacity(range.len());
            for v in range {
                ws.forward(g, factors, &[(v as u32, 1.0)], levels, prune);
                out.push(coefficient_row(&ws, c, c1, 1.0));
            }
            out
        })
        .into_iter()
        .flatten()
        .collect();
        let a_rows: Vec<Row> = run_chunked(g.n_ads(), threads, |range| {
            let mut ws = RowWorkspace::new(g.n_queries(), g.n_ads());
            let mut z0: Vec<(u32, f64)> = Vec::new();
            let mut out = Vec::with_capacity(range.len());
            for a in range {
                // z_0 = Bᵀ e_a: ad a's row of F(a, ·), a query-space vector.
                z0.clear();
                let (qs, _) = g.queries_of(AdId(a as u32));
                let lo = g.ad_csr_offset(AdId(a as u32));
                for (x, &q) in qs.iter().enumerate() {
                    z0.push((q.0, factors.query_to_ad_by_ad[lo + x]));
                }
                ws.forward(g, factors, &z0, levels, prune);
                out.push(coefficient_row(&ws, c, c1, c2));
            }
            out
        })
        .into_iter()
        .flatten()
        .collect();

        // Gauss–Seidel on: q_rows[v]·d = 1   and   d_A[a] + a_rows[a]·d = 1.
        let mut d_query = vec![1.0; g.n_queries()];
        let mut d_ad = vec![1.0; g.n_ads()];
        for _ in 0..MAX_SWEEPS {
            let mut max_delta = 0.0f64;
            for (v, (pq, pa)) in q_rows.iter().enumerate() {
                let mut diag = 0.0;
                let mut rest = 0.0;
                for &(w, coef) in pq {
                    if w as usize == v {
                        diag += coef;
                    } else {
                        rest += coef * d_query[w as usize];
                    }
                }
                for &(a, coef) in pa {
                    rest += coef * d_ad[a as usize];
                }
                // The j = 0 term guarantees diag ≥ 1.
                let next = (1.0 - rest) / diag;
                max_delta = max_delta.max((next - d_query[v]).abs());
                d_query[v] = next;
            }
            for (a, (rq, sa)) in a_rows.iter().enumerate() {
                let mut diag = 1.0;
                let mut rest = 0.0;
                for &(w, coef) in rq {
                    rest += coef * d_query[w as usize];
                }
                for &(b, coef) in sa {
                    if b as usize == a {
                        diag += coef;
                    } else {
                        rest += coef * d_ad[b as usize];
                    }
                }
                let next = (1.0 - rest) / diag;
                max_delta = max_delta.max((next - d_ad[a]).abs());
                d_ad[a] = next;
            }
            if max_delta <= SWEEP_TOL {
                break;
            }
        }
        DiagonalCorrection { d_query, d_ad }
    }
}

/// A sparse coefficient row pair: weights over `d_Q` and over `d_A`.
type CoeffRow = (Vec<(u32, f64)>, Vec<(u32, f64)>);

/// Folds the workspace's stored walk levels into one sparse coefficient row
/// pair: `scale·Σ_j c^j u_j[w]²` over queries and `scale·C1·Σ_j c^j y_j[a]²`
/// over ads.
fn coefficient_row(ws: &RowWorkspace, c: f64, c1: f64, scale: f64) -> CoeffRow {
    let mut over_q: Vec<(u32, f64)> = Vec::new();
    let mut over_a: Vec<(u32, f64)> = Vec::new();
    let mut weight = scale;
    for (u, y) in ws.levels_u.iter().zip(&ws.levels_y) {
        for &(w, x) in u {
            over_q.push((w, weight * x * x));
        }
        for &(a, x) in y {
            over_a.push((a, weight * c1 * x * x));
        }
        weight *= c;
    }
    merge_coeffs(&mut over_q);
    merge_coeffs(&mut over_a);
    (over_q, over_a)
}

/// Sorts, sums duplicates, and drops negligible coefficient entries.
fn merge_coeffs(row: &mut Vec<(u32, f64)>) {
    row.sort_unstable_by_key(|&(i, _)| i);
    let mut out = 0usize;
    let mut i = 0usize;
    while i < row.len() {
        let (id, mut sum) = row[i];
        i += 1;
        while i < row.len() && row[i].0 == id {
            sum += row[i].1;
            i += 1;
        }
        if sum > ESTIMATE_COEFF_EPS {
            row[out] = (id, sum);
            out += 1;
        }
    }
    row.truncate(out);
}

/// Dense-scratch sparse accumulator over one node side: `O(1)` adds, drained
/// in ascending-id order (deterministic summation and output order).
#[derive(Debug)]
struct Accum {
    val: Vec<f64>,
    touched: Vec<u32>,
}

impl Accum {
    fn new(n: usize) -> Self {
        Accum {
            val: vec![0.0; n],
            touched: Vec::new(),
        }
    }

    #[inline]
    fn add(&mut self, i: u32, v: f64) {
        if self.val[i as usize] == 0.0 {
            self.touched.push(i);
        }
        self.val[i as usize] += v;
    }

    /// Zeroes every touched entry without emitting: the recovery path for an
    /// accumulator an abandoned (panicked) computation left dirty.
    fn reset(&mut self) {
        for &i in &self.touched {
            self.val[i as usize] = 0.0;
        }
        self.touched.clear();
    }

    /// Moves the accumulated entries (ascending id, pruned at `prune`) into
    /// `out`, resetting the accumulator for reuse.
    fn drain_into(&mut self, prune: f64, out: &mut Vec<(u32, f64)>) {
        out.clear();
        self.touched.sort_unstable();
        for &i in &self.touched {
            let v = self.val[i as usize];
            self.val[i as usize] = 0.0;
            if v.abs() > prune {
                out.push((i, v));
            }
        }
        self.touched.clear();
    }
}

/// Reusable per-query scratch: dense accumulators for both sides plus the
/// stored forward levels (`u_j` query-space, `y_j = Aᵀu_j` ad-space).
#[derive(Debug)]
pub struct RowWorkspace {
    acc_q: Accum,
    acc_a: Accum,
    levels_u: Vec<Vec<(u32, f64)>>,
    levels_y: Vec<Vec<(u32, f64)>>,
    v: Vec<(u32, f64)>,
    m: Vec<(u32, f64)>,
}

impl RowWorkspace {
    /// Scratch sized for a graph with the given side cardinalities.
    pub fn new(n_queries: usize, n_ads: usize) -> Self {
        RowWorkspace {
            acc_q: Accum::new(n_queries),
            acc_a: Accum::new(n_ads),
            levels_u: Vec::new(),
            levels_y: Vec::new(),
            v: Vec::new(),
            m: Vec::new(),
        }
    }

    /// Computes and stores `u_j = (Tᵀ)^j u_0` and `y_j = Aᵀu_j` for
    /// `j = 0..=levels`, pruning each level at `prune`.
    fn forward(
        &mut self,
        g: &ClickGraph,
        f: &TransitionFactorsArena<'_>,
        u0: &[(u32, f64)],
        levels: usize,
        prune: f64,
    ) {
        self.levels_u.resize_with(levels + 1, Vec::new);
        self.levels_y.resize_with(levels + 1, Vec::new);
        self.levels_u[0].clear();
        self.levels_u[0].extend_from_slice(u0);
        for j in 0..=levels {
            // y_j = Aᵀ u_j: (Aᵀu)[a] = Σ_q F(q,a)·u[q], query-major factors.
            for &(qi, x) in &self.levels_u[j] {
                let q = QueryId(qi);
                let (ads, _) = g.ads_of(q);
                let lo = g.query_csr_offset(q);
                for (k, &a) in ads.iter().enumerate() {
                    self.acc_a.add(a.0, f.ad_to_query_by_query[lo + k] * x);
                }
            }
            self.acc_a.drain_into(prune, &mut self.levels_y[j]);
            if j == levels {
                break;
            }
            // u_{j+1} = Bᵀ y_j: (Bᵀy)[q] = Σ_a F(a,q)·y[a], ad-major factors.
            for &(ai, x) in &self.levels_y[j] {
                let a = AdId(ai);
                let (qs, _) = g.queries_of(a);
                let lo = g.ad_csr_offset(a);
                for (k, &q) in qs.iter().enumerate() {
                    self.acc_q.add(q.0, f.query_to_ad_by_ad[lo + k] * x);
                }
            }
            self.acc_q.drain_into(prune, &mut self.levels_u[j + 1]);
        }
    }
}

/// The on-demand engine: precomputed factors + diagonal correction, ready to
/// answer per-query rows and top-k requests.
///
/// Holds no reference to the graph; pass the *same* graph to every method
/// (checked only by side cardinality). The factors may borrow from a
/// serialized arena ([`TransitionFactorsArena::from_bytes`]) — the sweeps
/// then run directly over the mapped bytes.
#[derive(Debug)]
pub struct SingleSourceEngine<'f> {
    factors: TransitionFactorsArena<'f>,
    correction: DiagonalCorrection,
    c1: f64,
    c: f64,
    levels: usize,
    prune: f64,
}

impl<'f> SingleSourceEngine<'f> {
    /// Builds the engine for `g`, estimating the diagonal correction (the
    /// one-off precompute of this mode — everything per-query afterwards).
    pub fn new<T: Transition>(g: &ClickGraph, config: &SimrankConfig, transition: &T) -> Self {
        let factors = transition.factors(g);
        let correction = DiagonalCorrection::estimate(g, &factors, config);
        Self::with_correction(config, factors, correction)
    }

    /// Builds the engine from an already-computed correction (e.g. the exact
    /// [`DiagonalCorrection::from_scores`] oracle).
    pub fn with_correction(
        config: &SimrankConfig,
        factors: TransitionFactorsArena<'f>,
        correction: DiagonalCorrection,
    ) -> Self {
        config.validate().expect("invalid SimRank configuration");
        let c = config.c1 * config.c2;
        let target = if config.tolerance > 0.0 {
            config.tolerance
        } else {
            DEFAULT_SERIES_TARGET
        };
        SingleSourceEngine {
            factors,
            correction,
            c1: config.c1,
            c,
            levels: levels_for(c, target),
            prune: config.prune_threshold,
        }
    }

    /// The diagonal correction in use.
    pub fn correction(&self) -> &DiagonalCorrection {
        &self.correction
    }

    /// Series truncation depth `J` (levels `0..=J` are accumulated).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Computes `S_Q[q, ·]` into `out` as ascending-id `(query, score)`
    /// pairs (the self entry included, ≈ 1), reusing `ws` across calls.
    pub fn row_into(
        &self,
        g: &ClickGraph,
        q: QueryId,
        ws: &mut RowWorkspace,
        out: &mut Vec<(QueryId, f64)>,
    ) {
        assert_eq!(
            ws.acc_q.val.len(),
            g.n_queries(),
            "workspace sized for another graph"
        );
        // The accumulators are normally left clean by drain_into, but a call
        // that panicked mid-sweep (the serving layer reuses one workspace
        // across requests and recovers its lock from poisoning) leaves them
        // dirty; resetting at entry makes every call self-contained.
        ws.acc_q.reset();
        ws.acc_a.reset();
        ws.forward(g, &self.factors, &[(q.0, 1.0)], self.levels, self.prune);
        // Backward Horner: v ← A(c·B·v + C1·d_A⊙y_j) + d_Q⊙u_j, j = J..0.
        ws.v.clear();
        for j in (0..=self.levels).rev() {
            // m = c·(B v) + C1·(d_A ⊙ y_j), assembled in the ad accumulator.
            for &(qi, x) in &ws.v {
                let qq = QueryId(qi);
                let (ads, _) = g.ads_of(qq);
                let lo = g.query_csr_offset(qq);
                for (k, &a) in ads.iter().enumerate() {
                    // B[a,q] = F(a,q), query-major layout.
                    ws.acc_a
                        .add(a.0, self.c * self.factors.query_to_ad[lo + k] * x);
                }
            }
            for &(ai, x) in &ws.levels_y[j] {
                ws.acc_a
                    .add(ai, self.c1 * self.correction.d_ad[ai as usize] * x);
            }
            ws.acc_a.drain_into(self.prune, &mut ws.m);
            // v = A m + d_Q ⊙ u_j.
            for &(ai, x) in &ws.m {
                let a = AdId(ai);
                let (qs, _) = g.queries_of(a);
                let lo = g.ad_csr_offset(a);
                for (k, &qq) in qs.iter().enumerate() {
                    // A[q,a] = F(q,a), ad-major layout.
                    ws.acc_q.add(qq.0, self.factors.ad_to_query[lo + k] * x);
                }
            }
            for &(qi, x) in &ws.levels_u[j] {
                ws.acc_q.add(qi, self.correction.d_query[qi as usize] * x);
            }
            ws.acc_q.drain_into(self.prune, &mut ws.v);
        }
        out.clear();
        out.extend(ws.v.iter().map(|&(qi, s)| (QueryId(qi), s)));
    }

    /// Allocating convenience over [`SingleSourceEngine::row_into`].
    pub fn row(&self, g: &ClickGraph, q: QueryId) -> Vec<(QueryId, f64)> {
        let mut ws = RowWorkspace::new(g.n_queries(), g.n_ads());
        let mut out = Vec::new();
        self.row_into(g, q, &mut ws, &mut out);
        out
    }

    /// The `k` highest-scoring *other* queries for `q` (descending score,
    /// ties by ascending id — [`ScoreMatrix::top_k`]'s order), written into
    /// `out`.
    pub fn top_k_into(
        &self,
        g: &ClickGraph,
        q: QueryId,
        k: usize,
        ws: &mut RowWorkspace,
        out: &mut Vec<(QueryId, f64)>,
    ) {
        let mut row = Vec::new();
        self.row_into(g, q, ws, &mut row);
        let mut top = TopK::new(k);
        for (other, score) in row {
            if other != q && score > 0.0 {
                top.push(other.0, score);
            }
        }
        out.clear();
        out.extend(
            top.into_sorted_vec()
                .into_iter()
                .map(|(i, s)| (QueryId(i), s)),
        );
    }

    /// Allocating convenience over [`SingleSourceEngine::top_k_into`].
    pub fn top_k(&self, g: &ClickGraph, q: QueryId, k: usize) -> Vec<(QueryId, f64)> {
        let mut ws = RowWorkspace::new(g.n_queries(), g.n_ads());
        let mut out = Vec::new();
        self.top_k_into(g, q, k, &mut ws, &mut out);
        out
    }
}

/// Mode-dispatched top-k: `config.mode` selects the all-pairs engine (the
/// exact oracle — a full run, then one row read) or the linearized
/// single-source path. Intended for one-shot calls; callers issuing many
/// queries should build a [`SingleSourceEngine`] (or an all-pairs run) once.
pub fn top_k_by_mode<T: Transition>(
    g: &ClickGraph,
    config: &SimrankConfig,
    transition: &T,
    q: QueryId,
    k: usize,
) -> Vec<(QueryId, f64)> {
    match config.mode {
        EngineMode::AllPairs => {
            let run = crate::engine::run(g, config, transition);
            run.queries
                .top_k(q.0, k)
                .into_iter()
                .map(|(i, s)| (QueryId(i), s))
                .collect()
        }
        EngineMode::SingleSource => SingleSourceEngine::new(g, config, transition).top_k(g, q, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, UniformTransition};
    use simrankpp_graph::fixtures::{figure3_graph, figure4_k22};

    /// Converged-run settings: the linearized series approximates the fixed
    /// point, so the oracle must actually be at the fixed point.
    fn converged() -> SimrankConfig {
        SimrankConfig::default().with_iterations(60)
    }

    fn exact_engine(
        g: &ClickGraph,
        config: &SimrankConfig,
    ) -> (engine::EngineRun, SingleSourceEngine<'static>) {
        let run = engine::run(g, config, &UniformTransition);
        let factors = UniformTransition.factors(g);
        let d = DiagonalCorrection::from_scores(
            g,
            &factors,
            config.c1,
            config.c2,
            &run.queries,
            &run.ads,
        );
        let ss = SingleSourceEngine::with_correction(config, factors, d);
        (run, ss)
    }

    #[test]
    fn exact_correction_reproduces_engine_rows() {
        for g in [figure3_graph(), figure4_k22()] {
            let config = converged();
            let (run, ss) = exact_engine(&g, &config);
            for q in g.queries() {
                let row = ss.row(&g, q);
                for other in g.queries() {
                    let got = row
                        .iter()
                        .find(|&&(w, _)| w == other)
                        .map(|&(_, s)| s)
                        .unwrap_or(0.0);
                    let want = run.queries.get(q.0, other.0);
                    assert!(
                        (got - want).abs() < 1e-6,
                        "row({:?})[{:?}] = {got}, engine {want}",
                        q,
                        other
                    );
                }
            }
        }
    }

    #[test]
    fn estimated_correction_close_to_exact() {
        for g in [figure3_graph(), figure4_k22()] {
            let config = converged();
            let run = engine::run(&g, &config, &UniformTransition);
            let factors = UniformTransition.factors(&g);
            let exact = DiagonalCorrection::from_scores(
                &g,
                &factors,
                config.c1,
                config.c2,
                &run.queries,
                &run.ads,
            );
            let est = DiagonalCorrection::estimate(&g, &factors, &config);
            for (e, s) in exact.d_query.iter().zip(&est.d_query) {
                assert!((e - s).abs() < 5e-3, "d_query exact {e} vs estimated {s}");
            }
            for (e, s) in exact.d_ad.iter().zip(&est.d_ad) {
                assert!((e - s).abs() < 5e-3, "d_ad exact {e} vs estimated {s}");
            }
        }
    }

    #[test]
    fn estimated_engine_tracks_all_pairs() {
        let g = figure3_graph();
        let config = converged();
        let run = engine::run(&g, &config, &UniformTransition);
        let ss = SingleSourceEngine::new(&g, &config, &UniformTransition);
        for q in g.queries() {
            for (other, got) in ss.row(&g, q) {
                let want = run.queries.get(q.0, other.0);
                assert!(
                    (got - want).abs() < 0.02,
                    "estimated row({:?})[{:?}] = {got}, engine {want}",
                    q,
                    other
                );
            }
        }
    }

    #[test]
    fn self_score_is_one() {
        let g = figure3_graph();
        let config = converged();
        let (_, ss) = exact_engine(&g, &config);
        for q in g.queries() {
            let row = ss.row(&g, q);
            let own = row.iter().find(|&&(w, _)| w == q).map(|&(_, s)| s);
            assert!(
                (own.unwrap_or(0.0) - 1.0).abs() < 1e-6,
                "self score of {:?}: {:?}",
                q,
                own
            );
        }
    }

    #[test]
    fn top_k_matches_matrix_top_k() {
        let g = figure3_graph();
        let config = converged();
        let (run, ss) = exact_engine(&g, &config);
        for q in g.queries() {
            let got = ss.top_k(&g, q, 3);
            let want: Vec<(QueryId, f64)> = run
                .queries
                .top_k(q.0, 3)
                .into_iter()
                .map(|(i, s)| (QueryId(i), s))
                .collect();
            assert_eq!(
                got.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
                want.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
                "top-k ids for {:?}",
                q
            );
            for (a, b) in got.iter().zip(&want) {
                assert!((a.1 - b.1).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn mode_dispatch_selects_paths() {
        let g = figure3_graph();
        let config = converged();
        let q = g.query_by_name("camera").unwrap();
        let all = top_k_by_mode(&g, &config, &UniformTransition, q, 3);
        let single = top_k_by_mode(
            &g,
            &config.with_mode(EngineMode::SingleSource),
            &UniformTransition,
            q,
            3,
        );
        assert_eq!(
            all.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            single.iter().map(|&(i, _)| i).collect::<Vec<_>>()
        );
        for (a, b) in all.iter().zip(&single) {
            assert!((a.1 - b.1).abs() < 0.02);
        }
    }

    #[test]
    fn disconnected_query_row_is_its_own_unit() {
        // "flower" shares no component with "camera"/"pc"/"tv" in Figure 3.
        let g = figure3_graph();
        let config = converged();
        let (_, ss) = exact_engine(&g, &config);
        let flower = g.query_by_name("flower").unwrap();
        let pc = g.query_by_name("pc").unwrap();
        let row = ss.row(&g, flower);
        assert!(row.iter().all(|&(w, _)| w != pc));
        assert!(ss.top_k(&g, pc, 10).iter().all(|&(w, _)| w != flower));
    }

    #[test]
    fn levels_for_bounds_the_tail() {
        let j = levels_for(0.64, 1e-8);
        assert!(0.64f64.powi(j as i32 + 1) / 0.36 <= 1e-8);
        assert!(0.64f64.powi(j as i32) / 0.36 > 1e-8);
        assert_eq!(levels_for(0.0, 1e-8), 0);
    }

    #[test]
    fn dirty_workspace_is_reset_at_entry() {
        // A computation that panicked mid-sweep leaves garbage in the dense
        // accumulators (drain_into never ran). The next row_into on the same
        // workspace must not inherit it.
        let g = figure3_graph();
        let config = converged();
        let (_, ss) = exact_engine(&g, &config);
        let camera = g.query_by_name("camera").unwrap();
        let clean = ss.row(&g, camera);

        let mut ws = RowWorkspace::new(g.n_queries(), g.n_ads());
        // Simulate the abandoned call: touched-but-undrained entries on both
        // sides, exactly what an unwound forward/backward sweep leaves.
        ws.acc_q.add(0, 123.0);
        ws.acc_q.add(2, -7.5);
        ws.acc_a.add(1, 55.0);
        let mut row = Vec::new();
        ss.row_into(&g, camera, &mut ws, &mut row);
        assert_eq!(row, clean, "dirty accumulators leaked into the next row");
    }
}
