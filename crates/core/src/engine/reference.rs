//! The historical hash-map accumulation path.
//!
//! Kept for two purposes: cross-checking the pull and flat kernels (all
//! three must agree to rounding), and the `bench_engine`/`bench_ci`
//! comparisons that document why they replaced it. Same factors, same
//! chunked parallelism — only the accumulation strategy differs. Besides
//! [`run_hashmap`], the same loop is reachable as a full engine kernel via
//! `SimrankConfig::kernel = KernelKind::Hashmap`
//! ([`propagate_hashmap_sorted`] adapts it to the engine's sorted-pair
//! iterate format, diagnostics included).

use super::parallel;
use super::{NodeId, Transition};
use crate::config::SimrankConfig;
use crate::scores::{ScoreMatrix, ScoreMatrixBuilder};
use simrankpp_graph::{AdId, ClickGraph, QueryId};
use simrankpp_util::PairKey;

/// Result of the reference run: score matrices only (no diagnostics — those
/// are an engine feature).
#[derive(Debug, Clone)]
pub struct ReferenceRun {
    /// Query-side scores.
    pub queries: ScoreMatrix,
    /// Ad-side scores.
    pub ads: ScoreMatrix,
}

/// Runs the same Jacobi loop as [`super::run`] with per-iteration
/// `FxHashMap` accumulation.
pub fn run_hashmap<T: Transition>(
    g: &ClickGraph,
    config: &SimrankConfig,
    transition: &T,
) -> ReferenceRun {
    config.validate().expect("invalid SimRank configuration");
    let factors = transition.factors(g);
    let threads = config.effective_threads();

    let mut q_scores = ScoreMatrixBuilder::new(g.n_queries());
    let mut a_scores = ScoreMatrixBuilder::new(g.n_ads());

    for _ in 0..config.iterations {
        let a_entries: Vec<(PairKey, f64)> = a_scores.iter().collect();
        let next_q = propagate_hashmap(
            g.n_queries(),
            g.n_ads(),
            |a| {
                let (qs, _) = g.queries_of(AdId(a));
                let lo = g.ad_csr_offset(AdId(a));
                (qs, &factors.ad_to_query[lo..lo + qs.len()])
            },
            &a_entries,
            config.c1,
            config.prune_threshold,
            threads,
        );
        let q_entries: Vec<(PairKey, f64)> = q_scores.iter().collect();
        let next_a = propagate_hashmap(
            g.n_ads(),
            g.n_queries(),
            |q| {
                let (ads, _) = g.ads_of(QueryId(q));
                let lo = g.query_csr_offset(QueryId(q));
                (ads, &factors.query_to_ad[lo..lo + ads.len()])
            },
            &q_entries,
            config.c2,
            config.prune_threshold,
            threads,
        );
        q_scores = next_q;
        a_scores = next_a;
    }

    ReferenceRun {
        queries: q_scores.build(),
        ads: a_scores.build(),
    }
}

/// [`propagate_hashmap`] adapted to the unified engine's iterate format:
/// the accumulated builder drained into a key-sorted pair vector. This is
/// the `KernelKind::Hashmap` oracle inside `run_raw`, giving the historical
/// path the engine's diagnostics, sharding, and incremental plumbing for
/// free.
pub(crate) fn propagate_hashmap_sorted<'g, I, RowFn>(
    n_targets: usize,
    n_sources: usize,
    row: RowFn,
    prev: &[(PairKey, f64)],
    c: f64,
    prune_threshold: f64,
    threads: usize,
) -> Vec<(PairKey, f64)>
where
    I: NodeId + 'g,
    RowFn: Fn(u32) -> (&'g [I], &'g [f64]) + Sync,
{
    let builder = propagate_hashmap(n_targets, n_sources, row, prev, c, prune_threshold, threads);
    let mut pairs: Vec<(PairKey, f64)> = builder.iter().collect();
    pairs.sort_unstable_by_key(|&(k, _)| k.raw());
    pairs
}

fn propagate_hashmap<'g, I, RowFn>(
    n_targets: usize,
    n_sources: usize,
    row: RowFn,
    prev: &[(PairKey, f64)],
    c: f64,
    prune_threshold: f64,
    threads: usize,
) -> ScoreMatrixBuilder
where
    I: NodeId + 'g,
    RowFn: Fn(u32) -> (&'g [I], &'g [f64]) + Sync,
{
    // Same scatter loop as the flat path — only the sink differs.
    let pieces = parallel::run_chunked(prev.len() + n_sources, threads, |range| {
        let mut acc = ScoreMatrixBuilder::new(n_targets);
        super::scatter_chunk(range, prev, &row, &mut acc);
        acc
    });
    let mut merged = ScoreMatrixBuilder::new(n_targets);
    for p in pieces {
        merged.merge(p);
    }
    merged.map_scores(|_, v| c * v);
    merged.prune(prune_threshold);
    merged
}
