//! Row-parallel pull propagation: the Jacobi half-step as two Gustavson
//! SpGEMM passes over CSR score rows.
//!
//! The half-step is the matrix recurrence (query side shown; the ad side is
//! the mirror image):
//!
//! ```text
//! S_Q' = C1 · P · S_A · Pᵀ        P[q, a] = F(q, a) on click edges,
//! ```
//!
//! with `S_A` the ad-side iterate carrying an implicit unit diagonal — the
//! linearized form "Efficient SimRank Computation via Linearization"
//! (Maehara et al.) computes with, specialized to the bipartite click graph.
//! Instead of scattering every `F(t,i)·F(t',j)·s(i,j)` contribution into a
//! flat buffer and paying a sort plus a tournament merge per half-step
//! ([`super::accum`]), each **output row** `q` is *pulled* in two fused
//! Gustavson passes against a per-worker dense scratch:
//!
//! 1. `T[q, ·] = Σ_{a ∈ E(q)} F(q, a) · S_A[a, ·]` — scan `q`'s own
//!    neighbor list in CSR order, stream each neighbor's (sorted) score row
//!    into a dense accumulator over the inner side, tracking touched
//!    columns in first-touch order;
//! 2. `S_Q'[q, q'] = C1 · Σ_{a'} T[q, a'] · F(q', a')` — drain the touched
//!    columns, scattering each through the inner node's neighbor list into
//!    a dense accumulator over the output side, restricted to `q' > q`
//!    (the symmetric half above the diagonal; `q' < q` is produced by row
//!    `q'`, the diagonal is pinned at 1).
//!
//! No contribution is ever materialized, so there is nothing to sort or
//! merge: the only ordering work left is a per-row `sort_unstable` of the
//! *distinct* touched output ids — `O(r log r)` on row width, versus the
//! flat path's `O(m log m)` over the full duplicate-heavy contribution
//! stream. Emitted rows concatenate into a key-sorted [`PairVec`] directly
//! (`PairKey` is min-major and every emitted pair has `q` as its minimum).
//!
//! **Determinism.** Each output row is computed start-to-finish by exactly
//! one worker, and every accumulation order inside a row is a function of
//! CSR neighbor order alone — never of chunk boundaries, flush thresholds,
//! or surrounding elements. Consequences the differential suites pin down:
//!
//! * thread-count invariance: any worker count produces bit-identical
//!   iterates (the flat path only guarantees this serially);
//! * sharded == monolithic and incremental == from-scratch stay
//!   **bit-identical at any scale**: a component shard's monotone remap
//!   preserves CSR neighbor order, so each row replays the identical
//!   floating-point op sequence. The flat path's guarantee degraded to
//!   "equal modulo rounding" above its 2²⁰-contribution flush threshold,
//!   because run boundaries could reassociate a pair's partial sums; the
//!   pull kernel has no flush, so that divergence is gone.

use super::accum::PairVec;
use super::{parallel, NodeId};
use crate::scores::fill_sym_csr;
use simrankpp_util::PairKey;

/// Reusable buffers for the previous iterate's symmetric CSR form, rebuilt
/// once per half-step (a counting pass over the pair list) and shared
/// read-only by every worker.
#[derive(Debug, Default)]
pub struct CsrScratch {
    offsets: Vec<u64>,
    cursor: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrScratch {
    /// Rebuilds the CSR view of `pairs` over `n` inner-side nodes, reusing
    /// the existing allocations.
    pub fn rebuild(&mut self, n: usize, pairs: &[(PairKey, f64)]) {
        fill_sym_csr(
            n,
            pairs,
            &mut self.offsets,
            &mut self.cursor,
            &mut self.cols,
            &mut self.vals,
        );
    }

    /// Node `a`'s score row: ascending partner ids and their scores
    /// (diagonal implicit).
    #[inline]
    fn row(&self, a: u32) -> (&[u32], &[f64]) {
        let (lo, hi) = (
            self.offsets[a as usize] as usize,
            self.offsets[a as usize + 1] as usize,
        );
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }
}

/// One worker's dense-scratch workspace: a sparse-accumulator (value array +
/// first-touch flags + touched list) per SpGEMM pass. Sized lazily to the
/// two node counts, kept zeroed between rows by draining touched entries,
/// and reused across every half-step of a run — allocation-free steady
/// state.
#[derive(Debug, Default)]
pub struct PullWorkspace {
    /// Pass-1 accumulator over the inner side (`T[q, ·]`).
    t_vals: Vec<f64>,
    t_flag: Vec<bool>,
    t_touched: Vec<u32>,
    /// Pass-2 accumulator over the output side (`S'[q, ·]`, upper half).
    o_vals: Vec<f64>,
    o_flag: Vec<bool>,
    o_touched: Vec<u32>,
    /// Largest per-chunk output seen — the next round's capacity hint.
    out_hint: usize,
}

impl PullWorkspace {
    fn ensure(&mut self, n_out: usize, n_inner: usize) {
        if self.t_vals.len() < n_inner {
            self.t_vals.resize(n_inner, 0.0);
            self.t_flag.resize(n_inner, false);
        }
        if self.o_vals.len() < n_out {
            self.o_vals.resize(n_out, 0.0);
            self.o_flag.resize(n_out, false);
        }
    }
}

/// Marks `id` touched on first contact and accumulates `v` into its cell.
#[inline(always)]
fn spa_add(vals: &mut [f64], flag: &mut [bool], touched: &mut Vec<u32>, id: u32, v: f64) {
    let i = id as usize;
    if !flag[i] {
        flag[i] = true;
        touched.push(id);
    }
    vals[i] += v;
}

/// One Jacobi half-step on the pull path.
///
/// `out_row(x)` is output node `x`'s neighbor list with the matching
/// `F(x, inner)` factors (output-major); `inner_row(y)` is inner node `y`'s
/// neighbor list with the matching `F(out', y)` factors (inner-major).
/// `prev` is the inner side's iterate. Output rows are partitioned into one
/// contiguous block per workspace; each block concatenates, in row order,
/// into the returned key-sorted, pruned, `c`-scaled pair list.
#[allow(clippy::too_many_arguments)]
pub(crate) fn propagate_pull<'g, I, J, OutRow, InnerRow>(
    n_out: usize,
    n_inner: usize,
    out_row: OutRow,
    inner_row: InnerRow,
    prev: &PairVec,
    c: f64,
    prune_threshold: f64,
    csr: &mut CsrScratch,
    workspaces: &mut [PullWorkspace],
) -> PairVec
where
    I: NodeId + 'g,
    J: NodeId + 'g,
    OutRow: Fn(u32) -> (&'g [I], &'g [f64]) + Sync,
    InnerRow: Fn(u32) -> (&'g [J], &'g [f64]) + Sync,
{
    csr.rebuild(n_inner, prev);
    let csr = &*csr;
    let mut pieces = parallel::run_chunked_stateful(n_out, workspaces, |ws, range| {
        ws.ensure(n_out, n_inner);
        let mut out: PairVec = Vec::with_capacity(ws.out_hint);
        for q in range {
            pull_row(
                q as u32,
                &out_row,
                &inner_row,
                csr,
                c,
                prune_threshold,
                ws,
                &mut out,
            );
        }
        ws.out_hint = ws.out_hint.max(out.len());
        out
    });
    if pieces.len() == 1 {
        return pieces.pop().expect("one piece");
    }
    let mut merged = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
    for piece in pieces {
        merged.extend_from_slice(&piece);
    }
    merged
}

/// Computes one output row (both fused passes) and appends its surviving
/// entries — `(PairKey(q, q'), score)` for `q' > q`, ascending — to `out`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn pull_row<'g, I, J, OutRow, InnerRow>(
    q: u32,
    out_row: &OutRow,
    inner_row: &InnerRow,
    csr: &CsrScratch,
    c: f64,
    prune_threshold: f64,
    ws: &mut PullWorkspace,
    out: &mut PairVec,
) where
    I: NodeId + 'g,
    J: NodeId + 'g,
    OutRow: Fn(u32) -> (&'g [I], &'g [f64]),
    InnerRow: Fn(u32) -> (&'g [J], &'g [f64]),
{
    let (inner, f_out) = out_row(q);
    if inner.is_empty() {
        return;
    }
    let PullWorkspace {
        t_vals,
        t_flag,
        t_touched,
        o_vals,
        o_flag,
        o_touched,
        ..
    } = ws;

    // Pass 1: T[q, ·] = Σ_{a ∈ E(q)} F(q, a) · S[a, ·], unit diagonal
    // included. Scan order (E(q) outer, each score row inner, both in CSR
    // order) fixes every cell's summation order.
    for (x, a) in inner.iter().enumerate() {
        let f = f_out[x];
        spa_add(t_vals, t_flag, t_touched, a.raw(), f);
        let (cols, vals) = csr.row(a.raw());
        for (i, &col) in cols.iter().enumerate() {
            spa_add(t_vals, t_flag, t_touched, col, f * vals[i]);
        }
    }

    // Pass 2: drain T in first-touch order, scattering through each inner
    // node's neighbor list restricted to q' > q.
    for &a2 in t_touched.iter() {
        let t = t_vals[a2 as usize];
        t_vals[a2 as usize] = 0.0;
        t_flag[a2 as usize] = false;
        let (outs, f_in) = inner_row(a2);
        let start = outs.partition_point(|x| x.raw() <= q);
        for (y, o) in outs[start..].iter().enumerate() {
            spa_add(o_vals, o_flag, o_touched, o.raw(), t * f_in[start + y]);
        }
    }
    t_touched.clear();

    // Emit: the only sort left, over the row's distinct partner ids.
    o_touched.sort_unstable();
    for &oid in o_touched.iter() {
        let v = c * o_vals[oid as usize];
        o_vals[oid as usize] = 0.0;
        o_flag[oid as usize] = false;
        if v > prune_threshold && v > 0.0 {
            out.push((PairKey::new(q, oid), v));
        }
    }
    o_touched.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KernelKind, SimrankConfig};
    use crate::engine::{run, UniformTransition};
    use simrankpp_graph::fixtures::{figure3_graph, figure4_k22};

    fn cfg(k: usize, kernel: KernelKind) -> SimrankConfig {
        SimrankConfig::default()
            .with_iterations(k)
            .with_kernel(kernel)
    }

    #[test]
    fn csr_scratch_rebuild_reuses_and_resizes() {
        let mut csr = CsrScratch::default();
        let pairs = vec![(PairKey::new(0, 2), 0.5), (PairKey::new(1, 2), 0.25)];
        csr.rebuild(3, &pairs);
        assert_eq!(csr.row(2), (&[0u32, 1][..], &[0.5, 0.25][..]));
        assert_eq!(csr.row(0), (&[2u32][..], &[0.5][..]));
        // Shrinking rebuild must not leak the old rows.
        csr.rebuild(2, &[(PairKey::new(0, 1), 1.0)]);
        assert_eq!(csr.row(0), (&[1u32][..], &[1.0][..]));
        assert_eq!(csr.row(1), (&[0u32][..], &[1.0][..]));
        csr.rebuild(2, &[]);
        assert!(csr.row(0).0.is_empty() && csr.row(1).0.is_empty());
    }

    #[test]
    fn pull_reproduces_table3_exactly_like_flat() {
        let g = figure4_k22();
        let expected = [0.4, 0.56, 0.624, 0.6496, 0.65984, 0.663936, 0.6655744];
        for (k, &want) in expected.iter().enumerate() {
            let r = run(&g, &cfg(k + 1, KernelKind::Pull), &UniformTransition);
            assert!(
                (r.queries.get(0, 1) - want).abs() < 1e-9,
                "iteration {}",
                k + 1
            );
        }
    }

    #[test]
    fn pull_rows_emit_sorted_pairs() {
        let g = figure3_graph();
        let r = run(&g, &cfg(5, KernelKind::Pull), &UniformTransition);
        let pairs: Vec<_> = r.queries.sorted_pairs().collect();
        assert!(!pairs.is_empty());
        assert!(pairs.windows(2).all(|w| w[0].0.raw() < w[1].0.raw()));
    }

    #[test]
    fn workspace_stays_zeroed_between_rows() {
        // After a full run every scratch cell must have been drained — a
        // leaked cell would corrupt the next row (or the next half-step).
        let g = figure3_graph();
        let factors = crate::engine::Transition::factors(&UniformTransition, &g);
        let mut csr = CsrScratch::default();
        let mut ws = vec![PullWorkspace::default()];
        let prev: PairVec = vec![(PairKey::new(0, 1), 0.5)];
        for _ in 0..2 {
            let _ = propagate_pull(
                g.n_queries(),
                g.n_ads(),
                |q| {
                    let q = simrankpp_graph::QueryId(q);
                    let (ads, _) = g.ads_of(q);
                    let lo = g.query_csr_offset(q);
                    (ads, &factors.ad_to_query_by_query[lo..lo + ads.len()])
                },
                |a| {
                    let a = simrankpp_graph::AdId(a);
                    let (qs, _) = g.queries_of(a);
                    let lo = g.ad_csr_offset(a);
                    (qs, &factors.ad_to_query[lo..lo + qs.len()])
                },
                &prev,
                0.8,
                0.0,
                &mut csr,
                &mut ws,
            );
            assert!(ws[0].t_vals.iter().all(|&v| v == 0.0));
            assert!(ws[0].o_vals.iter().all(|&v| v == 0.0));
            assert!(ws[0].t_flag.iter().all(|&f| !f));
            assert!(ws[0].o_flag.iter().all(|&f| !f));
            assert!(ws[0].t_touched.is_empty() && ws[0].o_touched.is_empty());
        }
    }
}
