//! Component-local incremental recompute.
//!
//! A [`GraphDelta`](simrankpp_graph::GraphDelta) only changes scores inside
//! the components its edge endpoints touch (`simrankpp_graph::delta` proves
//! the labeling sound, including component merges and splits), so
//! [`run_incremental`] recomputes **only the dirty components** of the
//! updated graph and stitches the recomputed blocks with the untouched
//! blocks of the previous score matrices:
//!
//! 1. [`Sharding::from_dirty`] carves one shard per dirty non-trivial
//!    component of the new graph;
//! 2. each dirty shard replays the unified kernel exactly as
//!    [`super::run_sharded`] would (serial per shard, shard-queue
//!    parallelism across shards);
//! 3. the previous matrices' pairs whose endpoints both lie in clean
//!    components are carried over **verbatim** (a `memcpy`-grade filter of
//!    an already key-sorted list — no recompute, no re-rounding), and the
//!    monotone disjoint merge stitches reused and recomputed blocks into the
//!    new global matrices.
//!
//! Exactness: provided `prev` was produced by the same `config` and
//! `transition` over the pre-delta graph (any of [`super::run`],
//! [`super::run_sharded`], [`super::run_with_strategy`] with exact
//! sharding, or a previous [`run_incremental`]), the result is
//! **bit-identical** to a from-scratch run over the updated graph under the
//! same conditions that make component sharding bit-exact — unconditional
//! for the default pull kernel; for the flat oracle, serial shards below
//! the accumulator flush threshold (see `super::sharded`). Clean
//! components cost zero engine work — [`IncrementalRun`] reports the
//! reused-vs-recomputed pair split so callers can verify exactly that.

use super::accum::{merge_all_disjoint, PairVec};
use super::sharded::{aggregate_diagnostics, remap_pieces, run_all};
use super::{EngineRun, Transition};
use crate::config::SimrankConfig;
use crate::scores::ScoreMatrix;
use simrankpp_graph::{ClickGraph, DirtyComponents, QueryId, Sharding};

/// An [`EngineRun`] produced incrementally, plus the reuse accounting.
#[derive(Debug, Clone)]
pub struct IncrementalRun {
    /// The stitched result over the **new** graph: recomputed dirty blocks +
    /// reused clean blocks. Diagnostics (`pair_counts`, `max_deltas`,
    /// `iterations_run`, `converged`) cover the recomputed shards only —
    /// clean components executed zero iterations.
    pub run: EngineRun,
    /// Query pairs carried over from `prev` without recompute.
    pub reused_query_pairs: usize,
    /// Ad pairs carried over from `prev` without recompute.
    pub reused_ad_pairs: usize,
    /// Query pairs produced by the dirty-shard runs.
    pub recomputed_query_pairs: usize,
    /// Ad pairs produced by the dirty-shard runs.
    pub recomputed_ad_pairs: usize,
    /// Dirty components in the delta analysis (including trivial ones).
    pub n_dirty_components: usize,
    /// Clean components whose blocks were reused.
    pub n_clean_components: usize,
    /// Dirty components that actually became engine shards (non-trivial).
    pub n_dirty_shards: usize,
}

/// Recomputes only the dirty components of `g` and stitches with the clean
/// blocks of the previous score matrices.
///
/// `g` is the **post-delta** graph, `dirty` the analysis from
/// [`simrankpp_graph::GraphDelta::dirty_components`] over that same graph,
/// and `prev_queries`/`prev_ads` the matrices of the previous generation
/// (computed with the same `config` and `transition` — the reuse carries
/// their values verbatim, so a mismatched `prev` silently produces a
/// mixed-generation result).
///
/// # Panics
/// Panics if `dirty` was computed for a different graph (dimension
/// mismatch), if the previous matrices are wider than the new graph (nodes
/// never disappear under a delta), or if a reused pair collides with a
/// recomputed one (impossible for a sound `dirty` labeling; indicates a
/// `prev` from a different graph).
pub fn run_incremental<T: Transition>(
    g: &ClickGraph,
    config: &SimrankConfig,
    transition: &T,
    prev_queries: &ScoreMatrix,
    prev_ads: &ScoreMatrix,
    dirty: &DirtyComponents,
) -> IncrementalRun {
    config.validate().expect("invalid SimRank configuration");
    assert_eq!(
        (
            dirty.components.query_label.len(),
            dirty.components.ad_label.len()
        ),
        (g.n_queries(), g.n_ads()),
        "dirty-component analysis was built for a different graph"
    );
    assert!(
        prev_queries.n_nodes() <= g.n_queries() && prev_ads.n_nodes() <= g.n_ads(),
        "previous matrices are wider than the updated graph"
    );

    let sharding = Sharding::from_dirty(g, dirty);
    let shard_config = SimrankConfig {
        threads: 1,
        sharding: crate::config::ShardStrategy::Off,
        ..*config
    };
    let workers = config.effective_threads().min(sharding.n_shards()).max(1);
    let mut runs = run_all(&sharding, &shard_config, transition, workers);
    let (mut q_pieces, mut a_pieces) = remap_pieces(&sharding, &mut runs);
    let recomputed_query_pairs: usize = q_pieces.iter().map(Vec::len).sum();
    let recomputed_ad_pairs: usize = a_pieces.iter().map(Vec::len).sum();

    // Carry clean blocks over verbatim. The previous matrices are
    // block-diagonal over the old components, and clean components keep
    // their exact node and edge sets, so filtering on both endpoints being
    // clean extracts whole untouched blocks (already key-sorted).
    let reused_q: PairVec = prev_queries
        .sorted_pairs()
        .filter(|&(k, _)| {
            let (a, b) = k.parts();
            !dirty.query_dirty(QueryId(a)) && !dirty.query_dirty(QueryId(b))
        })
        .collect();
    let reused_a: PairVec = prev_ads
        .sorted_pairs()
        .filter(|&(k, _)| {
            let (a, b) = k.parts();
            !dirty.ad_dirty(simrankpp_graph::AdId(a)) && !dirty.ad_dirty(simrankpp_graph::AdId(b))
        })
        .collect();
    let reused_query_pairs = reused_q.len();
    let reused_ad_pairs = reused_a.len();
    q_pieces.push(reused_q);
    a_pieces.push(reused_a);

    let queries = ScoreMatrix::from_sorted_pairs(
        g.n_queries(),
        merge_all_disjoint(q_pieces).expect("reused and recomputed query blocks overlap"),
    );
    let ads = ScoreMatrix::from_sorted_pairs(
        g.n_ads(),
        merge_all_disjoint(a_pieces).expect("reused and recomputed ad blocks overlap"),
    );

    let (pair_counts, max_deltas, iterations_run, converged) = aggregate_diagnostics(&runs, config);

    IncrementalRun {
        run: EngineRun {
            queries,
            ads,
            pair_counts,
            max_deltas,
            iterations_run,
            converged,
        },
        reused_query_pairs,
        reused_ad_pairs,
        recomputed_query_pairs,
        recomputed_ad_pairs,
        n_dirty_components: dirty.n_dirty(),
        n_clean_components: dirty.n_clean(),
        n_dirty_shards: sharding.n_shards(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, run_sharded, UniformTransition, WeightedTransition};
    use crate::weighted::SpreadMode;
    use simrankpp_graph::fixtures::figure3_graph;
    use simrankpp_graph::{
        AdId, ClickGraphBuilder, EdgeData, GraphDelta, QueryId, Sharding as GraphSharding,
        WeightKind,
    };

    fn cfg(k: usize) -> SimrankConfig {
        SimrankConfig::default().with_iterations(k)
    }

    /// Disjoint multi-blob graph (same shape as the sharded tests use).
    fn multi_component(blocks: usize, seed: u64) -> simrankpp_graph::ClickGraph {
        let mut b = ClickGraphBuilder::new();
        let mut x = seed | 1;
        for blk in 0..blocks as u32 {
            let qo = blk * 12;
            let ao = blk * 9;
            for _ in 0..40 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let q = qo + ((x >> 33) % 12) as u32;
                let a = ao + ((x >> 13) % 9) as u32;
                b.add_edge(QueryId(q), AdId(a), EdgeData::from_clicks(1 + (x % 4)));
            }
        }
        b.build()
    }

    fn assert_bits_equal(a: &ScoreMatrix, b: &ScoreMatrix, what: &str) {
        assert_eq!(a.n_pairs(), b.n_pairs(), "{what}: pair count");
        for ((x1, y1, v1), (x2, y2, v2)) in a.iter().zip(b.iter()) {
            assert_eq!((x1, y1), (x2, y2), "{what}: pair set");
            assert_eq!(v1.to_bits(), v2.to_bits(), "{what}: ({x1},{y1}) drifted");
        }
    }

    #[test]
    fn single_dirty_component_matches_from_scratch_bitwise() {
        let g0 = multi_component(5, 21);
        let prev = run(&g0, &cfg(6), &UniformTransition);
        // Touch one component only.
        let mut d = GraphDelta::new();
        d.upsert(QueryId(0), AdId(3), EdgeData::from_clicks(5));
        let g1 = d.apply(&g0);
        let dirty = d.dirty_components(&g1);
        assert!(dirty.n_clean() >= 4);

        let inc = run_incremental(
            &g1,
            &cfg(6),
            &UniformTransition,
            &prev.queries,
            &prev.ads,
            &dirty,
        );
        let scratch = run(&g1, &cfg(6), &UniformTransition);
        assert_bits_equal(&inc.run.queries, &scratch.queries, "queries");
        assert_bits_equal(&inc.run.ads, &scratch.ads, "ads");
        assert_eq!(inc.n_dirty_shards, 1);
        assert!(inc.reused_query_pairs > 0);
        assert!(inc.recomputed_query_pairs > 0);
        assert_eq!(
            inc.reused_query_pairs + inc.recomputed_query_pairs,
            inc.run.queries.n_pairs()
        );
    }

    #[test]
    fn merge_delta_recomputes_the_bridged_component() {
        // An edge bridging two components of figure 3: both old blocks are
        // recomputed as one merged component, nothing is reused.
        let g0 = figure3_graph();
        let prev = run(&g0, &cfg(7), &UniformTransition);
        let mut d = GraphDelta::new();
        d.upsert(
            g0.query_by_name("flower").unwrap(),
            g0.ad_by_name("hp.com").unwrap(),
            EdgeData::from_clicks(1),
        );
        let g1 = d.apply(&g0);
        let dirty = d.dirty_components(&g1);
        assert_eq!(dirty.n_components(), 1);

        let inc = run_incremental(
            &g1,
            &cfg(7),
            &UniformTransition,
            &prev.queries,
            &prev.ads,
            &dirty,
        );
        let scratch = run(&g1, &cfg(7), &UniformTransition);
        assert_bits_equal(&inc.run.queries, &scratch.queries, "merge queries");
        assert_eq!(inc.reused_query_pairs, 0);
        assert_eq!(inc.reused_ad_pairs, 0);
        assert_eq!(inc.n_clean_components, 0);
    }

    #[test]
    fn removal_delta_recomputes_both_split_halves() {
        let g0 = multi_component(3, 9);
        let t = WeightedTransition {
            kind: WeightKind::Clicks,
            spread: SpreadMode::Exponential,
        };
        let c = cfg(5).with_prune_threshold(1e-4);
        let prev = run(&g0, &c, &t);
        // Remove a real edge from component 0.
        let (q, a, _) = g0.edges().next().unwrap();
        let mut d = GraphDelta::new();
        d.remove(q, a);
        let g1 = d.apply(&g0);
        let dirty = d.dirty_components(&g1);

        let inc = run_incremental(&g1, &c, &t, &prev.queries, &prev.ads, &dirty);
        let scratch = run(&g1, &c, &t);
        assert_bits_equal(&inc.run.queries, &scratch.queries, "removal queries");
        assert_bits_equal(&inc.run.ads, &scratch.ads, "removal ads");
    }

    #[test]
    fn empty_delta_reuses_everything() {
        let g = multi_component(4, 3);
        let prev = run(&g, &cfg(5), &UniformTransition);
        let d = GraphDelta::new();
        let g1 = d.apply(&g);
        let dirty = d.dirty_components(&g1);
        let inc = run_incremental(
            &g1,
            &cfg(5),
            &UniformTransition,
            &prev.queries,
            &prev.ads,
            &dirty,
        );
        assert_eq!(inc.recomputed_query_pairs, 0);
        assert_eq!(inc.recomputed_ad_pairs, 0);
        assert_eq!(inc.n_dirty_shards, 0);
        assert_eq!(inc.reused_query_pairs, prev.queries.n_pairs());
        assert_bits_equal(&inc.run.queries, &prev.queries, "reused queries");
    }

    #[test]
    fn chained_incremental_generations_stay_exact() {
        // prev produced by run_incremental itself must be a valid prev.
        let g0 = multi_component(4, 77);
        let mut prev = run(&g0, &cfg(5), &UniformTransition);
        let mut g = g0;
        for step in 0..3u32 {
            let mut d = GraphDelta::new();
            // Each step touches a different component's id range.
            d.upsert(
                QueryId(step * 12 + 1),
                AdId(step * 9 + 2),
                EdgeData::from_clicks(2 + step as u64),
            );
            let g1 = d.apply(&g);
            let dirty = d.dirty_components(&g1);
            let inc = run_incremental(
                &g1,
                &cfg(5),
                &UniformTransition,
                &prev.queries,
                &prev.ads,
                &dirty,
            );
            let scratch = run(&g1, &cfg(5), &UniformTransition);
            assert_bits_equal(&inc.run.queries, &scratch.queries, "chained queries");
            prev = inc.run;
            g = g1;
        }
    }

    #[test]
    fn new_nodes_extend_the_matrices() {
        let g0 = figure3_graph();
        let prev = run(&g0, &cfg(5), &UniformTransition);
        let mut d = GraphDelta::new();
        // A brand-new query attaching to the big component.
        let new_q = QueryId(g0.n_queries() as u32);
        d.upsert(new_q, AdId(0), EdgeData::from_clicks(3));
        let g1 = d.apply(&g0);
        let dirty = d.dirty_components(&g1);
        let inc = run_incremental(
            &g1,
            &cfg(5),
            &UniformTransition,
            &prev.queries,
            &prev.ads,
            &dirty,
        );
        assert_eq!(inc.run.queries.n_nodes(), g1.n_queries());
        let scratch = run(&g1, &cfg(5), &UniformTransition);
        assert_bits_equal(&inc.run.queries, &scratch.queries, "grown queries");
    }

    #[test]
    fn incremental_matches_sharded_from_scratch_too() {
        let g0 = multi_component(4, 55);
        let prev = run(&g0, &cfg(6), &UniformTransition);
        let mut d = GraphDelta::new();
        d.upsert(QueryId(13), AdId(10), EdgeData::from_clicks(1));
        let g1 = d.apply(&g0);
        let dirty = d.dirty_components(&g1);
        let inc = run_incremental(
            &g1,
            &cfg(6),
            &UniformTransition,
            &prev.queries,
            &prev.ads,
            &dirty,
        );
        let sharding = GraphSharding::from_components(&g1);
        let scratch = run_sharded(&g1, &cfg(6), &UniformTransition, &sharding);
        assert_bits_equal(&inc.run.queries, &scratch.queries, "vs sharded");
        assert_bits_equal(&inc.run.ads, &scratch.ads, "vs sharded ads");
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn mismatched_dirty_analysis_rejected() {
        let g = figure3_graph();
        let other = multi_component(2, 4);
        let prev = run(&other, &cfg(3), &UniformTransition);
        let d = GraphDelta::new();
        let dirty = d.dirty_components(&other);
        run_incremental(
            &g,
            &cfg(3),
            &UniformTransition,
            &prev.queries,
            &prev.ads,
            &dirty,
        );
    }
}
