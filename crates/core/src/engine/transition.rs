//! Per-edge transition factors — the only thing that distinguishes the
//! SimRank variants inside the unified kernel.

use crate::weighted::{SpreadMode, TransitionWeights};
use simrankpp_graph::{ClickGraph, WeightKind};

/// Precomputed per-edge factors in both CSR orders.
///
/// The kernel walks *source* rows: when ad-pair scores propagate to query
/// pairs it iterates each ad's query list, so the factor attached to edge
/// `(q, a)` must be addressable per ad row — and symmetrically for the other
/// direction.
#[derive(Debug, Clone)]
pub struct TransitionFactors {
    /// `F(q, a)` per (ad → query) CSR edge, ad-major: the weight with which
    /// ad-side scores flow into query `q` through ad `a`.
    pub ad_to_query: Vec<f64>,
    /// `F(a, q)` per (query → ad) CSR edge, query-major.
    pub query_to_ad: Vec<f64>,
}

/// A SimRank variant's walk model: produces the per-edge factor tables.
pub trait Transition: Sync {
    /// Display name for diagnostics.
    fn name(&self) -> &'static str;

    /// Computes both factor tables for `g`.
    fn factors(&self, g: &ClickGraph) -> TransitionFactors;
}

/// §4's uniform walk: `F(q, a) = 1/N(q)` and `F(a, q) = 1/N(a)` — equivalent
/// to the classic `C/(N·N')` prefactor, applied per edge.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformTransition;

impl Transition for UniformTransition {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn factors(&self, g: &ClickGraph) -> TransitionFactors {
        let inv_q: Vec<f64> = g
            .queries()
            .map(|q| 1.0 / g.query_degree(q) as f64)
            .collect();
        let inv_a: Vec<f64> = g.ads().map(|a| 1.0 / g.ad_degree(a) as f64).collect();

        let mut ad_to_query = Vec::with_capacity(g.n_edges());
        for a in g.ads() {
            let (qs, _) = g.queries_of(a);
            ad_to_query.extend(qs.iter().map(|q| inv_q[q.index()]));
        }
        let mut query_to_ad = Vec::with_capacity(g.n_edges());
        for q in g.queries() {
            let (ads, _) = g.ads_of(q);
            query_to_ad.extend(ads.iter().map(|a| inv_a[a.index()]));
        }
        TransitionFactors {
            ad_to_query,
            query_to_ad,
        }
    }
}

/// §8.2's weight-consistent walk:
/// `F(q, a) = W(q, a) = spread(a) · normalized_weight(q, a)`.
#[derive(Debug, Clone, Copy)]
pub struct WeightedTransition {
    /// Which §2 edge weight feeds the normalized weights.
    pub kind: WeightKind,
    /// Whether the `e^(−variance)` spread factor applies (ablation knob).
    pub spread: SpreadMode,
}

impl Transition for WeightedTransition {
    fn name(&self) -> &'static str {
        "weighted"
    }

    fn factors(&self, g: &ClickGraph) -> TransitionFactors {
        let tw = TransitionWeights::compute_with_spread(g, self.kind, self.spread);
        TransitionFactors {
            ad_to_query: ad_csr_aligned_query_factors(g, &tw),
            query_to_ad: query_csr_aligned_ad_factors(g, &tw),
        }
    }
}

/// `W(q, a)` values re-laid-out in ad-CSR order (entry per (a ← q) edge).
fn ad_csr_aligned_query_factors(g: &ClickGraph, tw: &TransitionWeights) -> Vec<f64> {
    let mut out = vec![0.0; g.n_edges()];
    let mut q_edge_idx = 0usize;
    for q in g.queries() {
        let (ads, _) = g.ads_of(q);
        for &a in ads {
            let (qs, _) = g.queries_of(a);
            let pos = qs.binary_search(&q).expect("edge present in transpose");
            out[g.ad_csr_offset(a) + pos] = tw.w_query_to_ad[q_edge_idx];
            q_edge_idx += 1;
        }
    }
    out
}

/// `W(a, q)` values re-laid-out in query-CSR order (entry per (q ← a) edge).
fn query_csr_aligned_ad_factors(g: &ClickGraph, tw: &TransitionWeights) -> Vec<f64> {
    let mut out = vec![0.0; g.n_edges()];
    let mut a_edge_idx = 0usize;
    for a in g.ads() {
        let (qs, _) = g.queries_of(a);
        for &q in qs {
            let (ads, _) = g.ads_of(q);
            let pos = ads.binary_search(&a).expect("edge present in transpose");
            out[g.query_csr_offset(q) + pos] = tw.w_ad_to_query[a_edge_idx];
            a_edge_idx += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::fixtures::{figure3_graph, figure4_k22};
    use simrankpp_graph::{AdId, QueryId};

    #[test]
    fn uniform_factors_are_inverse_degrees() {
        let g = figure3_graph();
        let f = UniformTransition.factors(&g);
        assert_eq!(f.ad_to_query.len(), g.n_edges());
        assert_eq!(f.query_to_ad.len(), g.n_edges());
        // Spot-check one row per direction.
        let a0 = AdId(0);
        let (qs, _) = g.queries_of(a0);
        let lo = g.ad_csr_offset(a0);
        for (x, &q) in qs.iter().enumerate() {
            assert_eq!(f.ad_to_query[lo + x], 1.0 / g.query_degree(q) as f64);
        }
        let q0 = QueryId(0);
        let (ads, _) = g.ads_of(q0);
        let lo = g.query_csr_offset(q0);
        for (x, &a) in ads.iter().enumerate() {
            assert_eq!(f.query_to_ad[lo + x], 1.0 / g.ad_degree(a) as f64);
        }
    }

    #[test]
    fn weighted_factors_on_uniform_graph_match_uniform() {
        // Equal weights: W(q, a) = 1/N(q), so both transitions agree exactly.
        let g = figure4_k22();
        let u = UniformTransition.factors(&g);
        let w = WeightedTransition {
            kind: WeightKind::Clicks,
            spread: SpreadMode::Exponential,
        }
        .factors(&g);
        assert_eq!(u.ad_to_query, w.ad_to_query);
        assert_eq!(u.query_to_ad, w.query_to_ad);
    }
}
