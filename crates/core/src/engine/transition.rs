//! Per-edge transition factors — the only thing that distinguishes the
//! SimRank variants inside the unified kernel.

use crate::weighted::{SpreadMode, TransitionWeights};
use simrankpp_graph::{ClickGraph, WeightKind};
use simrankpp_util::arena::{AlignedBytes, Arena, ArenaWriter};
use std::borrow::Cow;
use std::io::{self, Write};

/// Precomputed per-edge factors in both CSR orders.
///
/// The scatter kernels walk *source* rows: when ad-pair scores propagate to
/// query pairs they iterate each ad's query list, so the factor attached to
/// edge `(q, a)` must be addressable per ad row — and symmetrically for the
/// other direction. The pull kernel additionally needs each table in the
/// *transposed* layout: its first SpGEMM pass walks the output node's own
/// neighbor list (e.g. `F(q, a)` for `a ∈ E(q)`, query-major), its second
/// pass scatters through the inner node's list (`F(q', a)` for
/// `q' ∈ E(a)`, ad-major). [`TransitionFactors::from_primary`] derives the
/// transposed copies with a counting transpose, so each variant still only
/// supplies the two primary tables.
///
/// Each table is a `Cow`: engine builds own their storage (the
/// [`TransitionFactors`] alias, `'static`), while
/// [`TransitionFactorsArena::from_bytes`] borrows all four straight out of
/// a serialized arena's sections so the single-source sweeps run directly
/// over mapped bytes.
#[derive(Debug, Clone)]
pub struct TransitionFactorsArena<'a> {
    /// `F(q, a)` per (ad → query) CSR edge, ad-major: the weight with which
    /// ad-side scores flow into query `q` through ad `a`.
    pub ad_to_query: Cow<'a, [f64]>,
    /// `F(a, q)` per (query → ad) CSR edge, query-major.
    pub query_to_ad: Cow<'a, [f64]>,
    /// `F(q, a)` re-laid-out query-major (same values as `ad_to_query`,
    /// addressable per query row) — the pull kernel's query-side pass 1.
    pub ad_to_query_by_query: Cow<'a, [f64]>,
    /// `F(a, q)` re-laid-out ad-major (same values as `query_to_ad`,
    /// addressable per ad row) — the pull kernel's ad-side pass 1.
    pub query_to_ad_by_ad: Cow<'a, [f64]>,
}

/// The owning form of [`TransitionFactorsArena`] — what [`Transition`]
/// implementations produce.
pub type TransitionFactors = TransitionFactorsArena<'static>;

/// Arena magic for serialized transition factors.
const TRF_MAGIC: [u8; 8] = *b"SRPPTRF\0";
const TRF_VERSION: u32 = 1;
const SEC_A2Q: u64 = 0x01;
const SEC_Q2A: u64 = 0x02;
const SEC_A2Q_BY_Q: u64 = 0x03;
const SEC_Q2A_BY_A: u64 = 0x04;

impl<'a> TransitionFactorsArena<'a> {
    /// Serializes the four tables into the shared arena container, each as
    /// one whole-section `write_all`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<u64> {
        let mut a = ArenaWriter::new(TRF_MAGIC, TRF_VERSION);
        a.slice(SEC_A2Q, &self.ad_to_query)
            .slice(SEC_Q2A, &self.query_to_ad)
            .slice(SEC_A2Q_BY_Q, &self.ad_to_query_by_query)
            .slice(SEC_Q2A_BY_A, &self.query_to_ad_by_ad);
        a.write_to(w)
    }

    /// Serializes into a fresh 8-aligned buffer.
    pub fn to_arena_bytes(&self) -> AlignedBytes {
        let mut buf = Vec::new();
        self.write_to(&mut buf).expect("Vec writes are infallible");
        AlignedBytes::copy_from(&buf)
    }

    /// Reconstructs factors whose tables *borrow* from `bytes` (8-aligned;
    /// a mapped file or an [`AlignedBytes`] buffer). Nothing is copied.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<TransitionFactorsArena<'a>, String> {
        let a = Arena::parse(bytes, TRF_MAGIC)?;
        if a.version() != TRF_VERSION {
            return Err(format!(
                "unsupported transition-factor arena version {} (expected {TRF_VERSION})",
                a.version()
            ));
        }
        let ad_to_query = a.slice::<f64>(SEC_A2Q)?;
        let query_to_ad = a.slice::<f64>(SEC_Q2A)?;
        let ad_to_query_by_query = a.slice::<f64>(SEC_A2Q_BY_Q)?;
        let query_to_ad_by_ad = a.slice::<f64>(SEC_Q2A_BY_A)?;
        if ad_to_query.len() != query_to_ad.len()
            || ad_to_query.len() != ad_to_query_by_query.len()
            || ad_to_query.len() != query_to_ad_by_ad.len()
        {
            return Err("factor tables disagree in length (one entry per edge each)".into());
        }
        Ok(TransitionFactorsArena {
            ad_to_query: Cow::Borrowed(ad_to_query),
            query_to_ad: Cow::Borrowed(query_to_ad),
            ad_to_query_by_query: Cow::Borrowed(ad_to_query_by_query),
            query_to_ad_by_ad: Cow::Borrowed(query_to_ad_by_ad),
        })
    }

    /// Deep-copies into the owning form (detaches from a borrowed arena).
    pub fn to_owned_factors(&self) -> TransitionFactors {
        TransitionFactorsArena {
            ad_to_query: Cow::Owned(self.ad_to_query.to_vec()),
            query_to_ad: Cow::Owned(self.query_to_ad.to_vec()),
            ad_to_query_by_query: Cow::Owned(self.ad_to_query_by_query.to_vec()),
            query_to_ad_by_ad: Cow::Owned(self.query_to_ad_by_ad.to_vec()),
        }
    }
}

impl TransitionFactors {
    /// Completes the factor set from the two primary tables, deriving the
    /// transposed layouts. The transpose scans the source-major table in CSR
    /// order and writes through a per-target-row cursor; because both CSR
    /// directions keep neighbor lists ascending, each target row fills in
    /// exactly its own CSR order — a counting transpose, no sorting.
    pub fn from_primary(g: &ClickGraph, ad_to_query: Vec<f64>, query_to_ad: Vec<f64>) -> Self {
        let mut ad_to_query_by_query = vec![0.0; ad_to_query.len()];
        let mut cur: Vec<usize> = g.queries().map(|q| g.query_csr_offset(q)).collect();
        for a in g.ads() {
            let (qs, _) = g.queries_of(a);
            let lo = g.ad_csr_offset(a);
            for (x, &q) in qs.iter().enumerate() {
                ad_to_query_by_query[cur[q.index()]] = ad_to_query[lo + x];
                cur[q.index()] += 1;
            }
        }
        let mut query_to_ad_by_ad = vec![0.0; query_to_ad.len()];
        let mut cur: Vec<usize> = g.ads().map(|a| g.ad_csr_offset(a)).collect();
        for q in g.queries() {
            let (ads, _) = g.ads_of(q);
            let lo = g.query_csr_offset(q);
            for (x, &a) in ads.iter().enumerate() {
                query_to_ad_by_ad[cur[a.index()]] = query_to_ad[lo + x];
                cur[a.index()] += 1;
            }
        }
        TransitionFactors {
            ad_to_query: Cow::Owned(ad_to_query),
            query_to_ad: Cow::Owned(query_to_ad),
            ad_to_query_by_query: Cow::Owned(ad_to_query_by_query),
            query_to_ad_by_ad: Cow::Owned(query_to_ad_by_ad),
        }
    }
}

/// A SimRank variant's walk model: produces the per-edge factor tables.
pub trait Transition: Sync {
    /// Display name for diagnostics.
    fn name(&self) -> &'static str;

    /// Computes both factor tables for `g`.
    fn factors(&self, g: &ClickGraph) -> TransitionFactors;
}

/// §4's uniform walk: `F(q, a) = 1/N(q)` and `F(a, q) = 1/N(a)` — equivalent
/// to the classic `C/(N·N')` prefactor, applied per edge.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformTransition;

impl Transition for UniformTransition {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn factors(&self, g: &ClickGraph) -> TransitionFactors {
        let inv_q: Vec<f64> = g
            .queries()
            .map(|q| 1.0 / g.query_degree(q) as f64)
            .collect();
        let inv_a: Vec<f64> = g.ads().map(|a| 1.0 / g.ad_degree(a) as f64).collect();

        let mut ad_to_query = Vec::with_capacity(g.n_edges());
        for a in g.ads() {
            let (qs, _) = g.queries_of(a);
            ad_to_query.extend(qs.iter().map(|q| inv_q[q.index()]));
        }
        let mut query_to_ad = Vec::with_capacity(g.n_edges());
        for q in g.queries() {
            let (ads, _) = g.ads_of(q);
            query_to_ad.extend(ads.iter().map(|a| inv_a[a.index()]));
        }
        TransitionFactors::from_primary(g, ad_to_query, query_to_ad)
    }
}

/// §8.2's weight-consistent walk:
/// `F(q, a) = W(q, a) = spread(a) · normalized_weight(q, a)`.
#[derive(Debug, Clone, Copy)]
pub struct WeightedTransition {
    /// Which §2 edge weight feeds the normalized weights.
    pub kind: WeightKind,
    /// Whether the `e^(−variance)` spread factor applies (ablation knob).
    pub spread: SpreadMode,
}

impl Transition for WeightedTransition {
    fn name(&self) -> &'static str {
        "weighted"
    }

    fn factors(&self, g: &ClickGraph) -> TransitionFactors {
        let tw = TransitionWeights::compute_with_spread(g, self.kind, self.spread);
        TransitionFactors::from_primary(
            g,
            ad_csr_aligned_query_factors(g, &tw),
            query_csr_aligned_ad_factors(g, &tw),
        )
    }
}

/// `W(q, a)` values re-laid-out in ad-CSR order (entry per (a ← q) edge).
fn ad_csr_aligned_query_factors(g: &ClickGraph, tw: &TransitionWeights) -> Vec<f64> {
    let mut out = vec![0.0; g.n_edges()];
    let mut q_edge_idx = 0usize;
    for q in g.queries() {
        let (ads, _) = g.ads_of(q);
        for &a in ads {
            let (qs, _) = g.queries_of(a);
            let pos = qs.binary_search(&q).expect("edge present in transpose");
            out[g.ad_csr_offset(a) + pos] = tw.w_query_to_ad[q_edge_idx];
            q_edge_idx += 1;
        }
    }
    out
}

/// `W(a, q)` values re-laid-out in query-CSR order (entry per (q ← a) edge).
fn query_csr_aligned_ad_factors(g: &ClickGraph, tw: &TransitionWeights) -> Vec<f64> {
    let mut out = vec![0.0; g.n_edges()];
    let mut a_edge_idx = 0usize;
    for a in g.ads() {
        let (qs, _) = g.queries_of(a);
        for &q in qs {
            let (ads, _) = g.ads_of(q);
            let pos = ads.binary_search(&a).expect("edge present in transpose");
            out[g.query_csr_offset(q) + pos] = tw.w_ad_to_query[a_edge_idx];
            a_edge_idx += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::fixtures::{figure3_graph, figure4_k22};
    use simrankpp_graph::{AdId, QueryId};

    #[test]
    fn uniform_factors_are_inverse_degrees() {
        let g = figure3_graph();
        let f = UniformTransition.factors(&g);
        assert_eq!(f.ad_to_query.len(), g.n_edges());
        assert_eq!(f.query_to_ad.len(), g.n_edges());
        // Spot-check one row per direction.
        let a0 = AdId(0);
        let (qs, _) = g.queries_of(a0);
        let lo = g.ad_csr_offset(a0);
        for (x, &q) in qs.iter().enumerate() {
            assert_eq!(f.ad_to_query[lo + x], 1.0 / g.query_degree(q) as f64);
        }
        let q0 = QueryId(0);
        let (ads, _) = g.ads_of(q0);
        let lo = g.query_csr_offset(q0);
        for (x, &a) in ads.iter().enumerate() {
            assert_eq!(f.query_to_ad[lo + x], 1.0 / g.ad_degree(a) as f64);
        }
    }

    #[test]
    fn transposed_layouts_agree_with_primary_tables() {
        // Every edge's factor must be identical through both layouts, for
        // both the uniform and a genuinely non-uniform weighted transition.
        let g = figure3_graph();
        let weighted = WeightedTransition {
            kind: simrankpp_graph::WeightKind::Clicks,
            spread: crate::weighted::SpreadMode::Exponential,
        };
        for f in [UniformTransition.factors(&g), weighted.factors(&g)] {
            for q in g.queries() {
                let (ads, _) = g.ads_of(q);
                let qlo = g.query_csr_offset(q);
                for (x, &a) in ads.iter().enumerate() {
                    let (qs, _) = g.queries_of(a);
                    let pos = qs.binary_search(&q).unwrap();
                    let alo = g.ad_csr_offset(a);
                    // F(q, a): ad-major primary vs query-major transpose.
                    assert_eq!(
                        f.ad_to_query[alo + pos].to_bits(),
                        f.ad_to_query_by_query[qlo + x].to_bits()
                    );
                    // F(a, q): query-major primary vs ad-major transpose.
                    assert_eq!(
                        f.query_to_ad[qlo + x].to_bits(),
                        f.query_to_ad_by_ad[alo + pos].to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn arena_roundtrip_borrows_all_tables() {
        let g = figure3_graph();
        let f = UniformTransition.factors(&g);
        let bytes = f.to_arena_bytes();
        let v = TransitionFactorsArena::from_bytes(bytes.as_slice()).unwrap();
        assert!(matches!(v.ad_to_query, Cow::Borrowed(_)));
        assert_eq!(f.ad_to_query, v.ad_to_query);
        assert_eq!(f.query_to_ad, v.query_to_ad);
        assert_eq!(f.ad_to_query_by_query, v.ad_to_query_by_query);
        assert_eq!(f.query_to_ad_by_ad, v.query_to_ad_by_ad);
        let o = v.to_owned_factors();
        assert!(matches!(o.ad_to_query, Cow::Owned(_)));
        assert_eq!(o.ad_to_query, f.ad_to_query);
        // Corruption is refused.
        assert!(TransitionFactorsArena::from_bytes(&bytes.as_slice()[..16]).is_err());
    }

    #[test]
    fn weighted_factors_on_uniform_graph_match_uniform() {
        // Equal weights: W(q, a) = 1/N(q), so both transitions agree exactly.
        let g = figure4_k22();
        let u = UniformTransition.factors(&g);
        let w = WeightedTransition {
            kind: WeightKind::Clicks,
            spread: SpreadMode::Exponential,
        }
        .factors(&g);
        assert_eq!(u.ad_to_query, w.ad_to_query);
        assert_eq!(u.query_to_ad, w.query_to_ad);
    }
}
