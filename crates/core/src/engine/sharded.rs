//! Component-sharded propagation: one engine run per score block.
//!
//! The click graph's score matrix is block-diagonal over connected
//! components (see `simrankpp_graph::sharding` for the proof sketch), so
//! [`run_sharded`] runs the unified kernel **independently per shard** and
//! stitches the per-shard [`ScoreMatrix`] results back into global ids.
//! Stitching rejects duplicates: a pair produced by two shards means the
//! shards overlap, and the merge fails loudly instead of silently summing
//! the colliding scores. Two merge paths implement that contract —
//! [`crate::scores::ScoreMatrixBuilder::merge_disjoint`] for builder-level
//! stitching, and the engine's hot path below
//! ([`super::accum::merge_all_disjoint`]), which exploits that each shard's
//! remap is *monotone*: the remapped pair list is already key-sorted, so a
//! smallest-first galloping merge stitches the blocks in effectively one
//! bulk-copy pass over the data, no hashing (the hash-map builder stitch
//! measured ~2× slower end to end at 10k-query scale).
//!
//! Scheduling: shards arrive largest-first from [`Sharding`] and are pulled
//! off an atomic queue by `config.effective_threads()` scoped workers, so
//! the giant §9.2 component starts immediately while satellites fill the
//! remaining workers. Each shard itself runs **serially** (`threads = 1`).
//!
//! Exactness contract, for [`Sharding::from_components`] (`exact == true`):
//!
//! * per-shard transition factors equal the global ones (both walks are
//!   local and components keep every incident edge);
//! * the monotone id remap preserves CSR neighbor order, so a shard replays
//!   the global contribution stream restricted to its component;
//! * the default pull kernel (`KernelKind::Pull`) fixes each output row's
//!   accumulation order as a function of CSR neighbor order alone, which
//!   the monotone remap preserves — **bit-identical** scores at any scale
//!   and any thread count. The flat oracle (`KernelKind::Flat`) instead
//!   sorts contributions canonically by `(pair, value)`, which is
//!   bit-identical only while both runs are serial and stay under the
//!   accumulator's flush threshold (beyond it, run boundaries can
//!   reassociate sums; equality then holds to rounding);
//! * `prune_threshold` is a per-pair decision on identical values, so
//!   pruned runs decompose exactly too;
//! * `tolerance > 0` early exit is the one knob that breaks equivalence:
//!   a quiet shard may stop before the global run would have, leaving its
//!   scores short by at most `tolerance · C / (1 − C)`.
//!
//! Extraction sharding (`exact == false`) reuses the same machinery but cuts
//! edges; see `simrankpp_partition::shard`.

use super::accum::{merge_all_disjoint, PairVec};
use super::{EngineRun, RawRun, Transition};
use crate::config::SimrankConfig;
use crate::scores::ScoreMatrix;
use simrankpp_graph::{ClickGraph, Sharding};
use simrankpp_util::PairKey;

/// Runs the unified kernel per shard and stitches the blocks back together.
///
/// The returned [`EngineRun`] has global-id score matrices and aggregated
/// diagnostics: `pair_counts[i]` sums the shards' stored pairs at iteration
/// `i`, `max_deltas[i]` is the max across shards, `iterations_run` is the
/// maximum any shard executed, and `converged` means every shard converged.
/// Shards that stop early (tolerance) are padded with their final stationary
/// counts and a zero delta.
///
/// # Panics
/// Panics if `sharding` was built for a different graph (dimension
/// mismatch) or if two shards produce the same score pair (overlap).
pub fn run_sharded<T: Transition>(
    g: &ClickGraph,
    config: &SimrankConfig,
    transition: &T,
    sharding: &Sharding,
) -> EngineRun {
    config.validate().expect("invalid SimRank configuration");
    assert_eq!(
        (sharding.parent_n_queries(), sharding.parent_n_ads()),
        (g.n_queries(), g.n_ads()),
        "sharding was built for a different graph"
    );
    // Per-shard runs are serial and un-sharded; parallelism lives at the
    // shard level, and nested sharding would recompute components per shard.
    let shard_config = SimrankConfig {
        threads: 1,
        sharding: crate::config::ShardStrategy::Off,
        ..*config
    };
    let workers = config.effective_threads().min(sharding.n_shards()).max(1);
    let mut runs = run_all(sharding, &shard_config, transition, workers);

    // Stitch: remap each shard's (already key-sorted) raw pair list to
    // global ids in place — monotone remaps preserve the sort — then merge.
    // The merge rejects duplicate pairs, so overlapping shards fail loudly
    // instead of silently summing. Remapping leaves the stored f64s
    // untouched, so the stitched matrix is bit-identical to the per-shard
    // results, and the freeze into `ScoreMatrix` happens exactly once, on
    // the stitched whole.
    let (q_pieces, a_pieces) = remap_pieces(sharding, &mut runs);
    let queries = ScoreMatrix::from_sorted_pairs(
        g.n_queries(),
        merge_all_disjoint(q_pieces).expect("query-side shards overlap"),
    );
    let ads = ScoreMatrix::from_sorted_pairs(
        g.n_ads(),
        merge_all_disjoint(a_pieces).expect("ad-side shards overlap"),
    );

    let (pair_counts, max_deltas, iterations_run, converged) = aggregate_diagnostics(&runs, config);

    EngineRun {
        queries,
        ads,
        pair_counts,
        max_deltas,
        iterations_run,
        converged,
    }
}

/// Remaps each shard's raw pair lists to global ids in place (monotone
/// remaps preserve the key sort) and hands them back as per-shard pieces,
/// query side and ad side. Shared by the sharded and incremental stitches.
pub(crate) fn remap_pieces(
    sharding: &Sharding,
    runs: &mut [RawRun],
) -> (Vec<PairVec>, Vec<PairVec>) {
    let mut q_pieces: Vec<PairVec> = Vec::with_capacity(runs.len());
    let mut a_pieces: Vec<PairVec> = Vec::with_capacity(runs.len());
    for (shard, run) in sharding.shards.iter().zip(runs) {
        let qmap = &shard.mapping.queries;
        let mut piece = std::mem::take(&mut run.q_pairs);
        for (k, _) in &mut piece {
            let (a, b) = k.parts();
            *k = PairKey::new(qmap[a as usize].0, qmap[b as usize].0);
        }
        q_pieces.push(piece);
        let amap = &shard.mapping.ads;
        let mut piece = std::mem::take(&mut run.a_pairs);
        for (k, _) in &mut piece {
            let (a, b) = k.parts();
            *k = PairKey::new(amap[a as usize].0, amap[b as usize].0);
        }
        a_pieces.push(piece);
    }
    (q_pieces, a_pieces)
}

/// Aggregates per-shard diagnostics: summed pair counts, max-of-max deltas,
/// the longest iteration count, and whether every shard converged. Shards
/// that stopped early are padded with their final stationary counts and a
/// zero delta.
pub(crate) fn aggregate_diagnostics(
    runs: &[RawRun],
    config: &SimrankConfig,
) -> (Vec<(usize, usize)>, Vec<f64>, usize, bool) {
    let iterations_run = if config.tolerance > 0.0 {
        runs.iter()
            .map(|r| r.iterations_run)
            .max()
            .unwrap_or_else(|| config.iterations.min(1))
    } else {
        config.iterations
    };
    let mut pair_counts = Vec::with_capacity(iterations_run);
    let mut max_deltas = Vec::with_capacity(iterations_run);
    for i in 0..iterations_run {
        let mut qp = 0usize;
        let mut ap = 0usize;
        let mut delta = 0.0f64;
        for r in runs {
            let (q, a) = r
                .pair_counts
                .get(i)
                .or(r.pair_counts.last())
                .copied()
                .unwrap_or((0, 0));
            qp += q;
            ap += a;
            delta = delta.max(r.max_deltas.get(i).copied().unwrap_or(0.0));
        }
        pair_counts.push((qp, ap));
        max_deltas.push(delta);
    }
    let converged =
        config.tolerance > 0.0 && config.iterations > 0 && runs.iter().all(|r| r.converged);
    (pair_counts, max_deltas, iterations_run, converged)
}

/// Runs the engine over every shard, pulling shard indices off an atomic
/// queue with `workers` scoped threads; results come back in shard order.
/// Each worker owns one [`super::EngineScratch`] for its whole drain, so
/// kernel workspaces (dense pull scratch, flat buffers) are allocated once
/// per worker, not once per shard.
pub(crate) fn run_all<T: Transition>(
    sharding: &Sharding,
    config: &SimrankConfig,
    transition: &T,
    workers: usize,
) -> Vec<RawRun> {
    let shards = &sharding.shards;
    let mut scratches: Vec<super::EngineScratch> = (0..workers.max(1))
        .map(|_| super::EngineScratch::new(config.kernel, config.effective_threads()))
        .collect();
    super::parallel::run_indexed_stateful(shards.len(), &mut scratches, |scratch, i| {
        super::run_raw_with(&shards[i].graph, config, transition, scratch)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, UniformTransition, WeightedTransition};
    use crate::weighted::SpreadMode;
    use simrankpp_graph::fixtures::figure3_graph;
    use simrankpp_graph::sharding::Shard;
    use simrankpp_graph::{AdId, ClickGraphBuilder, EdgeData, QueryId, WeightKind};

    fn cfg(k: usize) -> SimrankConfig {
        SimrankConfig::default().with_iterations(k)
    }

    /// Seeded multi-component random graph: `blocks` disjoint bipartite
    /// blobs with distinct densities.
    fn multi_component(blocks: usize, seed: u64) -> ClickGraph {
        let mut b = ClickGraphBuilder::new();
        let mut x = seed | 1;
        for blk in 0..blocks as u32 {
            let qo = blk * 12;
            let ao = blk * 9;
            for _ in 0..40 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let q = qo + ((x >> 33) % 12) as u32;
                let a = ao + ((x >> 13) % 9) as u32;
                b.add_edge(QueryId(q), AdId(a), EdgeData::from_clicks(1 + (x % 4)));
            }
        }
        b.build()
    }

    #[test]
    fn sharded_equals_monolithic_bitwise_uniform() {
        let g = multi_component(5, 17);
        let sharding = Sharding::from_components(&g);
        assert!(sharding.n_shards() >= 2, "fixture must be multi-component");
        let mono = run(&g, &cfg(6), &UniformTransition);
        let shard = run_sharded(&g, &cfg(6), &UniformTransition, &sharding);
        let mono_pairs: Vec<_> = mono.queries.iter().collect();
        let shard_pairs: Vec<_> = shard.queries.iter().collect();
        assert_eq!(mono_pairs, shard_pairs, "query scores must be identical");
        assert_eq!(
            mono.ads.iter().collect::<Vec<_>>(),
            shard.ads.iter().collect::<Vec<_>>()
        );
        assert_eq!(mono.pair_counts, shard.pair_counts);
        assert_eq!(mono.iterations_run, shard.iterations_run);
        assert_eq!(mono.max_deltas, shard.max_deltas);
    }

    #[test]
    fn sharded_equals_monolithic_bitwise_weighted_and_pruned() {
        let g = multi_component(4, 99);
        let sharding = Sharding::from_components(&g);
        let t = WeightedTransition {
            kind: WeightKind::Clicks,
            spread: SpreadMode::Exponential,
        };
        let c = cfg(5).with_prune_threshold(1e-3);
        let mono = run(&g, &c, &t);
        let shard = run_sharded(&g, &c, &t, &sharding);
        assert_eq!(
            mono.queries.iter().collect::<Vec<_>>(),
            shard.queries.iter().collect::<Vec<_>>()
        );
        assert_eq!(
            mono.ads.iter().collect::<Vec<_>>(),
            shard.ads.iter().collect::<Vec<_>>()
        );
        assert_eq!(mono.pair_counts, shard.pair_counts);
    }

    #[test]
    fn sharded_multi_worker_matches_single_worker() {
        // Shard-level parallelism must not change anything: each shard is
        // serial inside, and stitching is order-deterministic.
        let g = multi_component(6, 5);
        let sharding = Sharding::from_components(&g);
        let serial = run_sharded(&g, &cfg(5).with_threads(1), &UniformTransition, &sharding);
        let parallel = run_sharded(&g, &cfg(5).with_threads(4), &UniformTransition, &sharding);
        assert_eq!(
            serial.queries.iter().collect::<Vec<_>>(),
            parallel.queries.iter().collect::<Vec<_>>()
        );
        assert_eq!(serial.pair_counts, parallel.pair_counts);
    }

    #[test]
    fn merged_matrix_has_no_cross_shard_pairs() {
        let g = figure3_graph();
        let sharding = Sharding::from_components(&g);
        let r = run_sharded(&g, &cfg(8), &UniformTransition, &sharding);
        let components = simrankpp_graph::components::connected_components(&g);
        for (a, b, _) in r.queries.iter() {
            assert_eq!(
                components.query_label[a as usize], components.query_label[b as usize],
                "stitched matrix leaked a cross-component pair ({a}, {b})"
            );
        }
        for (a, b, _) in r.ads.iter() {
            assert_eq!(
                components.ad_label[a as usize],
                components.ad_label[b as usize]
            );
        }
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let empty = ClickGraphBuilder::new().build();
        let s = Sharding::from_components(&empty);
        let r = run_sharded(&empty, &cfg(3), &UniformTransition, &s);
        assert_eq!(r.queries.n_pairs(), 0);
        assert_eq!(r.iterations_run, 3);
        assert_eq!(r.pair_counts, vec![(0, 0); 3]);

        // Singleton-query component only: still no pairs, dims preserved.
        let mut b = ClickGraphBuilder::new();
        b.reserve_queries(2);
        b.reserve_ads(2);
        b.add_edge(QueryId(0), AdId(0), EdgeData::from_clicks(1));
        let g = b.build();
        let s = Sharding::from_components(&g);
        let r = run_sharded(&g, &cfg(3), &UniformTransition, &s);
        assert_eq!(r.queries.n_nodes(), 2);
        assert_eq!(r.ads.n_nodes(), 2);
        assert_eq!(r.queries.n_pairs(), 0);
    }

    #[test]
    fn tolerance_converges_per_shard() {
        let g = multi_component(3, 7);
        let sharding = Sharding::from_components(&g);
        let c = cfg(200).with_tolerance(1e-9);
        let mono = run(&g, &c, &UniformTransition);
        let shard = run_sharded(&g, &c, &UniformTransition, &sharding);
        assert!(shard.converged);
        assert!(shard.iterations_run <= mono.iterations_run);
        // Early-exit error bound: t·C/(1−C) with C = 0.8, t = 1e-9.
        assert!(mono.queries.max_abs_diff(&shard.queries) < 1e-7);
    }

    #[test]
    #[should_panic(expected = "shards overlap")]
    fn overlapping_shards_panic_instead_of_summing() {
        let g = figure3_graph();
        let mut sharding = Sharding::from_components(&g);
        let dup = Shard {
            graph: sharding.shards[0].graph.clone(),
            mapping: sharding.shards[0].mapping.clone(),
            component: sharding.shards[0].component,
        };
        sharding.shards.push(dup);
        run_sharded(&g, &cfg(3), &UniformTransition, &sharding);
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn mismatched_graph_rejected() {
        let g = figure3_graph();
        let sharding = Sharding::from_components(&g);
        let other = multi_component(2, 3);
        run_sharded(&other, &cfg(2), &UniformTransition, &sharding);
    }
}
