//! Shared configuration for the SimRank family of engines.

use serde::{Deserialize, Serialize};
use simrankpp_graph::WeightKind;

/// How the engine decomposes the click graph before propagating
/// (see `engine::sharded`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShardStrategy {
    /// One monolithic run over the whole graph (the historical behavior).
    #[default]
    Off,
    /// One engine run per connected component, stitched back into global
    /// ids. Exact: cross-component SimRank scores are provably zero, so the
    /// score matrix is block-diagonal over components and the decomposition
    /// changes no value (bit-identical for serial runs; see
    /// `engine::sharded` for the fine print).
    Components,
    /// Component sharding plus ACL extraction of up to the given number of
    /// low-conductance blocks out of the giant component
    /// (`simrankpp_partition::extraction_sharding`). **Approximate**: edges
    /// crossing an extraction cut are dropped, shrinking boundary scores.
    Extracted(usize),
}

/// Which accumulation kernel the unified engine runs each Jacobi half-step
/// on (see `engine::pull` and `engine::accum`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KernelKind {
    /// Row-parallel pull kernel: the half-step as two Gustavson SpGEMM
    /// passes over CSR score rows with a dense-scratch workspace — no
    /// contribution buffers, no sort-merge, bit-deterministic for any
    /// thread count. The default.
    #[default]
    Pull,
    /// Flat scatter–sort–merge accumulation (the previous default): every
    /// contribution materialized, sorted canonically, tournament-merged.
    /// Kept as a cross-check oracle and for `bench_ci`'s ratio gates.
    Flat,
    /// Per-iteration hash-map accumulation (the historical engines' path).
    /// Slowest; kept as the second independent oracle.
    Hashmap,
}

/// How scores are produced: the full pair matrix upfront, or one query's
/// row on demand (see `engine::single_source`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EngineMode {
    /// Materialize the full O(n²) pair matrix with the iterative engine
    /// (the historical behavior, and the differential oracle for
    /// single-source answers). The default.
    #[default]
    AllPairs,
    /// Answer per-query top-k requests on demand via the linearized
    /// single-source iteration (diagonal correction + per-query sparse
    /// forward/backward passes) without ever building the matrix.
    SingleSource,
}

/// Parameters shared by all SimRank variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimrankConfig {
    /// Query-side decay factor `C1 ∈ (0, 1]` (Eq. 4.1).
    pub c1: f64,
    /// Ad-side decay factor `C2 ∈ (0, 1]` (Eq. 4.2).
    pub c2: f64,
    /// Number of Jacobi iterations `k`. The paper's experiments use a small
    /// fixed number; 7 reproduces Tables 3–4 and is close to converged on
    /// click-graph-like structures.
    pub iterations: usize,
    /// Sparse engines drop pair scores below this threshold after each
    /// iteration. `0.0` disables pruning.
    pub prune_threshold: f64,
    /// Early-exit tolerance: the unified engine stops iterating once the
    /// largest per-pair score change (either side) falls to or below this.
    /// `0.0` (default) disables early exit and runs all `iterations`.
    pub tolerance: f64,
    /// Which §2 edge weight weighted SimRank and Pearson consume.
    pub weight_kind: WeightKind,
    /// Worker threads for the sparse engines. `1` = serial (deterministic
    /// to the last bit), `0` = use all available cores.
    pub threads: usize,
    /// Graph decomposition the unified engine applies before propagating:
    /// per-component runs (exact) or ACL-extracted blocks (approximate).
    /// Defaults on deserialize so configs saved before this field existed
    /// still load.
    #[serde(default)]
    pub sharding: ShardStrategy,
    /// Which accumulation kernel runs each Jacobi half-step. [`KernelKind::Pull`]
    /// is the production path; `Flat` and `Hashmap` are the cross-check
    /// oracles. Defaults on deserialize like `sharding`.
    #[serde(default)]
    pub kernel: KernelKind,
    /// Whether scores come from the all-pairs matrix or the on-demand
    /// single-source path. Defaults on deserialize like `sharding`.
    #[serde(default)]
    pub mode: EngineMode,
}

impl Default for SimrankConfig {
    fn default() -> Self {
        SimrankConfig {
            c1: 0.8,
            c2: 0.8,
            iterations: 7,
            prune_threshold: 0.0,
            tolerance: 0.0,
            weight_kind: WeightKind::ExpectedClickRate,
            threads: 1,
            sharding: ShardStrategy::Off,
            kernel: KernelKind::Pull,
            mode: EngineMode::AllPairs,
        }
    }
}

impl SimrankConfig {
    /// The paper's running configuration: `C1 = C2 = 0.8` (Tables 2–4).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Builder-style: set both decay factors.
    pub fn with_decay(mut self, c1: f64, c2: f64) -> Self {
        self.c1 = c1;
        self.c2 = c2;
        self
    }

    /// Builder-style: set the iteration count.
    pub fn with_iterations(mut self, k: usize) -> Self {
        self.iterations = k;
        self
    }

    /// Builder-style: set the pruning threshold.
    pub fn with_prune_threshold(mut self, t: f64) -> Self {
        self.prune_threshold = t;
        self
    }

    /// Builder-style: set the early-exit tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Builder-style: set the edge-weight kind.
    pub fn with_weight_kind(mut self, kind: WeightKind) -> Self {
        self.weight_kind = kind;
        self
    }

    /// Builder-style: set the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style: set the shard strategy.
    pub fn with_sharding(mut self, sharding: ShardStrategy) -> Self {
        self.sharding = sharding;
        self
    }

    /// Builder-style: set the accumulation kernel.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder-style: set the engine mode.
    pub fn with_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.c1) || !(0.0..=1.0).contains(&self.c2) {
            return Err(format!(
                "decay factors must lie in [0, 1]; got C1={}, C2={}",
                self.c1, self.c2
            ));
        }
        if !self.prune_threshold.is_finite() || self.prune_threshold < 0.0 {
            return Err("prune threshold must be finite and non-negative".into());
        }
        if !self.tolerance.is_finite() || self.tolerance < 0.0 {
            return Err("tolerance must be finite and non-negative".into());
        }
        if self.sharding == ShardStrategy::Extracted(0) {
            return Err("ShardStrategy::Extracted needs at least one block".into());
        }
        Ok(())
    }

    /// The number of worker threads to actually spawn.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimrankConfig::default();
        assert_eq!(c.c1, 0.8);
        assert_eq!(c.c2, 0.8);
        assert_eq!(c.iterations, 7);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let c = SimrankConfig::default()
            .with_decay(0.6, 0.7)
            .with_iterations(10)
            .with_prune_threshold(1e-4)
            .with_threads(4);
        assert_eq!(c.c1, 0.6);
        assert_eq!(c.c2, 0.7);
        assert_eq!(c.iterations, 10);
        assert_eq!(c.prune_threshold, 1e-4);
        assert_eq!(c.threads, 4);
    }

    #[test]
    fn validation_rejects_bad_decay() {
        assert!(SimrankConfig::default()
            .with_decay(1.5, 0.8)
            .validate()
            .is_err());
        assert!(SimrankConfig::default()
            .with_decay(-0.1, 0.8)
            .validate()
            .is_err());
    }

    #[test]
    fn tolerance_builder_and_validation() {
        let c = SimrankConfig::default().with_tolerance(1e-9);
        assert_eq!(c.tolerance, 1e-9);
        assert!(c.validate().is_ok());
        assert!(SimrankConfig::default()
            .with_tolerance(-1.0)
            .validate()
            .is_err());
        assert!(SimrankConfig::default()
            .with_tolerance(f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn validation_rejects_bad_threshold() {
        let c = SimrankConfig {
            prune_threshold: f64::NAN,
            ..SimrankConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn sharding_builder_and_validation() {
        let c = SimrankConfig::default();
        assert_eq!(c.sharding, ShardStrategy::Off);
        let c = c.with_sharding(ShardStrategy::Components);
        assert_eq!(c.sharding, ShardStrategy::Components);
        assert!(c.validate().is_ok());
        assert!(SimrankConfig::default()
            .with_sharding(ShardStrategy::Extracted(5))
            .validate()
            .is_ok());
        assert!(SimrankConfig::default()
            .with_sharding(ShardStrategy::Extracted(0))
            .validate()
            .is_err());
    }

    #[test]
    fn deserializes_configs_saved_before_sharding_existed() {
        // Back-compat: `sharding` was added after configs (e.g. inside
        // repro_report.json) were already being persisted, so it must
        // default rather than fail on older JSON.
        let json = serde_json::to_string(&SimrankConfig::default()).unwrap();
        assert!(json.contains("sharding"));
        let legacy = {
            let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
            match &mut v {
                serde_json::Value::Object(m) => m.remove("sharding"),
                other => panic!("config must serialize to an object, got {}", other.kind()),
            };
            serde_json::to_string(&v).unwrap()
        };
        let c: SimrankConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(c.sharding, ShardStrategy::Off);
    }

    #[test]
    fn kernel_builder_defaults_to_pull_and_deserializes_legacy() {
        let c = SimrankConfig::default();
        assert_eq!(c.kernel, KernelKind::Pull);
        assert_eq!(c.with_kernel(KernelKind::Flat).kernel, KernelKind::Flat);
        // Configs persisted before the kernel knob existed must still load.
        let json = serde_json::to_string(&SimrankConfig::default()).unwrap();
        assert!(json.contains("kernel"));
        let legacy = {
            let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
            match &mut v {
                serde_json::Value::Object(m) => m.remove("kernel"),
                other => panic!("config must serialize to an object, got {}", other.kind()),
            };
            serde_json::to_string(&v).unwrap()
        };
        let c: SimrankConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(c.kernel, KernelKind::Pull);
    }

    #[test]
    fn mode_builder_defaults_to_all_pairs_and_deserializes_legacy() {
        let c = SimrankConfig::default();
        assert_eq!(c.mode, EngineMode::AllPairs);
        assert_eq!(
            c.with_mode(EngineMode::SingleSource).mode,
            EngineMode::SingleSource
        );
        // Configs persisted before the mode knob existed must still load.
        let json = serde_json::to_string(&SimrankConfig::default()).unwrap();
        assert!(json.contains("mode"));
        let legacy = {
            let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
            match &mut v {
                serde_json::Value::Object(m) => m.remove("mode"),
                other => panic!("config must serialize to an object, got {}", other.kind()),
            };
            serde_json::to_string(&v).unwrap()
        };
        let c: SimrankConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(c.mode, EngineMode::AllPairs);
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert!(SimrankConfig::default().with_threads(0).effective_threads() >= 1);
        assert_eq!(
            SimrankConfig::default().with_threads(3).effective_threads(),
            3
        );
    }
}
